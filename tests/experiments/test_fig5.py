"""Tests for the Figure 5 detailed-examination experiment."""

import pytest

from repro.experiments import fig5
from repro.experiments.common import EvalConfig
from repro.workloads.pairs import BenchmarkPair


@pytest.fixture(scope="module")
def result():
    config = EvalConfig(
        sample_period=100_000.0,
        min_instructions=600_000.0,
        warmup_instructions=0.0,
        st_min_instructions=400_000.0,
    )
    return fig5.run(BenchmarkPair("gcc", "eon"), config, fairness_target=0.25)


class TestSingleThreadTimeline:
    def test_ipc_over_full_region_matches_eq1(self):
        from repro.workloads.synthetic import uniform_stream

        timeline = fig5.SingleThreadTimeline(
            uniform_stream(2.5, 1_000), miss_lat=300, total_instructions=100_000
        )
        assert timeline.ipc_over(0, 50_000) == pytest.approx(1_000 / 700, rel=1e-3)

    def test_partial_region_interpolates(self):
        from repro.workloads.synthetic import uniform_stream

        timeline = fig5.SingleThreadTimeline(
            uniform_stream(2.5, 1_000), miss_lat=300, total_instructions=10_000
        )
        # The timeline spreads each segment's miss stall across the
        # segment (breakpoints only at segment ends), so any sub-segment
        # region reports the segment's effective rate, Eq. 1's value.
        ipc = timeline.ipc_over(100, 300)
        assert ipc == pytest.approx(1_000 / 700, rel=1e-3)

    def test_empty_region_is_zero(self):
        from repro.workloads.synthetic import uniform_stream

        timeline = fig5.SingleThreadTimeline(
            uniform_stream(2.5, 1_000), miss_lat=300, total_instructions=10_000
        )
        assert timeline.ipc_over(500, 500) == 0.0


class TestFig5:
    def test_series_are_aligned(self, result):
        n = len(result.times)
        assert n > 3
        assert len(result.estimated_ipc_st) == n
        assert len(result.real_ipc_st) == n
        assert len(result.speedups_enforced) == n
        assert len(result.fairness) == n

    def test_estimates_track_real_ipc_st(self, result):
        # Paper Section 5.1.1: the estimate closely tracks the real
        # value; we require agreement within ~25% on average.
        for thread in range(2):
            assert result.estimation_error(thread) < 0.25

    def test_estimates_usually_slightly_lower(self, result):
        # gcc has a 15% miss-overlap, so its real IPC_ST sits above the
        # full-latency estimate most windows.
        assert result.estimate_is_usually_lower(0)

    def test_enforcement_rescues_the_starved_thread(self, result):
        # Paper: gcc runs 20x faster with F = 1/4 than without; our
        # substitute workloads give a smaller but still large factor.
        assert result.starved_thread_improvement() > 2.0

    def test_fairness_series_is_bounded(self, result):
        for value in result.fairness:
            assert 0.0 <= value <= 1.0 + 1e-9

    def test_enforced_speedups_respect_target_loosely(self, result):
        # Per-interval fairness fluctuates (the paper shows transient
        # dips at phase changes) but the median should be near F.
        values = sorted(result.fairness)
        median = values[len(values) // 2]
        assert median == pytest.approx(0.25, abs=0.13)

    def test_render(self, result):
        text = fig5.render(result)
        assert "gcc:eon" in text
        assert "estimation error" in text
