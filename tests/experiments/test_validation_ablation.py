"""Tests for the validation and ablation experiments."""

import pytest

from repro.experiments import ablations, validation
from repro.experiments.common import EvalConfig
from repro.workloads.pairs import BenchmarkPair


class TestValidation:
    @pytest.fixture(scope="class")
    def result(self):
        return validation.run(min_instructions=300_000)

    def test_engine_matches_model_closely(self, result):
        # The segment engine executes the model's assumptions exactly;
        # residual error is end-effects only.
        assert result.worst_error < 0.02

    def test_all_cases_present(self, result):
        assert len(result.cases) == len(validation.CASES)

    def test_render(self, result):
        text = validation.render(result)
        assert "model" in text
        assert "engine" in text


class TestAblations:
    @pytest.fixture(scope="class")
    def result(self):
        config = EvalConfig(
            sample_period=100_000.0,
            min_instructions=600_000.0,
            warmup_instructions=300_000.0,
            st_min_instructions=400_000.0,
        )
        return ablations.run(BenchmarkPair("gcc", "eon"), config, fairness_target=0.5)

    def test_covers_all_knobs(self, result):
        knobs = {p.knob for p in result.points}
        assert knobs == {
            "delta",
            "max_cycles_quota",
            "deficit_cap",
            "assumed_miss_lat",
        }

    def test_paper_delta_achieves_target(self, result):
        series = result.series("delta")
        paper_point = next(p for p in series if p.value == "250,000")
        assert paper_point.achieved_fairness == pytest.approx(0.5, abs=0.1)

    def test_underestimated_miss_latency_overshoots_fairness(self, result):
        # A lower assumed latency deflates IPC_ST estimates for missy
        # threads less than for compute threads, shifting quotas.
        series = {p.value: p for p in result.series("assumed_miss_lat")}
        assert series["150"].achieved_fairness > series["600"].achieved_fairness

    def test_tight_deficit_cap_forces_more_switches(self, result):
        series = {p.value: p for p in result.series("deficit_cap")}
        assert series["tight"].forced_per_kcycle > series["none"].forced_per_kcycle

    def test_render(self, result):
        text = ablations.render(result)
        assert "gcc:eon" in text
        assert "delta" in text
