"""Tests for the Table 2 experiment."""

import math

import pytest

from repro.experiments import table2


@pytest.fixture(scope="module")
def result():
    # Warmup must outlast the first Delta window (~600k instructions at
    # this pair's throughput) so the measured window sees active
    # enforcement only.
    return table2.run(min_instructions=1_000_000, warmup=700_000)


class TestTable2:
    def test_rows_cover_levels_and_threads(self, result):
        for rows in (result.analytical, result.simulated):
            keys = {(r.fairness_target, r.thread) for r in rows}
            assert keys == {(f, t) for f in (0.0, 0.5, 1.0) for t in (0, 1)}

    def test_analytical_matches_paper_slowdowns(self, result):
        by_key = {(r.fairness_target, r.thread): r for r in result.analytical}
        assert by_key[(0.0, 0)].slowdown_factor == pytest.approx(1.02, abs=0.01)
        assert by_key[(0.0, 1)].slowdown_factor == pytest.approx(9.2, abs=0.1)

    def test_analytical_f1_quota_is_1667(self, result):
        by_key = {(r.fairness_target, r.thread): r for r in result.analytical}
        assert by_key[(1.0, 0)].quota == pytest.approx(1_667, abs=1)

    def test_simulation_tracks_analysis(self, result):
        for sim, ana in zip(result.simulated, result.analytical):
            assert sim.fairness_target == ana.fairness_target
            assert sim.ipc_soe == pytest.approx(ana.ipc_soe, rel=0.03)

    def test_fairness_summary(self, result):
        assert result.fairness(result.analytical, 0.0) == pytest.approx(0.111, abs=0.003)
        assert result.fairness(result.analytical, 1.0) == pytest.approx(1.0, abs=1e-6)
        assert result.fairness(result.simulated, 1.0) == pytest.approx(1.0, abs=0.03)

    def test_unenforced_quota_is_infinite(self, result):
        f0_rows = [r for r in result.simulated if r.fairness_target == 0.0]
        assert all(math.isinf(r.quota) for r in f0_rows)

    def test_render_mentions_both_sources(self, result):
        text = table2.render(result)
        assert "analytical model" in text
        assert "segment engine" in text
        assert "IPSw" in text
