"""Retry backoff determinism and the incremental TaskPool contract."""

import time

import pytest

from repro import faults, telemetry
from repro.errors import ConfigurationError
from repro.experiments.supervisor import (
    SupervisionPolicy,
    TaskPool,
    backoff_delay,
)

# -- picklable task callables (pool workers fork) ---------------------------


def _double(value):
    return value * 2


def _fail(value):
    raise ValueError(f"no good: {value}")


class TestBackoffDelay:
    def test_zero_base_means_no_delay(self):
        assert backoff_delay(0.0, 1) == 0.0
        assert backoff_delay(0.0, 5, index=3, seed=7) == 0.0

    def test_delay_is_deterministic(self):
        first = backoff_delay(0.5, 2, index=3, seed=42)
        second = backoff_delay(0.5, 2, index=3, seed=42)
        assert first == second

    def test_delay_lies_in_the_equal_jitter_window(self):
        """Attempt n's delay is in [0.5, 1.0) x base x 2^(n-1)."""
        for attempt in (1, 2, 3, 4):
            window = 0.25 * 2.0 ** (attempt - 1)
            for index in range(8):
                delay = backoff_delay(0.25, attempt, index=index, seed=0)
                assert window * 0.5 <= delay < window

    def test_jitter_varies_by_index_seed_and_attempt(self):
        base = backoff_delay(1.0, 1, index=0, seed=0)
        assert backoff_delay(1.0, 1, index=1, seed=0) != base
        assert backoff_delay(1.0, 1, index=0, seed=1) != base
        # Different attempts live in different windows anyway.
        assert backoff_delay(1.0, 2, index=0, seed=0) >= 1.0

    def test_invalid_attempt_yields_zero(self):
        assert backoff_delay(1.0, 0) == 0.0


class TestPolicyDelay:
    def test_policy_routes_its_seed_and_base(self):
        policy = SupervisionPolicy(retry_backoff=0.5, backoff_seed=9)
        assert policy.delay_for(4, 2) == backoff_delay(
            0.5, 2, index=4, seed=9
        )

    def test_default_policy_has_no_backoff(self):
        assert SupervisionPolicy().delay_for(0, 1) == 0.0

    def test_negative_backoff_is_rejected(self):
        with pytest.raises(ConfigurationError):
            SupervisionPolicy(retry_backoff=-0.1)


def _drain(pool, expected, timeout=60.0):
    """Pump until ``expected`` tasks settle (done or failed)."""
    settled = []
    deadline = time.monotonic() + timeout
    while len(settled) < expected:
        assert time.monotonic() < deadline, f"settled only {settled}"
        for event in pool.pump(0.05):
            if event.kind in ("done", "failed"):
                settled.append(event)
    return settled


class TestTaskPool:
    def test_submit_pump_returns_results_incrementally(self):
        with TaskPool(_double, jobs=2) as pool:
            pool.submit(0, 10)
            (first,) = _drain(pool, 1)
            assert (first.kind, first.index, first.result) == ("done", 0, 20)
            # The pool stays up between submissions.
            pool.submit(1, 11)
            pool.submit(2, 12)
            results = {e.index: e.result for e in _drain(pool, 2)}
            assert results == {1: 22, 2: 24}
            assert pool.idle

    def test_task_error_is_a_failed_event_with_taxonomy(self):
        with TaskPool(_fail, jobs=1,
                      policy=SupervisionPolicy(retries=0)) as pool:
            pool.submit(0, "x")
            (event,) = _drain(pool, 1)
            assert event.kind == "failed"
            assert event.failure.reason == "error"
            assert "no good" in event.failure.message

    def test_crash_is_retried_with_backoff_and_recovers(self):
        plan = faults.FaultPlan(
            specs=(faults.FaultSpec(kind="crash", index=0, count=1),)
        )
        policy = SupervisionPolicy(retries=1, retry_backoff=0.05)
        with faults.fault_injection(plan):
            with TaskPool(_double, jobs=1, policy=policy) as pool:
                pool.submit(0, 0)
                events = []
                deadline = time.monotonic() + 60.0
                while not any(e.kind == "done" for e in events):
                    assert time.monotonic() < deadline
                    events.extend(pool.pump(0.05))
        retries = [e for e in events if e.kind == "retry"]
        assert len(retries) == 1
        assert retries[0].reason == "crash"
        assert retries[0].attempt == 2
        # The announced backoff is the policy's deterministic delay.
        assert retries[0].backoff_s == policy.delay_for(0, 1)
        (done,) = [e for e in events if e.kind == "done"]
        assert done.result == 0

    def test_per_task_timeout_override_beats_the_policy(self):
        plan = faults.FaultPlan(
            specs=(faults.FaultSpec(kind="hang", index=0, count=2),)
        )
        policy = SupervisionPolicy(task_timeout=120.0, retries=0)
        with faults.fault_injection(plan):
            with TaskPool(_double, jobs=1, policy=policy) as pool:
                start = time.monotonic()
                pool.submit(0, 0, timeout=0.3)
                (event,) = _drain(pool, 1)
                elapsed = time.monotonic() - start
        assert event.kind == "failed"
        assert event.failure.reason == "timeout"
        assert elapsed < 60.0  # the 120 s policy budget never applied

    def test_closed_pool_refuses_work(self):
        pool = TaskPool(_double, jobs=1)
        pool.close()
        with pytest.raises(ConfigurationError):
            pool.submit(0, 1)
        with pytest.raises(ConfigurationError):
            pool.pump()
        pool.close()  # idempotent

    def test_invalid_parameters_are_rejected(self):
        with pytest.raises(ConfigurationError):
            TaskPool(_double, jobs=0)
        with TaskPool(_double, jobs=1) as pool:
            with pytest.raises(ConfigurationError):
                pool.submit(0, 1, timeout=0.0)

    def test_pending_and_in_flight_accounting(self):
        with TaskPool(_double, jobs=1) as pool:
            assert pool.idle
            pool.submit(0, 1)
            pool.submit(1, 2)
            assert pool.pending == 2
            _drain(pool, 2)
            assert pool.pending == 0
            assert pool.in_flight == 0


class TestRetryTelemetry:
    def test_task_retry_event_carries_the_backoff(self):
        plan = faults.FaultPlan(
            specs=(faults.FaultSpec(kind="crash", index=0, count=1),)
        )
        policy = SupervisionPolicy(retries=1, retry_backoff=0.05,
                                   backoff_seed=3)
        sink = telemetry.RingBufferSink()
        with telemetry.tracing(sink), faults.fault_injection(plan):
            with TaskPool(_double, jobs=1, policy=policy) as pool:
                pool.submit(0, 0)
                _drain(pool, 1)
        retries = [
            event for event in sink.events
            if event["event"] == "task_retry"
        ]
        assert len(retries) == 1
        assert retries[0]["reason"] == "crash"
        assert retries[0]["backoff_s"] == policy.delay_for(0, 1)
        telemetry.validate_event(retries[0])
