"""Sharded batch dispatch: planner, shared-memory arena, lifecycle.

The load-bearing property: :func:`run_specs_sharded` is bit-identical
to the single-process batch at any shard count and any job count --
including when shards crash, time out, or are drained -- and every
shared-memory block is unlinked before it returns, on every path.
The planner tests pin the determinism contract the merge relies on.
"""

import math
from pathlib import Path

import pytest

np = pytest.importorskip("numpy")

from repro import faults
from repro.core.controller import FairnessParams
from repro.engine.backend import SoeRunSpec, get_backend
from repro.engine.soe import RunLimits
from repro.errors import ConfigurationError
from repro.experiments import sharding
from repro.experiments.sharding import (
    MIN_RUNS_PER_SHARD,
    ColumnArena,
    LaneRef,
    ShardPlan,
    attach_columns,
    plan_shards,
    resolve_shard_count,
    run_specs_sharded,
)
from repro.experiments.supervisor import SupervisionPolicy, Supervisor
from repro.workloads.materialize import SegmentColumns, columnize
from repro.workloads.synthetic import uniform_stream


def _shm_segments():
    """Names of live POSIX shared-memory segments (Linux)."""
    root = Path("/dev/shm")
    if not root.exists():  # pragma: no cover - non-Linux fallback
        return set()
    return {entry.name for entry in root.glob("psm_*")}


@pytest.fixture(autouse=True)
def _no_leaked_segments():
    """Every test in this module must leave /dev/shm as it found it."""
    before = _shm_segments()
    yield
    assert _shm_segments() - before == set()


class TestPlanShards:
    def test_contiguous_cover_with_remainder_up_front(self):
        plan = plan_shards(10, 3)
        assert plan.bounds == (0, 4, 7, 10)
        assert plan.num_shards == 3
        assert [list(plan.positions(k)) for k in range(3)] == [
            [0, 1, 2, 3], [4, 5, 6], [7, 8, 9],
        ]

    def test_sizes_differ_by_at_most_one_and_never_grow(self):
        for total in range(1, 40):
            for shards in range(1, 12):
                plan = plan_shards(total, shards)
                sizes = [len(plan.positions(k)) for k in range(plan.num_shards)]
                assert sum(sizes) == total
                assert max(sizes) - min(sizes) <= 1
                assert sizes == sorted(sizes, reverse=True)

    def test_more_shards_than_runs_degrades_to_one_run_each(self):
        plan = plan_shards(3, 8)
        assert plan.num_shards == 3
        assert plan.bounds == (0, 1, 2, 3)

    def test_empty_batch_plans_one_empty_shard(self):
        plan = plan_shards(0, 4)
        assert plan.num_shards == 1
        assert list(plan.positions(0)) == []

    def test_deterministic_and_digest_stable(self):
        assert plan_shards(17, 4) == plan_shards(17, 4)
        assert plan_shards(17, 4).digest() == plan_shards(17, 4).digest()
        digests = {
            plan_shards(17, 4).digest(),
            plan_shards(17, 5).digest(),
            plan_shards(18, 4).digest(),
        }
        assert len(digests) == 3

    def test_rejects_nonsense(self):
        with pytest.raises(ConfigurationError):
            plan_shards(-1, 2)
        with pytest.raises(ConfigurationError):
            plan_shards(4, 0)


class TestResolveShardCount:
    def test_explicit_integer_is_honored_and_clamped(self):
        assert resolve_shard_count(3, jobs=1, total=100) == 3
        assert resolve_shard_count(8, jobs=2, total=5) == 5
        assert resolve_shard_count(8, jobs=2, total=0) == 1

    def test_auto_needs_parallelism_and_a_big_enough_batch(self):
        assert resolve_shard_count("auto", jobs=1, total=1000) == 1
        assert resolve_shard_count(
            "auto", jobs=4, total=2 * MIN_RUNS_PER_SHARD - 1
        ) == 1
        assert resolve_shard_count("auto", jobs=4, total=100) == 4
        # Never more shards than MIN_RUNS_PER_SHARD-sized slices.
        assert resolve_shard_count(
            "auto", jobs=16, total=3 * MIN_RUNS_PER_SHARD
        ) == 3

    def test_auto_without_numpy_stays_in_process(self, monkeypatch):
        monkeypatch.setattr(sharding, "numpy_available", lambda: False)
        assert resolve_shard_count("auto", jobs=8, total=1000) == 1

    def test_rejects_nonsense(self):
        with pytest.raises(ConfigurationError):
            resolve_shard_count("fastest", jobs=2, total=10)
        with pytest.raises(ConfigurationError):
            resolve_shard_count(0, jobs=2, total=10)


def _lanes():
    return [
        SegmentColumns(
            instructions=[100.0, 200.0, 50.0],
            cycles=[40.0, 90.0, 30.0],
            ends_with_miss=[True, False, True],
            miss_latency=[150.0, math.nan, math.nan],
            exhausted=True,
        ),
        SegmentColumns(
            instructions=[7.0],
            cycles=[3.0],
            ends_with_miss=[False],
            miss_latency=[math.nan],
            exhausted=True,
        ),
    ]


def _assert_lane_roundtrip(view, lane):
    assert list(view.instructions) == lane.instructions
    assert list(view.cycles) == lane.cycles
    assert list(view.ends_with_miss) == lane.ends_with_miss
    assert [math.isnan(x) for x in view.miss_latency] == [
        math.isnan(x) for x in lane.miss_latency
    ]
    paired = zip(view.miss_latency, lane.miss_latency)
    assert all(a == b for a, b in paired if not math.isnan(b))
    assert view.exhausted


class TestColumnArena:
    def test_pack_attach_roundtrip(self):
        lanes = _lanes()
        arena = ColumnArena.pack(lanes)
        try:
            assert arena.refs == (LaneRef(0, 3), LaneRef(3, 1))
            shm, views = attach_columns(arena.handle, arena.refs)
            try:
                for view, lane in zip(views, lanes):
                    _assert_lane_roundtrip(view, lane)
            finally:
                shm.close()
        finally:
            arena.unlink()

    def test_pack_uses_arrays_cache_when_present(self):
        lanes = _lanes()
        # Same cache format the batch engine memoizes into the slot.
        for lane in lanes:
            lane.arrays_cache = (
                np.asarray(lane.instructions),
                np.asarray(lane.cycles),
                np.asarray(lane.ends_with_miss, dtype=bool),
                np.asarray(lane.miss_latency),
            )
        arena = ColumnArena.pack(lanes)
        try:
            shm, views = attach_columns(arena.handle, arena.refs)
            try:
                for view, lane in zip(views, lanes):
                    _assert_lane_roundtrip(view, lane)
            finally:
                shm.close()
        finally:
            arena.unlink()

    def test_unlink_is_idempotent(self):
        arena = ColumnArena.pack(_lanes())
        name = arena.handle.name.lstrip("/")
        arena.unlink()
        assert name not in _shm_segments()
        arena.unlink()  # second call must be a no-op

    def test_failed_pack_leaks_nothing(self):
        bad = SegmentColumns(
            instructions=[1.0, 2.0],
            cycles=[1.0, 2.0, 3.0],  # length mismatch: assignment must fail
            ends_with_miss=[True, False],
            miss_latency=[math.nan, math.nan],
            exhausted=True,
        )
        with pytest.raises(Exception):
            ColumnArena.pack([bad])
        # The autouse fixture asserts /dev/shm is clean.


def _column_specs(count=8, segments=250):
    """Column-backed two-thread specs inside the batch envelope."""
    specs = []
    for seed in range(count):
        streams = (
            columnize(
                uniform_stream(2.0, 8_000, ipm_cv=0.5, seed=seed), segments
            ),
            columnize(
                uniform_stream(1.0, 900, ipm_cv=0.5, seed=seed + 100),
                segments,
            ),
        )
        fairness = (
            FairnessParams(fairness_target=0.5, sample_period=40_000.0)
            if seed % 2
            else None
        )
        specs.append(
            SoeRunSpec(
                streams=streams,
                fairness=fairness,
                limits=RunLimits(
                    min_instructions=80_000.0, warmup_instructions=20_000.0
                ),
            )
        )
    return specs


@pytest.fixture(scope="module")
def reference():
    return get_backend("batch").run_batch(_column_specs())


class TestRunSpecsSharded:
    @pytest.mark.parametrize("shards,jobs", [(1, 1), (2, 2), (4, 2), (8, 3)])
    def test_bit_identical_at_any_decomposition(
        self, reference, shards, jobs
    ):
        sharded = run_specs_sharded(
            _column_specs(), jobs=jobs, shards=shards
        )
        assert sharded == reference

    def test_auto_matches_too(self, reference):
        assert run_specs_sharded(
            _column_specs(), jobs=2, shards="auto"
        ) == reference

    def test_empty_batch(self):
        assert run_specs_sharded([], jobs=4, shards=4) == []

    def test_crashed_shard_is_retried_to_identity(self, reference):
        with faults.fault_injection(faults.parse_fault_plan("crash@0")):
            sharded = run_specs_sharded(
                _column_specs(),
                jobs=2,
                shards=2,
                policy=SupervisionPolicy(retries=2),
            )
        assert sharded == reference

    def test_failed_shard_falls_back_in_process(self, reference):
        with faults.fault_injection(faults.parse_fault_plan("crash@0*9")):
            sharded = run_specs_sharded(
                _column_specs(),
                jobs=2,
                shards=2,
                policy=SupervisionPolicy(retries=0),
            )
        assert sharded == reference

    def test_drained_run_falls_back_and_unlinks(self, reference, monkeypatch):
        # Simulate a SIGINT drain: no shard ever launches, the fallback
        # computes everything in-process, and the arenas still unlink
        # (checked by the module's autouse /dev/shm fixture).
        class _DrainingSupervisor(Supervisor):
            def run(self):
                self.request_drain()
                return super().run()

        monkeypatch.setattr(sharding, "Supervisor", _DrainingSupervisor)
        sharded = run_specs_sharded(_column_specs(), jobs=2, shards=4)
        assert sharded == reference

    def test_rejects_generator_backed_streams(self):
        spec = SoeRunSpec(
            streams=(
                uniform_stream(2.0, 8_000, seed=1),
                uniform_stream(1.0, 900, seed=2),
            ),
            limits=RunLimits(min_instructions=50_000.0),
        )
        with pytest.raises(ConfigurationError, match="non-columnar"):
            run_specs_sharded([spec], jobs=2, shards=2)

    def test_rejects_specs_outside_the_batch_envelope(self):
        from repro.core.policies import PolicyConfig

        spec = SoeRunSpec(
            streams=(
                columnize(uniform_stream(2.0, 8_000, seed=1), 100),
                columnize(uniform_stream(1.0, 900, seed=2), 100),
            ),
            policy=PolicyConfig(name="rr-timeshare"),
            limits=RunLimits(min_instructions=50_000.0),
        )
        with pytest.raises(ConfigurationError, match="envelope"):
            run_specs_sharded([spec], jobs=2, shards=2)

    def test_rejects_heterogeneous_thread_counts(self):
        specs = _column_specs(count=2)
        triple = SoeRunSpec(
            streams=tuple(
                columnize(uniform_stream(1.5, 2_000, seed=30 + t), 100)
                for t in range(3)
            ),
            limits=RunLimits(min_instructions=50_000.0),
        )
        with pytest.raises(ConfigurationError, match="homogeneous"):
            run_specs_sharded(specs + [triple], jobs=2, shards=2)
