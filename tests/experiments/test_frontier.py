"""Tests for the cross-policy frontier experiment.

The frontier's contract is the acceptance gate of the policy zoo: one
row per registered policy, computed on the shared supervised grid, and
bit-identical across job counts, engine backends, cache state and
checkpoint/resume. A reduced two-pair grid keeps the full sweep fast.
"""

import dataclasses

import pytest

from repro.core.policies import PolicyConfig, policy_names
from repro.engine.backend import numpy_available
from repro.engine.soe import run_soe
from repro.errors import ConfigurationError
from repro.experiments import frontier
from repro.experiments.common import EvalConfig
from repro.experiments.runner import ExecutionSettings, execution
from repro.workloads.pairs import evaluation_pairs

needs_numpy = pytest.mark.skipif(not numpy_available(), reason="needs numpy")

PAIRS = evaluation_pairs()[:2]


@pytest.fixture(scope="module")
def config():
    return EvalConfig(
        sample_period=100_000.0,
        min_instructions=400_000.0,
        warmup_instructions=200_000.0,
        st_min_instructions=300_000.0,
        fairness_levels=(0.0, 1.0),
    )


@pytest.fixture(scope="module")
def result(config):
    return frontier.run(config, pairs=PAIRS)


class TestFrontierShape:
    def test_one_row_per_registered_policy_in_order(self, result):
        assert result.policies == policy_names()
        assert len(result.policies) >= 5
        assert tuple(row.policy for row in result.rows) == result.policies

    def test_every_row_covers_every_pair(self, result):
        labels = tuple(pair.label for pair in PAIRS)
        assert result.pair_labels == labels
        for row in result.rows:
            assert tuple(p.pair_label for p in row.points) == labels

    def test_level_is_the_highest_configured(self, result):
        assert result.level == 1.0
        assert all(row.level == 1.0 for row in result.rows)

    def test_none_row_is_exactly_the_baseline(self, result):
        none_row = result.rows[0]
        assert none_row.policy == "none"
        assert none_row.mean_normalized_throughput == pytest.approx(1.0)
        assert none_row.min_normalized_throughput == pytest.approx(1.0)

    def test_enforcing_policies_raise_fairness_over_baseline(self, result):
        by_name = {row.policy: row for row in result.rows}
        baseline = by_name["none"].mean_fairness
        for name in ("fairness", "rr-timeshare", "lfoc-cluster"):
            assert by_name[name].mean_fairness > baseline

    def test_batch_capability_matches_the_registry(self, result):
        by_name = {row.policy: row for row in result.rows}
        assert by_name["fairness"].batch_capable
        assert by_name["drr-arbiter"].batch_capable
        assert not by_name["rr-timeshare"].batch_capable

    def test_policy_subset_and_unknown_name(self, config):
        sub = frontier.run(config, pairs=PAIRS, policies=("none", "fairness"))
        assert sub.policies == ("none", "fairness")
        with pytest.raises(ConfigurationError, match="unknown policy"):
            frontier.run(config, pairs=PAIRS, policies=("nope",))
        with pytest.raises(ConfigurationError, match="at least one"):
            frontier.run(config, pairs=PAIRS, policies=())

    def test_needs_a_nonzero_level(self, config):
        flat = dataclasses.replace(config, fairness_levels=(0.0,))
        with pytest.raises(ConfigurationError, match="non-zero fairness"):
            frontier.run(flat, pairs=PAIRS)

    def test_render_mentions_every_policy(self, result):
        text = frontier.render(result)
        for name in result.policies:
            assert name in text
        assert "icount" in text  # including the degeneration note


class TestFrontierIdentity:
    def test_parallel_run_is_bit_identical(self, config, result):
        with execution(ExecutionSettings(jobs=2)):
            parallel = frontier.run(config, pairs=PAIRS)
        assert parallel == result

    @needs_numpy
    def test_auto_backend_is_bit_identical(self, config, result):
        with execution(ExecutionSettings(backend="auto")):
            batched = frontier.run(config, pairs=PAIRS)
        assert batched == result

    def test_cache_and_resume_round_trip(self, config, result, tmp_path):
        checkpoint = tmp_path / "frontier.ckpt"
        with execution(
            ExecutionSettings(cache_dir=tmp_path / "cache", checkpoint=checkpoint)
        ):
            cold = frontier.run(config, pairs=PAIRS)
        assert cold == result
        for name in result.policies:
            journal = tmp_path / f"frontier.ckpt.{name}"
            assert journal.exists(), f"no per-policy journal for {name}"
        with execution(
            ExecutionSettings(cache_dir=tmp_path / "cache", checkpoint=checkpoint)
        ):
            warm = frontier.run(config, pairs=PAIRS)
        assert warm == result
        with execution(
            ExecutionSettings(checkpoint=checkpoint, resume=True)
        ):
            resumed = frontier.run(config, pairs=PAIRS)
        assert resumed == result


class TestRegistryDifferential:
    def test_rr_timeshare_factory_matches_direct_timesharing_policy(self):
        """The registry path must be the TimeSharingPolicy path, bitwise."""
        from repro.core.policy import TimeSharingPolicy
        from repro.engine.soe import RunLimits, SoeParams
        from repro.workloads.synthetic import uniform_stream

        def streams():
            return [
                uniform_stream(2.5, 15_000, seed=1),
                uniform_stream(2.5, 1_000, seed=2),
            ]

        params = SoeParams(miss_lat=300, switch_lat=25)
        limits = RunLimits(min_instructions=300_000)
        registry_policy = PolicyConfig(
            name="rr-timeshare", params=(("cycle_quota", 400.0),)
        ).make(2)
        direct = run_soe(streams(), TimeSharingPolicy(400.0), params, limits)
        via_registry = run_soe(streams(), registry_policy, params, limits)
        assert [t.retired for t in direct.threads] == [
            t.retired for t in via_registry.threads
        ]
        assert direct.cycles == via_registry.cycles
        assert [t.cycle_quota_switches for t in direct.threads] == [
            t.cycle_quota_switches for t in via_registry.threads
        ]
