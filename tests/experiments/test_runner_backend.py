"""Tests for engine-backend selection in the grid runner and CLI.

The backend is an execution setting: it decides *how* SOE tasks are
advanced (per-task scalar engines under supervision vs. one in-process
vectorized batch), never *what* the grid computes. Every test here is
a restatement of that invariant -- batch and auto grids must be
bit-identical to scalar ones, and checkpoints/caches written by one
backend must be transparently usable by another.
"""

import pytest

from repro.cli import _execution_settings, build_parser
from repro.engine.backend import numpy_available
from repro.errors import ConfigurationError
from repro.experiments.common import EvalConfig
from repro.experiments.runner import ExecutionSettings, run_grid
from repro.workloads.pairs import BenchmarkPair

needs_numpy = pytest.mark.skipif(not numpy_available(), reason="needs numpy")

PAIRS = (
    BenchmarkPair("gcc", "eon"),
    BenchmarkPair("lucas", "applu"),
)


@pytest.fixture(scope="module")
def config():
    return EvalConfig.quick()


@pytest.fixture(scope="module")
def scalar_grid(config):
    return run_grid(config, PAIRS, ExecutionSettings(backend="scalar"))


class TestSettingsValidation:
    def test_default_is_scalar(self):
        assert ExecutionSettings().backend == "scalar"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="backend must be one"):
            ExecutionSettings(backend="vector")

    def test_known_backends_accepted(self):
        for name in ("scalar", "batch", "auto"):
            assert ExecutionSettings(backend=name).backend == name


@needs_numpy
class TestGridBackendEquivalence:
    def test_batch_grid_bit_identical_to_scalar(self, config, scalar_grid):
        batch = run_grid(config, PAIRS, ExecutionSettings(backend="batch"))
        assert batch.results == scalar_grid.results
        assert batch.failures == ()

    def test_auto_grid_bit_identical_to_scalar(self, config, scalar_grid):
        auto = run_grid(config, PAIRS, ExecutionSettings(backend="auto"))
        assert auto.results == scalar_grid.results

    def test_batch_checkpoint_resumes_under_scalar(
        self, config, scalar_grid, tmp_path
    ):
        journal = tmp_path / "grid.ckpt"
        first = run_grid(
            config,
            PAIRS,
            ExecutionSettings(backend="batch", checkpoint=journal),
        )
        assert journal.exists() and journal.stat().st_size > 0
        resumed = run_grid(
            config,
            PAIRS,
            ExecutionSettings(
                backend="scalar", checkpoint=journal, resume=True
            ),
        )
        # Every task (batched SOE runs included) was journaled, so the
        # scalar resume replays the journal instead of simulating.
        assert resumed.resumed_tasks > 0
        assert resumed.results == first.results == scalar_grid.results

    def test_batch_cache_served_to_scalar_run(
        self, config, scalar_grid, tmp_path
    ):
        settings = ExecutionSettings(backend="batch", cache_dir=tmp_path)
        first = run_grid(config, PAIRS, settings)
        assert first.stats.misses == len(PAIRS)
        second = run_grid(
            config, PAIRS, ExecutionSettings(backend="scalar", cache_dir=tmp_path)
        )
        assert second.stats.hits == len(PAIRS)
        assert second.results == scalar_grid.results


class TestAutoWithoutNumpy:
    def test_auto_grid_falls_back_to_scalar(
        self, config, scalar_grid, monkeypatch
    ):
        from repro.engine import backend as backend_mod

        monkeypatch.setattr(backend_mod, "numpy_available", lambda: False)
        auto = run_grid(config, PAIRS, ExecutionSettings(backend="auto"))
        assert auto.results == scalar_grid.results


class TestCliFlag:
    def test_default_backend_is_scalar(self):
        args = build_parser().parse_args(["fig3"])
        assert args.backend == "scalar"
        assert _execution_settings(args).backend == "scalar"

    def test_backend_flag_reaches_settings(self):
        args = build_parser().parse_args(["--backend", "batch", "fig3"])
        assert _execution_settings(args).backend == "batch"

    def test_unknown_backend_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--backend", "vector", "fig3"])
        assert "invalid choice" in capsys.readouterr().err
