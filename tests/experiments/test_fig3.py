"""Tests for the Figure 3 experiment (analytical tradeoff sweep)."""

import pytest

from repro.experiments import fig3


@pytest.fixture(scope="module")
def result():
    return fig3.run()


class TestFig3:
    def test_all_paper_cases_present(self, result):
        assert len(result.series) == len(fig3.PAPER_CASES)

    def test_f_zero_is_the_baseline(self, result):
        for series in result.series:
            assert series.throughput_change[0] == pytest.approx(0.0)

    def test_equal_ipc_cases_degrade_mildly(self, result):
        # Paper: when IPC_no_miss is similar, degradation is up to ~4%.
        for series in result.series:
            if series.ipc_no_miss[0] == series.ipc_no_miss[1]:
                assert min(series.throughput_change) > -0.05

    def test_mixed_ipc_can_improve_throughput(self, result):
        # Paper: the [2, 3] cases improve by up to ~10%.
        improving = [
            s for s in result.series if s.ipc_no_miss == (2.0, 3.0)
        ]
        assert improving
        assert any(max(s.throughput_change) > 0.05 for s in improving)

    def test_mixed_ipc_can_degrade_strongly(self, result):
        # Paper: degradation can reach ~15%.
        degrading = [
            s for s in result.series if s.ipc_no_miss == (3.0, 2.0)
        ]
        assert any(min(s.throughput_change) < -0.10 for s in degrading)

    def test_envelope_matches_paper(self, result):
        assert -0.20 < result.max_degradation() < -0.08
        assert 0.05 < result.max_improvement() < 0.15

    def test_monotone_change_along_f_for_each_series(self, result):
        # Throughput change moves monotonically with F in this model
        # (quotas scale smoothly with 1/F).
        for series in result.series:
            changes = series.throughput_change
            diffs = [b - a for a, b in zip(changes, changes[1:])]
            assert all(d <= 1e-9 for d in diffs) or all(d >= -1e-9 for d in diffs)

    def test_render(self, result):
        text = fig3.render(result)
        assert "Figure 3" in text
        assert "max degradation" in text
