"""Persistent pool supervision and the framed worker protocol.

The pool changes only *where* a task runs (a long-lived worker serving
many tasks over one pipe), never what it computes -- so results must be
bit-identical to per-task isolation under every failure mode the
supervisor knows: crash, hang, garbage result, drain. The frame tests
pin the wire contract: a worker that dies mid-write leaves a torn frame
that classifies as a crash *immediately*, instead of wedging the parent
until the task timeout.
"""

import multiprocessing
import os
import pickle
import struct
import time

import pytest

from repro import faults
from repro.experiments import supervisor as supervisor_module
from repro.experiments.supervisor import (
    _FRAME_ERRORS,
    SupervisionPolicy,
    Supervisor,
    _recv_frame,
    _send_frame,
)

# -- picklable task functions (forked workers must import them) -------------


def _double(value):
    return value * 2


def _pid_of(value):
    del value
    return float(os.getpid())


def _return_nan(value):
    del value
    return float("nan")


class TestFrameProtocol:
    def test_round_trip_preserves_structure(self):
        parent, child = multiprocessing.Pipe(duplex=False)
        payload = ("ok", {"nested": [1.5, float("inf")], "t": (None, b"x")})
        _send_frame(child, payload)
        child.close()
        assert _recv_frame(parent) == payload
        parent.close()

    def test_clean_close_raises_frame_error(self):
        parent, child = multiprocessing.Pipe(duplex=False)
        child.close()
        with pytest.raises(_FRAME_ERRORS):
            _recv_frame(parent)
        parent.close()

    def test_torn_frame_raises_frame_error(self):
        parent, child = multiprocessing.Pipe(duplex=False)
        payload = pickle.dumps(("ok", list(range(256))))
        # A length header promising more bytes than ever arrive: what a
        # worker killed mid-send_bytes leaves behind.
        os.write(child.fileno(), struct.pack("!i", len(payload)))
        os.write(child.fileno(), payload[: len(payload) // 2])
        child.close()
        with pytest.raises(_FRAME_ERRORS):
            _recv_frame(parent)
        parent.close()

    def test_garbage_frame_raises_frame_error(self):
        parent, child = multiprocessing.Pipe(duplex=False)
        child.send_bytes(b"not a pickle at all")
        child.close()
        with pytest.raises(_FRAME_ERRORS):
            _recv_frame(parent)
        parent.close()


class TestPoolMode:
    def test_pool_matches_inline_and_isolated(self):
        items = list(enumerate(range(10)))
        inline = Supervisor(_double, items, jobs=1).run()
        isolated = Supervisor(_double, items, jobs=3).run()
        pooled = Supervisor(_double, items, jobs=3, pool=True).run()
        assert pooled.results == isolated.results == inline.results
        assert pooled.failures == [] and pooled.skipped == []

    def test_workers_persist_across_tasks(self):
        run = Supervisor(
            _pid_of, list(enumerate(range(12))), jobs=2, pool=True
        ).run()
        pids = set(run.results.values())
        # 12 tasks served by at most 2 long-lived workers: the pool
        # reuses processes instead of forking per task.
        assert len(run.results) == 12
        assert 1 <= len(pids) <= 2

    def test_crashed_worker_is_respawned_and_task_retried(self):
        with faults.fault_injection(faults.parse_fault_plan("crash@1")):
            run = Supervisor(
                _double,
                list(enumerate(range(6))),
                jobs=2,
                pool=True,
                policy=SupervisionPolicy(retries=2),
            ).run()
        assert run.results == {i: i * 2 for i in range(6)}
        assert run.retries == 1 and run.failures == []

    def test_hung_worker_times_out_and_recovers(self):
        with faults.fault_injection(faults.parse_fault_plan("hang@0")):
            run = Supervisor(
                _double,
                list(enumerate(range(4))),
                jobs=2,
                pool=True,
                policy=SupervisionPolicy(task_timeout=1.0, retries=1),
            ).run()
        assert run.results == {i: i * 2 for i in range(4)}
        assert run.retries == 1 and run.failures == []

    def test_exhausted_retries_fail_with_crash_reason(self):
        with faults.fault_injection(faults.parse_fault_plan("crash@0*9")):
            run = Supervisor(
                _double,
                [(0, 1)],
                jobs=2,
                pool=True,
                policy=SupervisionPolicy(retries=1),
            ).run()
        assert run.results == {}
        assert [f.reason for f in run.failures] == ["crash"]
        assert run.failures[0].attempts == 2

    def test_nan_result_is_invariant_violation(self):
        run = Supervisor(
            _return_nan,
            [(0, "x")],
            jobs=2,
            pool=True,
            policy=SupervisionPolicy(retries=0),
        ).run()
        assert [f.reason for f in run.failures] == ["invariant"]

    def test_drain_skips_everything_unlaunched(self):
        supervisor = Supervisor(
            _double, list(enumerate(range(8))), jobs=2, pool=True
        )
        supervisor.request_drain()
        run = supervisor.run()
        assert run.results == {}
        assert run.skipped == list(range(8))


def _tearing_send_frame(real):
    """Wrap `_send_frame` so result reports die mid-write.

    Request frames (parent -> worker) and shutdown frames pass through
    untouched; an ``("ok", ...)`` report writes its length header plus
    half the payload, then kills the process -- exactly the torn frame
    a worker crashing inside ``send_bytes`` leaves in the pipe.
    """

    def send(conn, message):
        if isinstance(message, tuple) and message and message[0] == "ok":
            payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
            os.write(conn.fileno(), struct.pack("!i", len(payload)))
            os.write(conn.fileno(), payload[: len(payload) // 2])
            os._exit(1)
        real(conn, message)

    return send


class TestTornFrameRegression:
    """A worker crash mid-frame is a crash, not a hang (satellite of
    the framed-protocol change: the parent must classify the torn frame
    the moment the pipe closes, long before any task timeout)."""

    @pytest.mark.parametrize("pool", [False, True])
    def test_mid_frame_crash_classifies_as_crash_fast(
        self, monkeypatch, pool
    ):
        monkeypatch.setattr(
            supervisor_module,
            "_send_frame",
            _tearing_send_frame(_send_frame),
        )
        started = time.monotonic()
        run = Supervisor(
            _double,
            [(0, 1)],
            jobs=2,
            pool=pool,
            policy=SupervisionPolicy(task_timeout=60.0, retries=0),
        ).run()
        elapsed = time.monotonic() - started
        assert [f.reason for f in run.failures] == ["crash"]
        assert "exitcode" in run.failures[0].message
        # Detection came from the torn frame, not the 60s timeout.
        assert elapsed < 30.0
