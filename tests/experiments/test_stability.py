"""Tests for the seed-stability experiment."""

import pytest

from repro.experiments import stability
from repro.experiments.common import EvalConfig


@pytest.fixture(scope="module")
def result():
    return stability.run(seeds=(0, 1), config=EvalConfig.quick())


class TestStability:
    def test_one_outcome_per_seed(self, result):
        assert [o.seed for o in result.outcomes] == [0, 1]

    def test_speedup_aggregates_are_stable(self, result):
        mean_value, std = result.speedup_spread(0.0)
        assert mean_value > 0.1
        assert std < 0.1  # seeds change the suite only marginally

    def test_degradation_ordering_holds_for_every_seed(self, result):
        for outcome in result.outcomes:
            degradations = [
                outcome.degradation_by_level[level]
                for level in sorted(outcome.degradation_by_level)
            ]
            assert degradations == sorted(degradations)

    def test_unfair_fraction_stable_above_third(self, result):
        mean_value, _ = result.unfair_fraction_spread()
        assert mean_value >= 1 / 3 - 0.07

    def test_truncated_means_near_targets_for_all_seeds(self, result):
        for level in (0.25, 0.5):
            mean_value, std = result.truncated_mean_spread(level)
            assert mean_value == pytest.approx(level, rel=0.3)
            assert std < 0.05

    def test_render(self, result):
        text = stability.render(result)
        assert "Seed stability" in text
        assert "±" in text
