"""Sharded grid execution and the group-commit checkpoint journal.

Extends the fault-tolerance invariant to the sharded batch pre-pass: a
grid run at any ``--shards``/``--jobs`` combination -- including one
interrupted mid-shard and resumed at a *different* shard count -- is
bit-identical to the serial scalar grid, and the checkpoint journal
stays crash-consistent when records are group-committed per shard.
"""

from dataclasses import replace

import pytest

np = pytest.importorskip("numpy")

from repro import faults, telemetry
from repro.errors import ConfigurationError
from repro.experiments.checkpoint import CheckpointWriter, load_checkpoint
from repro.experiments.common import EvalConfig
from repro.experiments.runner import (
    CHECKPOINT_SYNC_MODES,
    ExecutionSettings,
    reset_degraded,
    run_grid,
)
from repro.workloads.pairs import BenchmarkPair

PAIRS = (BenchmarkPair("gcc", "gcc"), BenchmarkPair("gcc", "eon"))


@pytest.fixture(scope="module")
def config():
    """A sub-second grid: tiny windows, two fairness levels."""
    return replace(
        EvalConfig.quick(),
        fairness_levels=(0.0, 0.5),
        sample_period=20_000,
        min_instructions=60_000,
        warmup_instructions=20_000,
        st_min_instructions=60_000,
    )


@pytest.fixture(scope="module")
def clean_grid(config):
    return run_grid(config, PAIRS, ExecutionSettings(jobs=1)).results


@pytest.fixture(autouse=True)
def _clean_degraded():
    reset_degraded()
    yield
    reset_degraded()


def _grid(config, pairs, **kwargs):
    kwargs.setdefault("backend", "batch")
    return run_grid(config, pairs, ExecutionSettings(**kwargs))


class TestShardedGridIdentity:
    @pytest.mark.parametrize(
        "jobs,shards", [(2, 2), (2, 4), (3, 3), (2, "auto")]
    )
    def test_bit_identical_at_any_decomposition(
        self, config, clean_grid, jobs, shards
    ):
        outcome = _grid(config, PAIRS, jobs=jobs, shards=shards)
        assert outcome.ok
        assert outcome.results == clean_grid

    def test_single_shard_equals_in_process_batch(self, config, clean_grid):
        in_process = _grid(config, PAIRS, jobs=1, shards=1)
        assert in_process.results == clean_grid

    def test_crashed_shard_recovers_via_retry(self, config, clean_grid):
        with faults.fault_injection(faults.parse_fault_plan("crash@0")):
            outcome = _grid(config, PAIRS, jobs=2, shards=2, retries=2)
        assert outcome.ok
        assert outcome.results == clean_grid
        assert outcome.retries >= 1

    def test_failed_shard_falls_back_to_scalar_supervision(
        self, config, clean_grid, monkeypatch
    ):
        # Break the shard body itself (pool workers inherit the patch
        # at fork): every shard fails, its runs flow to the scalar
        # supervised remainder, and the grid still completes clean --
        # shard failures are not task failures.
        from repro.experiments import runner as runner_module

        def _explode(task):
            raise RuntimeError("shard execution disabled")

        monkeypatch.setattr(runner_module, "_run_shard_task", _explode)
        outcome = _grid(config, PAIRS, jobs=2, shards=2, retries=0)
        assert outcome.ok
        assert outcome.results == clean_grid

    def test_shard_events_are_emitted(self, config, clean_grid):
        sink = telemetry.RingBufferSink()
        with telemetry.tracing(sink):
            outcome = _grid(config, PAIRS, jobs=2, shards=2)
        assert outcome.results == clean_grid
        events = [e for e in sink.events if e["event"] == "shard"]
        starts = [e for e in events if e["phase"] == "start"]
        stops = [e for e in events if e["phase"] == "stop"]
        assert {e["shard"] for e in starts} == {0, 1}
        assert {e["shard"] for e in stops} == {0, 1}
        assert all(e["shards"] == 2 and e["backend"] == "batch"
                   for e in events)
        assert sum(e["runs"] for e in stops) == \
            sum(e["runs"] for e in starts)


class TestShardedCheckpoint:
    def test_journal_notes_the_shard_plan(self, config, clean_grid, tmp_path):
        journal = tmp_path / "grid.ckpt"
        outcome = _grid(
            config, PAIRS, jobs=2, shards=2, checkpoint=journal
        )
        assert outcome.results == clean_grid
        state = load_checkpoint(journal)
        (note,) = [n for n in state.notes if "shard_plan" in n]
        assert note["shards"] == 2
        assert isinstance(note["shard_plan"], str)
        assert len(note["shard_plan"]) == 16

    def test_resume_at_a_different_shard_count(
        self, config, clean_grid, tmp_path
    ):
        journal = tmp_path / "grid.ckpt"
        with faults.fault_injection(faults.parse_fault_plan("crash@0*9")):
            degraded = _grid(
                config, PAIRS, jobs=2, shards=2, retries=0,
                on_failure="degrade", checkpoint=journal,
            )
        assert not degraded.ok
        resumed = _grid(
            config, PAIRS, jobs=2, shards=4, checkpoint=journal, resume=True
        )
        assert resumed.ok
        assert resumed.results == clean_grid
        assert resumed.resumed_tasks > 0
        # ...and a scalar-backend resume of the same journal agrees too.
        rerun = _grid(
            config, PAIRS, jobs=1, backend="scalar",
            checkpoint=journal, resume=True,
        )
        assert rerun.results == clean_grid

    def test_group_commit_round_trips_and_batches_writes(
        self, config, clean_grid, tmp_path
    ):
        journal = tmp_path / "grid.ckpt"
        sink = telemetry.RingBufferSink()
        with telemetry.tracing(sink):
            outcome = _grid(
                config, PAIRS, jobs=2, shards=2,
                checkpoint=journal, checkpoint_sync="shard",
            )
        assert outcome.results == clean_grid
        writes = [e for e in sink.events if e["event"] == "checkpoint"
                  and e["action"] == "write"]
        # Each shard's records land as one grouped write event.
        assert any(e["tasks"] > 1 for e in writes)
        complete = load_checkpoint(journal)
        # Every journaled record resumes; nothing recomputes.
        resumed = _grid(
            config, PAIRS, jobs=1, checkpoint=journal, resume=True
        )
        assert resumed.results == clean_grid
        assert resumed.resumed_tasks == len(complete.tasks)

    def test_torn_final_line_after_group_commit_is_tolerated(
        self, config, tmp_path
    ):
        journal = tmp_path / "grid.ckpt"
        _grid(
            config, PAIRS, jobs=2, shards=2,
            checkpoint=journal, checkpoint_sync="shard",
        )
        complete = load_checkpoint(journal)
        data = journal.read_bytes()
        journal.write_bytes(data[:-9])  # tear the last record mid-append
        torn = load_checkpoint(journal)
        assert len(torn.tasks) == len(complete.tasks) - 1


class TestGroupCommitJournal:
    """`record_many` / `note` primitives under the journal contract."""

    def test_record_many_is_one_write_many_records(self, tmp_path):
        journal = tmp_path / "grid.ckpt"
        with CheckpointWriter(journal, "fp", "code") as writer:
            writer.record_many(
                [("soe", f"k{i}", float(i)) for i in range(5)]
            )
        state = load_checkpoint(journal)
        assert state.tasks == {f"k{i}": float(i) for i in range(5)}

    def test_record_many_empty_is_a_noop(self, tmp_path):
        journal = tmp_path / "grid.ckpt"
        with CheckpointWriter(journal, "fp", "code") as writer:
            size_before = journal.stat().st_size
            writer.record_many([])
        assert journal.stat().st_size == size_before

    def test_notes_round_trip_and_never_gate_resume(self, tmp_path):
        journal = tmp_path / "grid.ckpt"
        with CheckpointWriter(journal, "fp", "code") as writer:
            writer.note({"shard_plan": "abc123", "shards": 4})
            writer.record("soe", "k", 1.0)
        state = load_checkpoint(journal)
        assert state.notes == [{"shard_plan": "abc123", "shards": 4}]
        assert state.tasks == {"k": 1.0}
        # Appending under the same fingerprint still works: notes are
        # informational lines, not part of the resume contract.
        CheckpointWriter(journal, "fp", "code").close()


class TestSettingsValidation:
    def test_rejects_bad_shards(self):
        with pytest.raises(ConfigurationError):
            ExecutionSettings(shards=0)
        with pytest.raises(ConfigurationError):
            ExecutionSettings(shards="fastest")

    def test_rejects_bad_checkpoint_sync(self):
        assert CHECKPOINT_SYNC_MODES == ("every", "shard")
        with pytest.raises(ConfigurationError):
            ExecutionSettings(checkpoint_sync="sometimes")

    def test_cli_shard_parsing(self):
        from repro.cli import _parse_shards

        assert _parse_shards("auto") == "auto"
        assert _parse_shards("4") == 4
        with pytest.raises(ConfigurationError):
            _parse_shards("many")
