"""Tests for the parallel, cached experiment-grid runner.

The load-bearing property is bit-identity: whatever the job count and
whatever the cache state, a grid execution must return exactly the
results of a serial from-scratch run. Everything else (memoization,
cache stats, settings plumbing) is checked around that invariant.
"""

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.experiments import runner
from repro.experiments.common import EvalConfig, PairResult, run_all_pairs
from repro.experiments.runner import (
    CacheStats,
    ExecutionSettings,
    ResultCache,
    compute_pair,
    execution,
    parallel_map,
    run_grid,
    single_thread_ipcs,
)
from repro.engine.results import SoeRunResult, ThreadStats
from repro.workloads.pairs import BenchmarkPair

#: A subset that exercises memoization: gcc appears in three pairs (in
#: both thread positions) and one pair is homogeneous (offset stream).
PAIRS = (
    BenchmarkPair("gcc", "gcc"),
    BenchmarkPair("gcc", "eon"),
    BenchmarkPair("galgel", "gcc"),
    BenchmarkPair("lucas", "applu"),
)


@pytest.fixture(scope="module")
def config():
    return EvalConfig.quick()


@pytest.fixture(scope="module")
def serial_grid(config):
    return run_all_pairs(config, PAIRS)


def _square(value):
    return value * value


class TestParallelMap:
    def test_serial_and_parallel_agree_in_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, jobs=1) == [v * v for v in items]
        assert parallel_map(_square, items, jobs=3) == [v * v for v in items]

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            parallel_map(_square, [1, 2], jobs=0)

    def test_uses_ambient_settings(self):
        with execution(ExecutionSettings(jobs=2)):
            assert runner.current_settings().jobs == 2
            assert parallel_map(_square, [1, 2, 3]) == [1, 4, 9]
        assert runner.current_settings().jobs == 1


class TestExecutionSettings:
    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ConfigurationError):
            ExecutionSettings(jobs=0)

    def test_coerces_cache_dir_to_path(self, tmp_path):
        settings = ExecutionSettings(cache_dir=str(tmp_path))
        assert settings.cache_dir == tmp_path

    def test_context_restores_previous(self):
        before = runner.current_settings()
        with execution(ExecutionSettings(jobs=4)):
            pass
        assert runner.current_settings() is before


class TestEquivalence:
    def test_parallel_grid_is_bit_identical_to_serial(self, config, serial_grid):
        parallel = run_all_pairs(config, PAIRS, jobs=4)
        assert parallel == serial_grid
        for serial_pair, parallel_pair in zip(serial_grid, parallel):
            assert serial_pair.ipc_st == parallel_pair.ipc_st
            for level in config.fairness_levels:
                serial_run = serial_pair.runs[level]
                parallel_run = parallel_pair.runs[level]
                assert serial_run.ipcs == parallel_run.ipcs
                assert serial_run.total_switches == parallel_run.total_switches
                assert serial_pair.achieved_fairness(level) == \
                    parallel_pair.achieved_fairness(level)

    def test_cached_rerun_is_bit_identical(self, config, serial_grid, tmp_path):
        first = run_grid(config, PAIRS,
                         ExecutionSettings(jobs=2, cache_dir=tmp_path))
        second = run_grid(config, PAIRS,
                          ExecutionSettings(jobs=1, cache_dir=tmp_path))
        assert first.results == serial_grid
        assert second.results == serial_grid
        assert first.stats.hits == 0 and first.stats.misses == len(PAIRS)
        assert second.stats.hits == len(PAIRS) and second.stats.misses == 0
        assert second.stats.hit_rate == 1.0

    def test_compute_pair_matches_grid_cell(self, config, serial_grid):
        assert compute_pair(PAIRS[1], config) == serial_grid[1]


class TestBaselineMemoization:
    def test_shared_benchmarks_simulated_once(self, config):
        memo = {}
        for pair in PAIRS:
            single_thread_ipcs(pair, config, st_memo=memo)
        # 8 thread slots, but gcc@seed1 is shared by gcc:gcc and
        # gcc:eon, so only 7 distinct single-thread runs happen.
        assert len(memo) == 7

    def test_memoized_values_are_reused_not_recomputed(self, config):
        memo = {}
        first = single_thread_ipcs(PAIRS[0], config, st_memo=memo)
        poisoned = {task: -1.0 for task in memo}
        assert single_thread_ipcs(PAIRS[0], config, st_memo=poisoned) == \
            (-1.0, -1.0)
        assert first == single_thread_ipcs(PAIRS[0], config)


class TestResultCache:
    def test_key_depends_on_config_and_pair(self, config, tmp_path):
        cache = ResultCache(tmp_path)
        from dataclasses import replace

        assert cache.key(PAIRS[0], config) != cache.key(PAIRS[1], config)
        assert cache.key(PAIRS[0], config) != \
            cache.key(PAIRS[0], replace(config, seed=1))
        assert cache.key(PAIRS[0], config) == cache.key(PAIRS[0], config)

    def test_corrupt_entry_is_a_miss(self, config, serial_grid, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(PAIRS[0], config, serial_grid[0])
        assert cache.load(PAIRS[0], config) == serial_grid[0]
        cache.path(PAIRS[0], config).write_bytes(b"not a pickle")
        assert cache.load(PAIRS[0], config) is None
        # pickle.load raises ValueError (not UnpicklingError) on this
        # one -- any corruption whatsoever must read as a miss.
        cache.path(PAIRS[0], config).write_bytes(b"garbage\n")
        assert cache.load(PAIRS[0], config) is None

    def test_foreign_payload_is_a_miss(self, config, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.path(PAIRS[0], config)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(pickle.dumps({"format": 999, "result": "nope"}))
        assert cache.load(PAIRS[0], config) is None

    def test_missing_directory_is_all_misses(self, config, tmp_path):
        outcome = run_grid(
            config, PAIRS[:1],
            ExecutionSettings(cache_dir=tmp_path / "never-created" / "deep"),
        )
        assert outcome.stats == CacheStats(hits=0, misses=1)

    def test_code_version_is_stable_hex(self):
        assert runner.code_version() == runner.code_version()
        int(runner.code_version(), 16)


class TestPairResultErrors:
    """Regression: missing/idle baselines raise descriptive errors."""

    def _run(self, retired: float) -> SoeRunResult:
        stats = ThreadStats(retired=retired, run_cycles=500.0, misses=1,
                            miss_switches=1, forced_switches=0,
                            cycle_quota_switches=0)
        return SoeRunResult(cycles=1000.0, threads=(stats, stats),
                            idle_cycles=0.0, switch_overhead_cycles=0.0)

    def test_missing_baseline_is_configuration_error(self):
        result = PairResult(pair=PAIRS[1], ipc_st=(1.0, 1.0),
                            runs={0.5: self._run(100.0)})
        with pytest.raises(ConfigurationError, match="no F=0 baseline"):
            result.normalized_throughput(0.5)
        with pytest.raises(ConfigurationError, match="no F=0 baseline"):
            _ = result.baseline

    def test_idle_baseline_is_configuration_error(self):
        result = PairResult(
            pair=PAIRS[1], ipc_st=(1.0, 1.0),
            runs={0.0: self._run(0.0), 0.5: self._run(100.0)},
        )
        with pytest.raises(ConfigurationError, match="idle F=0 baseline"):
            result.normalized_throughput(0.5)

    def test_unknown_level_is_configuration_error(self):
        result = PairResult(pair=PAIRS[1], ipc_st=(1.0, 1.0),
                            runs={0.0: self._run(100.0)})
        with pytest.raises(ConfigurationError, match="not run at fairness"):
            result.normalized_throughput(0.75)
        with pytest.raises(ConfigurationError, match="not run at fairness"):
            result.achieved_fairness(0.75)
