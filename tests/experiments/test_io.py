"""Tests for experiment-result serialization and the CLI output flags."""

import json
import math
from dataclasses import dataclass

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.experiments.io import result_to_jsonable, write_json


@dataclass(frozen=True)
class Inner:
    value: float


@dataclass(frozen=True)
class Outer:
    name: str
    inner: Inner
    runs: dict
    series: tuple


class TestResultToJsonable:
    def test_nested_dataclasses(self):
        outer = Outer("x", Inner(1.5), {0.5: Inner(2.0)}, (1, 2))
        payload = result_to_jsonable(outer)
        assert payload == {
            "name": "x",
            "inner": {"value": 1.5},
            "runs": {"0.5": {"value": 2.0}},
            "series": [1, 2],
        }

    def test_infinity_becomes_string(self):
        assert result_to_jsonable(Inner(math.inf)) == {"value": "inf"}

    def test_rejects_non_data_objects(self):
        with pytest.raises(ConfigurationError):
            result_to_jsonable(Inner)  # a class, not an instance
        with pytest.raises(ConfigurationError):
            result_to_jsonable(lambda: None)

    def test_real_experiment_result_serializes(self):
        from repro.experiments import fig3

        payload = result_to_jsonable(fig3.run())
        text = json.dumps(payload)
        assert "throughput_change" in text

    def test_table2_result_serializes(self):
        from repro.experiments import table2

        payload = result_to_jsonable(
            table2.run(min_instructions=400_000, warmup=300_000)
        )
        assert "analytical" in payload
        json.dumps(payload)  # strict-JSON encodable


class TestWriteJson:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "out.json"
        write_json(Outer("y", Inner(3.0), {}, ()), path)
        loaded = json.loads(path.read_text())
        assert loaded["inner"]["value"] == 3.0


class TestCliOutputFlags:
    def test_output_writes_rendered_text(self, tmp_path, capsys):
        out = tmp_path / "fig3.txt"
        assert main(["fig3", "--output", str(out)]) == 0
        assert "Figure 3" in out.read_text()

    def test_json_writes_result(self, tmp_path, capsys):
        out = tmp_path / "fig3.json"
        assert main(["fig3", "--json", str(out)]) == 0
        loaded = json.loads(out.read_text())
        assert "series" in loaded
