"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.errors import ConfigurationError
from repro.experiments.registry import experiment_ids, get_experiment


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = experiment_ids()
        for required in ["table2", "fig3", "fig5", "fig6", "fig7", "fig8",
                         "timesharing", "validation", "ablations"]:
            assert required in ids

    def test_lookup_returns_experiment(self):
        experiment = get_experiment("table2")
        assert experiment.paper_reference == "Table 2"
        assert callable(experiment.run)
        assert callable(experiment.render)

    def test_unknown_experiment_raises(self):
        with pytest.raises(ConfigurationError):
            get_experiment("fig99")


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out
        assert "fig8" in out

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig3"])
        assert args.scale == "default"
        assert args.seed == 0

    def test_run_analytical_experiment(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out

    def test_run_with_quick_scale(self, capsys):
        assert main(["ablations", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "Ablations" in out

    def test_unknown_experiment_propagates(self):
        with pytest.raises(ConfigurationError):
            main(["fig99"])
