"""Tests for the command-line interface."""

import inspect
import json

import pytest

import repro.cli as cli
from repro.cli import build_parser, main
from repro.errors import ConfigurationError
from repro.experiments.registry import experiment_ids, get_experiment


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = experiment_ids()
        for required in ["table2", "fig3", "fig5", "fig6", "fig7", "fig8",
                         "timesharing", "validation", "ablations"]:
            assert required in ids

    def test_lookup_returns_experiment(self):
        experiment = get_experiment("table2")
        assert experiment.paper_reference == "Table 2"
        assert callable(experiment.run)
        assert callable(experiment.render)

    def test_unknown_experiment_raises(self):
        with pytest.raises(ConfigurationError):
            get_experiment("fig99")


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out
        assert "fig8" in out

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig3"])
        assert args.scale == "default"
        assert args.seed == 0

    def test_run_analytical_experiment(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out

    def test_run_with_quick_scale(self, capsys):
        assert main(["ablations", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "Ablations" in out

    def test_unknown_experiment_propagates(self):
        with pytest.raises(ConfigurationError):
            main(["fig99"])

    def test_parser_runner_defaults(self):
        args = build_parser().parse_args(["fig3"])
        assert args.jobs == 1
        assert args.cache_dir is None
        assert not args.no_cache


class TestConfigPlumbing:
    """Regression: no experiment may silently ignore --scale/--seed.

    The old CLI passed ``config=`` only to a hard-coded allowlist; any
    experiment outside it ran at its built-in scale whatever the flags
    said. Now every registered run() must accept the keyword and the
    CLI passes it unconditionally.
    """

    def test_every_registered_run_accepts_config(self):
        for experiment_id in experiment_ids():
            run = get_experiment(experiment_id).run
            parameters = inspect.signature(run).parameters
            assert "config" in parameters, (
                f"{experiment_id}.run() does not accept config= -- the "
                "CLI would silently drop --scale/--seed for it"
            )

    def test_config_reaches_formerly_ignored_experiments(self, monkeypatch):
        received = {}

        def probe(experiment_id):
            def run(config=None):
                received[experiment_id] = config
                return ()

            return run

        from repro.experiments import registry
        from repro.experiments.registry import Experiment

        fake = Experiment("fake-probe", "probe", "none",
                          probe("fake-probe"), lambda result: "rendered")
        monkeypatch.setitem(registry._experiments(), "fake-probe", fake)
        assert main(["fake-probe", "--scale", "quick", "--seed", "7"]) == 0
        config = received["fake-probe"]
        assert config is not None
        assert config.seed == 7
        assert config.min_instructions == 400_000.0  # the quick preset

    def test_seed_changes_events_streams(self):
        # events draws randomized streams (ipm_cv > 0), so honoring
        # config.seed must change the measured numbers.
        import dataclasses

        from repro.experiments import events
        from repro.experiments.common import EvalConfig

        quick = EvalConfig.quick()
        seeded = events.run(config=quick)
        reseeded = events.run(config=dataclasses.replace(quick, seed=3))
        assert seeded.rows[0].total_ipc != reseeded.rows[0].total_ipc

    def test_scale_changes_timesharing_run_length(self):
        from repro.experiments import timesharing
        from repro.experiments.common import EvalConfig

        quick = timesharing.run(quotas=(400.0,), config=EvalConfig.quick())
        legacy = timesharing.run(quotas=(400.0,))
        # Same deterministic workload, different measured windows: the
        # config's run length must actually be applied.
        assert quick.points[0].total_ipc != legacy.points[0].total_ipc \
            or quick.enforced_ipc != legacy.enforced_ipc


class TestJsonHandling:
    """Regression: --json used to be silently dropped for 'all'."""

    @pytest.fixture()
    def fake_world(self, monkeypatch):
        import dataclasses

        @dataclasses.dataclass(frozen=True)
        class FakeResult:
            experiment_id: str
            value: float = 1.5

        def fake_run_one(experiment_id, config):
            return FakeResult(experiment_id), f"text for {experiment_id}"

        def fake_run_grid(config):
            results = {fig: FakeResult(fig) for fig in cli._GRID}
            return results, [f"text for {fig}" for fig in cli._GRID]

        monkeypatch.setattr(cli, "_run_one", fake_run_one)
        monkeypatch.setattr(cli, "_run_grid", fake_run_grid)

    def test_all_writes_combined_json(self, fake_world, tmp_path, capsys):
        target = tmp_path / "nested" / "all.json"
        assert main(["all", "--scale", "quick", "--json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["scale"] == "quick"
        assert payload["seed"] == 0
        expected = set(cli._ALL_BEFORE_GRID) | set(cli._GRID) | \
            set(cli._ALL_AFTER_GRID)
        assert set(payload["experiments"]) == expected
        assert payload["experiments"]["fig6"]["value"] == 1.5

    def test_all_output_creates_parent_dirs(self, fake_world, tmp_path, capsys):
        target = tmp_path / "deep" / "dir" / "all.txt"
        assert main(["all", "--output", str(target)]) == 0
        assert "text for table2" in target.read_text()

    def test_single_json_creates_parent_dirs(self, tmp_path, capsys):
        target = tmp_path / "a" / "b" / "fig3.json"
        assert main(["fig3", "--json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert "series" in payload


class TestRunnerFlags:
    def test_jobs_flag_installs_settings(self, monkeypatch, capsys):
        from repro.experiments import registry, runner
        from repro.experiments.registry import Experiment

        seen = {}

        def run(config=None):
            seen["settings"] = runner.current_settings()
            return ()

        fake = Experiment("fake-settings", "probe", "none",
                          run, lambda result: "rendered")
        monkeypatch.setitem(registry._experiments(), "fake-settings", fake)
        assert main(["fake-settings", "--jobs", "3",
                     "--cache-dir", "/tmp/some-cache"]) == 0
        assert seen["settings"].jobs == 3
        assert str(seen["settings"].cache_dir) == "/tmp/some-cache"
        assert runner.current_settings().jobs == 1  # restored afterwards

    def test_no_cache_disables_cache_dir(self, monkeypatch, capsys):
        from repro.experiments import registry, runner
        from repro.experiments.registry import Experiment

        seen = {}

        def run(config=None):
            seen["settings"] = runner.current_settings()
            return ()

        fake = Experiment("fake-nocache", "probe", "none",
                          run, lambda result: "rendered")
        monkeypatch.setitem(registry._experiments(), "fake-nocache", fake)
        assert main(["fake-nocache", "--cache-dir", "/tmp/x",
                     "--no-cache"]) == 0
        assert seen["settings"].cache_dir is None


class TestPolicyCli:
    BUILTINS = ("none", "fairness", "rr-timeshare", "icount",
                "lfoc-cluster", "drr-arbiter")

    def test_policies_command_lists_the_zoo(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        for name in self.BUILTINS:
            assert name in out

    def test_policies_command_writes_output_file(self, tmp_path, capsys):
        target = tmp_path / "sub" / "policies.txt"
        assert main(["policies", "--output", str(target)]) == 0
        assert "drr-arbiter" in target.read_text()

    def test_policy_flag_reaches_the_config(self, monkeypatch, capsys):
        from repro.experiments import registry
        from repro.experiments.registry import Experiment

        received = {}

        def run(config=None):
            received["config"] = config
            return ()

        fake = Experiment("fake-policy", "probe", "none",
                          run, lambda result: "rendered")
        monkeypatch.setitem(registry._experiments(), "fake-policy", fake)
        assert main(["fake-policy", "--policy", "drr-arbiter"]) == 0
        assert received["config"].policy == "drr-arbiter"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown policy"):
            main(["fig3", "--policy", "nope"])

    def test_policies_flag_only_valid_for_frontier(self):
        with pytest.raises(ConfigurationError, match="frontier"):
            main(["fig3", "--policies", "none,fairness"])

    def test_frontier_honors_the_policies_flag(self, monkeypatch, capsys):
        from repro.experiments import frontier, registry

        received = {}
        original = frontier.run

        def spy(config=None, pairs=None, policies=None):
            received["policies"] = policies
            from repro.workloads.pairs import evaluation_pairs

            return original(config, pairs=evaluation_pairs()[:1],
                            policies=policies)

        experiment = registry._experiments()["frontier"]
        monkeypatch.setitem(
            registry._experiments(), "frontier",
            registry.Experiment("frontier", experiment.title,
                                experiment.paper_reference, spy,
                                experiment.render),
        )
        assert main(["frontier", "--scale", "quick",
                     "--policies", "none,drr-arbiter"]) == 0
        assert received["policies"] == ("none", "drr-arbiter")
        out = capsys.readouterr().out
        assert "drr-arbiter" in out
