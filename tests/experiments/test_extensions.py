"""Tests for the extension experiments (events, threadcount, weighted)."""

import pytest

from repro.experiments import events, threadcount, weighted


class TestEventsExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return events.run(
            min_instructions=1_200_000, warmup_instructions=800_000
        )

    def test_three_configurations(self, result):
        labels = {r.configuration for r in result.rows}
        assert labels == {"assumed 300", "oracle", "measured"}

    def test_wrong_constant_misses_the_target(self, result):
        wrong = result.row("assumed 300")
        assert abs(wrong.achieved_fairness - result.fairness_target) > 0.1

    def test_oracle_hits_the_target(self, result):
        oracle = result.row("oracle")
        assert oracle.achieved_fairness == pytest.approx(
            result.fairness_target, abs=0.07
        )

    def test_measured_matches_oracle(self, result):
        measured = result.row("measured")
        oracle = result.row("oracle")
        assert measured.achieved_fairness == pytest.approx(
            oracle.achieved_fairness, abs=0.08
        )
        assert result.measurement_closes_the_gap

    def test_monitor_converges_to_true_mean(self, result):
        measured = result.row("measured")
        assert measured.measured_latency == pytest.approx(
            result.true_mean_latency, rel=0.25
        )

    def test_render(self, result):
        text = events.render(result)
        assert "variable-latency" in text
        assert "measured" in text


class TestThreadCountExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return threadcount.run(
            min_instructions=500_000, warmup_instructions=350_000
        )

    def test_throughput_grows_then_saturates(self, result):
        series = result.throughput_series()
        assert series[1] > series[0] * 1.1  # 3 threads beat 2
        assert max(series) == pytest.approx(series[-1], rel=0.05)

    def test_saturation_near_three(self, result):
        assert result.saturation_point() in (3, 4)

    def test_idle_vanishes_with_enough_threads(self, result):
        by_count = {row.num_threads: row for row in result.rows}
        assert by_count[2].idle_fraction > 0.1
        assert by_count[5].idle_fraction < 0.01

    def test_enforcement_works_at_every_thread_count(self, result):
        for row in result.rows:
            assert row.fairness_unenforced < 0.2
            assert row.fairness_enforced == pytest.approx(
                result.fairness_target, abs=0.1
            )

    def test_render(self, result):
        text = threadcount.render(result)
        assert "saturates" in text


class TestWeightedExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return weighted.run(
            min_instructions=1_200_000, warmup_instructions=800_000
        )

    def test_ratios_achieved(self, result):
        for row in result.rows:
            assert row.achieved_ratio == pytest.approx(
                row.target_ratio, rel=0.08
            )

    def test_weighted_fairness_is_high_everywhere(self, result):
        for row in result.rows:
            assert row.weighted_fairness > 0.9

    def test_equal_weights_recover_base_mechanism(self, result):
        base = next(r for r in result.rows if r.weights == (1.0, 1.0))
        assert base.speedups[0] == pytest.approx(base.speedups[1], rel=0.05)

    def test_upweighting_fast_thread_raises_throughput(self, result):
        by_weights = {r.weights: r for r in result.rows}
        # Thread 1 is the high-IPC_ST thread; biasing towards it wins
        # throughput (the Figure 3 improvement effect).
        assert by_weights[(4.0, 1.0)].total_ipc > by_weights[(1.0, 1.0)].total_ipc

    def test_render(self, result):
        text = weighted.render(result)
        assert "Prioritized" in text
