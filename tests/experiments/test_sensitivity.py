"""Tests for the machine-parameter sensitivity experiment."""

import pytest

from repro.experiments import sensitivity


@pytest.fixture(scope="module")
def result():
    return sensitivity.run(
        miss_latencies=(75.0, 300.0, 1_200.0),
        switch_latencies=(5.0, 25.0, 100.0),
        spot_check=(300.0,),
    )


class TestSensitivity:
    def test_unenforced_fairness_softens_with_slower_memory(self, result):
        # Eq. 5: larger L dominates both CPM terms, pushing the ratio
        # towards 1.
        series = result.series("miss_lat")
        fairness_values = [row.unenforced_fairness for row in series]
        assert fairness_values == sorted(fairness_values)

    def test_enforcement_cost_shrinks_with_slower_memory(self, result):
        series = result.series("miss_lat")
        costs = [row.f1_throughput_cost for row in series]
        assert costs == sorted(costs, reverse=True)

    def test_enforcement_cost_grows_with_switch_latency(self, result):
        series = result.series("switch_lat")
        costs = [row.f1_throughput_cost for row in series]
        assert costs == sorted(costs)
        # Roughly linear in S: 100-cycle switches cost ~>3x the paper's
        # 25-cycle switches.
        assert costs[-1] > 2.5 * costs[1]

    def test_switch_latency_does_not_change_unenforced_fairness(self, result):
        series = result.series("switch_lat")
        values = {round(row.unenforced_fairness, 6) for row in series}
        assert len(values) == 1

    def test_engine_spot_check_matches_model(self, result):
        checked = [row for row in result.rows if row.measured_cost is not None]
        assert checked
        for row in checked:
            assert row.measured_cost == pytest.approx(
                row.f1_throughput_cost, abs=0.01
            )

    def test_render(self, result):
        text = sensitivity.render(result)
        assert "sensitivity" in text.lower()
        assert "miss_lat" in text
