"""Tests for the Section 6 time-sharing comparison."""

import dataclasses

import pytest

from repro.experiments import timesharing
from repro.experiments.common import EvalConfig


@pytest.fixture(scope="module")
def result():
    return timesharing.run(min_instructions=600_000)


class TestTimeSharing:
    def test_quota_400_gives_papers_fairness(self, result):
        point = next(p for p in result.points if p.cycle_quota == 400.0)
        # Paper's worked example: achieved fairness 0.5/0.8 = 0.6.
        assert point.fairness == pytest.approx(0.6, abs=0.1)

    def test_quota_400_divides_time_equally(self, result):
        point = next(p for p in result.points if p.cycle_quota == 400.0)
        assert point.time_share[0] == pytest.approx(0.5, abs=0.05)

    def test_large_quota_gives_poor_fairness(self, result):
        largest = max(result.points, key=lambda p: p.cycle_quota)
        assert largest.fairness < 0.2

    def test_large_quota_preserves_throughput(self, result):
        largest = max(result.points, key=lambda p: p.cycle_quota)
        smallest = min(result.points, key=lambda p: p.cycle_quota)
        assert largest.total_ipc > smallest.total_ipc

    def test_enforcement_beats_timesharing_at_its_own_game(self, result):
        # The mechanism achieves near-1.0 fairness at a throughput no
        # time-sharing quota matches at comparable fairness.
        assert result.enforced_fairness > 0.9
        for point in result.points:
            if point.fairness >= 0.85:
                assert result.enforced_ipc >= point.total_ipc

    def test_fairness_costs_throughput_flag(self, result):
        assert result.fairness_costs_throughput()

    def test_render(self, result):
        text = timesharing.render(result)
        assert "time sharing" in text.lower()
        assert "enforced" in text


class TestConfigPlumbing:
    """The machine parameters must come from the EvalConfig, not
    hard-coded module constants (the workload's IPC_NO_MISS/IPM stay
    Example-2 constants on purpose)."""

    QUOTAS = (400.0,)

    def test_no_config_path_equals_default_machine_parameters(self):
        # EvalConfig's defaults are the paper's Table 3 values, so the
        # legacy no-config path and an explicit default config must
        # produce bit-identical sweep points.
        legacy = timesharing.run(quotas=self.QUOTAS, min_instructions=600_000)
        explicit = timesharing.run(
            quotas=self.QUOTAS,
            min_instructions=600_000,
            config=EvalConfig(),
        )
        assert legacy.points == explicit.points

    def test_switch_lat_reaches_the_simulation(self):
        quick = EvalConfig.quick()
        base = timesharing.run(quotas=self.QUOTAS, config=quick)
        slow = timesharing.run(
            quotas=self.QUOTAS,
            config=dataclasses.replace(quick, switch_lat=100.0),
        )
        assert slow.points[0].total_ipc < base.points[0].total_ipc

    def test_sample_period_reaches_the_enforced_run(self):
        quick = EvalConfig.quick()
        base = timesharing.run(quotas=self.QUOTAS, config=quick)
        fine = timesharing.run(
            quotas=self.QUOTAS,
            config=dataclasses.replace(quick, sample_period=40_000.0),
        )
        assert fine.enforced_ipc != base.enforced_ipc

    def test_miss_lat_reaches_the_enforced_run(self):
        quick = EvalConfig.quick()
        base = timesharing.run(quotas=self.QUOTAS, config=quick)
        fast = timesharing.run(
            quotas=self.QUOTAS,
            config=dataclasses.replace(quick, miss_lat=100.0),
        )
        assert fast.enforced_ipc != base.enforced_ipc
