"""Tests for the shared evaluation grid and Figures 6-8.

The grid runs at the quick scale here; the shape assertions are the
ones that must hold at any scale (orderings, ranges), not the absolute
paper numbers (those are checked in the benchmarks at full scale).
"""

import pytest

from repro.experiments import fig6, fig7, fig8
from repro.experiments.common import EvalConfig, run_all_pairs, run_pair
from repro.workloads.pairs import BenchmarkPair, evaluation_pairs


@pytest.fixture(scope="module")
def config():
    return EvalConfig(
        sample_period=100_000.0,
        min_instructions=500_000.0,
        warmup_instructions=250_000.0,
        st_min_instructions=400_000.0,
    )


@pytest.fixture(scope="module")
def grid(config):
    return run_all_pairs(config)


class TestPairGrid:
    def test_grid_covers_all_pairs_and_levels(self, grid, config):
        assert len(grid) == 16
        for pair_result in grid:
            assert set(pair_result.runs) == set(config.fairness_levels)
            assert len(pair_result.ipc_st) == 2

    def test_baseline_normalization_is_one(self, grid):
        for pair_result in grid:
            assert pair_result.normalized_throughput(0.0) == pytest.approx(1.0)

    def test_single_pair_runner(self, config):
        result = run_pair(BenchmarkPair("gcc", "eon"), config)
        assert result.pair.label == "gcc:eon"
        assert result.baseline.total_ipc > 0

    def test_enforcement_raises_fairness_on_unfair_pairs(self, grid):
        for pair_result in grid:
            base = pair_result.achieved_fairness(0.0)
            if base < 0.2:
                assert pair_result.achieved_fairness(1.0) > base * 2


class TestFig6:
    def test_speedup_ladder_decreases_with_f(self, grid, config):
        result = fig6.run(config, pairs=grid)
        ladder = result.speedup_ladder()
        values = [ladder[level] for level in sorted(ladder)]
        assert values == sorted(values, reverse=True)

    def test_baseline_speedup_is_positive(self, grid, config):
        result = fig6.run(config, pairs=grid)
        assert 0.1 < result.average_speedup(0.0) < 0.5

    def test_render(self, grid, config):
        text = fig6.render(fig6.run(config, pairs=grid))
        assert "gcc:eon" in text
        assert "average SOE speedup" in text


class TestFig7:
    def test_degradation_increases_with_f(self, grid, config):
        result = fig7.run(config, pairs=grid)
        degradations = [
            result.average_degradation(level) for level in result.enforced_levels
        ]
        assert degradations == sorted(degradations)

    def test_forced_switch_rate_increases_with_f(self, grid, config):
        result = fig7.run(config, pairs=grid)
        rates = [
            result.average_forced_switch_rate(level)
            for level in result.enforced_levels
        ]
        assert rates == sorted(rates)

    def test_loss_correlates_with_forced_switches(self, grid, config):
        # Paper: "high correlation between the number of forced thread
        # switches and the effect on the throughput".
        result = fig7.run(config, pairs=grid)
        assert result.degradation_correlates_with_forced_switches(1.0) > 0.5

    def test_render(self, grid, config):
        text = fig7.render(fig7.run(config, pairs=grid))
        assert "norm tput" in text


class TestFig8:
    def test_runs_ordered_by_unenforced_fairness(self, grid, config):
        result = fig8.run(config, pairs=grid)
        series = result.achieved_series(0.0)
        assert series == sorted(series)

    def test_enforcement_tracks_target_on_unfair_runs(self, grid, config):
        result = fig8.run(config, pairs=grid)
        for pair_result in result.pairs:
            if pair_result.achieved_fairness(0.0) < 0.1:
                for level in (0.25, 0.5):
                    achieved = pair_result.achieved_fairness(level)
                    assert achieved == pytest.approx(level, abs=level * 0.5)

    def test_truncated_means_are_close_to_targets(self, grid, config):
        result = fig8.run(config, pairs=grid)
        for level in (0.25, 0.5):
            summary = result.summary(level)
            assert summary.mean == pytest.approx(level, rel=0.35)

    def test_over_a_third_of_runs_unfair_without_enforcement(self, grid, config):
        result = fig8.run(config, pairs=grid)
        assert result.unfair_run_fraction(0.1) >= 1 / 3

    def test_render(self, grid, config):
        text = fig8.render(fig8.run(config, pairs=grid))
        assert "Figure 8" in text
        assert "over a third" in text
