"""Fault-tolerant grid execution: supervisor, checkpoint, injection.

The load-bearing property: a grid that is interrupted after k of n
tasks (by crashes, hangs, poisoned results, or a drain) and then
resumed is bit-identical to an uninterrupted run, at any ``--jobs``
count -- and the no-fault path is bit-identical to the pre-supervision
runner. Everything else (taxonomy, quarantine, journal format, exit
codes) is checked around that invariant.
"""

import json
import os
import time
from dataclasses import replace

import pytest

from repro import faults, telemetry
from repro.errors import (
    ConfigurationError,
    GridExecutionError,
    InvariantViolation,
    TaskTimeout,
    WorkerCrash,
    classify_failure,
)
from repro.experiments.checkpoint import (
    CheckpointWriter,
    load_checkpoint,
    task_key,
)
from repro.experiments.common import EvalConfig
from repro.experiments.runner import (
    ExecutionSettings,
    ResultCache,
    degraded_outcomes,
    parallel_map,
    reset_degraded,
    run_grid,
)
from repro.experiments.supervisor import (
    SupervisionPolicy,
    Supervisor,
    check_invariants,
)
from repro.workloads.pairs import BenchmarkPair

PAIRS = (BenchmarkPair("gcc", "gcc"), BenchmarkPair("gcc", "eon"))


@pytest.fixture(scope="module")
def config():
    """A sub-second grid: tiny windows, two fairness levels."""
    return replace(
        EvalConfig.quick(),
        fairness_levels=(0.0, 0.5),
        sample_period=20_000,
        min_instructions=60_000,
        warmup_instructions=20_000,
        st_min_instructions=60_000,
    )


@pytest.fixture(scope="module")
def clean_grid(config):
    return run_grid(config, PAIRS, ExecutionSettings(jobs=1)).results


@pytest.fixture(autouse=True)
def _clean_degraded():
    reset_degraded()
    yield
    reset_degraded()


# -- picklable task functions for supervisor-level tests --------------------


def _double(value):
    return value * 2


def _fail_on_three(value):
    if value == 3:
        raise ValueError("three is right out")
    return value


def _sleep_forever(value):
    time.sleep(3600.0)
    return value


def _return_nan(value):
    return float("nan")


class TestFailureTaxonomy:
    def test_reasons_are_pinned(self):
        assert TaskTimeout.reason == "timeout"
        assert WorkerCrash.reason == "crash"
        assert InvariantViolation.reason == "invariant"

    def test_classify_failure(self):
        assert classify_failure(TaskTimeout("t")) == "timeout"
        assert classify_failure(WorkerCrash("c")) == "crash"
        assert classify_failure(InvariantViolation("i")) == "invariant"
        assert classify_failure(ValueError("v")) == "error"


class TestCheckInvariants:
    def test_accepts_finite_structures(self, clean_grid):
        check_invariants(clean_grid[0])
        check_invariants({"a": [1.0, (2.0, "x")], "b": None})

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_rejects_nonfinite(self, bad):
        with pytest.raises(InvariantViolation):
            check_invariants({"deep": [(bad,)]})

    def test_names_the_offending_path(self):
        with pytest.raises(InvariantViolation, match=r"result\[0\]"):
            check_invariants([float("nan")])


class TestSupervisor:
    def test_results_keyed_by_caller_indices(self):
        run = Supervisor(_double, [(7, 1), (9, 2)], jobs=1).run()
        assert run.results == {7: 2, 9: 4}
        assert run.failures == [] and run.skipped == []
        assert not run.interrupted

    def test_inline_failure_keeps_original_error(self):
        run = Supervisor(_fail_on_three, [(0, 3)], jobs=1).run()
        assert len(run.failures) == 1
        failure = run.failures[0]
        assert failure.reason == "error"
        assert isinstance(failure.error, ValueError)

    def test_isolated_matches_inline(self):
        items = list(enumerate(range(6)))
        inline = Supervisor(_double, items, jobs=1).run()
        isolated = Supervisor(_double, items, jobs=3).run()
        assert inline.results == isolated.results

    def test_timeout_is_classified_and_bounded(self):
        policy = SupervisionPolicy(task_timeout=0.5, retries=1)
        run = Supervisor(_sleep_forever, [(0, "x")], jobs=1, policy=policy).run()
        assert [f.reason for f in run.failures] == ["timeout"]
        assert run.failures[0].attempts == 2
        assert run.retries == 1

    def test_nan_result_is_invariant_violation(self):
        policy = SupervisionPolicy(task_timeout=10.0, retries=0)
        run = Supervisor(_return_nan, [(0, "x")], jobs=1, policy=policy).run()
        assert [f.reason for f in run.failures] == ["invariant"]

    def test_crash_fault_is_retried_to_success(self):
        with faults.fault_injection(faults.parse_fault_plan("crash@1")):
            run = Supervisor(
                _double,
                list(enumerate(range(4))),
                jobs=2,
                policy=SupervisionPolicy(retries=2),
            ).run()
        assert run.results == {i: i * 2 for i in range(4)}
        assert run.retries == 1 and run.failures == []

    def test_drain_skips_unlaunched_tasks(self):
        supervisor = Supervisor(_double, list(enumerate(range(8))), jobs=1)
        supervisor.request_drain()
        run = supervisor.run()
        assert run.results == {}
        assert run.skipped == list(range(8))

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            SupervisionPolicy(task_timeout=0.0)
        with pytest.raises(ConfigurationError):
            SupervisionPolicy(retries=-1)


class TestParallelMapSupervision:
    def test_inline_reraises_original_exception(self):
        with pytest.raises(ValueError, match="three"):
            parallel_map(_fail_on_three, [1, 2, 3], jobs=1)

    def test_isolated_failure_raises_grid_error(self):
        with pytest.raises(GridExecutionError, match="error"):
            parallel_map(_fail_on_three, [1, 2, 3], jobs=2)

    def test_crash_fault_recovers_transparently(self):
        with faults.fault_injection(faults.parse_fault_plan("crash@2")):
            assert parallel_map(_double, [1, 2, 3], jobs=2) == [2, 4, 6]


class TestFaultPlan:
    def test_parse_grammar(self):
        plan = faults.parse_fault_plan("crash@2, hang@5*3 ,nan@7")
        assert plan.specs == (
            faults.FaultSpec("crash", 2),
            faults.FaultSpec("hang", 5, 3),
            faults.FaultSpec("nan", 7),
        )
        assert plan.active
        assert faults.parse_fault_plan(None) is faults.NO_FAULTS
        assert faults.parse_fault_plan("  ") is faults.NO_FAULTS

    @pytest.mark.parametrize(
        "spec", ["crash", "crash@x", "frobnicate@1", "crash@-1", "crash@1*0"]
    )
    def test_parse_rejects_malformed(self, spec):
        with pytest.raises(ConfigurationError):
            faults.parse_fault_plan(spec)

    def test_fires_only_on_early_attempts(self):
        plan = faults.parse_fault_plan("nan@4*2")
        assert plan.mutate_result(4, 1, 1.0) != 1.0
        assert plan.mutate_result(4, 2, 1.0) != 1.0
        assert plan.mutate_result(4, 3, 1.0) == 1.0
        assert plan.mutate_result(5, 1, 1.0) == 1.0

    def test_ambient_context_restores(self):
        plan = faults.parse_fault_plan("crash@0")
        assert faults.current_plan() is faults.NO_FAULTS
        with faults.fault_injection(plan) as active:
            assert faults.current_plan() is active is plan
        assert faults.current_plan() is faults.NO_FAULTS


class TestCheckpointJournal:
    def test_round_trip(self, tmp_path):
        journal = tmp_path / "grid.ckpt"
        with CheckpointWriter(journal, "fp", "code") as writer:
            writer.record("st", "k1", 1.25)
            writer.record("soe", "k2", {"x": (1.0, 2.0)})
        state = load_checkpoint(journal)
        assert state.fingerprint == "fp"
        assert state.tasks == {"k1": 1.25, "k2": {"x": (1.0, 2.0)}}

    def test_floats_round_trip_exactly(self, tmp_path):
        journal = tmp_path / "grid.ckpt"
        value = 0.1 + 0.2  # not representable prettily
        with CheckpointWriter(journal, "fp", "code") as writer:
            writer.record("st", "k", value)
        assert load_checkpoint(journal).tasks["k"] == value

    def test_torn_final_line_is_tolerated(self, tmp_path):
        journal = tmp_path / "grid.ckpt"
        with CheckpointWriter(journal, "fp", "code") as writer:
            writer.record("st", "k1", 1.0)
            writer.record("st", "k2", 2.0)
        data = journal.read_bytes()
        journal.write_bytes(data[:-9])  # tear the last record mid-append
        state = load_checkpoint(journal)
        assert state.tasks == {"k1": 1.0}

    def test_mid_file_corruption_raises(self, tmp_path):
        journal = tmp_path / "grid.ckpt"
        with CheckpointWriter(journal, "fp", "code") as writer:
            writer.record("st", "k1", 1.0)
            writer.record("st", "k2", 2.0)
        lines = journal.read_bytes().split(b"\n")
        lines[1] = lines[1][:-4] + b"XXXX"
        journal.write_bytes(b"\n".join(lines))
        with pytest.raises(ConfigurationError, match="corrupt checkpoint"):
            load_checkpoint(journal)

    def test_missing_header_raises(self, tmp_path):
        journal = tmp_path / "grid.ckpt"
        journal.write_text('{"v": 1, "kind": "task", "key": "k", "data": ""}\n')
        with pytest.raises(ConfigurationError, match="header"):
            load_checkpoint(journal)

    def test_reopen_requires_matching_fingerprint(self, tmp_path):
        journal = tmp_path / "grid.ckpt"
        CheckpointWriter(journal, "fp-a", "code").close()
        CheckpointWriter(journal, "fp-a", "code").close()  # same fp appends
        with pytest.raises(ConfigurationError, match="different"):
            CheckpointWriter(journal, "fp-b", "code")

    def test_task_key_separates_code_versions(self):
        assert task_key("spec", "v1") != task_key("spec", "v2")
        assert task_key("spec", "v1") == task_key("spec", "v1")


def _grid(config, pairs, **kwargs):
    return run_grid(config, pairs, ExecutionSettings(**kwargs))


class TestGridFaultRecovery:
    """Interrupted-then-resumed == uninterrupted, for every fault kind."""

    def test_checkpointed_clean_run_is_bit_identical(
        self, config, clean_grid, tmp_path
    ):
        journal = tmp_path / "grid.ckpt"
        outcome = _grid(config, PAIRS, jobs=2, checkpoint=journal)
        assert outcome.ok and outcome.results == clean_grid
        assert journal.exists()
        # A resume of a complete journal recomputes nothing.
        rerun = _grid(config, PAIRS, jobs=2, checkpoint=journal, resume=True)
        assert rerun.results == clean_grid
        assert rerun.resumed_tasks > 0 and rerun.retries == 0

    @pytest.mark.parametrize("jobs", [1, 3])
    @pytest.mark.parametrize(
        "spec,kwargs",
        [
            ("crash@0*9", {}),
            ("hang@0*9", {"task_timeout": 1.0}),
            ("nan@0*9", {}),
        ],
    )
    def test_faulted_grid_resumes_bit_identical(
        self, config, clean_grid, tmp_path, jobs, spec, kwargs
    ):
        journal = tmp_path / "grid.ckpt"
        with faults.fault_injection(faults.parse_fault_plan(spec)):
            degraded = _grid(
                config,
                PAIRS,
                jobs=jobs,
                retries=0,
                on_failure="degrade",
                checkpoint=journal,
                **kwargs,
            )
        assert not degraded.ok
        reason = {"crash": "crash", "hang": "timeout", "nan": "invariant"}[
            spec.split("@")[0]
        ]
        assert [f.reason for f in degraded.failures] == [reason]
        assert degraded.incomplete_pairs  # index 0 is a shared ST task
        # Resume without faults: exactly the missing work runs, and the
        # assembled grid equals the uninterrupted one, bit for bit.
        resumed = _grid(
            config, PAIRS, jobs=jobs, checkpoint=journal, resume=True
        )
        assert resumed.ok
        assert resumed.results == clean_grid
        assert resumed.resumed_tasks > 0

    def test_retry_budget_recovers_in_one_run(self, config, clean_grid):
        with faults.fault_injection(faults.parse_fault_plan("crash@0")):
            outcome = _grid(config, PAIRS, jobs=2, retries=2)
        assert outcome.ok
        assert outcome.results == clean_grid
        assert outcome.retries == 1

    def test_abort_mode_raises_with_partial_outcome(self, config, tmp_path):
        with faults.fault_injection(faults.parse_fault_plan("crash@0*9")):
            with pytest.raises(GridExecutionError) as excinfo:
                _grid(config, PAIRS, jobs=2, retries=0, on_failure="abort")
        outcome = excinfo.value.outcome
        assert outcome is not None and not outcome.ok
        manifest = outcome.failure_manifest()
        assert manifest["failures"][0]["reason"] == "crash"
        assert degraded_outcomes()  # tracked for the CLI exit code

    def test_degraded_outcomes_tracking(self, config):
        assert degraded_outcomes() == []
        with faults.fault_injection(faults.parse_fault_plan("crash@0*9")):
            _grid(config, PAIRS, jobs=2, retries=0, on_failure="degrade")
        assert len(degraded_outcomes()) == 1
        reset_degraded()
        assert degraded_outcomes() == []

    def test_resume_rejects_foreign_fingerprint(
        self, config, tmp_path, clean_grid
    ):
        journal = tmp_path / "grid.ckpt"
        _grid(config, PAIRS, jobs=1, checkpoint=journal)
        other = replace(config, seed=config.seed + 1)
        with pytest.raises(ConfigurationError, match="refus"):
            _grid(other, PAIRS, jobs=1, checkpoint=journal, resume=True)

    def test_settings_validation(self):
        with pytest.raises(ConfigurationError):
            ExecutionSettings(on_failure="explode")
        with pytest.raises(ConfigurationError):
            ExecutionSettings(resume=True)
        with pytest.raises(ConfigurationError):
            ExecutionSettings(task_timeout=-1.0)
        with pytest.raises(ConfigurationError):
            ExecutionSettings(retries=-1)


class TestCacheQuarantine:
    def test_corrupt_entry_is_quarantined_not_deleted(
        self, config, clean_grid, tmp_path
    ):
        cache = ResultCache(tmp_path)
        cache.store(PAIRS[0], config, clean_grid[0])
        path = cache.path(PAIRS[0], config)
        path.write_bytes(b"garbage bytes")
        sink = telemetry.RingBufferSink()
        with telemetry.tracing(sink):
            assert cache.load(PAIRS[0], config) is None
        quarantined = path.with_name(path.name + ".quarantine")
        assert quarantined.exists()
        assert quarantined.read_bytes() == b"garbage bytes"
        assert not path.exists()
        assert cache.quarantined == [quarantined]
        corrupt = [e for e in sink.events if e.get("event") == "cache"
                   and e.get("outcome") == "corrupt"]
        assert len(corrupt) == 1

    def test_missing_entry_is_silent_miss(self, config, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.load(PAIRS[0], config) is None
        assert cache.quarantined == []

    def test_corrupt_fault_exercises_quarantine_end_to_end(
        self, config, clean_grid, tmp_path
    ):
        with faults.fault_injection(faults.parse_fault_plan("corrupt@0")):
            first = _grid(config, PAIRS, jobs=1, cache_dir=tmp_path)
        assert first.ok and first.results == clean_grid
        # The stored entry for pair 0 was corrupted after the store;
        # the next run quarantines it, recomputes, and still matches.
        second = _grid(config, PAIRS, jobs=1, cache_dir=tmp_path)
        assert second.results == clean_grid
        assert second.stats.corrupt == 1
        assert second.stats.hits == 1 and second.stats.misses == 1
        third = _grid(config, PAIRS, jobs=1, cache_dir=tmp_path)
        assert third.stats.hits == 2 and third.stats.corrupt == 0

    def test_stale_tmp_files_are_swept(self, config, tmp_path):
        stale = tmp_path / "leftover-123.tmp"
        stale.write_bytes(b"partial write")
        old = time.time() - 7200.0
        os.utime(stale, (old, old))
        fresh = tmp_path / "inflight-456.tmp"
        fresh.write_bytes(b"being written right now")
        cache = ResultCache(tmp_path)
        assert not stale.exists()
        assert fresh.exists()  # within the grace window: left alone
        assert cache.swept == [stale]

    def test_store_leaves_no_tmp_behind(self, config, clean_grid, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(PAIRS[0], config, clean_grid[0])
        assert list(tmp_path.glob("*.tmp")) == []
        assert cache.load(PAIRS[0], config) == clean_grid[0]


class TestRobustnessTelemetry:
    def test_retry_and_failure_events_are_emitted(self, config):
        sink = telemetry.RingBufferSink()
        with telemetry.tracing(sink):
            with faults.fault_injection(faults.parse_fault_plan("crash@0*9")):
                _grid(config, PAIRS, jobs=2, retries=1, on_failure="degrade")
        names = [event["event"] for event in sink.events]
        assert "task_retry" in names and "task_failed" in names
        retry = next(e for e in sink.events if e["event"] == "task_retry")
        assert retry["reason"] == "crash" and retry["attempt"] == 2

    def test_checkpoint_events_are_emitted(self, config, tmp_path):
        journal = tmp_path / "grid.ckpt"
        sink = telemetry.RingBufferSink()
        with telemetry.tracing(sink):
            _grid(config, PAIRS, jobs=1, checkpoint=journal)
        writes = [e for e in sink.events if e["event"] == "checkpoint"
                  and e["action"] == "write"]
        assert writes and all(e["tasks"] == 1 for e in writes)
        sink = telemetry.RingBufferSink()
        with telemetry.tracing(sink):
            _grid(config, PAIRS, jobs=1, checkpoint=journal, resume=True)
        resumes = [e for e in sink.events if e["event"] == "checkpoint"
                   and e["action"] == "resume"]
        assert len(resumes) == 1 and resumes[0]["tasks"] == len(writes)

    def test_traced_faulted_grid_is_bit_identical(
        self, config, clean_grid
    ):
        sink = telemetry.RingBufferSink()
        with telemetry.tracing(sink):
            with faults.fault_injection(faults.parse_fault_plan("crash@1")):
                outcome = _grid(config, PAIRS, jobs=2, retries=2)
        assert outcome.results == clean_grid

    def test_summary_aggregates_robustness_events(self, tmp_path):
        from repro.telemetry.events import (
            cache_event,
            checkpoint_event,
            task_failed,
            task_retry,
        )
        from repro.telemetry.summary import render_summary, summarize_trace

        trace = tmp_path / "t.jsonl"
        events = [
            task_retry("soe_pair", "a@F0.5", 2, "timeout"),
            task_retry("soe_pair", "a@F0.5", 3, "crash"),
            task_failed("soe_pair", "a@F0.5", 3, "crash"),
            cache_event("corrupt", "a"),
            cache_event("sweep", "x.tmp"),
            checkpoint_event("write", 1, "grid.ckpt"),
            checkpoint_event("write", 1, "grid.ckpt"),
            checkpoint_event("resume", 2, "grid.ckpt"),
        ]
        trace.write_text(
            "".join(json.dumps(event) + "\n" for event in events)
        )
        summary = summarize_trace(trace)
        assert summary.task_retries == {"timeout": 1, "crash": 1}
        assert summary.task_failures == {"crash": 1}
        assert summary.cache_corrupt == 1 and summary.cache_swept == 1
        assert summary.checkpoint_writes == 2
        assert summary.checkpoint_resumed == 2
        text = render_summary(summary)
        assert "Robustness:" in text
        assert "checkpoint: 2 tasks journaled / 2 resumed" in text


class TestFaultCli:
    @pytest.fixture()
    def fake_grid_experiment(self, monkeypatch, config):
        from repro.experiments import registry
        from repro.experiments.registry import Experiment

        grid_config = config

        def run(config=None, **kwargs):
            del config, kwargs  # the tiny fixture grid, whatever the CLI says
            return run_grid(grid_config, PAIRS)

        fake = Experiment(
            "fake-grid", "tiny grid", "none", run, lambda result: "rendered"
        )
        monkeypatch.setitem(registry._experiments(), "fake-grid", fake)
        return "fake-grid"

    def test_clean_run_exits_zero(self, fake_grid_experiment, capsys):
        from repro.cli import main

        assert main([fake_grid_experiment]) == 0
        assert "rendered" in capsys.readouterr().out

    def test_abort_exits_two(self, fake_grid_experiment, capsys):
        from repro.cli import main

        code = main(
            [fake_grid_experiment, "--retries", "0",
             "--inject-faults", "crash@0*9"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "crash" in err

    def test_degrade_exits_three_and_writes_manifest(
        self, fake_grid_experiment, tmp_path, capsys
    ):
        from repro.cli import main

        journal = tmp_path / "grid.ckpt"
        code = main(
            [fake_grid_experiment, "--retries", "0",
             "--on-failure", "degrade",
             "--checkpoint", str(journal),
             "--inject-faults", "crash@0*9"]
        )
        assert code == 3
        manifest_path = tmp_path / "grid.ckpt.manifest.json"
        assert manifest_path.exists()
        manifest = json.loads(manifest_path.read_text())
        assert manifest["failures"][0]["reason"] == "crash"
        assert not manifest["ok"]
        # ...and --resume completes the grid with exit 0.
        capsys.readouterr()
        assert main([fake_grid_experiment, "--resume", str(journal)]) == 0

    def test_conflicting_checkpoint_and_resume_rejected(
        self, fake_grid_experiment
    ):
        from repro.cli import main

        with pytest.raises(ConfigurationError, match="different journals"):
            main([fake_grid_experiment, "--checkpoint", "a", "--resume", "b"])

    def test_malformed_fault_spec_rejected(self, fake_grid_experiment):
        from repro.cli import main

        with pytest.raises(ConfigurationError, match="malformed fault"):
            main([fake_grid_experiment, "--inject-faults", "bogus"])
