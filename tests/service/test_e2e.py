"""End-to-end service tests: real processes, real sockets, real kills.

The durability satellite lives here: a service SIGKILLed mid-campaign
and restarted on the same journal serves every finished job
bit-identically and resumes every unfinished one; a SIGTERM drains
cleanly with exit code 0.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.service.client import ServiceClient
from repro.service.state import journal_note

_SRC = str(Path(repro.__file__).resolve().parents[1])

#: Sub-second job all e2e tests use for "fast" work.
_TINY = {
    "sample_period": 20_000,
    "min_instructions": 60_000,
    "warmup_instructions": 20_000,
    "st_min_instructions": 60_000,
    "fairness_levels": [0.0],
}

#: A multi-second job: guaranteed to still be running/queued when the
#: test kills the service moments after submission.
_SLOW = {
    "min_instructions": 30_000_000,
    "warmup_instructions": 500_000,
    "st_min_instructions": 3_000_000,
    "fairness_levels": [0.0, 0.5],
}

_STARTUP_S = 30.0
_FINISH_S = 120.0


def _spec(tenant, pair, config):
    return {"tenant": tenant, "pair": pair, "scale": "quick",
            "config": dict(config)}


class _Serve:
    """One ``python -m repro serve`` subprocess bound to port 0."""

    def __init__(self, tmp_path: Path, *extra: str) -> None:
        self.port_file = tmp_path / "port.txt"
        if self.port_file.exists():
            self.port_file.unlink()
        self.journal = tmp_path / "jobs.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC
        self.process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0",
                "--port-file", str(self.port_file),
                "--journal", str(self.journal),
                "--cache-dir", str(tmp_path / "cache"),
                "--jobs", "1",
                *extra,
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        deadline = time.monotonic() + _STARTUP_S
        while time.monotonic() < deadline:
            if self.port_file.exists() and self.port_file.read_text().strip():
                break
            if self.process.poll() is not None:
                raise AssertionError(
                    "serve exited during startup:\n"
                    + (self.process.stdout.read() or "")
                )
            time.sleep(0.05)
        else:
            self.process.kill()
            raise AssertionError("serve never wrote its port file")
        port = int(self.port_file.read_text().strip())
        self.client = ServiceClient(f"http://127.0.0.1:{port}", timeout=30.0)

    def await_terminal(self, jid, timeout=_FINISH_S):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, body = self.client.status(jid)
            assert status == 200, body
            if body["terminal"]:
                return body
            time.sleep(0.1)
        raise AssertionError(f"job {jid} never finished")

    def sigterm_and_wait(self, timeout=_FINISH_S):
        self.process.send_signal(signal.SIGTERM)
        output, _ = self.process.communicate(timeout=timeout)
        return self.process.returncode, output

    def sigkill(self):
        # wait(), not communicate(): orphaned pool workers inherit the
        # stdout pipe and would keep communicate() blocked past the kill.
        self.process.kill()
        self.process.wait(timeout=30)
        self.process.stdout.close()

    def cleanup(self):
        if self.process.poll() is None:
            self.process.kill()
            self.process.wait(timeout=30)
        if not self.process.stdout.closed:
            self.process.stdout.close()


@pytest.fixture
def serve_factory(tmp_path):
    started = []

    def start(*extra):
        server = _Serve(tmp_path, *extra)
        started.append(server)
        return server

    yield start
    for server in started:
        server.cleanup()


class TestDrain:
    def test_sigterm_finishes_in_flight_work_and_exits_zero(
        self, serve_factory
    ):
        server = serve_factory()
        status, body = server.client.submit(_spec("acme", "gcc:eon", _TINY))
        assert status == 202, body
        jid = body["job"]
        final = server.await_terminal(jid)
        assert final["state"] == "completed"

        code, output = server.sigterm_and_wait()
        assert code == 0, output
        assert "drained cleanly" in output
        # The journal closes with a drain marker and an empty backlog.
        note = journal_note(server.journal, "drain")
        assert note is not None
        assert note["backlog"] == 0

    def test_readiness_and_health_endpoints(self, serve_factory):
        server = serve_factory()
        assert server.client.health() == (200, {"status": "ok"})
        status, body = server.client.ready()
        assert status == 200
        assert body["status"] == "ready"


class TestKillRestartDurability:
    def test_restart_serves_finished_jobs_and_resumes_the_rest(
        self, serve_factory
    ):
        server = serve_factory()
        # Job 1: fast -- finishes before the kill.
        status, body = server.client.submit(_spec("acme", "gcc:eon", _TINY))
        assert status == 202, body
        fast = body["job"]
        server.await_terminal(fast)
        _code, before = server.client.result(fast)
        # Jobs 2+3: multi-second -- mid-flight when the kill lands.
        slow = []
        for pair in ("gcc:gcc", "eon:eon"):
            status, body = server.client.submit(
                _spec("acme", pair, _SLOW)
            )
            assert status == 202, body
            slow.append(body["job"])
        server.sigkill()

        restarted = serve_factory()
        # The finished job is served from the journal, bit-identically.
        status, body = restarted.client.status(fast)
        assert status == 200
        assert body["state"] == "completed"
        assert body["detail"] == "journal"
        _code, after = restarted.client.result(fast)
        assert json.dumps(before, sort_keys=True) == json.dumps(
            after, sort_keys=True
        )
        # The unfinished jobs were resumed and complete on their own.
        for jid in slow:
            final = restarted.await_terminal(jid)
            assert final["state"] in ("completed", "cached"), final
        _status, stats = restarted.client.stats()
        assert stats["resumed_jobs"] == 2

        code, output = restarted.sigterm_and_wait()
        assert code == 0, output


class TestCliClients:
    def _run(self, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            env=env, capture_output=True, text=True, timeout=_FINISH_S,
        )

    def test_submit_status_watch_round_trip(self, serve_factory):
        server = serve_factory()
        url = f"http://127.0.0.1:{server.client.port}"
        submitted = self._run(
            "submit", "--url", url, "--tenant", "cli", "--pair", "gcc:eon",
            "--levels", "0,0.5", "--wait",
        )
        assert submitted.returncode == 0, submitted.stdout + submitted.stderr
        # --wait streams compact one-line status updates after the
        # (indented) submission echo; any of them carries the job id.
        jid = None
        for line in submitted.stdout.splitlines():
            try:
                entry = json.loads(line)
            except ValueError:
                continue
            if isinstance(entry, dict) and "job" in entry:
                jid = entry["job"]
        assert jid is not None, submitted.stdout

        watched = self._run("watch", "--url", url, jid)
        assert watched.returncode == 0, watched.stdout + watched.stderr
        last = json.loads(watched.stdout.splitlines()[-1])
        assert last["state"] in ("completed", "cached")

        status = self._run("status", "--url", url, jid, "--result")
        assert status.returncode == 0
        assert "runs" in json.loads(status.stdout)["result"]

        stats = self._run("status", "--url", url)
        assert stats.returncode == 0
        assert "backlog" in json.loads(stats.stdout)


class TestStallChaos:
    def test_stalled_requests_are_slow_but_served(self, serve_factory):
        server = serve_factory("--inject-faults", "stall@0*2")
        t0 = time.monotonic()
        assert server.client.health()[0] == 200  # request 0: stalled
        assert server.client.health()[0] == 200  # request 1: stalled
        stalled = time.monotonic() - t0
        t0 = time.monotonic()
        assert server.client.health()[0] == 200  # request 2: clean
        clean = time.monotonic() - t0
        assert stalled >= 0.4  # two 0.2 s injected stalls
        assert clean < 0.4
