"""Job spec parsing, validation, and content-addressed identity."""

from dataclasses import replace

import pytest

from repro.errors import ConfigurationError
from repro.experiments.common import EvalConfig
from repro.service.jobs import JOB_STATES, Job, JobSpec, job_id, parse_job_spec
from repro.workloads.pairs import BenchmarkPair


def _spec(**overrides):
    payload = {"tenant": "acme", "pair": "gcc:eon", "scale": "quick"}
    payload.update(overrides)
    return parse_job_spec(payload)


class TestParseJobSpec:
    def test_minimal_spec_defaults_to_quick_scale(self):
        spec = _spec()
        assert spec.tenant == "acme"
        assert spec.pair == BenchmarkPair("gcc", "eon")
        assert spec.config == EvalConfig.quick()
        assert spec.deadline_s is None

    def test_scale_selects_the_base_config(self):
        assert _spec(scale="default").config == EvalConfig()
        assert _spec(scale="paper").config == EvalConfig.paper_scale()

    def test_config_overrides_apply_on_top_of_the_scale(self):
        spec = _spec(config={"fairness_levels": [0, 0.5], "miss_lat": 200})
        assert spec.config.fairness_levels == (0.0, 0.5)
        assert spec.config.miss_lat == 200
        # Untouched fields keep the quick-scale values.
        assert spec.config.sample_period == EvalConfig.quick().sample_period

    def test_policy_params_object_becomes_sorted_tuple(self):
        spec = _spec(
            config={
                "policy": "rr-timeshare",
                "policy_params": {"cycle_quota": 500},
            }
        )
        assert spec.config.policy == "rr-timeshare"
        assert spec.config.policy_params == (("cycle_quota", 500.0),)

    def test_deadline_is_coerced_to_float(self):
        assert _spec(deadline_s=30).deadline_s == 30.0

    @pytest.mark.parametrize(
        "payload",
        [
            "not an object",
            {"pair": "gcc:eon"},  # missing tenant
            {"tenant": "acme"},  # missing pair
            {"tenant": "acme", "pair": "gcc:eon", "bogus": 1},
            {"tenant": "", "pair": "gcc:eon"},
            {"tenant": "bad tenant!", "pair": "gcc:eon"},
            {"tenant": "a" * 65, "pair": "gcc:eon"},
            {"tenant": "acme", "pair": "gcc"},  # no colon
            {"tenant": "acme", "pair": "gcc:nosuchbench"},
            {"tenant": "acme", "pair": "gcc:eon", "scale": "huge"},
            {"tenant": "acme", "pair": "gcc:eon", "config": "xl"},
            {"tenant": "acme", "pair": "gcc:eon", "config": {"bogus": 1}},
            {"tenant": "acme", "pair": "gcc:eon",
             "config": {"fairness_levels": "0,0.5"}},
            {"tenant": "acme", "pair": "gcc:eon", "deadline_s": 0},
            {"tenant": "acme", "pair": "gcc:eon", "deadline_s": -1},
            {"tenant": "acme", "pair": "gcc:eon", "deadline_s": "soon"},
        ],
    )
    def test_malformed_specs_raise_configuration_error(self, payload):
        with pytest.raises(ConfigurationError):
            parse_job_spec(payload)

    def test_to_json_round_trips_through_the_parser(self):
        spec = _spec(
            config={"fairness_levels": [0, 0.5],
                    "policy": "drr-arbiter",
                    "policy_params": {"quantum": 640}},
            deadline_s=12.5,
        )
        assert parse_job_spec(spec.to_json()) == spec


class TestJobId:
    def test_identical_specs_share_an_id(self):
        assert job_id(_spec(), "v1") == job_id(_spec(), "v1")

    def test_id_is_tenant_scoped(self):
        assert job_id(_spec(), "v1") != job_id(_spec(tenant="rival"), "v1")

    def test_id_depends_on_config_and_code_version(self):
        base = job_id(_spec(), "v1")
        assert base != job_id(_spec(config={"miss_lat": 200}), "v1")
        assert base != job_id(_spec(), "v2")

    def test_id_is_a_short_hex_string(self):
        jid = job_id(_spec(), "v1")
        assert len(jid) == 16
        int(jid, 16)  # must be hex


class TestJob:
    def test_unknown_state_is_rejected(self):
        with pytest.raises(ConfigurationError):
            Job(id="x", spec=_spec(), state="running")

    def test_terminal_states(self):
        terminal = {"completed", "failed", "cached", "expired", "rejected"}
        for state in JOB_STATES:
            job = Job(id="x", spec=_spec(), state=state)
            assert job.terminal == (state in terminal)

    def test_to_json_is_a_status_view_without_the_result(self):
        job = Job(id="abc", spec=_spec(), state="completed",
                  attempts=2, result=object())
        view = job.to_json()
        assert view == {
            "job": "abc",
            "tenant": "acme",
            "pair": "gcc:eon",
            "state": "completed",
            "detail": None,
            "attempts": 2,
            "terminal": True,
        }


class TestJobSpecValidation:
    def test_direct_construction_validates_benchmarks(self):
        with pytest.raises(ConfigurationError):
            JobSpec(
                tenant="acme",
                pair=BenchmarkPair("gcc", "nosuchbench"),
                config=EvalConfig.quick(),
            )

    def test_replacing_with_bad_deadline_revalidates(self):
        spec = _spec()
        with pytest.raises(ConfigurationError):
            replace(spec, deadline_s=-5.0)
