"""Journal durability: round-trips, torn writes, and the jtear chaos."""

import pickle

import pytest

from repro import faults
from repro.errors import ConfigurationError
from repro.experiments.checkpoint import CheckpointWriter
from repro.service.state import (
    JOURNAL_FINGERPRINT,
    JobJournal,
    journal_note,
    load_job_records,
)


@pytest.fixture
def path(tmp_path):
    return tmp_path / "jobs.jsonl"


class TestRoundTrip:
    def test_missing_journal_is_a_fresh_service(self, path):
        assert load_job_records(path) == ({}, {}, {})

    def test_spec_done_fail_records_fold_by_job_id(self, path):
        with JobJournal(path) as journal:
            journal.record_spec("aaa", {"tenant": "t", "pair": "gcc:eon"})
            journal.record_spec("bbb", {"tenant": "t", "pair": "gcc:gcc"})
            journal.record_done("aaa", {"ipc": 1.25})
            journal.record_fail("bbb", {"state": "failed", "attempts": 3})
        specs, results, failures = load_job_records(path)
        assert set(specs) == {"aaa", "bbb"}
        assert results == {"aaa": {"ipc": 1.25}}
        assert failures == {"bbb": {"state": "failed", "attempts": 3}}

    def test_result_payloads_round_trip_bit_identically(self, path):
        payload = ("nested", (1.5, float("inf")), {"deep": [1, 2, 3]})
        with JobJournal(path) as journal:
            journal.record_done("aaa", payload)
        _specs, results, _failures = load_job_records(path)
        assert pickle.dumps(results["aaa"]) == pickle.dumps(payload)

    def test_rewritten_record_latest_wins(self, path):
        with JobJournal(path) as journal:
            journal.record_done("aaa", {"v": 1})
            journal.record_done("aaa", {"v": 2})
        _specs, results, _failures = load_job_records(path)
        assert results["aaa"] == {"v": 2}

    def test_notes_survive_and_latest_is_found(self, path):
        with JobJournal(path) as journal:
            journal.note({"what": "drain", "backlog": 3})
            journal.note({"what": "drain", "backlog": 0})
        note = journal_note(path, "drain")
        assert note == {"what": "drain", "backlog": 0}
        assert journal_note(path, "boot") is None
        assert journal_note(path.with_name("nothere.jsonl"), "drain") is None

    def test_closed_journal_refuses_appends(self, path):
        journal = JobJournal(path)
        journal.close()
        with pytest.raises(ConfigurationError):
            journal.record_spec("aaa", {})


class TestCorruption:
    def test_foreign_fingerprint_is_refused(self, path):
        with CheckpointWriter(path, "some-grid-fingerprint",
                              code_version="x"):
            pass
        with pytest.raises(ConfigurationError, match="fingerprint"):
            load_job_records(path)

    def test_unrecognized_record_key_is_refused(self, path):
        with JobJournal(path) as journal:
            journal._append(
                CheckpointWriter._task_line("job", "bogus-key-no-prefix", {})
            )
        with pytest.raises(ConfigurationError, match="unrecognized"):
            load_job_records(path)

    def test_torn_final_line_is_tolerated(self, path):
        """A crash mid-append must explain itself: everything before
        the torn tail loads; the tail is dropped."""
        with JobJournal(path) as journal:
            journal.record_spec("aaa", {"tenant": "t"})
            journal.record_done("aaa", {"ok": True})
        data = path.read_bytes()
        path.write_bytes(data[:-7])  # tear the last record mid-line
        specs, results, _failures = load_job_records(path)
        assert set(specs) == {"aaa"}
        assert results == {}


class TestJtearChaos:
    def _plan(self, index, count=1):
        return faults.FaultPlan(
            specs=(faults.FaultSpec(kind="jtear", index=index, count=count),)
        )

    def test_covered_writes_are_torn_then_repaired(self, path):
        with faults.fault_injection(self._plan(index=0, count=2)):
            with JobJournal(path) as journal:
                journal.record_spec("aaa", {"tenant": "t"})
                journal.record_done("aaa", {"ok": True})
                journal.record_done("bbb", {"ok": False})
                assert journal.repaired == 2
        # Despite two injected tears, the journal reads back whole.
        specs, results, _failures = load_job_records(path)
        assert set(specs) == {"aaa"}
        assert set(results) == {"aaa", "bbb"}

    def test_tear_indices_count_journal_appends(self, path):
        with faults.fault_injection(self._plan(index=1)):
            with JobJournal(path) as journal:
                journal.record_spec("aaa", {})  # write 0: untouched
                journal.record_done("aaa", {})  # write 1: torn+repaired
                journal.record_done("bbb", {})  # write 2: untouched
                assert journal.repaired == 1

    def test_repair_leaves_no_partial_bytes_behind(self, path):
        """After verify-and-repair every line in the file is complete
        JSON -- the torn prefix was truncated away, not buried."""
        with faults.fault_injection(self._plan(index=0, count=3)):
            with JobJournal(path) as journal:
                journal.record_spec("aaa", {"tenant": "t"})
                journal.record_done("aaa", {"deep": {"x": [1, 2]}})
        import json

        for line in path.read_text().splitlines():
            json.loads(line)

    def test_no_plan_means_no_tears(self, path):
        with JobJournal(path) as journal:
            journal.record_spec("aaa", {})
            assert journal.repaired == 0
