"""DRR fairness and bounded admission at the scheduler level."""

import itertools

import pytest

from repro.errors import ConfigurationError
from repro.service.jobs import Job, parse_job_spec
from repro.service.queueing import DrrScheduler


def _job(tenant, tag):
    spec = parse_job_spec(
        {"tenant": tenant, "pair": "gcc:eon", "scale": "quick"}
    )
    return Job(id=f"{tenant}-{tag}", spec=spec)


def _fill(scheduler, tenant, count):
    jobs = [_job(tenant, i) for i in range(count)]
    for job in jobs:
        assert scheduler.offer(job).accepted
    return jobs


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [{"depth": 0}, {"quantum": 0.0}, {"cost": -1.0}],
    )
    def test_bad_parameters_are_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            DrrScheduler(**kwargs)


class TestAdmission:
    def test_accepts_until_depth_then_rejects_with_retry_hint(self):
        scheduler = DrrScheduler(depth=2, retry_after_base_s=0.5)
        _fill(scheduler, "a", 2)
        verdict = scheduler.offer(_job("a", "overflow"))
        assert verdict.accepted is False
        assert verdict.depth == 2
        assert verdict.retry_after_s == pytest.approx(1.0)
        # The rejected job was not buffered anywhere.
        assert scheduler.tenant_depth("a") == 2

    def test_tenant_queues_are_isolated(self):
        scheduler = DrrScheduler(depth=1)
        _fill(scheduler, "a", 1)
        # Tenant a is full; tenant b still has room.
        assert scheduler.offer(_job("a", "x")).accepted is False
        assert scheduler.offer(_job("b", "x")).accepted is True

    def test_accepted_admission_reports_depth_and_deficit(self):
        scheduler = DrrScheduler(depth=4)
        verdict = scheduler.offer(_job("a", 0))
        assert verdict.accepted and verdict.depth == 1
        assert verdict.deficit == 0.0
        assert verdict.retry_after_s is None

    def test_remove_drops_a_queued_job_once(self):
        scheduler = DrrScheduler()
        (job,) = _fill(scheduler, "a", 1)
        assert scheduler.remove(job) is True
        assert scheduler.remove(job) is False
        assert scheduler.backlog == 0

    def test_remove_unknown_tenant_is_false(self):
        scheduler = DrrScheduler()
        assert scheduler.remove(_job("ghost", 0)) is False


class TestScheduling:
    def test_empty_scheduler_yields_nothing(self):
        assert DrrScheduler().next_job() is None

    def test_single_tenant_is_fifo(self):
        scheduler = DrrScheduler()
        jobs = _fill(scheduler, "a", 3)
        order = [scheduler.next_job() for _ in range(3)]
        assert order == jobs
        assert scheduler.next_job() is None

    def test_backlogged_tenants_alternate(self):
        scheduler = DrrScheduler()
        _fill(scheduler, "a", 3)
        _fill(scheduler, "b", 3)
        tenants = [scheduler.next_job().spec.tenant for _ in range(6)]
        assert tenants == ["a", "b", "a", "b", "a", "b"]

    def test_fairness_bound_holds_at_every_prefix(self):
        """Continuously backlogged tenants never drift apart by > 1
        dispatch -- the service-level analogue of the paper's Eq. 9
        deficit bound."""
        scheduler = DrrScheduler()
        for tenant in ("a", "b", "c"):
            _fill(scheduler, tenant, 8)
        counts = {"a": 0, "b": 0, "c": 0}
        for _ in range(24):
            job = scheduler.next_job()
            counts[job.spec.tenant] += 1
            spread = max(counts.values()) - min(counts.values())
            assert spread <= 1, f"unfair prefix: {counts}"

    def test_late_tenant_is_not_starved(self):
        scheduler = DrrScheduler()
        _fill(scheduler, "early", 10)
        assert scheduler.next_job().spec.tenant == "early"
        _fill(scheduler, "late", 5)
        # From here on the two tenants alternate.
        tenants = [scheduler.next_job().spec.tenant for _ in range(6)]
        assert tenants.count("late") == 3

    def test_idle_tenant_deficit_resets(self):
        """A tenant whose queue drains cannot hoard credit and then
        monopolize the pool when it returns."""
        scheduler = DrrScheduler()
        _fill(scheduler, "a", 1)
        scheduler.next_job()
        # Several rotations pass while tenant a is idle.
        _fill(scheduler, "b", 3)
        for _ in range(3):
            scheduler.next_job()
        assert scheduler.tenant_deficit("a") == 0.0
        # When a returns with a burst, b's fresh jobs still interleave.
        _fill(scheduler, "a", 3)
        _fill(scheduler, "b", 3)
        tenants = [scheduler.next_job().spec.tenant for _ in range(6)]
        assert sorted(tenants[:2]) == ["a", "b"]
        assert tenants.count("a") == 3

    def test_fractional_quantum_carries_deficit_forward(self):
        """quantum < cost means a lane must accumulate credit over
        visits -- the textbook DRR carry behavior."""
        scheduler = DrrScheduler(quantum=0.5, cost=1.0)
        _fill(scheduler, "a", 2)
        # Visit 1: deficit 0.5, not enough to pay.
        assert scheduler.next_job() is None
        # Visit 2: deficit 1.0, pays for one job.
        job = scheduler.next_job()
        assert job is not None
        assert scheduler.tenant_deficit("a") == pytest.approx(0.0)

    def test_rotation_order_is_first_seen_and_stable(self):
        scheduler = DrrScheduler()
        for tenant in ("c", "a", "b"):
            _fill(scheduler, tenant, 2)
        tenants = [scheduler.next_job().spec.tenant for _ in range(6)]
        assert tenants == ["c", "a", "b", "c", "a", "b"]


class TestIntrospection:
    def test_depths_and_backlog_snapshot(self):
        scheduler = DrrScheduler()
        _fill(scheduler, "a", 2)
        _fill(scheduler, "b", 1)
        assert scheduler.depths() == {"a": 2, "b": 1}
        assert scheduler.backlog == 3
        assert scheduler.tenant_depth("ghost") == 0
        assert scheduler.tenant_deficit("ghost") == 0.0


def test_deterministic_replay():
    """The same offer/dispatch sequence produces the same schedule --
    scheduling is a pure function of the submissions."""

    def run():
        scheduler = DrrScheduler(depth=4)
        order = []
        supply = itertools.cycle(("a", "b", "a", "a", "b", "c"))
        for step in range(30):
            tenant = next(supply)
            scheduler.offer(_job(tenant, step))
            if step % 2:
                job = scheduler.next_job()
                order.append(job.id if job else None)
        return order

    assert run() == run()
