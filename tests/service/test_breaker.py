"""Circuit breaker state machine: trip, cooldown, probe, recovery."""

import pytest

from repro.errors import ConfigurationError
from repro.service.breaker import CircuitBreaker
from repro.telemetry import RingBufferSink, tracing


def _breaker(**kwargs):
    defaults = {"window": 4, "threshold": 2, "cooldown": 3}
    defaults.update(kwargs)
    return CircuitBreaker(**defaults)


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 0},
            {"threshold": 0},
            {"cooldown": 0},
            {"window": 2, "threshold": 3},  # threshold > window
        ],
    )
    def test_bad_parameters_are_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            _breaker(**kwargs)


class TestTrip:
    def test_starts_closed_and_allows_dispatch(self):
        breaker = _breaker()
        assert breaker.state == "closed"
        assert breaker.allows_dispatch() is True

    def test_threshold_failures_open_the_breaker(self):
        breaker = _breaker(threshold=2)
        breaker.record("crash")
        assert breaker.state == "closed"
        breaker.record("timeout")
        assert breaker.state == "open"
        assert breaker.allows_dispatch() is False

    def test_successes_dilute_the_window(self):
        breaker = _breaker(window=3, threshold=2)
        breaker.record("crash")
        breaker.record(None)
        breaker.record(None)
        # The crash has been evicted from the 3-wide window.
        breaker.record("crash")
        assert breaker.state == "closed"

    @pytest.mark.parametrize("reason", ["invariant", "error"])
    def test_deterministic_failures_do_not_trip(self, reason):
        """A simulation invariant violation (or the task's own
        exception) is the *work* misbehaving, not the environment --
        pausing dispatch would not help."""
        breaker = _breaker(threshold=1)
        for _ in range(5):
            breaker.record(reason)
        assert breaker.state == "closed"

    def test_failures_property_counts_only_environmental(self):
        breaker = _breaker(window=8, threshold=8)
        for reason in ("crash", "invariant", None, "timeout"):
            breaker.record(reason)
        assert breaker.failures == 2


class TestRecovery:
    def _tripped(self, **kwargs):
        breaker = _breaker(**kwargs)
        breaker.record("crash")
        breaker.record("crash")
        assert breaker.state == "open"
        return breaker

    def test_cooldown_cycles_reach_half_open(self):
        breaker = self._tripped(cooldown=3)
        breaker.on_cycle()
        breaker.on_cycle()
        assert breaker.state == "open"
        breaker.on_cycle()
        assert breaker.state == "half_open"

    def test_half_open_admits_exactly_one_probe(self):
        breaker = self._tripped(cooldown=1)
        breaker.on_cycle()
        assert breaker.allows_dispatch() is True
        breaker.on_dispatch()
        assert breaker.allows_dispatch() is False

    def test_probe_success_closes_and_clears_the_window(self):
        breaker = self._tripped(cooldown=1)
        breaker.on_cycle()
        breaker.on_dispatch()
        breaker.record(None)
        assert breaker.state == "closed"
        assert breaker.failures == 0
        # One fresh failure must not instantly re-trip.
        breaker.record("crash")
        assert breaker.state == "closed"

    def test_probe_failure_reopens_for_a_full_cooldown(self):
        breaker = self._tripped(cooldown=2)
        breaker.on_cycle()
        breaker.on_cycle()
        breaker.on_dispatch()
        breaker.record("crash")
        assert breaker.state == "open"
        breaker.on_cycle()
        assert breaker.state == "open"
        breaker.on_cycle()
        assert breaker.state == "half_open"

    def test_transition_history_records_the_full_sequence(self):
        breaker = self._tripped(cooldown=1)
        breaker.on_cycle()
        breaker.on_dispatch()
        breaker.record(None)
        assert breaker.transitions == ["open", "half_open", "closed"]

    def test_cycles_while_closed_are_noops(self):
        breaker = _breaker()
        for _ in range(10):
            breaker.on_cycle()
        assert breaker.state == "closed"
        assert breaker.transitions == []


class TestTelemetry:
    def test_transitions_emit_breaker_events(self):
        sink = RingBufferSink()
        with tracing(sink):
            breaker = _breaker(threshold=2, cooldown=1)
            breaker.record("crash")
            breaker.record("timeout")
            breaker.on_cycle()
            breaker.on_dispatch()
            breaker.record(None)
        events = [e for e in sink.events if e["event"] == "breaker"]
        assert [e["state"] for e in events] == [
            "open", "half_open", "closed",
        ]
        # The open event reports the failure burst that tripped it.
        assert events[0]["failures"] == 2

    def test_no_sink_means_no_emission_and_no_error(self):
        breaker = _breaker(threshold=1)
        breaker.record("crash")
        assert breaker.state == "open"
