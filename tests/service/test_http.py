"""The dependency-free HTTP layer: parsing, routing, and serving."""

import asyncio
import json

import pytest

from repro.service.http import (
    MAX_BODY_BYTES,
    Request,
    Router,
    error_response,
    json_response,
    serve_connection,
)


def _request(method="GET", path="/", body=b""):
    return Request(method=method, path=path, headers={}, body=body)


class TestRequest:
    def test_json_decodes_the_body(self):
        request = _request(body=b'{"a": 1}')
        assert request.json() == {"a": 1}

    def test_empty_body_raises(self):
        with pytest.raises(ValueError):
            _request().json()

    def test_garbage_body_raises(self):
        with pytest.raises(ValueError):
            _request(body=b"{nope").json()


class TestResponses:
    def test_json_response_is_compact_newline_terminated(self):
        response = json_response(200, {"a": 1, "b": [2]})
        assert response.status == 200
        assert response.body == b'{"a":1,"b":[2]}\n'
        assert response.content_type == "application/json"

    def test_error_response_wraps_the_message(self):
        response = error_response(429, "slow down", {"retry-after": "2"})
        assert response.status == 429
        assert json.loads(response.body) == {"error": "slow down"}
        assert response.headers == {"retry-after": "2"}

    def test_nan_payloads_are_rejected_not_emitted(self):
        with pytest.raises(ValueError):
            json_response(200, {"x": float("nan")})


class TestRouter:
    def _router(self):
        router = Router()

        async def show(request):
            return json_response(200, {"id": request.params["jid"]})

        async def boom(request):
            raise RuntimeError("handler exploded")

        router.add("GET", "/v1/jobs/{jid}", show)
        router.add("POST", "/v1/jobs", boom)
        return router

    def test_resolves_path_captures(self):
        handler, params, known = self._router().resolve(
            "GET", "/v1/jobs/abc123"
        )
        assert handler is not None
        assert params == {"jid": "abc123"}
        assert known is True

    def test_unknown_path_is_distinguished_from_wrong_method(self):
        router = self._router()
        handler, _params, known = router.resolve("GET", "/nope")
        assert handler is None and known is False
        handler, _params, known = router.resolve("DELETE", "/v1/jobs")
        assert handler is None and known is True

    def test_dispatch_maps_unknowns_to_404_and_405(self):
        router = self._router()
        response = asyncio.run(router.dispatch(_request(path="/nope")))
        assert response.status == 404
        response = asyncio.run(
            router.dispatch(_request(method="PUT", path="/v1/jobs"))
        )
        assert response.status == 405

    def test_captures_do_not_span_slashes(self):
        handler, _params, known = self._router().resolve(
            "GET", "/v1/jobs/abc/extra"
        )
        assert handler is None and known is False


class _LiveServer:
    """A real asyncio server around a router, driven by raw sockets."""

    def __init__(self, router):
        self.router = router

    async def exchange(self, raw: bytes) -> bytes:
        counter = {"n": 0}

        async def on_connection(reader, writer):
            index = counter["n"]
            counter["n"] += 1
            await serve_connection(self.router, reader, writer, index=index)

        server = await asyncio.start_server(on_connection, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(raw)
            await writer.drain()
            writer.write_eof()
            response = await reader.read()
            writer.close()
            await writer.wait_closed()
            return response
        finally:
            server.close()
            await server.wait_closed()


def _status_of(response: bytes) -> int:
    return int(response.split(b" ", 2)[1])


def _body_of(response: bytes) -> bytes:
    return response.split(b"\r\n\r\n", 1)[1]


class TestServeConnection:
    @pytest.fixture
    def server(self):
        router = Router()

        async def echo(request):
            return json_response(200, {"got": request.json()})

        async def boom(request):
            raise RuntimeError("handler exploded")

        async def stream(request):
            async def lines():
                for i in range(3):
                    yield f'{{"i":{i}}}\n'.encode()

            from repro.service.http import Response

            return Response(
                status=200,
                content_type="application/x-ndjson",
                stream=lines(),
            )

        router.add("POST", "/echo", echo)
        router.add("GET", "/boom", boom)
        router.add("GET", "/stream", stream)
        return _LiveServer(router)

    def test_round_trip(self, server):
        body = b'{"x": 7}'
        raw = (
            b"POST /echo HTTP/1.1\r\ncontent-length: "
            + str(len(body)).encode()
            + b"\r\n\r\n"
            + body
        )
        response = asyncio.run(server.exchange(raw))
        assert _status_of(response) == 200
        assert json.loads(_body_of(response)) == {"got": {"x": 7}}
        assert b"connection: close" in response.lower()

    def test_malformed_request_line_is_a_400(self, server):
        response = asyncio.run(server.exchange(b"NONSENSE\r\n\r\n"))
        assert _status_of(response) == 400

    def test_bad_content_length_is_a_400(self, server):
        raw = b"POST /echo HTTP/1.1\r\ncontent-length: banana\r\n\r\n"
        response = asyncio.run(server.exchange(raw))
        assert _status_of(response) == 400

    def test_oversized_body_is_refused_before_buffering(self, server):
        raw = (
            b"POST /echo HTTP/1.1\r\ncontent-length: "
            + str(MAX_BODY_BYTES + 1).encode()
            + b"\r\n\r\n"
        )
        response = asyncio.run(server.exchange(raw))
        assert _status_of(response) == 400

    def test_truncated_body_is_a_400_not_a_hang(self, server):
        raw = b"POST /echo HTTP/1.1\r\ncontent-length: 50\r\n\r\n{\"x\":"
        response = asyncio.run(server.exchange(raw))
        assert _status_of(response) == 400

    def test_handler_exception_becomes_a_500(self, server):
        response = asyncio.run(
            server.exchange(b"GET /boom HTTP/1.1\r\n\r\n")
        )
        assert _status_of(response) == 500
        assert b"handler exploded" in response

    def test_unroutable_path_is_a_404(self, server):
        response = asyncio.run(
            server.exchange(b"GET /missing HTTP/1.1\r\n\r\n")
        )
        assert _status_of(response) == 404

    def test_ndjson_stream_delivers_every_line(self, server):
        response = asyncio.run(
            server.exchange(b"GET /stream HTTP/1.1\r\n\r\n")
        )
        assert _status_of(response) == 200
        lines = [
            json.loads(line)
            for line in _body_of(response).splitlines()
            if line
        ]
        assert lines == [{"i": 0}, {"i": 1}, {"i": 2}]

    def test_empty_connection_is_ignored(self, server):
        response = asyncio.run(server.exchange(b""))
        assert response == b""
