"""ServiceApp behavior: lifecycle, dedupe, backpressure, chaos.

The app is exercised in-process (no HTTP): ``submit`` / ``job_status``
/ ``job_result`` are exactly what the handlers call, so everything
observable over the wire is asserted here without socket timing.
"""

import contextlib
import pickle
import time

import pytest

from repro import faults, telemetry
from repro.service.app import ServiceApp, ServiceConfig

#: Sub-millisecond simulation windows; worker spawn dominates runtime.
_TINY = {
    "sample_period": 20_000,
    "min_instructions": 60_000,
    "warmup_instructions": 20_000,
    "st_min_instructions": 60_000,
}

_WAIT_S = 60.0


def _payload(tenant, pair="gcc:eon", levels=(0.0,), deadline=None,
             **config_extra):
    config = dict(_TINY)
    config["fairness_levels"] = list(levels)
    config.update(config_extra)
    payload = {
        "tenant": tenant,
        "pair": pair,
        "scale": "quick",
        "config": config,
    }
    if deadline is not None:
        payload["deadline_s"] = deadline
    return payload


@contextlib.contextmanager
def _running(tmp_path=None, *, start=True, **overrides):
    kwargs = dict(overrides)
    if tmp_path is not None:
        kwargs.setdefault("journal", tmp_path / "jobs.jsonl")
        kwargs.setdefault("cache_dir", tmp_path / "cache")
    app = ServiceApp(ServiceConfig(jobs=1, **kwargs))
    try:
        if start:
            app.start()
        yield app
    finally:
        app.stop()


def _await_state(app, jid, *states, timeout=_WAIT_S):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        body = app.job_status(jid)
        if body is not None and body["state"] in states:
            return body
        time.sleep(0.02)
    raise AssertionError(
        f"job {jid} never reached {states}; last seen {app.job_status(jid)}"
    )


def _await(predicate, what, timeout=_WAIT_S):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {what}")


class TestLifecycle:
    def test_submit_execute_serve(self, tmp_path):
        with _running(tmp_path) as app:
            status, body, _headers = app.submit(_payload("acme"))
            assert status == 202
            assert body["state"] == "queued"
            jid = body["job"]
            final = _await_state(app, jid, "completed")
            assert final["attempts"] == 1
            code, result_body = app.job_result(jid)
            assert code == 200
            runs = result_body["result"]["runs"]
            assert list(runs) == ["0.0"]
            stats = app.stats()
            assert stats["jobs"] == {"completed": 1}
            assert stats["backlog"] == 0

    def test_invalid_spec_is_a_400(self):
        with _running(start=False) as app:
            status, body, _headers = app.submit({"tenant": "acme"})
            assert status == 400
            assert "pair" in body["error"]
            assert app.jobs == {}

    def test_resubmission_is_idempotent(self, tmp_path):
        with _running(tmp_path) as app:
            _status, first, _headers = app.submit(_payload("acme"))
            jid = first["job"]
            _await_state(app, jid, "completed")
            status, again, _headers = app.submit(_payload("acme"))
            assert status == 200  # terminal now
            assert again["job"] == jid
            assert len(app.jobs) == 1

    def test_unfinished_result_is_a_409_and_unknown_a_404(self):
        with _running(start=False) as app:
            _status, body, _headers = app.submit(_payload("acme"))
            code, result_body = app.job_result(body["job"])
            assert code == 409
            assert result_body["state"] == "queued"
            assert app.job_result("feedbeef" * 2)[0] == 404
            assert app.job_status("feedbeef" * 2) is None

    def test_readiness_tracks_the_dispatcher(self, tmp_path):
        with _running(tmp_path, start=False) as app:
            code, body = app.readiness()
            assert code == 503 and body["dispatcher_alive"] is False
            app.start()
            _await(lambda: app.readiness()[0] == 200, "readiness")
            app.drain()
            code, body = app.readiness()
            assert code == 503 and body["draining"] is True
            assert app.health() == {"status": "ok"}


class TestDedupe:
    def test_cached_cell_answers_instantly_for_another_tenant(
        self, tmp_path
    ):
        with _running(tmp_path) as app:
            _status, body, _headers = app.submit(_payload("alpha"))
            _await_state(app, body["job"], "completed")
            first = pickle.dumps(app.jobs[body["job"]].result)

            status, cached, _headers = app.submit(_payload("beta"))
            assert status == 200
            assert cached["state"] == "cached"
            assert cached["job"] != body["job"]  # tenant-scoped ids
            # ... but the shared computation is served bit-identically.
            assert pickle.dumps(app.jobs[cached["job"]].result) == first

    def test_without_a_cache_each_tenant_computes(self, tmp_path):
        with _running(cache_dir=None, journal=None) as app:
            _status, body, _headers = app.submit(_payload("alpha"))
            _await_state(app, body["job"], "completed")
            status, second, _headers = app.submit(_payload("beta"))
            assert status == 202
            _await_state(app, second["job"], "completed")


class TestBackpressure:
    def test_queue_full_is_a_429_with_retry_hint(self):
        with _running(start=False, queue_depth=1) as app:
            status, _body, _headers = app.submit(
                _payload("acme", levels=(0.0,))
            )
            assert status == 202
            status, body, headers = app.submit(
                _payload("acme", levels=(0.0, 0.5))
            )
            assert status == 429
            assert body["retry_after_s"] > 0
            assert float(headers["retry-after"]) == body["retry_after_s"]
            # The rejection left no job record: the client owns the retry.
            assert len(app.jobs) == 1

    def test_other_tenants_are_unaffected_by_a_full_queue(self):
        with _running(start=False, queue_depth=1) as app:
            app.submit(_payload("hog", levels=(0.0,)))
            assert app.submit(_payload("hog", levels=(0.0, 0.5)))[0] == 429
            assert app.submit(_payload("polite"))[0] == 202

    def test_draining_refuses_new_work(self):
        with _running(start=False) as app:
            app.drain()
            status, body, _headers = app.submit(_payload("acme"))
            assert status == 503
            assert "draining" in body["error"]


class TestDeadlines:
    def test_expired_queued_job_never_dispatches(self, tmp_path):
        with _running(tmp_path, start=False) as app:
            _status, body, _headers = app.submit(
                _payload("acme", deadline=0.05)
            )
            jid = body["job"]
            time.sleep(0.1)
            with app._lock:
                app._expire_queued()
            status = app.job_status(jid)
            assert status["state"] == "expired"
            assert status["terminal"] is True
            code, result_body = app.job_result(jid)
            assert code == 409
            assert result_body["state"] == "expired"

    def test_deadline_caps_the_task_timeout(self):
        with _running(start=False, task_timeout=100.0) as app:
            _status, body, _headers = app.submit(
                _payload("acme", deadline=5.0)
            )
            with app._lock:
                app._fill_pool()
            # The submitted pool task carries the tighter deadline cap.
            (timeout,) = app.pool._timeouts.values()
            assert timeout is not None and timeout <= 5.0
            assert app.job_status(body["job"])["state"] == "dispatched"


class TestCircuitBreaker:
    def test_crash_burst_trips_then_recovers(self, tmp_path):
        """Two unrecoverable crashes open the breaker (503 cache-only),
        cooldown reaches half-open, and a healthy probe closes it."""
        plan = faults.FaultPlan(
            specs=(
                faults.FaultSpec(kind="crash", index=0, count=1),
                faults.FaultSpec(kind="crash", index=1, count=1),
            )
        )
        with faults.fault_injection(plan):
            with _running(
                tmp_path,
                retries=0,
                breaker_window=4,
                breaker_threshold=2,
                breaker_cooldown=4,
            ) as app:
                for levels in ((0.0,), (0.0, 0.5)):
                    app.submit(_payload("acme", levels=levels))
                _await(
                    lambda: app.breaker.state != "closed",
                    "breaker to trip",
                )
                # Degraded mode: uncached work is refused while open.
                if app.breaker.state == "open":
                    status, body, headers = app.submit(
                        _payload("acme", levels=(0.0, 0.25))
                    )
                    assert status == 503
                    assert "circuit breaker open" in body["error"]
                    assert "retry-after" in headers
                _await(
                    lambda: app.breaker.state in ("half_open", "closed"),
                    "cooldown to elapse",
                )
                # A healthy probe (task index 2: no fault) closes it.
                status, probe, _headers = app.submit(
                    _payload("acme", levels=(0.0, 0.75))
                )
                assert status == 202
                _await_state(app, probe["job"], "completed")
                _await(
                    lambda: app.breaker.state == "closed",
                    "breaker to close",
                )
                assert app.breaker.transitions[:2] == ["open", "half_open"]
                assert app.breaker.transitions[-1] == "closed"
                # The crashed jobs failed with the crash taxonomy.
                failed = [
                    job for job in app.jobs.values()
                    if job.state == "failed"
                ]
                assert len(failed) == 2
                for job in failed:
                    assert "crash" in (job.detail or "")


class TestResume:
    def test_completed_jobs_restart_as_journal_served(self, tmp_path):
        with _running(tmp_path) as app:
            _status, body, _headers = app.submit(_payload("acme"))
            jid = body["job"]
            _await_state(app, jid, "completed")
            first = pickle.dumps(app.jobs[jid].result)

        with _running(tmp_path, start=False) as app2:
            status = app2.job_status(jid)
            assert status["state"] == "completed"
            assert status["detail"] == "journal"
            assert pickle.dumps(app2.jobs[jid].result) == first
            assert app2.resumed_jobs == 0
            code, result_body = app2.job_result(jid)
            assert code == 200

    def test_accepted_but_unfinished_jobs_resume_and_finish(self, tmp_path):
        with _running(tmp_path, start=False) as app:
            _status, one, _headers = app.submit(_payload("acme"))
            _status, two, _headers = app.submit(_payload("acme",
                                                         pair="gcc:gcc"))

        with _running(tmp_path) as app2:
            assert app2.resumed_jobs == 2
            for jid in (one["job"], two["job"]):
                final = _await_state(app2, jid, "completed")
                assert final["terminal"] is True

    def test_failed_jobs_restart_terminal(self, tmp_path):
        plan = faults.FaultPlan(
            specs=(faults.FaultSpec(kind="crash", index=0, count=1),)
        )
        with faults.fault_injection(plan):
            with _running(tmp_path, retries=0) as app:
                _status, body, _headers = app.submit(_payload("acme"))
                jid = body["job"]
                _await_state(app, jid, "failed")
                attempts = app.jobs[jid].attempts

        with _running(tmp_path, start=False) as app2:
            status = app2.job_status(jid)
            assert status["state"] == "failed"
            assert status["attempts"] == attempts
            assert "crash" in status["detail"]


class TestChaosCampaign:
    """The tentpole invariant: a two-tenant campaign under a crash
    storm with torn journal writes completes with results bit-identical
    to a fault-free campaign, and DRR keeps dispatch fair throughout."""

    _PAIRS = ("gcc:eon", "gcc:gcc", "eon:eon", "mcf:gcc")

    def _campaign(self, app):
        """Submit 2 tenants x 2 pairs before starting the dispatcher,
        so the DRR schedule is a pure function of the queues."""
        ids = {}
        for tenant, pair in (
            ("alpha", self._PAIRS[0]),
            ("alpha", self._PAIRS[1]),
            ("beta", self._PAIRS[2]),
            ("beta", self._PAIRS[3]),
        ):
            status, body, _headers = app.submit(_payload(tenant, pair=pair))
            assert status == 202
            ids[body["job"]] = tenant
        app.start()
        for jid in ids:
            _await_state(app, jid, "completed")
        return {
            jid: pickle.dumps(app.jobs[jid].result) for jid in ids
        }, ids

    def test_results_bit_identical_under_storm_and_torn_journal(
        self, tmp_path
    ):
        with _running(cache_dir=tmp_path / "clean-cache",
                      journal=tmp_path / "clean.jsonl",
                      start=False) as app:
            clean, _tenants = self._campaign(app)

        plan = faults.FaultPlan(
            specs=(
                # Every first attempt of the campaign's 4 dispatches
                # crashes its worker; retries recover each task.
                faults.FaultSpec(kind="storm", index=0, count=4),
                # The first 6 journal appends land torn first.
                faults.FaultSpec(kind="jtear", index=0, count=6),
            )
        )
        sink = telemetry.RingBufferSink()
        with telemetry.tracing(sink), faults.fault_injection(plan):
            with _running(cache_dir=tmp_path / "chaos-cache",
                          journal=tmp_path / "chaos.jsonl",
                          retries=2,
                          breaker_window=8,
                          breaker_threshold=8,
                          start=False) as app:
                chaos, tenants = self._campaign(app)
                assert app.journal.repaired == 6
                retried = [
                    job.attempts for job in app.jobs.values()
                ]
                assert all(count == 2 for count in retried), retried

        assert clean == chaos  # bit-identical pickles, job by job

        # DRR fairness bound: at every dispatch prefix the two
        # backlogged tenants differ by at most one dispatch.
        dispatches = [
            event["tenant"]
            for event in sink.events
            if event["event"] == "queue" and event["action"] == "dispatch"
        ]
        assert sorted(dispatches) == ["alpha", "alpha", "beta", "beta"]
        counts = {"alpha": 0, "beta": 0}
        for tenant in dispatches:
            counts[tenant] += 1
            assert abs(counts["alpha"] - counts["beta"]) <= 1, dispatches

    def test_job_events_tell_the_whole_story(self, tmp_path):
        sink = telemetry.RingBufferSink()
        with telemetry.tracing(sink):
            with _running(tmp_path, start=False) as app:
                _status, body, _headers = app.submit(_payload("acme"))
                app.start()
                _await_state(app, body["job"], "completed")
        phases = [
            event["phase"]
            for event in sink.events
            if event["event"] == "job" and event["job"] == body["job"]
        ]
        assert phases == ["submitted", "dispatched", "completed"]
