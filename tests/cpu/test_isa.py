"""Tests for the micro-op model."""

import pytest

from repro.cpu.isa import NUM_ARCH_REGS, MicroOp, OpClass
from repro.errors import ConfigurationError


class TestMicroOp:
    def test_alu_op(self):
        uop = MicroOp(OpClass.ALU, pc=0x100, dest=1, srcs=(2, 3))
        assert not uop.is_memory
        assert uop.dest == 1

    def test_load_requires_address(self):
        with pytest.raises(ConfigurationError):
            MicroOp(OpClass.LOAD, pc=0, dest=1)

    def test_store_requires_address(self):
        with pytest.raises(ConfigurationError):
            MicroOp(OpClass.STORE, pc=0, srcs=(1,))

    def test_branch_requires_target(self):
        with pytest.raises(ConfigurationError):
            MicroOp(OpClass.BRANCH, pc=0, taken=True)

    def test_memory_classification(self):
        load = MicroOp(OpClass.LOAD, pc=0, address=64)
        store = MicroOp(OpClass.STORE, pc=0, address=64)
        assert load.is_memory and store.is_memory

    def test_register_bounds(self):
        with pytest.raises(ConfigurationError):
            MicroOp(OpClass.ALU, pc=0, dest=NUM_ARCH_REGS)
        with pytest.raises(ConfigurationError):
            MicroOp(OpClass.ALU, pc=0, srcs=(NUM_ARCH_REGS,))

    def test_negative_pc_rejected(self):
        with pytest.raises(ConfigurationError):
            MicroOp(OpClass.ALU, pc=-4)

    def test_immutable(self):
        uop = MicroOp(OpClass.ALU, pc=0)
        with pytest.raises(AttributeError):
            uop.pc = 4
