"""Tests for the out-of-order pipeline (single-thread behaviour)."""

import pytest

from repro.cpu.isa import MicroOp, OpClass
from repro.cpu.machine import MachineConfig
from repro.cpu.pipeline import OooPipeline
from repro.cpu.program import TraceProgram
from repro.cpu.soe_core import run_cpu_single_thread

#: A small code footprint so the I-cache warms quickly in tests.
CODE_SLOTS = 256


def looped(make_uop):
    """An infinite program whose pc walks a small loop."""

    def generate():
        slot = 0
        while True:
            yield make_uop(slot % CODE_SLOTS, slot)
            slot += 1

    return TraceProgram(lambda: generate())


def alu_independent():
    return looped(lambda pc_slot, i: MicroOp(OpClass.ALU, pc=pc_slot * 4,
                                             dest=i % 8, srcs=(i % 8,)))


def alu_serial():
    return looped(lambda pc_slot, i: MicroOp(OpClass.ALU, pc=pc_slot * 4,
                                             dest=0, srcs=(0,)))


def hot_loads(stride=8, set_bytes=8192):
    return looped(
        lambda pc_slot, i: MicroOp(
            OpClass.LOAD, pc=pc_slot * 4, dest=i % 8, srcs=(i % 8,),
            address=0x100000 + (i * stride) % set_bytes,
        )
    )


class TestThroughput:
    def test_independent_alu_saturates_ports(self):
        result = run_cpu_single_thread(
            alu_independent(), min_instructions=8_000, warmup_instructions=2_000
        )
        # 3 ALU ports bound the sustained rate.
        assert result.total_ipc == pytest.approx(3.0, abs=0.2)

    def test_serial_chain_runs_at_one_per_cycle(self):
        result = run_cpu_single_thread(
            alu_serial(), min_instructions=6_000, warmup_instructions=2_000
        )
        assert result.total_ipc == pytest.approx(1.0, abs=0.1)

    def test_hot_loads_bound_by_load_port(self):
        result = run_cpu_single_thread(
            hot_loads(), min_instructions=6_000, warmup_instructions=2_000
        )
        # One load port: at most one load issues per cycle.
        assert result.total_ipc <= 1.1
        assert result.total_ipc > 0.5

    def test_wider_machine_is_faster(self):
        narrow = MachineConfig(fetch_width=2, rename_width=2, retire_width=2)
        r_narrow = run_cpu_single_thread(
            alu_independent(), config=narrow,
            min_instructions=6_000, warmup_instructions=2_000,
        )
        r_wide = run_cpu_single_thread(
            alu_independent(), min_instructions=6_000, warmup_instructions=2_000
        )
        assert r_wide.total_ipc > r_narrow.total_ipc


class TestMemoryBehaviour:
    def test_streaming_loads_miss_and_stall(self):
        def make(pc_slot, i):
            return MicroOp(
                OpClass.LOAD, pc=pc_slot * 4, dest=0, srcs=(0,),
                address=0x4000000 + i * 64,  # new line every load
            )

        result = run_cpu_single_thread(
            looped(make), min_instructions=600, warmup_instructions=100
        )
        # Serial dependent missing loads: ~memory latency per load.
        assert result.total_ipc < 0.01

    def test_independent_misses_overlap(self):
        def dependent(pc_slot, i):
            return MicroOp(OpClass.LOAD, pc=pc_slot * 4, dest=0, srcs=(0,),
                           address=0x4000000 + i * 64)

        def independent(pc_slot, i):
            return MicroOp(OpClass.LOAD, pc=pc_slot * 4, dest=i % 8, srcs=(),
                           address=0x4000000 + i * 64)

        serial = run_cpu_single_thread(
            looped(dependent), min_instructions=400, warmup_instructions=50
        )
        overlapped = run_cpu_single_thread(
            looped(independent), min_instructions=400, warmup_instructions=50
        )
        # The OOO window overlaps independent misses (footnote 5's
        # prefetching effect); dependent misses serialize.
        assert overlapped.total_ipc > 2.0 * serial.total_ipc

    def test_store_forwarding_beats_cache_misses(self):
        def store_then_load(pc_slot, i):
            address = 0x5000000 + (i // 2) * 64
            if i % 2 == 0:
                return MicroOp(OpClass.STORE, pc=pc_slot * 4, srcs=(0,),
                               address=address)
            return MicroOp(OpClass.LOAD, pc=pc_slot * 4, dest=1, srcs=(),
                           address=address)

        result = run_cpu_single_thread(
            looped(store_then_load), min_instructions=2_000,
            warmup_instructions=500,
        )
        # Every load forwards from the store to a never-before-seen
        # line: without forwarding each pair would cost ~300 cycles.
        assert result.total_ipc > 0.5


class TestBranchEffects:
    def test_predictable_branches_are_cheap(self):
        def make(pc_slot, i):
            if pc_slot % 8 == 7:
                return MicroOp(OpClass.BRANCH, pc=pc_slot * 4, taken=True,
                               target=((pc_slot + 1) % CODE_SLOTS) * 4)
            return MicroOp(OpClass.ALU, pc=pc_slot * 4, dest=i % 8, srcs=(i % 8,))

        result = run_cpu_single_thread(
            looped(make), min_instructions=8_000, warmup_instructions=3_000
        )
        assert result.branch_mispredict_rate < 0.05
        assert result.total_ipc > 2.0

    def test_random_branches_cost_throughput(self):
        import random

        rng_holder = random.Random(3)

        def make(pc_slot, i):
            if pc_slot % 8 == 7:
                return MicroOp(OpClass.BRANCH, pc=pc_slot * 4,
                               taken=rng_holder.random() < 0.5,
                               target=((pc_slot + 1) % CODE_SLOTS) * 4)
            return MicroOp(OpClass.ALU, pc=pc_slot * 4, dest=i % 8, srcs=(i % 8,))

        result = run_cpu_single_thread(
            looped(make), min_instructions=8_000, warmup_instructions=3_000
        )
        assert result.branch_mispredict_rate > 0.2
        assert result.total_ipc < 2.0


class TestFiniteness:
    def test_finite_program_terminates(self):
        uops = [MicroOp(OpClass.ALU, pc=i * 4, dest=0, srcs=(0,)) for i in range(50)]
        from repro.cpu.program import program_from_uops

        result = run_cpu_single_thread(
            program_from_uops(uops), min_instructions=1_000_000
        )
        assert result.threads[0].retired == 50

    def test_max_cycles_safety(self):
        result = run_cpu_single_thread(
            alu_serial(), min_instructions=10**9, max_cycles=5_000
        )
        assert result.cycles <= 5_001

    def test_deterministic(self):
        r1 = run_cpu_single_thread(alu_independent(), min_instructions=3_000)
        r2 = run_cpu_single_thread(alu_independent(), min_instructions=3_000)
        assert r1.cycles == r2.cycles
        assert r1.total_ipc == r2.total_ipc
