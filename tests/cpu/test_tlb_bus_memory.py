"""Tests for the TLBs, the pipelined bus and the memory model."""

import pytest

from repro.cpu.bus import PipelinedBus
from repro.cpu.memory import FixedLatencyMemory
from repro.cpu.tlb import Tlb
from repro.errors import ConfigurationError


class TestTlb:
    def test_miss_then_hit_same_page(self):
        tlb = Tlb(entries=4, page_bytes=4096)
        assert not tlb.access(0x1000)
        assert tlb.access(0x1FFF)  # same page

    def test_distinct_pages(self):
        tlb = Tlb(entries=4, page_bytes=4096)
        tlb.access(0x0000)
        assert not tlb.access(0x1000)

    def test_lru_capacity(self):
        tlb = Tlb(entries=2, page_bytes=4096)
        tlb.access(0x0000)
        tlb.access(0x1000)
        tlb.access(0x2000)  # evicts page 0
        assert not tlb.access(0x0000)

    def test_statistics(self):
        tlb = Tlb(entries=4, page_bytes=4096)
        tlb.access(0)
        tlb.access(0)
        assert tlb.hits == 1 and tlb.misses == 1
        tlb.reset_statistics()
        assert tlb.accesses == 0

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            Tlb(entries=0, page_bytes=4096)
        with pytest.raises(ConfigurationError):
            Tlb(entries=4, page_bytes=1000)  # not a power of two


class TestPipelinedBus:
    def test_idle_bus_grants_immediately(self):
        bus = PipelinedBus(occupancy=4)
        assert bus.request(10) == 10

    def test_back_to_back_transfers_queue_by_occupancy(self):
        bus = PipelinedBus(occupancy=4)
        assert bus.request(0) == 0
        assert bus.request(0) == 4
        assert bus.request(0) == 8

    def test_gap_larger_than_occupancy_resets(self):
        bus = PipelinedBus(occupancy=4)
        bus.request(0)
        assert bus.request(100) == 100

    def test_transfer_count(self):
        bus = PipelinedBus(occupancy=4)
        bus.request(0)
        bus.request(1)
        assert bus.transfers == 2

    def test_rejects_negative_occupancy(self):
        with pytest.raises(ConfigurationError):
            PipelinedBus(-1)


class TestFixedLatencyMemory:
    def test_fill_time(self):
        memory = FixedLatencyMemory(300)
        assert memory.fill(0x1000, start=50) == 350
        assert memory.fills == 1

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigurationError):
            FixedLatencyMemory(-1)
