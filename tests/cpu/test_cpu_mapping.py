"""Round-trip tests for the profile -> detailed-core-trace mapping."""

import pytest

from repro.cpu.soe_core import run_cpu_single_thread, run_cpu_soe
from repro.workloads.cpu_mapping import cpu_spec_for_profile
from repro.workloads.spec2000 import get_profile
from repro.workloads.tracegen import make_trace


class TestCpuSpecForProfile:
    def test_ipm_carries_over(self):
        spec = cpu_spec_for_profile(get_profile("swim"))
        assert spec.ipm == get_profile("swim").ipm

    def test_compute_profile_gets_high_ilp(self):
        eon = cpu_spec_for_profile(get_profile("eon"))
        mcf = cpu_spec_for_profile(get_profile("mcf"))
        assert eon.ilp > mcf.ilp

    def test_memory_profile_gets_more_loads(self):
        swim = cpu_spec_for_profile(get_profile("swim"))
        crafty = cpu_spec_for_profile(get_profile("crafty"))
        assert swim.load_fraction > crafty.load_fraction

    @pytest.mark.parametrize("name", ["eon", "gcc", "swim"])
    def test_emergent_miss_spacing_tracks_profile(self, name):
        profile = get_profile(name)
        spec = cpu_spec_for_profile(profile)
        result = run_cpu_single_thread(
            make_trace(spec, seed=3),
            min_instructions=12_000,
            warmup_instructions=6_000,
        )
        # Count memory-level fills per retired instruction from the
        # shared hierarchy statistics: demand misses every ~IPM.
        # (Loose bound: cold misses and prefetch-free streaming only.)
        stats = result.threads[0]
        assert stats.retired > 0
        # The single-thread run cannot count switch-misses; validate
        # via the SOE run below instead when IPM is small.
        if profile.ipm <= 2_000:
            # The warmup must cover the hot set's cold misses (the
            # profile's IPM describes steady state, not cold start).
            soe = run_cpu_soe(
                [make_trace(spec, seed=3, thread_index=0),
                 make_trace(cpu_spec_for_profile(get_profile("eon")),
                            seed=4, thread_index=1)],
                min_instructions=9_000,
                warmup_instructions=10_000,
            )
            misses = soe.threads[0].miss_switches
            assert misses > 0
            observed_ipm = soe.threads[0].retired / misses
            assert observed_ipm == pytest.approx(profile.ipm, rel=0.6)

    def test_gcc_eon_starvation_reproduces_on_detailed_core(self):
        """The paper's flagship pair, rebuilt at the micro-op level."""
        gcc_spec = cpu_spec_for_profile(get_profile("gcc"))
        eon_spec = cpu_spec_for_profile(get_profile("eon"))
        st = []
        for index, spec in enumerate((gcc_spec, eon_spec)):
            run = run_cpu_single_thread(
                make_trace(spec, seed=index + 1, thread_index=index),
                min_instructions=10_000,
                warmup_instructions=5_000,
            )
            st.append(run.total_ipc)
        soe = run_cpu_soe(
            [make_trace(gcc_spec, seed=1, thread_index=0),
             make_trace(eon_spec, seed=2, thread_index=1)],
            min_instructions=5_000,
            warmup_instructions=3_000,
        )
        speedups = [ipc / s for ipc, s in zip(soe.ipcs, st)]
        # gcc starves, eon is barely affected -- on the cycle-level
        # machine, from first principles.
        assert speedups[0] / speedups[1] < 0.35
        assert speedups[1] > 0.7
