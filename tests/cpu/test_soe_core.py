"""Tests for SOE multithreading on the detailed core."""

import pytest

from repro.core.controller import FairnessController, FairnessParams
from repro.core.policy import TimeSharingPolicy
from repro.cpu.machine import MachineConfig
from repro.cpu.soe_core import run_cpu_single_thread, run_cpu_soe
from repro.errors import ConfigurationError
from repro.workloads.tracegen import CpuWorkloadSpec, make_trace

#: Small-footprint specs so tests warm up fast.
FAST_COMPUTE = CpuWorkloadSpec(
    name="t-compute", ilp=8, ipm=20_000.0, load_fraction=0.2,
    store_fraction=0.05, branch_fraction=0.10, branch_noise=0.02,
    hot_bytes=4 * 1024, code_bytes=2 * 1024,
)
FAST_MEMORY = CpuWorkloadSpec(
    name="t-memory", ilp=6, ipm=400.0, load_fraction=0.3,
    store_fraction=0.05, branch_fraction=0.08, branch_noise=0.02,
    hot_bytes=4 * 1024, code_bytes=2 * 1024,
)


def programs(spec_a=FAST_COMPUTE, spec_b=FAST_MEMORY):
    return [
        make_trace(spec_a, seed=1, thread_index=0),
        make_trace(spec_b, seed=2, thread_index=1),
    ]


@pytest.fixture(scope="module")
def baseline_run():
    return run_cpu_soe(programs(), min_instructions=4_000, warmup_instructions=3_000)


@pytest.fixture(scope="module")
def single_thread_ipcs():
    results = []
    for index, spec in enumerate((FAST_COMPUTE, FAST_MEMORY)):
        result = run_cpu_single_thread(
            make_trace(spec, seed=index + 1, thread_index=index),
            min_instructions=8_000,
            warmup_instructions=4_000,
        )
        results.append(result.total_ipc)
    return results


class TestSoeSwitching:
    def test_misses_trigger_switches(self, baseline_run):
        assert baseline_run.threads[1].miss_switches > 0

    def test_both_threads_progress(self, baseline_run):
        # min_instructions counts lifetime retirement; the measured
        # window starts after warmup, so assert substantial progress.
        for stats in baseline_run.threads:
            assert stats.retired >= 1_000

    def test_switch_latency_near_paper_value(self, baseline_run):
        # Paper: "usually accumulates to around 25 cycles".
        assert 10 <= baseline_run.mean_switch_latency <= 40

    def test_memory_thread_starves_without_fairness(
        self, baseline_run, single_thread_ipcs
    ):
        speedups = [
            ipc / st for ipc, st in zip(baseline_run.ipcs, single_thread_ipcs)
        ]
        assert min(speedups) / max(speedups) < 0.3

    def test_soe_beats_mean_single_thread_throughput(
        self, baseline_run, single_thread_ipcs
    ):
        mean_st = sum(single_thread_ipcs) / 2
        assert baseline_run.total_ipc > mean_st

    def test_requires_two_programs(self):
        with pytest.raises(ConfigurationError):
            run_cpu_soe(programs()[:1])


class TestPoliciesOnDetailedCore:
    def test_fairness_controller_improves_fairness(self, baseline_run,
                                                    single_thread_ipcs):
        controller = FairnessController(
            2, FairnessParams(fairness_target=0.5, sample_period=4_000.0)
        )
        result = run_cpu_soe(
            programs(), controller,
            min_instructions=5_000, warmup_instructions=4_000,
        )
        def fairness(run):
            speedups = [
                ipc / st for ipc, st in zip(run.ipcs, single_thread_ipcs)
            ]
            return min(speedups) / max(speedups)

        assert fairness(result) > 3 * fairness(baseline_run)
        assert result.threads[0].forced_switches > 0

    def test_enforcement_costs_throughput(self, baseline_run, single_thread_ipcs):
        controller = FairnessController(
            2, FairnessParams(fairness_target=1.0, sample_period=4_000.0)
        )
        result = run_cpu_soe(
            programs(), controller,
            min_instructions=5_000, warmup_instructions=4_000,
        )
        assert result.total_ipc < baseline_run.total_ipc

    def test_time_sharing_splits_cycles(self):
        policy = TimeSharingPolicy(1_000)
        result = run_cpu_soe(
            programs(FAST_COMPUTE, FAST_COMPUTE), policy,
            min_instructions=10_000, warmup_instructions=4_000,
        )
        cycles = [t.run_cycles for t in result.threads]
        assert cycles[0] == pytest.approx(cycles[1], rel=0.4)
        assert sum(t.cycle_quota_switches for t in result.threads) > 0

    def test_max_cycles_quota_bounds_missless_threads(self):
        config = MachineConfig(max_cycles_quota=2_000)
        result = run_cpu_soe(
            programs(FAST_COMPUTE, FAST_COMPUTE),
            config=config,
            min_instructions=4_000,
            warmup_instructions=2_000,
        )
        assert sum(t.cycle_quota_switches for t in result.threads) > 0
        for stats in result.threads:
            assert stats.retired >= 1_000


class TestSharedState:
    def test_caches_shared_between_threads(self):
        # Two threads with identical address spaces (same thread_index)
        # share lines; distinct spaces compete for capacity instead.
        result = run_cpu_soe(
            [
                make_trace(FAST_MEMORY, seed=1, thread_index=0),
                make_trace(FAST_MEMORY, seed=2, thread_index=1),
            ],
            min_instructions=3_000,
            warmup_instructions=1_500,
        )
        assert result.l2_miss_rate > 0.0
