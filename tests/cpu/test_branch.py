"""Tests for the branch predictor."""

import pytest

from repro.cpu.branch import BranchPredictor
from repro.cpu.isa import MicroOp, OpClass
from repro.errors import ConfigurationError


def branch(pc, taken, target=0x40):
    return MicroOp(OpClass.BRANCH, pc=pc, taken=taken, target=target)


class TestBranchPredictor:
    def test_learns_always_taken(self):
        predictor = BranchPredictor()
        for _ in range(4):
            predictor.predict_and_update(branch(0x10, True))
        predictor.reset_statistics()
        for _ in range(50):
            predictor.predict_and_update(branch(0x10, True))
        assert predictor.misprediction_rate == 0.0

    def test_learns_always_not_taken(self):
        predictor = BranchPredictor()
        for _ in range(4):
            predictor.predict_and_update(branch(0x10, False))
        predictor.reset_statistics()
        for _ in range(50):
            predictor.predict_and_update(branch(0x10, False))
        assert predictor.misprediction_rate == 0.0

    def test_btb_target_mismatch_counts_as_mispredict(self):
        predictor = BranchPredictor()
        for _ in range(4):
            predictor.predict_and_update(branch(0x10, True, target=0x40))
        predictor.reset_statistics()
        # The branch suddenly jumps elsewhere: direction right, target
        # wrong.
        assert not predictor.predict_and_update(branch(0x10, True, target=0x80))

    def test_cold_taken_branch_is_a_btb_miss(self):
        predictor = BranchPredictor()
        assert not predictor.predict_and_update(branch(0x10, True))

    def test_random_branches_mispredict_roughly_half(self):
        import random

        rng = random.Random(5)
        predictor = BranchPredictor()
        for _ in range(2_000):
            predictor.predict_and_update(branch(0x10, rng.random() < 0.5, 0x40))
        assert 0.3 < predictor.misprediction_rate < 0.7

    def test_alternating_pattern_learned_via_history(self):
        # T/NT alternation is perfectly predictable with global history.
        predictor = BranchPredictor()
        outcomes = [True, False] * 200
        for taken in outcomes[:100]:
            predictor.predict_and_update(branch(0x10, taken))
        predictor.reset_statistics()
        for taken in outcomes[100:]:
            predictor.predict_and_update(branch(0x10, taken))
        assert predictor.misprediction_rate < 0.1

    def test_rejects_non_branch(self):
        with pytest.raises(ConfigurationError):
            BranchPredictor().predict_and_update(MicroOp(OpClass.ALU, pc=0))

    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            BranchPredictor(history_bits=0)
        with pytest.raises(ConfigurationError):
            BranchPredictor(table_entries=1000)  # not a power of two
