"""Tests for trace programs and flush-capable cursors."""

import pytest

from repro.cpu.isa import MicroOp, OpClass
from repro.cpu.program import TraceProgram, program_from_uops
from repro.errors import WorkloadError


def alu(pc):
    return MicroOp(OpClass.ALU, pc=pc)


class TestTraceProgram:
    def test_replayable(self):
        program = program_from_uops([alu(0), alu(4), alu(8)])
        assert [u.pc for u in program.uops()] == [0, 4, 8]
        assert [u.pc for u in program.uops()] == [0, 4, 8]

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            program_from_uops([])


class TestProgramCursor:
    def test_sequential_fetch(self):
        cursor = program_from_uops([alu(0), alu(4)]).cursor()
        assert cursor.fetch().pc == 0
        assert cursor.fetch().pc == 4
        assert cursor.fetch() is None

    def test_exhausted_flag(self):
        cursor = program_from_uops([alu(0)]).cursor()
        assert not cursor.exhausted
        cursor.fetch()
        assert cursor.exhausted

    def test_exhausted_peek_does_not_lose_uops(self):
        cursor = program_from_uops([alu(0), alu(4)]).cursor()
        assert not cursor.exhausted  # peeks by buffering
        assert cursor.fetch().pc == 0
        assert cursor.fetch().pc == 4

    def test_push_back_refetches_in_order(self):
        cursor = program_from_uops([alu(0), alu(4), alu(8)]).cursor()
        a = cursor.fetch()
        b = cursor.fetch()
        cursor.push_back([a, b])
        assert cursor.fetch().pc == 0
        assert cursor.fetch().pc == 4
        assert cursor.fetch().pc == 8

    def test_push_back_clears_exhaustion(self):
        cursor = program_from_uops([alu(0)]).cursor()
        uop = cursor.fetch()
        assert cursor.exhausted
        cursor.push_back([uop])
        assert not cursor.exhausted
        assert cursor.fetch().pc == 0

    def test_interleaved_pushback(self):
        cursor = program_from_uops([alu(0), alu(4), alu(8)]).cursor()
        a = cursor.fetch()
        cursor.push_back([a])
        b = cursor.fetch()
        assert b.pc == 0
        assert cursor.fetch().pc == 4
