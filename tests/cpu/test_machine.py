"""Tests for the machine configuration."""

import pytest

from repro.cpu.machine import CacheConfig, MachineConfig
from repro.errors import ConfigurationError


class TestMachineConfig:
    def test_paper_defaults(self):
        config = MachineConfig()
        assert config.memory_latency == 300
        assert config.drain_latency == 6
        assert config.max_cycles_quota == 50_000
        assert config.l2.size_bytes == 2 * 1024 * 1024
        assert config.switch_event == "l2"
        assert config.memory_model == "fixed"
        assert config.prefetch == "none"

    def test_fetch_queue_covers_frontend_pipe(self):
        config = MachineConfig()
        assert config.fetch_queue_entries >= (
            config.fetch_width * config.frontend_latency
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fetch_width": 0},
            {"rob_entries": 0},
            {"memory_latency": -1},
            {"page_bytes": 1000},
            {"switch_event": "l3"},
            {"memory_model": "hbm"},
            {"prefetch": "stride"},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            MachineConfig(**kwargs)

    def test_cache_geometry_validated(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(l1d=CacheConfig(1000, 8, 64, 3))

    def test_immutable(self):
        config = MachineConfig()
        with pytest.raises(AttributeError):
            config.rob_entries = 128
