"""Selection-order tests for the pipeline's cached-ready-time scheduler.

The idle-skip optimization made ``_pick_ready`` refresh a cached
``_pending_ready_min`` in the same pass that selects the next thread.
These tests pin the scheduling contract against a straightforward
reference implementation: the selected thread (least-recently
dispatched among ready, non-exhausted threads) and the cached minimum
pending ready time must match the pre-optimization behaviour in every
reachable state.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.core.policy import SwitchPolicy
from repro.cpu.isa import MicroOp, OpClass
from repro.cpu.pipeline import OooPipeline
from repro.cpu.program import program_from_uops
from repro.cpu.soe_core import run_cpu_soe
from repro.workloads.tracegen import MEMORY_SPEC, MIXED_SPEC, make_trace


def _reference_pick(pipeline: OooPipeline):
    """The original selection rule, written the obvious way."""
    ready = [
        t
        for t in pipeline.threads
        if not t.cursor.exhausted and t.ready_at <= pipeline.now
    ]
    pending = [
        t.ready_at
        for t in pipeline.threads
        if not t.cursor.exhausted and t.ready_at > pipeline.now
    ]
    best = min(ready, key=lambda t: t.last_dispatch_seq, default=None)
    return best, (min(pending) if pending else None)


def _make_pipeline(num_threads: int = 3) -> OooPipeline:
    programs = [
        make_trace(MIXED_SPEC, seed=7, thread_index=i) for i in range(num_threads)
    ]
    return OooPipeline(programs, policy=None)


def test_pick_ready_matches_reference_in_enumerated_states():
    """Sweep ready/pending/exhausted combinations across three threads."""
    ready_ats = (0, 5, 40)
    for combo in itertools.product(ready_ats, repeat=3):
        for seqs in itertools.permutations((0, 1, 2)):
            pipeline = _make_pipeline(3)
            pipeline.now = 10
            for thread, r, s in zip(pipeline.threads, combo, seqs):
                thread.ready_at = r
                thread.last_dispatch_seq = s
            expected_pick, expected_min = _reference_pick(pipeline)
            assert pipeline._pick_ready() is expected_pick
            assert pipeline._pending_ready_min == expected_min


def test_pick_ready_skips_exhausted_threads():
    # Thread 0 gets a finite 4-uop trace: once drained, it must never
    # be selected and must not contribute to the pending minimum.
    finite = program_from_uops(
        [MicroOp(OpClass.ALU, pc) for pc in range(0, 16, 4)], name="finite"
    )
    programs = [
        finite,
        make_trace(MIXED_SPEC, seed=7, thread_index=1),
        make_trace(MIXED_SPEC, seed=7, thread_index=2),
    ]
    pipeline = OooPipeline(programs, policy=None)
    pipeline.now = 10
    exhausted = pipeline.threads[0]
    while exhausted.cursor.fetch() is not None:
        pass
    assert exhausted.cursor.exhausted
    pipeline.threads[0].ready_at = 0
    pipeline.threads[1].ready_at = 50  # pending
    pipeline.threads[2].ready_at = 3  # ready
    expected_pick, expected_min = _reference_pick(pipeline)
    assert expected_pick is pipeline.threads[2]
    assert pipeline._pick_ready() is expected_pick
    assert pipeline._pending_ready_min == expected_min == 50


def test_pick_ready_returns_none_when_all_pending():
    pipeline = _make_pipeline(2)
    pipeline.now = 10
    pipeline.threads[0].ready_at = 100
    pipeline.threads[1].ready_at = 60
    assert pipeline._pick_ready() is None
    assert pipeline._pending_ready_min == 60


class _DispatchRecorder(SwitchPolicy):
    """Pass-through policy that records every dispatch's thread id."""

    def __init__(self) -> None:
        self.dispatches: list[int] = []

    def on_run_start(self, thread_id: int, now: float) -> None:
        self.dispatches.append(thread_id)


def test_dispatch_order_unchanged_end_to_end():
    """The full MT run dispatches threads in the pinned round-robin
    order (golden sequence recorded from the reference scheduler)."""
    programs = [
        make_trace(MIXED_SPEC, seed=3, thread_index=0),
        make_trace(MEMORY_SPEC, seed=4, thread_index=1),
    ]
    recorder = _DispatchRecorder()
    run_cpu_soe(programs, recorder, min_instructions=1_500)
    order = recorder.dispatches
    assert len(order) > 10
    # SOE on a miss with one other ready thread must alternate; the
    # exact prefix pins the scheduler's tie-breaking end to end.
    assert order[:2] == [0, 1]
    assert all(a != b for a, b in zip(order, order[1:]))
