"""Structural backpressure tests for the out-of-order pipeline.

Each test starves or saturates one structure (ROB, RS, load buffer,
store buffer, fetch queue) and checks the expected throughput effect --
the kind of resource accounting that distinguishes a timing model from
a throughput formula.
"""

import pytest

from repro.cpu.isa import MicroOp, OpClass
from repro.cpu.machine import MachineConfig
from repro.cpu.program import TraceProgram
from repro.cpu.soe_core import run_cpu_single_thread

CODE_SLOTS = 64


def looped(make_uop):
    def generate():
        i = 0
        while True:
            yield make_uop(i % CODE_SLOTS, i)
            i += 1

    return TraceProgram(lambda: generate())


def independent_alu(pc_slot, i):
    return MicroOp(OpClass.ALU, pc=pc_slot * 4, dest=i % 8, srcs=(i % 8,))


def run(program, config=None, n=5_000, warmup=1_500):
    return run_cpu_single_thread(
        program,
        config=config if config is not None else MachineConfig(),
        min_instructions=n,
        warmup_instructions=warmup,
    )


class TestRobPressure:
    def test_tiny_rob_throttles_miss_overlap(self):
        # Independent streaming loads: a big ROB overlaps many misses, a
        # tiny one can hold only a few in flight.
        def make(pc_slot, i):
            return MicroOp(OpClass.LOAD, pc=pc_slot * 4, dest=i % 8, srcs=(),
                           address=0x4000000 + i * 64)

        big = run(looped(make), MachineConfig(rob_entries=96), n=600, warmup=100)
        small = run(looped(make), MachineConfig(rob_entries=8), n=600, warmup=100)
        assert big.total_ipc > 1.5 * small.total_ipc

    def test_rob_size_irrelevant_for_short_latency_work(self):
        big = run(looped(independent_alu), MachineConfig(rob_entries=96))
        small = run(looped(independent_alu), MachineConfig(rob_entries=24))
        assert small.total_ipc == pytest.approx(big.total_ipc, rel=0.1)


class TestRsPressure:
    def test_tiny_rs_caps_issue_window(self):
        # Independent ALU work sustains 3 issues/cycle with a healthy
        # RS; a 2-entry RS can never expose more than 2 ready uops.
        big = run(looped(independent_alu), MachineConfig(rs_entries=32))
        small = run(looped(independent_alu), MachineConfig(rs_entries=2))
        assert big.total_ipc > 1.2 * small.total_ipc


class TestLoadStoreBuffers:
    def test_load_buffer_bounds_outstanding_loads(self):
        def make(pc_slot, i):
            return MicroOp(OpClass.LOAD, pc=pc_slot * 4, dest=i % 8, srcs=(),
                           address=0x4000000 + i * 64)

        wide = run(looped(make), MachineConfig(load_buffer_entries=32),
                   n=600, warmup=100)
        narrow = run(looped(make), MachineConfig(load_buffer_entries=2),
                     n=600, warmup=100)
        assert wide.total_ipc > narrow.total_ipc

    def test_store_buffer_full_stalls_retirement(self):
        # All-store workload: drains at 1 store/cycle regardless of
        # width, so IPC ~1.
        def make(pc_slot, i):
            return MicroOp(OpClass.STORE, pc=pc_slot * 4, srcs=(0,),
                           address=0x100000 + (i * 8) % 4096)

        result = run(looped(make))
        assert result.total_ipc == pytest.approx(1.0, abs=0.15)


class TestFrontend:
    def test_frontend_latency_delays_not_throttles(self):
        # Deeper frontend adds switch/startup latency but not a
        # steady-state bandwidth penalty (the queue covers the depth).
        shallow = run(looped(independent_alu),
                      MachineConfig(frontend_latency=4, fetch_queue_entries=64))
        deep = run(looped(independent_alu),
                   MachineConfig(frontend_latency=20, fetch_queue_entries=128))
        assert deep.total_ipc == pytest.approx(shallow.total_ipc, rel=0.1)

    def test_undersized_fetch_queue_throttles(self):
        throttled = run(
            looped(independent_alu),
            MachineConfig(frontend_latency=12, fetch_queue_entries=12),
        )
        healthy = run(
            looped(independent_alu),
            MachineConfig(frontend_latency=12, fetch_queue_entries=64),
        )
        # 12 entries / 12-cycle depth = 1 uop/cycle ceiling.
        assert throttled.total_ipc < 1.3
        assert healthy.total_ipc > 2.0

    def test_large_code_footprint_misses_the_l1i(self):
        # Code spanning 128 KB cannot stay in a 32 KB L1I.
        def make(pc_slot, i):
            return MicroOp(OpClass.ALU, pc=(i % 32_768) * 4, dest=i % 8,
                           srcs=(i % 8,))

        result = run(looped(make), n=40_000, warmup=35_000)
        small_code = run(looped(independent_alu), n=8_000, warmup=2_000)
        assert result.total_ipc < small_code.total_ipc


class TestPortContention:
    def test_mul_port_serializes_multiplies(self):
        def make(pc_slot, i):
            return MicroOp(OpClass.MUL, pc=pc_slot * 4, dest=i % 8, srcs=(i % 8,))

        result = run(looped(make))
        # One MUL port, 3-cycle latency, independent chains: 1 issue per
        # cycle at best.
        assert result.total_ipc <= 1.05

    def test_mixed_classes_use_ports_in_parallel(self):
        def make(pc_slot, i):
            cls = (OpClass.ALU, OpClass.MUL, OpClass.FP, OpClass.ALU)[pc_slot % 4]
            return MicroOp(cls, pc=pc_slot * 4, dest=i % 8, srcs=(i % 8,))

        mixed = run(looped(make))
        def all_mul(pc_slot, i):
            return MicroOp(OpClass.MUL, pc=pc_slot * 4, dest=i % 8, srcs=(i % 8,))

        muls = run(looped(all_mul))
        assert mixed.total_ipc > muls.total_ipc
