"""Tests for the memory-system extensions: write-back caches, the
next-line prefetcher, and the banked DRAM model."""

import pytest

from repro.cpu.caches import Cache
from repro.cpu.dram import BankedDram
from repro.cpu.hierarchy import MemoryHierarchy
from repro.cpu.machine import CacheConfig, MachineConfig
from repro.errors import ConfigurationError


def small_cache(assoc=2):
    return Cache(CacheConfig(1024, assoc, 64, 1))


class TestWriteBackState:
    def test_store_marks_line_dirty_and_eviction_reports_it(self):
        cache = small_cache(assoc=2)
        set_stride = 8 * 64
        cache.access(0, is_write=True)
        cache.access(set_stride)
        cache.access(2 * set_stride)  # evicts the dirty line at 0
        assert cache.last_eviction_was_dirty
        assert cache.writebacks == 1
        assert cache.last_victim_line == 0

    def test_clean_eviction_not_reported(self):
        cache = small_cache(assoc=2)
        set_stride = 8 * 64
        cache.access(0)
        cache.access(set_stride)
        cache.access(2 * set_stride)
        assert not cache.last_eviction_was_dirty
        assert cache.writebacks == 0

    def test_write_hit_dirties_resident_line(self):
        cache = small_cache(assoc=2)
        set_stride = 8 * 64
        cache.access(0)                      # clean fill
        cache.access(0, is_write=True)       # dirtied by a later store
        cache.access(set_stride)
        cache.access(2 * set_stride)         # evicts line 0
        assert cache.last_eviction_was_dirty

    def test_victim_line_reconstructs_address(self):
        cache = small_cache(assoc=2)
        set_stride = 8 * 64
        base = 3 * 64  # set 3
        cache.access(base, is_write=True)
        cache.access(base + set_stride)
        cache.access(base + 2 * set_stride)
        assert cache.last_victim_line * 64 == base


class TestHierarchyWritebacks:
    def test_store_heavy_workload_generates_writebacks(self):
        hierarchy = MemoryHierarchy(MachineConfig())
        # Dirty far more lines than the L1 holds.
        for i in range(4_096):
            hierarchy.store_access(0x100000 + i * 64, i * 10)
        assert hierarchy.l1d.writebacks > 0

    def test_l2_dirty_evictions_consume_bus(self):
        hierarchy = MemoryHierarchy(MachineConfig())
        lines = (2 * 1024 * 1024) // 64  # L2 line capacity
        for i in range(lines + 8_192):
            hierarchy.store_access(0x100000 + i * 64, i * 400)
        # Demand fills alone would be one transfer per access; dirty L2
        # evictions add write-back transfers on top.
        assert hierarchy.bus.transfers > hierarchy.memory.fills


class TestNextLinePrefetcher:
    def test_prefetch_disabled_by_default(self):
        hierarchy = MemoryHierarchy(MachineConfig())
        hierarchy.data_access(0x400000, 0)
        assert hierarchy.prefetches == 0

    def test_prefetch_fetches_next_line(self):
        hierarchy = MemoryHierarchy(MachineConfig(prefetch="next_line"))
        hierarchy.data_access(0x400000, 0)
        assert hierarchy.prefetches == 1
        # After the fills complete, the next line hits the L2.
        result = hierarchy.data_access(0x400040, 5_000)
        assert result.level == "l2"

    def test_streaming_miss_rate_halves_with_prefetch(self):
        def misses(config):
            hierarchy = MemoryHierarchy(config)
            demand_memory = 0
            time = 0
            for i in range(512):
                time += 600  # well past each fill's completion
                result = hierarchy.data_access(0x800000 + i * 64, time)
                if result.level == "memory":
                    demand_memory += 1
            return demand_memory

        base = misses(MachineConfig())
        prefetched = misses(MachineConfig(prefetch="next_line"))
        assert prefetched < base * 0.6

    def test_prefetch_does_not_refetch_resident_lines(self):
        hierarchy = MemoryHierarchy(MachineConfig(prefetch="next_line"))
        hierarchy.data_access(0x400000, 0)
        first = hierarchy.prefetches
        hierarchy.data_access(0x400000, 10_000)  # L1 hit: no prefetch probe
        assert hierarchy.prefetches == first


class TestBankedDram:
    def test_row_hit_is_faster_than_row_miss(self):
        dram = BankedDram(base_latency=240, row_penalty=120, bank_occupancy=0)
        first = dram.fill(0x0000, 0)
        second = dram.fill(0x0040, first)  # same row
        assert first == 360  # cold row miss
        assert second - first == 240  # open-row hit

    def test_row_conflict_pays_penalty(self):
        dram = BankedDram(base_latency=240, row_penalty=120, num_banks=1,
                          row_bytes=4096, bank_occupancy=0)
        dram.fill(0, 0)
        conflict = dram.fill(4096, 1_000)  # same bank, different row
        assert conflict - 1_000 == 360

    def test_banks_operate_in_parallel(self):
        dram = BankedDram(num_banks=8, bank_occupancy=20, row_bytes=4096)
        a = dram.fill(0 * 4096, 0)
        b = dram.fill(1 * 4096, 0)  # different bank: no queueing
        assert a == b

    def test_same_bank_requests_queue(self):
        dram = BankedDram(num_banks=8, bank_occupancy=20, row_bytes=4096)
        a = dram.fill(0, 0)
        b = dram.fill(64, 0)  # same bank: waits for occupancy
        assert b > a - dram.base_latency + 0  # started later
        assert b - a == 20 - 120  # hit (no penalty) but +occupancy delay

    def test_row_hit_rate_statistic(self):
        dram = BankedDram(row_bytes=4096, bank_occupancy=0)
        for i in range(64):
            dram.fill(i * 64, i * 1_000)  # sequential: mostly row hits
        assert dram.row_hit_rate > 0.9

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            BankedDram(base_latency=-1)
        with pytest.raises(ConfigurationError):
            BankedDram(num_banks=0)


class TestDramInPipeline:
    def test_dram_machine_runs_and_varies_latency(self):
        from repro.core.controller import FairnessController, FairnessParams
        from repro.cpu.soe_core import run_cpu_soe
        from repro.workloads.tracegen import CpuWorkloadSpec, make_trace

        memory_spec = CpuWorkloadSpec(
            name="dram-mem", ilp=6, ipm=400.0, load_fraction=0.3,
            store_fraction=0.05, branch_fraction=0.08, branch_noise=0.02,
            hot_bytes=4 * 1024, code_bytes=2 * 1024,
        )
        controller = FairnessController(
            2,
            FairnessParams(
                fairness_target=0.5, sample_period=4_000.0,
                measure_miss_latency=True,
            ),
        )
        result = run_cpu_soe(
            [
                make_trace(memory_spec, seed=1, thread_index=0),
                make_trace(memory_spec, seed=2, thread_index=1),
            ],
            controller,
            config=MachineConfig(memory_model="dram"),
            min_instructions=4_000,
            warmup_instructions=2_000,
        )
        assert result.total_ipc > 0
        latencies = controller.measured_latencies
        assert latencies is not None
        # Streaming loads mostly hit open rows: measured latency sits
        # between the row-hit (240) and row-miss (360) costs.
        assert 200 < latencies[0] < 450
