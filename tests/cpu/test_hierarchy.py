"""Tests for the composed memory hierarchy."""

import pytest

from repro.cpu.hierarchy import MemoryHierarchy
from repro.cpu.machine import MachineConfig


@pytest.fixture()
def hierarchy():
    return MemoryHierarchy(MachineConfig())


class TestDataPath:
    def test_l1_hit_latency(self, hierarchy):
        hierarchy.data_access(0x1000, 0)  # warm the line (and the TLB)
        # Probe after the fill completes (a probe during the fill would
        # correctly merge into the outstanding miss instead).
        result = hierarchy.data_access(0x1000, 1_000)
        assert result.level == "l1"
        assert result.ready_at == 1_000 + 3
        assert not result.l2_miss and not result.tlb_walk

    def test_cold_access_goes_to_memory(self, hierarchy):
        result = hierarchy.data_access(0x100000, 0)
        assert result.level == "memory"
        assert result.l2_miss
        # page walk + L1 + L2 lookups + memory latency
        assert result.ready_at >= 300

    def test_tlb_walk_charged_once_per_page(self, hierarchy):
        first = hierarchy.data_access(0x2000, 0)
        assert first.tlb_walk
        second = hierarchy.data_access(0x2040, 10_000)
        assert not second.tlb_walk

    def test_l2_hit_after_l1_eviction(self, hierarchy):
        config = hierarchy.config
        base = 0x400000
        hierarchy.data_access(base, 0)
        # Thrash the L1 set containing `base` with same-set lines; they
        # stay resident in the much larger L2.
        l1_set_stride = config.l1d.num_sets * config.l1d.line_bytes
        for i in range(1, config.l1d.associativity + 2):
            hierarchy.data_access(base + i * l1_set_stride, 1000 + i)
        result = hierarchy.data_access(base, 10_000)
        assert result.level == "l2"
        assert not result.l2_miss

    def test_outstanding_fill_merges(self, hierarchy):
        first = hierarchy.data_access(0x800000, 0)
        # A second access to the same line while the fill is in flight
        # merges instead of paying another memory round trip.
        second = hierarchy.data_access(0x800010, 5)
        assert second.merged
        assert second.ready_at <= first.ready_at
        assert hierarchy.bus.transfers == 1

    def test_distinct_lines_serialize_on_the_bus(self, hierarchy):
        a = hierarchy.data_access(0x800000, 0)
        b = hierarchy.data_access(0x900000, 0)
        assert b.ready_at > a.ready_at
        assert hierarchy.bus.transfers == 2


class TestFetchPath:
    def test_instruction_fetch_uses_l1i(self, hierarchy):
        hierarchy.fetch_access(0x100, 0)
        result = hierarchy.fetch_access(0x104, 1_000)
        assert result.level == "l1"
        assert hierarchy.l1i.accesses == 2
        assert hierarchy.l1d.accesses == 0

    def test_fetch_and_data_tlbs_are_separate(self, hierarchy):
        hierarchy.fetch_access(0x100, 0)
        result = hierarchy.data_access(0x100, 10)
        assert result.tlb_walk  # dTLB cold even though iTLB warm


class TestStatistics:
    def test_reset_statistics(self, hierarchy):
        hierarchy.data_access(0x1000, 0)
        hierarchy.fetch_access(0x100, 0)
        hierarchy.reset_statistics()
        assert hierarchy.l1d.accesses == 0
        assert hierarchy.l1i.accesses == 0
        assert hierarchy.l2.accesses == 0
        assert hierarchy.dtlb.accesses == 0
