"""Tests for the set-associative LRU cache."""

import pytest

from repro.cpu.caches import Cache
from repro.cpu.machine import CacheConfig
from repro.errors import ConfigurationError


def small_cache(size=1024, assoc=2, line=64, latency=1):
    return Cache(CacheConfig(size, assoc, line, latency))


class TestCacheGeometry:
    def test_num_sets(self):
        assert CacheConfig(1024, 2, 64, 1).num_sets == 8

    def test_rejects_non_integral_sets(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(1000, 2, 64, 1)

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(0, 2, 64, 1)


class TestCache:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert not cache.access(0x1000)
        assert cache.access(0x1000)
        assert cache.hits == 1 and cache.misses == 1

    def test_same_line_different_offsets_hit(self):
        cache = small_cache()
        cache.access(0x1000)
        assert cache.access(0x1020)  # same 64B line

    def test_adjacent_lines_are_distinct(self):
        cache = small_cache()
        cache.access(0x1000)
        assert not cache.access(0x1040)

    def test_lru_eviction(self):
        cache = small_cache(assoc=2)  # 8 sets
        set_stride = 8 * 64  # addresses mapping to the same set
        a, b, c = 0, set_stride, 2 * set_stride
        cache.access(a)
        cache.access(b)
        cache.access(c)  # evicts a (LRU)
        assert not cache.contains(a)
        assert cache.contains(b) and cache.contains(c)

    def test_access_refreshes_lru(self):
        cache = small_cache(assoc=2)
        set_stride = 8 * 64
        a, b, c = 0, set_stride, 2 * set_stride
        cache.access(a)
        cache.access(b)
        cache.access(a)  # a becomes MRU
        cache.access(c)  # evicts b
        assert cache.contains(a)
        assert not cache.contains(b)

    def test_contains_does_not_disturb_lru(self):
        cache = small_cache(assoc=2)
        set_stride = 8 * 64
        a, b, c = 0, set_stride, 2 * set_stride
        cache.access(a)
        cache.access(b)
        cache.contains(a)  # must NOT refresh a
        cache.access(c)  # evicts a (still LRU)
        assert not cache.contains(a)

    def test_miss_rate(self):
        cache = small_cache()
        cache.access(0)
        cache.access(0)
        cache.access(64)
        assert cache.miss_rate == pytest.approx(2 / 3)

    def test_reset_statistics_keeps_contents(self):
        cache = small_cache()
        cache.access(0)
        cache.reset_statistics()
        assert cache.misses == 0
        assert cache.access(0)  # still resident

    def test_working_set_larger_than_cache_thrashes(self):
        cache = small_cache(size=1024, assoc=2, line=64)  # 16 lines
        addresses = [i * 64 for i in range(64)]
        for _ in range(3):
            for address in addresses:
                cache.access(address)
        assert cache.miss_rate > 0.9

    def test_negative_address_rejected(self):
        with pytest.raises(ConfigurationError):
            small_cache().access(-1)
