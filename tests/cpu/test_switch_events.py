"""Tests for the detailed core's switch-event variants (Section 6).

The scenario needs a thread whose misses mostly *hit the L2*: we shrink
the L1D to 8 KB and give the thread a 16 KB hot set, so after a short
cold phase every hot-set miss is an L1-miss/L2-hit (~15 cycles). The
partner thread misses frequently enough to hand the core back quickly,
keeping the test fast.
"""

import pytest

from repro.core.controller import FairnessController, FairnessParams
from repro.cpu.machine import CacheConfig, MachineConfig
from repro.cpu.soe_core import run_cpu_soe
from repro.errors import ConfigurationError
from repro.workloads.tracegen import CpuWorkloadSpec, make_trace

L2_HITTER = CpuWorkloadSpec(
    name="l2-hitter", ilp=6, ipm=1e9, load_fraction=0.35,
    store_fraction=0.05, branch_fraction=0.08, branch_noise=0.02,
    hot_bytes=16 * 1024, code_bytes=2 * 1024,
)
PARTNER = CpuWorkloadSpec(
    name="sw-partner", ilp=6, ipm=1_000.0, load_fraction=0.25,
    store_fraction=0.05, branch_fraction=0.08, branch_noise=0.02,
    hot_bytes=4 * 1024, code_bytes=2 * 1024,
)


def config(**overrides):
    return MachineConfig(l1d=CacheConfig(8 * 1024, 8, 64, 3), **overrides)


def programs():
    return [
        make_trace(PARTNER, seed=1, thread_index=0),
        make_trace(L2_HITTER, seed=2, thread_index=1),
    ]


def run(machine, controller=None):
    return run_cpu_soe(
        programs(),
        controller,
        config=machine,
        min_instructions=6_000,
        warmup_instructions=5_000,
    )


@pytest.fixture(scope="module")
def l2_mode_run():
    return run(config(switch_event="l2"))


@pytest.fixture(scope="module")
def l1_mode_run():
    return run(config(switch_event="l1"))


class TestSwitchEventConfig:
    def test_rejects_unknown_event(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(switch_event="l3")

    def test_l1_mode_switches_far_more_often(self, l2_mode_run, l1_mode_run):
        # In l2 mode the L2-hitter's post-warmup misses are L1-only and
        # never trigger switches (cold memory misses are gone by then);
        # in l1 mode every unresolved L1 miss at the head switches.
        l2_switches = l2_mode_run.threads[1].miss_switches
        l1_switches = l1_mode_run.threads[1].miss_switches
        assert l1_switches > 5 * max(l2_switches, 1)

    def test_l1_mode_reports_short_latencies(self):
        controller = FairnessController(
            2,
            FairnessParams(
                fairness_target=0.5,
                sample_period=4_000.0,
                measure_miss_latency=True,
            ),
        )
        run(config(switch_event="l1"), controller)
        latencies = controller.measured_latencies
        assert latencies is not None
        # The L2-hitter's events are L2 hits (~15 cycles), far below the
        # 300-cycle memory latency the base mechanism would assume.
        assert latencies[1] < 100.0

    def test_both_modes_make_progress(self, l2_mode_run, l1_mode_run):
        for result in (l2_mode_run, l1_mode_run):
            for stats in result.threads:
                assert stats.retired > 500
