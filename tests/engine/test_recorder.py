"""Tests for the interval recorder (Figure 5 support)."""

import pytest

from repro.core.controller import FairnessController, FairnessParams
from repro.engine.recorder import IntervalRecorder
from repro.engine.soe import RunLimits, SoeEngine, SoeParams
from repro.errors import ConfigurationError
from repro.workloads.synthetic import uniform_stream


def run_with_recorder(interval=10_000.0, min_instructions=200_000):
    streams = [
        uniform_stream(2.5, 15_000, seed=1),
        uniform_stream(2.5, 1_000, seed=2),
    ]
    recorder = IntervalRecorder(interval=interval)
    engine = SoeEngine(
        streams,
        params=SoeParams(miss_lat=300, switch_lat=25),
        recorder=recorder,
    )
    engine.run(RunLimits(min_instructions=min_instructions))
    return recorder


class TestIntervalRecorder:
    def test_samples_are_evenly_spaced(self):
        recorder = run_with_recorder(interval=10_000.0)
        times = [s.time for s in recorder.samples]
        assert len(times) > 5
        deltas = [b - a for a, b in zip(times, times[1:])]
        for delta in deltas:
            assert delta == pytest.approx(10_000.0, abs=1.0)

    def test_interval_ipcs_sum_to_throughput_shape(self):
        recorder = run_with_recorder()
        for sample in recorder.samples:
            total = sum(sample.ipcs)
            assert 0.0 <= total <= 3.0  # bounded by IPC_no_miss

    def test_cumulative_retired_is_monotone(self):
        recorder = run_with_recorder()
        for tid in range(2):
            series = [s.cumulative_retired[tid] for s in recorder.samples]
            assert series == sorted(series)

    def test_interval_deltas_match_cumulative_differences(self):
        recorder = run_with_recorder()
        samples = recorder.samples
        for prev, cur in zip(samples, samples[1:]):
            for tid in range(2):
                expected = cur.cumulative_retired[tid] - prev.cumulative_retired[tid]
                assert cur.retired[tid] == pytest.approx(expected, abs=1e-6)

    def test_speedups_and_fairness_helpers(self):
        recorder = run_with_recorder()
        st = [2.38, 1.43]
        sample = recorder.samples[-1]
        speedups = sample.speedups(st)
        assert len(speedups) == 2
        assert 0.0 <= sample.achieved_fairness(st) <= 1.0

    def test_works_alongside_controller_boundaries(self):
        # Recorder interval deliberately different from Delta.
        streams = [
            uniform_stream(2.5, 15_000, seed=1),
            uniform_stream(2.5, 1_000, seed=2),
        ]
        recorder = IntervalRecorder(interval=30_000.0)
        controller = FairnessController(
            2, FairnessParams(fairness_target=0.5, sample_period=50_000.0)
        )
        engine = SoeEngine(streams, controller, SoeParams(), recorder=recorder)
        engine.run(RunLimits(min_instructions=150_000))
        assert len(recorder.samples) > 0
        assert len(controller.history) > 0
        # Controller boundaries at multiples of its Delta.
        for point in controller.history:
            assert point.time % 50_000.0 == pytest.approx(0.0, abs=1.0)

    def test_rejects_non_positive_interval(self):
        with pytest.raises(ConfigurationError):
            IntervalRecorder(interval=0)
