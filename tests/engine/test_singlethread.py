"""Tests for the single-thread reference runner."""

import pytest

from repro.engine.segments import Segment, stream_from_segments
from repro.engine.singlethread import run_single_thread
from repro.errors import ConfigurationError
from repro.workloads.synthetic import uniform_stream


class TestRunSingleThread:
    def test_matches_eq1_for_uniform_workload(self):
        # IPC_ST = IPM / (CPM + miss_lat) for a deterministic stream.
        stream = uniform_stream(ipc_no_miss=2.5, ipm=1_000)
        result = run_single_thread(stream, miss_lat=300, min_instructions=100_000)
        assert result.ipc == pytest.approx(1_000 / 700, rel=1e-6)

    def test_counts_misses(self):
        stream = stream_from_segments([Segment(100, 40)] * 5)
        result = run_single_thread(stream, miss_lat=300, min_instructions=10_000)
        assert result.misses == 5
        assert result.retired == pytest.approx(500)

    def test_miss_free_trailing_segment_adds_no_stall(self):
        stream = stream_from_segments(
            [Segment(100, 40), Segment(100, 40, ends_with_miss=False)]
        )
        result = run_single_thread(stream, miss_lat=300, min_instructions=10_000)
        assert result.cycles == pytest.approx(40 + 300 + 40)

    def test_stops_at_segment_boundary_after_min_instructions(self):
        stream = stream_from_segments([Segment(100, 40)] * 100)
        result = run_single_thread(stream, miss_lat=300, min_instructions=250)
        assert result.retired == pytest.approx(300)

    def test_warmup_excluded_from_window(self):
        # First segment is atypical; warmup should hide it.
        segments = [Segment(10_000, 1_000)] + [Segment(100, 40)] * 200
        stream = stream_from_segments(segments)
        result = run_single_thread(
            stream, miss_lat=300, min_instructions=5_000, warmup_instructions=10_000
        )
        assert result.ipc == pytest.approx(100 / 340, rel=1e-6)

    def test_zero_miss_latency(self):
        stream = uniform_stream(2.0, 500)
        result = run_single_thread(stream, miss_lat=0, min_instructions=10_000)
        assert result.ipc == pytest.approx(2.0)

    def test_finite_stream_ending_inside_warmup_measures_everything(self):
        stream = stream_from_segments([Segment(100, 50)] * 3)
        result = run_single_thread(
            stream, miss_lat=100, min_instructions=10, warmup_instructions=10_000
        )
        assert result.retired == pytest.approx(300)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"miss_lat": -1},
            {"min_instructions": 0},
            {"warmup_instructions": -1},
        ],
    )
    def test_rejects_bad_configuration(self, kwargs):
        stream = uniform_stream(2.0, 500)
        with pytest.raises(ConfigurationError):
            run_single_thread(stream, **kwargs)
