"""Tests for run result types."""

import pytest

from repro.engine.results import SingleThreadResult, SoeRunResult, ThreadStats
from repro.errors import ConfigurationError


def make_result():
    return SoeRunResult(
        cycles=10_000.0,
        threads=(
            ThreadStats(retired=20_000, run_cycles=8_000, misses=10,
                        miss_switches=10, forced_switches=5, cycle_quota_switches=1),
            ThreadStats(retired=5_000, run_cycles=1_500, misses=20,
                        miss_switches=20, forced_switches=0, cycle_quota_switches=0),
        ),
        idle_cycles=100.0,
        switch_overhead_cycles=400.0,
    )


class TestSoeRunResult:
    def test_per_thread_ipcs_share_the_window(self):
        result = make_result()
        assert result.ipcs == [pytest.approx(2.0), pytest.approx(0.5)]

    def test_total_ipc(self):
        assert make_result().total_ipc == pytest.approx(2.5)

    def test_switch_counts(self):
        result = make_result()
        assert result.total_switches == 36
        assert result.forced_switches == 5

    def test_forced_switches_per_kcycle(self):
        assert make_result().forced_switches_per_kcycle() == pytest.approx(0.5)

    def test_speedups_and_fairness(self):
        result = make_result()
        st = [2.5, 2.0]
        assert result.speedups(st) == [pytest.approx(0.8), pytest.approx(0.25)]
        assert result.achieved_fairness(st) == pytest.approx(0.3125)

    def test_rejects_empty_window(self):
        with pytest.raises(ConfigurationError):
            SoeRunResult(cycles=0.0, threads=(), idle_cycles=0, switch_overhead_cycles=0)


class TestThreadStats:
    def test_switches_sum(self):
        stats = ThreadStats(1, 1, 1, miss_switches=3, forced_switches=2,
                            cycle_quota_switches=1)
        assert stats.switches == 6


class TestSingleThreadResult:
    def test_ipc(self):
        result = SingleThreadResult(retired=700, cycles=1_000, misses=1)
        assert result.ipc == pytest.approx(0.7)

    def test_empty_window_rejected(self):
        with pytest.raises(ConfigurationError):
            SingleThreadResult(retired=0, cycles=0, misses=0).ipc
