"""Tests for the engine backend layer (specs, resolution, reference).

The vectorized backend's numerical behaviour is covered by the
differential suite (tests/integration/test_batch_differential.py); this
file pins the plumbing: spec validation, the scalar reference backend's
equivalence to direct ``run_soe`` calls, and name-based resolution
including the numpy-absent fallback.
"""

import pytest

from repro.core.controller import FairnessController, FairnessParams
from repro.engine import backend as backend_mod
from repro.engine.backend import (
    BACKEND_NAMES,
    EngineBackend,
    ScalarBackend,
    SoeRunSpec,
    get_backend,
    numpy_available,
)
from repro.engine.soe import RunLimits, SoeParams, run_soe
from repro.errors import ConfigurationError
from repro.workloads.synthetic import uniform_stream

LIMITS = RunLimits(min_instructions=100_000.0, warmup_instructions=20_000.0)


def _spec(seed=0, fairness=None):
    return SoeRunSpec(
        streams=(
            uniform_stream(2.0, 8_000, seed=seed),
            uniform_stream(1.0, 600, seed=seed + 1),
        ),
        fairness=fairness,
        params=SoeParams(),
        limits=LIMITS,
    )


class TestSoeRunSpec:
    def test_requires_two_threads(self):
        with pytest.raises(ConfigurationError, match="at least two"):
            SoeRunSpec(streams=(uniform_stream(1.0, 1_000),))

    def test_num_threads(self):
        streams = tuple(uniform_stream(1.0, 1_000, seed=i) for i in range(3))
        assert SoeRunSpec(streams=streams).num_threads == 3

    def test_make_policy_none_for_baseline(self):
        assert _spec().make_policy() is None

    def test_make_policy_builds_fresh_controller(self):
        spec = _spec(fairness=FairnessParams(fairness_target=0.5))
        first = spec.make_policy()
        second = spec.make_policy()
        assert isinstance(first, FairnessController)
        assert first is not second


class TestScalarBackend:
    def test_supports_everything(self):
        assert ScalarBackend().supports(_spec())

    def test_matches_direct_run_soe_bit_identically(self):
        specs = [
            _spec(seed=0),
            _spec(seed=7, fairness=FairnessParams(fairness_target=0.5)),
        ]
        results = ScalarBackend().run_batch(specs)
        for spec, result in zip(specs, results):
            direct = run_soe(
                spec.streams, spec.make_policy(), spec.params, spec.limits
            )
            assert result == direct

    def test_preserves_spec_order(self):
        specs = [
            SoeRunSpec(
                streams=(
                    uniform_stream(2.0, ipm),
                    uniform_stream(1.0, 600),
                ),
                limits=LIMITS,
            )
            for ipm in (9_000, 5_000, 7_000)
        ]
        results = ScalarBackend().run_batch(specs)
        directs = [
            run_soe(s.streams, None, s.params, s.limits) for s in specs
        ]
        assert results == directs
        # Different workloads produce different runs, so order is
        # observable, not vacuous.
        assert results[0] != results[1]

    def test_satisfies_protocol(self):
        assert isinstance(ScalarBackend(), EngineBackend)


class TestGetBackend:
    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown engine backend"):
            get_backend("vector")

    def test_scalar_always_resolves(self):
        assert get_backend("scalar").name == "scalar"

    @pytest.mark.skipif(not numpy_available(), reason="needs numpy")
    def test_batch_resolves_with_numpy(self):
        backend = get_backend("batch")
        assert backend.name == "batch"
        assert isinstance(backend, EngineBackend)

    @pytest.mark.skipif(not numpy_available(), reason="needs numpy")
    def test_auto_prefers_batch_with_numpy(self):
        assert get_backend("auto").name == "batch"

    def test_auto_falls_back_without_numpy(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "numpy_available", lambda: False)
        assert get_backend("auto").name == "scalar"

    def test_batch_errors_without_numpy(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "numpy_available", lambda: False)
        with pytest.raises(ConfigurationError, match="needs numpy"):
            get_backend("batch")

    def test_names_tuple_is_the_cli_contract(self):
        assert BACKEND_NAMES == ("scalar", "batch", "auto")
