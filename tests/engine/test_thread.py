"""Tests for the engine's per-thread state."""

import pytest

from repro.engine.segments import Segment, stream_from_segments
from repro.engine.thread import EngineThread
from repro.errors import SimulationError


def make_thread(segments=None):
    if segments is None:
        segments = [Segment(100, 40), Segment(200, 100)]
    return EngineThread(0, stream_from_segments(segments))


class TestEngineThread:
    def test_loads_first_segment(self):
        thread = make_thread()
        assert thread.segment is not None
        assert thread.ipc == pytest.approx(2.5)
        assert not thread.done

    def test_advance_retires_at_segment_ipc(self):
        thread = make_thread()
        retired = thread.advance(20)
        assert retired == pytest.approx(50)
        assert thread.retired == pytest.approx(50)
        assert thread.run_cycles == pytest.approx(20)

    def test_cycles_to_segment_end(self):
        thread = make_thread()
        thread.advance(15)
        assert thread.cycles_to_segment_end == pytest.approx(25)

    def test_cannot_advance_past_segment(self):
        thread = make_thread()
        with pytest.raises(SimulationError):
            thread.advance(41)

    def test_finish_segment_with_miss_sets_ready_at(self):
        thread = make_thread()
        thread.advance(40)
        missed = thread.finish_segment(now=40.0, miss_lat=300.0)
        assert missed
        assert thread.ready_at == pytest.approx(340.0)
        assert thread.misses == 1
        assert thread.segment.instructions == 200  # next segment loaded

    def test_finish_missless_segment_is_immediately_ready(self):
        thread = make_thread([Segment(100, 40, ends_with_miss=False), Segment(1, 1)])
        thread.advance(40)
        missed = thread.finish_segment(now=40.0, miss_lat=300.0)
        assert not missed
        assert thread.ready_at == pytest.approx(40.0)
        assert thread.misses == 0

    def test_stream_exhaustion_marks_done(self):
        thread = make_thread([Segment(100, 40)])
        thread.advance(40)
        thread.finish_segment(now=40.0, miss_lat=300.0)
        assert thread.done
        assert thread.segment is None

    def test_is_ready_respects_ready_at(self):
        thread = make_thread()
        thread.ready_at = 100.0
        assert not thread.is_ready(50.0)
        assert thread.is_ready(100.0)

    def test_done_thread_is_never_ready(self):
        thread = make_thread([Segment(100, 40)])
        thread.advance(40)
        thread.finish_segment(now=40.0, miss_lat=0.0)
        assert not thread.is_ready(1e9)

    def test_negative_advance_rejected(self):
        with pytest.raises(SimulationError):
            make_thread().advance(-1)
