"""Deeper semantic tests for the segment engine: warmup windows,
boundary handling across idle/overhead time, and policy interplay."""

import math

import pytest

from repro.core.controller import FairnessController, FairnessParams
from repro.core.policy import SwitchPolicy
from repro.engine.segments import Segment, stream_from_segments
from repro.engine.soe import RunLimits, SoeEngine, SoeParams, run_soe
from repro.workloads.synthetic import uniform_stream


class BoundarySpy(SwitchPolicy):
    """Records every boundary callback time."""

    def __init__(self, period):
        self.period = period
        self.times = []
        self._next = period

    def next_boundary(self, now):
        return self._next

    def on_boundary(self, now):
        self.times.append(now)
        while self._next <= now:
            self._next += self.period


class TestBoundaryDelivery:
    def test_boundaries_fire_during_idle(self):
        # Two extremely missy threads idle a lot; boundaries must still
        # arrive on schedule.
        streams = [
            uniform_stream(2.0, 50, seed=1),
            uniform_stream(2.0, 50, seed=2),
        ]
        spy = BoundarySpy(1_000.0)
        engine = SoeEngine(streams, spy, SoeParams())
        engine.run(RunLimits(min_instructions=5_000))
        assert len(spy.times) > 3
        for expected, actual in zip(
            range(1_000, 100_000, 1_000), spy.times
        ):
            assert actual == pytest.approx(float(expected), abs=1e-6)

    def test_boundaries_fire_during_execution(self):
        streams = [
            uniform_stream(2.5, 100_000, seed=1),  # long segments
            uniform_stream(2.5, 100_000, seed=2),
        ]
        spy = BoundarySpy(777.0)
        engine = SoeEngine(streams, spy, SoeParams())
        engine.run(RunLimits(min_instructions=100_000))
        deltas = [b - a for a, b in zip(spy.times, spy.times[1:])]
        for delta in deltas:
            assert delta == pytest.approx(777.0, abs=1e-6)

    def test_boundary_does_not_end_the_dispatch(self):
        # A thread mid-segment at a boundary keeps running: no switch is
        # recorded for boundary crossings.
        streams = [
            uniform_stream(2.5, 50_000, seed=1),
            uniform_stream(2.5, 50_000, seed=2),
        ]
        spy = BoundarySpy(500.0)
        engine = SoeEngine(streams, spy, SoeParams())
        result = engine.run(RunLimits(min_instructions=60_000))
        switches = result.total_switches
        assert len(spy.times) > 10 * switches


class TestWarmupSemantics:
    def test_warmup_excludes_transient(self):
        # A finite stream with a pathological prefix: warmup hides it.
        slow_prefix = [Segment(1_000, 10_000)] * 5  # IPC 0.1
        steady = [Segment(1_000, 400)] * 200        # IPC 2.5
        make = lambda: stream_from_segments(slow_prefix + steady)
        full = run_soe(
            [make(), make()],
            limits=RunLimits(min_instructions=1e9),
        )
        warmed = run_soe(
            [make(), make()],
            limits=RunLimits(min_instructions=1e9, warmup_instructions=30_000),
        )
        assert warmed.total_ipc > full.total_ipc

    def test_controller_state_survives_warmup(self):
        # The paper warms the fairness mechanism during the excluded
        # prefix: quotas must already be finite when measurement starts.
        streams = [
            uniform_stream(2.5, 15_000, seed=1),
            uniform_stream(2.5, 1_000, seed=2),
        ]
        controller = FairnessController(2, FairnessParams(fairness_target=1.0))
        engine = SoeEngine(streams, controller, SoeParams())
        engine.run(RunLimits(min_instructions=1_200_000,
                             warmup_instructions=900_000))
        assert all(math.isfinite(q) for q in controller.quotas)
        assert len(controller.history) >= 2


class TestSwitchReasonAccounting:
    def test_reasons_are_mutually_exclusive_counts(self):
        streams = [
            uniform_stream(2.5, 15_000, seed=1),
            uniform_stream(2.5, 1_000, seed=2),
        ]
        controller = FairnessController(2, FairnessParams(fairness_target=1.0))
        result = run_soe(
            streams, controller, SoeParams(),
            RunLimits(min_instructions=1_000_000, warmup_instructions=600_000),
        )
        for stats in result.threads:
            assert stats.switches == (
                stats.miss_switches
                + stats.forced_switches
                + stats.cycle_quota_switches
            )

    def test_forced_switches_only_with_enforcement(self):
        streams = [
            uniform_stream(2.5, 15_000, seed=1),
            uniform_stream(2.5, 1_000, seed=2),
        ]
        result = run_soe(streams, limits=RunLimits(min_instructions=300_000))
        assert result.forced_switches == 0

    def test_miss_switch_count_equals_miss_count(self):
        streams = [
            uniform_stream(2.5, 5_000, seed=1),
            uniform_stream(2.5, 3_000, seed=2),
        ]
        result = run_soe(streams, limits=RunLimits(min_instructions=300_000))
        for stats in result.threads:
            assert stats.miss_switches == stats.misses
