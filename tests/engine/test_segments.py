"""Tests for segment abstractions."""

import pytest

from repro.engine.segments import Segment, stream_from_segments
from repro.errors import ConfigurationError, WorkloadError


class TestSegment:
    def test_ipc(self):
        assert Segment(instructions=1_000, cycles=400).ipc == pytest.approx(2.5)

    def test_defaults_to_miss_terminated(self):
        assert Segment(10, 5).ends_with_miss

    @pytest.mark.parametrize("instructions,cycles", [(0, 1), (-1, 1), (1, 0), (1, -1)])
    def test_rejects_non_positive(self, instructions, cycles):
        with pytest.raises(ConfigurationError):
            Segment(instructions, cycles)

    def test_is_immutable(self):
        segment = Segment(10, 5)
        with pytest.raises(AttributeError):
            segment.instructions = 20


class TestStreamFromSegments:
    def test_replays_identically(self):
        stream = stream_from_segments([Segment(10, 5), Segment(20, 8)])
        first = list(stream.segments())
        second = list(stream.segments())
        assert first == second
        assert len(first) == 2

    def test_iterators_are_independent(self):
        stream = stream_from_segments([Segment(10, 5), Segment(20, 8)])
        it1 = stream.segments()
        it2 = stream.segments()
        next(it1)
        assert next(it2).instructions == 10

    def test_rejects_empty(self):
        with pytest.raises(WorkloadError):
            stream_from_segments([])

    def test_keeps_name(self):
        stream = stream_from_segments([Segment(1, 1)], name="toy")
        assert stream.name == "toy"
