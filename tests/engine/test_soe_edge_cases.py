"""Regression tests for segment-engine edge cases.

Covers three historical bugs -- the all-idle spin at the ``max_cycles``
cap, float drift across boundary-split inactive spans, and the
double-query of ``policy.next_boundary`` in the boundary-firing loop --
plus golden pins of ``_step_active``'s zero-budget tie-breaking order
and the miss-free segment join, which the batch backend must reproduce
exactly.
"""

import math

import pytest

from repro.core.policy import SwitchPolicy
from repro.engine.segments import Segment, stream_from_segments
from repro.engine.soe import RunLimits, SoeEngine, SoeParams


def _two_segment_stream(miss_latency):
    """Two 25-instruction, 10-cycle segments; the first ends with a
    miss of the given latency, so the stream is not exhausted when the
    miss parks the thread."""
    return stream_from_segments(
        [
            Segment(25.0, 10.0, miss_latency=miss_latency),
            Segment(25.0, 10.0),
        ]
    )


class TestIdleAtMaxCyclesCap:
    """``_idle_until_ready`` when every pending ``ready_at`` exceeds
    ``max_cycles``: the elapse must still terminate the run loop."""

    def test_all_idle_span_at_the_cap_terminates(self):
        # Both threads miss with an astronomically long latency after 10
        # cycles each, so from now=20 the core idles with every ready_at
        # far beyond the cap. A cap within _EPS of now makes the naive
        # ``min(target, cap) - now`` elapse non-positive: pre-fix, the
        # run loop spun forever here.
        streams = [_two_segment_stream(1e12), _two_segment_stream(1e12)]
        engine = SoeEngine(streams, params=SoeParams(switch_lat=0.0))
        cap = 20.0 + 1e-10
        result = engine.run(RunLimits(min_instructions=100.0, max_cycles=cap))
        assert engine.now == cap
        assert result.cycles == pytest.approx(cap)
        for stats in result.threads:
            assert stats.retired == 25.0

    def test_idle_elapses_to_a_distant_cap(self):
        # Same all-idle span with the cap well beyond now: the engine
        # must idle exactly up to the cap, not to the pending ready_at.
        streams = [_two_segment_stream(1e12), _two_segment_stream(1e12)]
        engine = SoeEngine(streams, params=SoeParams(switch_lat=0.0))
        result = engine.run(RunLimits(min_instructions=100.0, max_cycles=500.0))
        assert engine.now == 500.0
        assert result.idle_cycles == pytest.approx(480.0)

    def test_idle_before_the_cap_is_unchanged(self):
        # When the earliest ready_at is below the cap the normal elapse
        # path runs: the thread resumes and retires its second segment.
        streams = [_two_segment_stream(100.0), _two_segment_stream(100.0)]
        engine = SoeEngine(streams, params=SoeParams(switch_lat=0.0))
        result = engine.run(RunLimits(min_instructions=50.0, max_cycles=1e6))
        for stats in result.threads:
            assert stats.retired == 50.0


class ExactBoundarySpy(SwitchPolicy):
    """Boundary schedule with a period that is not exactly representable;
    records the engine clock alongside each delivered boundary."""

    def __init__(self, period):
        self.period = period
        self._next = period
        self.observed = []  # (engine.now at delivery, boundary delivered)
        self.engine = None

    def next_boundary(self, now):
        return self._next

    def on_boundary(self, now):
        self.observed.append((self.engine.now, now))
        while self._next <= now:
            self._next += self.period


class TestBoundaryDriftSnap:
    """``_elapse_inactive`` must hand boundaries to the policy with the
    clock sitting exactly on the boundary, even after many spans whose
    lengths do not align with the (inexact) sampling period."""

    def test_clock_is_exact_at_every_boundary(self):
        # Delta = 0.1 accumulates representation error; elapsing in
        # 0.07-cycle spans makes ``now`` accumulate independent rounding.
        # Pre-fix, the clock delivered boundary 2.800000000000001 at
        # now=2.799999999999999 (and drifted further on).
        streams = [
            stream_from_segments([Segment(25.0, 10.0)]),
            stream_from_segments([Segment(25.0, 10.0)]),
        ]
        spy = ExactBoundarySpy(0.1)
        engine = SoeEngine(streams, spy, SoeParams(switch_lat=0.0))
        spy.engine = engine
        for _ in range(200):
            engine._elapse_inactive(0.07, "idle")
        assert len(spy.observed) == 140
        for engine_now, boundary in spy.observed:
            assert engine_now == boundary

    def test_idle_accounting_is_preserved(self):
        streams = [
            stream_from_segments([Segment(25.0, 10.0)]),
            stream_from_segments([Segment(25.0, 10.0)]),
        ]
        spy = ExactBoundarySpy(0.1)
        engine = SoeEngine(streams, spy, SoeParams(switch_lat=0.0))
        spy.engine = engine
        for _ in range(200):
            engine._elapse_inactive(0.07, "idle")
        # Snapping moves the clock by at most _EPS per boundary; the
        # idle ledger must still cover the whole elapsed span.
        assert engine.idle_cycles == pytest.approx(engine.now, abs=1e-6)


class PoppingSchedule(SwitchPolicy):
    """A schedule that advances on *query*: each ``next_boundary`` call
    consumes the next value. Exposes whether the engine re-queries
    between the due-check and the ``on_boundary`` delivery."""

    def __init__(self, values):
        self._values = list(values)
        self.received = []

    def next_boundary(self, now):
        if self._values:
            return self._values.pop(0)
        return math.inf

    def on_boundary(self, now):
        self.received.append(now)


class TestSingleQueryPerBoundary:
    def test_on_boundary_receives_the_value_that_passed_the_guard(self):
        streams = [
            stream_from_segments([Segment(25.0, 10.0)]),
            stream_from_segments([Segment(25.0, 10.0)]),
        ]
        # The fast-path due-check consumes 3.0; the firing loop then
        # queries once per iteration: 4.0 is due and must be delivered
        # as-is, inf ends the loop. Pre-fix the loop queried twice --
        # the guard consumed 4.0 and ``on_boundary`` received inf.
        policy = PoppingSchedule([3.0, 4.0])
        engine = SoeEngine(streams, policy, SoeParams(switch_lat=0.0))
        engine.now = 10.0
        engine._fire_due_boundaries()
        assert policy.received == [4.0]

    def test_every_delivered_boundary_was_due(self):
        streams = [
            stream_from_segments([Segment(25.0, 10.0)]),
            stream_from_segments([Segment(25.0, 10.0)]),
        ]
        policy = PoppingSchedule([1.0, 2.0, 5.0, 7.5, 9.0, 42.0])
        engine = SoeEngine(streams, policy, SoeParams(switch_lat=0.0))
        engine.now = 10.0
        engine._fire_due_boundaries()
        assert policy.received == [2.0, 5.0, 7.5, 9.0]
        for boundary in policy.received:
            assert boundary <= engine.now + 1e-9


class BudgetStub(SwitchPolicy):
    """Fixed per-dispatch budgets plus a switch-reason log."""

    def __init__(self, instr=math.inf, cycle=math.inf):
        self._instr = instr
        self._cycle = cycle
        self.switch_reasons = []
        self.dispatches = []

    def instruction_budget(self, thread_id):
        return self._instr

    def cycle_budget(self, thread_id):
        return self._cycle

    def on_run_start(self, thread_id, now):
        self.dispatches.append((thread_id, now))

    def on_switch_out(self, thread_id, reason, now):
        self.switch_reasons.append((thread_id, reason, now))


def _engine_with_active_thread(policy):
    """An engine with thread 0 freshly dispatched at now=0."""
    streams = [
        stream_from_segments([Segment(25.0, 10.0), Segment(25.0, 10.0)]),
        stream_from_segments([Segment(25.0, 10.0)]),
    ]
    engine = SoeEngine(streams, policy, SoeParams(switch_lat=0.0))
    engine._dispatch(engine.threads[0])
    return engine


class TestZeroBudgetTieBreaking:
    """Golden pins of ``_step_active``'s zero-dt classification order:
    segment end beats instruction quota beats cycle quota. The batch
    backend must break these ties identically."""

    def test_segment_end_wins_over_both_zero_budgets(self):
        policy = BudgetStub(instr=0.0, cycle=0.0)
        engine = _engine_with_active_thread(policy)
        thread = engine.threads[0]
        thread.segment_cycles_done = thread.segment.cycles
        engine._step_active(RunLimits())
        assert thread.misses == 1
        assert thread.forced_switches == 0
        assert thread.cycle_quota_switches == 0
        assert policy.switch_reasons == [(0, "miss", 0.0)]
        assert thread.ready_at == 300.0  # parked for the default miss_lat

    def test_instruction_quota_wins_over_zero_cycle_budget(self):
        policy = BudgetStub(instr=0.0, cycle=0.0)
        engine = _engine_with_active_thread(policy)
        thread = engine.threads[0]
        engine._step_active(RunLimits())
        assert thread.forced_switches == 1
        assert thread.misses == 0
        assert thread.cycle_quota_switches == 0
        assert policy.switch_reasons == [(0, "quota", 0.0)]
        assert thread.ready_at == 0.0  # immediately runnable again

    def test_cycle_quota_is_the_final_tiebreak(self):
        policy = BudgetStub(instr=math.inf, cycle=0.0)
        engine = _engine_with_active_thread(policy)
        thread = engine.threads[0]
        engine._step_active(RunLimits())
        assert thread.cycle_quota_switches == 1
        assert thread.misses == 0
        assert thread.forced_switches == 0
        assert policy.switch_reasons == [(0, "cycle_quota", 0.0)]
        assert thread.ready_at == 0.0


class TestMissFreeSegmentJoin:
    def test_join_retires_both_segments_in_one_dispatch(self):
        # Segment A ends without a miss: the thread flows straight into
        # segment B within the same dispatch -- no switch, no stall.
        policy = BudgetStub()
        streams = [
            stream_from_segments(
                [Segment(100.0, 40.0, ends_with_miss=False), Segment(100.0, 40.0)]
            ),
            stream_from_segments([Segment(100.0, 40.0)]),
        ]
        engine = SoeEngine(streams, policy, SoeParams(switch_lat=0.0))
        result = engine.run(RunLimits(min_instructions=200.0))

        first = result.threads[0]
        assert first.retired == 200.0
        assert first.run_cycles == 80.0
        assert first.misses == 1  # only segment B's terminating miss
        assert first.miss_switches == 1
        assert first.forced_switches == 0

        # One dispatch covered both segments; the only switch-out for
        # thread 0 is segment B's miss at t=80.
        assert [d for d in policy.dispatches if d[0] == 0] == [(0, 0.0)]
        assert [s for s in policy.switch_reasons if s[0] == 0] == [(0, "miss", 80.0)]
        assert engine.now == 120.0

    def test_join_does_not_park_the_thread(self):
        streams = [
            stream_from_segments(
                [Segment(100.0, 40.0, ends_with_miss=False), Segment(100.0, 40.0)]
            ),
            stream_from_segments([Segment(100.0, 40.0)]),
        ]
        engine = SoeEngine(streams, params=SoeParams(switch_lat=0.0))
        thread = engine.threads[0]
        engine._dispatch(thread)
        # One step runs segment A to its end and completes it: the
        # miss-free join leaves the thread active on segment B.
        engine._step_active(RunLimits())
        assert engine.now == 40.0
        assert engine._active is thread  # still running
        assert thread.ready_at == engine.now
        assert thread.segment is not None
        assert thread.segment_cycles_done == 0.0
