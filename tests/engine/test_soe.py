"""Tests for the segment-level SOE engine."""

import math

import pytest

from repro.core.controller import FairnessController, FairnessParams
from repro.core.policy import TimeSharingPolicy
from repro.engine.segments import Segment, stream_from_segments
from repro.engine.singlethread import run_single_thread
from repro.engine.soe import RunLimits, SoeEngine, SoeParams, run_soe
from repro.errors import ConfigurationError
from repro.workloads.synthetic import uniform_stream


def example2_streams(seed_a=1, seed_b=2):
    return [
        uniform_stream(2.5, 15_000, seed=seed_a),
        uniform_stream(2.5, 1_000, seed=seed_b),
    ]


EX2_PARAMS = SoeParams(miss_lat=300, switch_lat=25)


class TestSoeParams:
    def test_defaults_match_paper(self):
        params = SoeParams()
        assert params.miss_lat == 300.0
        assert params.switch_lat == 25.0
        assert params.max_cycles_quota == 50_000.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"miss_lat": -1},
            {"switch_lat": -1},
            {"max_cycles_quota": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            SoeParams(**kwargs)


class TestRunLimits:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_instructions": 0},
            {"warmup_instructions": -1},
            {"max_cycles": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            RunLimits(**kwargs)


class TestUnenforcedSoe:
    def test_matches_analytical_model_on_example2(self):
        # Eq. 2: IPC_SOE_j = IPM_j / (sum CPM + 2 * switch_lat).
        result = run_soe(
            example2_streams(),
            params=EX2_PARAMS,
            limits=RunLimits(min_instructions=200_000),
        )
        assert result.ipcs[0] == pytest.approx(15_000 / 6_450, rel=0.01)
        assert result.ipcs[1] == pytest.approx(1_000 / 6_450, rel=0.01)

    def test_unfairness_matches_paper(self):
        result = run_soe(
            example2_streams(),
            params=EX2_PARAMS,
            limits=RunLimits(min_instructions=200_000),
        )
        st = [
            run_single_thread(s, miss_lat=300, min_instructions=500_000).ipc
            for s in example2_streams()
        ]
        assert result.achieved_fairness(st) == pytest.approx(0.11, abs=0.01)

    def test_every_switch_hides_a_miss(self):
        result = run_soe(
            example2_streams(),
            params=EX2_PARAMS,
            limits=RunLimits(min_instructions=100_000),
        )
        assert result.forced_switches == 0
        for stats in result.threads:
            # Cycle-quota switches only fire for near-missless threads.
            assert stats.miss_switches >= stats.cycle_quota_switches

    def test_idle_when_both_threads_miss_together(self):
        # Two very missy threads: the partner's run (CPM + overhead) is
        # shorter than the miss latency, so the core must idle.
        streams = [
            uniform_stream(2.0, 100, seed=1),
            uniform_stream(2.0, 100, seed=2),
        ]
        result = run_soe(
            streams, params=EX2_PARAMS, limits=RunLimits(min_instructions=20_000)
        )
        assert result.idle_cycles > 0

    def test_no_idle_when_partner_covers_latency(self):
        result = run_soe(
            example2_streams(),
            params=EX2_PARAMS,
            limits=RunLimits(min_instructions=100_000),
        )
        assert result.idle_cycles == pytest.approx(0.0)

    def test_switch_overhead_accounted(self):
        result = run_soe(
            example2_streams(),
            params=EX2_PARAMS,
            limits=RunLimits(min_instructions=100_000),
        )
        assert result.switch_overhead_cycles == pytest.approx(
            25.0 * result.total_switches, rel=0.05
        )

    def test_window_accounting_is_complete(self):
        # Running cycles + idle + switch overhead = wall clock.
        result = run_soe(
            example2_streams(),
            params=EX2_PARAMS,
            limits=RunLimits(min_instructions=100_000),
        )
        accounted = (
            sum(t.run_cycles for t in result.threads)
            + result.idle_cycles
            + result.switch_overhead_cycles
        )
        assert accounted == pytest.approx(result.cycles, rel=1e-6)


class TestMaxCyclesQuota:
    def test_missless_thread_is_bounded_by_max_quota(self):
        # One thread never misses within the run: without the quota the
        # other thread would starve completely within each Delta.
        streams = [
            stream_from_segments([Segment(1e9, 4e8)]),  # effectively missless
            uniform_stream(2.5, 1_000, seed=2),
        ]
        params = SoeParams(miss_lat=300, switch_lat=25, max_cycles_quota=10_000)
        result = run_soe(streams, params=params, limits=RunLimits(min_instructions=50_000))
        assert result.threads[0].cycle_quota_switches > 0
        assert result.threads[1].retired > 0

    def test_dispatch_never_exceeds_quota(self):
        streams = [
            stream_from_segments([Segment(1e9, 4e8)]),
            stream_from_segments([Segment(1e9, 4e8)]),
        ]
        params = SoeParams(miss_lat=300, switch_lat=25, max_cycles_quota=5_000)
        result = run_soe(streams, params=params, limits=RunLimits(
            min_instructions=1e5, max_cycles=200_000))
        # Both threads alternate on the cycle quota: each got roughly
        # half the run cycles.
        runs = [t.run_cycles for t in result.threads]
        assert runs[0] == pytest.approx(runs[1], rel=0.1)


class TestFairnessEnforcementEndToEnd:
    @pytest.mark.parametrize("target", [0.25, 0.5, 1.0])
    def test_achieved_fairness_reaches_target(self, target):
        streams = example2_streams()
        controller = FairnessController(2, FairnessParams(fairness_target=target))
        result = run_soe(
            streams,
            controller,
            params=EX2_PARAMS,
            limits=RunLimits(min_instructions=1_500_000, warmup_instructions=1_000_000),
        )
        st = [
            run_single_thread(s, miss_lat=300, min_instructions=500_000).ipc
            for s in example2_streams()
        ]
        achieved = result.achieved_fairness(st)
        assert achieved == pytest.approx(target, abs=0.05)

    def test_f1_ipcs_match_analytical_model(self):
        controller = FairnessController(2, FairnessParams(fairness_target=1.0))
        result = run_soe(
            example2_streams(),
            controller,
            params=EX2_PARAMS,
            limits=RunLimits(min_instructions=1_500_000, warmup_instructions=1_000_000),
        )
        # Model: IPSw = [1667, 1000], round = 667 + 400 + 50.
        assert result.ipcs[0] == pytest.approx(1_667 / 1_117, rel=0.02)
        assert result.ipcs[1] == pytest.approx(1_000 / 1_117, rel=0.02)

    def test_forced_switches_increase_with_target(self):
        rates = []
        for target in (0.25, 0.5, 1.0):
            controller = FairnessController(2, FairnessParams(fairness_target=target))
            result = run_soe(
                example2_streams(),
                controller,
                params=EX2_PARAMS,
                limits=RunLimits(
                    min_instructions=1_000_000, warmup_instructions=500_000
                ),
            )
            rates.append(result.forced_switches_per_kcycle())
        assert rates == sorted(rates)

    def test_enforcement_costs_throughput_here(self):
        base = run_soe(
            example2_streams(),
            params=EX2_PARAMS,
            limits=RunLimits(min_instructions=1_000_000),
        )
        controller = FairnessController(2, FairnessParams(fairness_target=1.0))
        enforced = run_soe(
            example2_streams(),
            controller,
            params=EX2_PARAMS,
            limits=RunLimits(min_instructions=1_000_000, warmup_instructions=500_000),
        )
        assert enforced.total_ipc < base.total_ipc


class TestTimeSharingOnEngine:
    def test_equal_time_but_unequal_slowdown(self):
        # Section 6: a 400-cycle time quota divides time nearly equally
        # but produces poor fairness on Example 2's threads.
        policy = TimeSharingPolicy(400)
        result = run_soe(
            example2_streams(),
            policy,
            params=EX2_PARAMS,
            limits=RunLimits(min_instructions=500_000),
        )
        run_cycles = [t.run_cycles for t in result.threads]
        assert run_cycles[0] == pytest.approx(run_cycles[1], rel=0.25)
        st = [
            run_single_thread(s, miss_lat=300, min_instructions=500_000).ipc
            for s in example2_streams()
        ]
        assert result.achieved_fairness(st) < 0.8


class TestEngineEdgeCases:
    def test_requires_two_threads(self):
        with pytest.raises(ConfigurationError):
            SoeEngine([uniform_stream(2.0, 100)])

    def test_finite_streams_terminate(self):
        streams = [
            stream_from_segments([Segment(100, 40)] * 10),
            stream_from_segments([Segment(100, 40)] * 10),
        ]
        result = run_soe(streams, limits=RunLimits(min_instructions=1e9))
        assert result.threads[0].retired == pytest.approx(1_000)
        assert result.threads[1].retired == pytest.approx(1_000)

    def test_max_cycles_safety_stop(self):
        streams = example2_streams()
        result = run_soe(
            streams, limits=RunLimits(min_instructions=1e12, max_cycles=100_000)
        )
        assert result.cycles <= 101_000

    def test_deterministic_across_runs(self):
        r1 = run_soe(example2_streams(), limits=RunLimits(min_instructions=100_000))
        r2 = run_soe(example2_streams(), limits=RunLimits(min_instructions=100_000))
        assert r1.ipcs == r2.ipcs
        assert r1.cycles == r2.cycles

    def test_three_threads(self):
        streams = [
            uniform_stream(2.5, 5_000, seed=1),
            uniform_stream(2.0, 2_000, seed=2),
            uniform_stream(1.5, 500, seed=3),
        ]
        result = run_soe(streams, limits=RunLimits(min_instructions=100_000))
        assert result.num_threads == 3
        assert all(t.retired >= 100_000 for t in result.threads)

    def test_warmup_reduces_measured_window(self):
        full = run_soe(example2_streams(), limits=RunLimits(min_instructions=500_000))
        warmed = run_soe(
            example2_streams(),
            limits=RunLimits(min_instructions=500_000, warmup_instructions=250_000),
        )
        assert warmed.cycles < full.cycles
