"""Tests for the trace sinks and the ambient-sink plumbing."""

import json

import pytest

from repro import telemetry
from repro.errors import ConfigurationError
from repro.telemetry import (
    CONTROLLER,
    RUNNER,
    SWITCH,
    JsonlSink,
    NullSink,
    RingBufferSink,
    current_sink,
    resolve_sink,
    set_sink,
    tracing,
)
from repro.telemetry.events import stall, thread_switch


class TestNullSink:
    def test_is_disabled(self):
        sink = NullSink()
        assert sink.enabled is False

    def test_wants_nothing(self):
        sink = NullSink()
        for category in (CONTROLLER, SWITCH, RUNNER):
            assert sink.wants(category) is False

    def test_emit_is_a_noop(self):
        sink = NullSink()
        sink.emit(thread_switch(1.0, 0, "miss", "engine"))
        assert sink.emitted == 0
        sink.close()


class TestRingBufferSink:
    def test_keeps_most_recent_events(self):
        sink = RingBufferSink(capacity=3)
        for i in range(5):
            sink.emit(thread_switch(float(i), 0, "miss", "engine"))
        assert [e["t"] for e in sink.events] == [2.0, 3.0, 4.0]

    def test_emitted_counts_all_events_despite_eviction(self):
        sink = RingBufferSink(capacity=2)
        for i in range(7):
            sink.emit(stall(float(i), 10.0, "engine"))
        assert sink.emitted == 7
        assert len(sink.events) == 2

    def test_clear(self):
        sink = RingBufferSink()
        sink.emit(stall(0.0, 1.0, "engine"))
        sink.clear()
        assert sink.events == []

    def test_events_are_copies(self):
        sink = RingBufferSink()
        sink.emit(stall(0.0, 1.0, "engine"))
        sink.events.append("junk")
        assert len(sink.events) == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            RingBufferSink(capacity=0)

    def test_rejects_unknown_categories(self):
        with pytest.raises(ConfigurationError):
            RingBufferSink(categories=frozenset({"bogus"}))


class TestCategoryFiltering:
    def test_default_wants_everything(self):
        sink = RingBufferSink()
        assert all(sink.wants(c) for c in (CONTROLLER, SWITCH, RUNNER))

    def test_subset_filters(self):
        sink = RingBufferSink(categories=frozenset({CONTROLLER}))
        assert sink.wants(CONTROLLER)
        assert not sink.wants(SWITCH)
        assert not sink.wants(RUNNER)


class TestJsonlSink:
    def test_round_trips_events_one_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        emitted = [
            thread_switch(1.0, 0, "miss", "engine"),
            thread_switch(2.0, 1, "quota", "cpu"),
            stall(3.0, 400.0, "engine"),
        ]
        for event in emitted:
            sink.emit(event)
        sink.close()
        lines = path.read_text().splitlines()
        assert [json.loads(line) for line in lines] == emitted
        assert sink.emitted == 3

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "trace.jsonl"
        sink = JsonlSink(path)
        sink.emit(stall(0.0, 1.0, "engine"))
        sink.close()
        assert path.exists()

    def test_appends_across_reopen(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        first = JsonlSink(path)
        first.emit(stall(0.0, 1.0, "engine"))
        first.close()
        second = JsonlSink(path)
        second.emit(stall(1.0, 2.0, "engine"))
        second.close()
        assert len(path.read_text().splitlines()) == 2

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "trace.jsonl")
        sink.close()
        sink.close()


class TestAmbientSink:
    def test_default_is_null(self):
        assert isinstance(current_sink(), NullSink)

    def test_tracing_installs_and_restores(self):
        before = current_sink()
        ring = RingBufferSink()
        with tracing(ring) as active:
            assert active is ring
            assert current_sink() is ring
        assert current_sink() is before

    def test_tracing_restores_on_error(self):
        before = current_sink()
        with pytest.raises(RuntimeError):
            with tracing(RingBufferSink()):
                raise RuntimeError("boom")
        assert current_sink() is before

    def test_set_sink_none_disables(self):
        previous = set_sink(RingBufferSink())
        try:
            set_sink(None)
            assert isinstance(current_sink(), NullSink)
        finally:
            set_sink(previous)

    def test_resolve_prefers_explicit_sink(self):
        ring = RingBufferSink()
        ambient = RingBufferSink()
        with tracing(ambient):
            assert resolve_sink(ring) is ring
            assert resolve_sink(None) is ambient

    def test_resolve_disabled_sink_is_none(self):
        assert resolve_sink(NullSink()) is None
        assert resolve_sink(None) is None  # ambient default is Null

    def test_package_exports_match(self):
        for name in telemetry.__all__:
            assert hasattr(telemetry, name)
