"""Tests for the trace sinks and the ambient-sink plumbing."""

import json

import pytest

from repro import telemetry
from repro.errors import ConfigurationError
from repro.telemetry import (
    CONTROLLER,
    RUNNER,
    SWITCH,
    JsonlSink,
    NullSink,
    RingBufferSink,
    current_sink,
    resolve_sink,
    set_sink,
    tracing,
)
from repro.telemetry.events import stall, thread_switch


class TestNullSink:
    def test_is_disabled(self):
        sink = NullSink()
        assert sink.enabled is False

    def test_wants_nothing(self):
        sink = NullSink()
        for category in (CONTROLLER, SWITCH, RUNNER):
            assert sink.wants(category) is False

    def test_emit_is_a_noop(self):
        sink = NullSink()
        sink.emit(thread_switch(1.0, 0, "miss", "engine"))
        assert sink.emitted == 0
        sink.close()


class TestRingBufferSink:
    def test_keeps_most_recent_events(self):
        sink = RingBufferSink(capacity=3)
        for i in range(5):
            sink.emit(thread_switch(float(i), 0, "miss", "engine"))
        assert [e["t"] for e in sink.events] == [2.0, 3.0, 4.0]

    def test_emitted_counts_all_events_despite_eviction(self):
        sink = RingBufferSink(capacity=2)
        for i in range(7):
            sink.emit(stall(float(i), 10.0, "engine"))
        assert sink.emitted == 7
        assert len(sink.events) == 2

    def test_clear(self):
        sink = RingBufferSink()
        sink.emit(stall(0.0, 1.0, "engine"))
        sink.clear()
        assert sink.events == []

    def test_events_are_copies(self):
        sink = RingBufferSink()
        sink.emit(stall(0.0, 1.0, "engine"))
        sink.events.append("junk")
        assert len(sink.events) == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            RingBufferSink(capacity=0)

    def test_rejects_unknown_categories(self):
        with pytest.raises(ConfigurationError):
            RingBufferSink(categories=frozenset({"bogus"}))


class TestCategoryFiltering:
    def test_default_wants_everything(self):
        sink = RingBufferSink()
        assert all(sink.wants(c) for c in (CONTROLLER, SWITCH, RUNNER))

    def test_subset_filters(self):
        sink = RingBufferSink(categories=frozenset({CONTROLLER}))
        assert sink.wants(CONTROLLER)
        assert not sink.wants(SWITCH)
        assert not sink.wants(RUNNER)


class TestJsonlSink:
    def test_round_trips_events_one_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        emitted = [
            thread_switch(1.0, 0, "miss", "engine"),
            thread_switch(2.0, 1, "quota", "cpu"),
            stall(3.0, 400.0, "engine"),
        ]
        for event in emitted:
            sink.emit(event)
        sink.close()
        lines = path.read_text().splitlines()
        assert [json.loads(line) for line in lines] == emitted
        assert sink.emitted == 3

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "trace.jsonl"
        sink = JsonlSink(path)
        sink.emit(stall(0.0, 1.0, "engine"))
        sink.close()
        assert path.exists()

    def test_appends_across_reopen(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        first = JsonlSink(path)
        first.emit(stall(0.0, 1.0, "engine"))
        first.close()
        second = JsonlSink(path)
        second.emit(stall(1.0, 2.0, "engine"))
        second.close()
        assert len(path.read_text().splitlines()) == 2

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "trace.jsonl")
        sink.close()
        sink.close()


class TestAmbientSink:
    def test_default_is_null(self):
        assert isinstance(current_sink(), NullSink)

    def test_tracing_installs_and_restores(self):
        before = current_sink()
        ring = RingBufferSink()
        with tracing(ring) as active:
            assert active is ring
            assert current_sink() is ring
        assert current_sink() is before

    def test_tracing_restores_on_error(self):
        before = current_sink()
        with pytest.raises(RuntimeError):
            with tracing(RingBufferSink()):
                raise RuntimeError("boom")
        assert current_sink() is before

    def test_set_sink_none_disables(self):
        previous = set_sink(RingBufferSink())
        try:
            set_sink(None)
            assert isinstance(current_sink(), NullSink)
        finally:
            set_sink(previous)

    def test_resolve_prefers_explicit_sink(self):
        ring = RingBufferSink()
        ambient = RingBufferSink()
        with tracing(ambient):
            assert resolve_sink(ring) is ring
            assert resolve_sink(None) is ambient

    def test_resolve_disabled_sink_is_none(self):
        assert resolve_sink(NullSink()) is None
        assert resolve_sink(None) is None  # ambient default is Null

    def test_package_exports_match(self):
        for name in telemetry.__all__:
            assert hasattr(telemetry, name)


class TestJsonlSinkDegrade:
    """An unwritable trace file degrades the sink, never the run."""

    def _fail_data_writes(self, monkeypatch):
        """Make os.write fail for event lines (but not the degrade
        self-report), as a full disk would."""
        import os as os_module

        real_write = os_module.write

        def failing_write(fd, data):
            if b"sink_degraded" not in data:
                raise OSError(28, "No space left on device")
            return real_write(fd, data)

        monkeypatch.setattr(
            "repro.telemetry.sinks.os.write", failing_write
        )

    def test_failed_write_degrades_to_null(self, tmp_path, monkeypatch, capsys):
        sink = JsonlSink(tmp_path / "trace.jsonl")
        self._fail_data_writes(monkeypatch)
        sink.emit(thread_switch(1.0, 0, "miss", "engine"))
        assert sink.degraded is True
        assert sink.emitted == 0
        # From now on the sink behaves like a NullSink: emitters that
        # gate on wants() stop building events entirely.
        for category in (CONTROLLER, SWITCH, RUNNER):
            assert sink.wants(category) is False
        sink.emit(thread_switch(2.0, 0, "miss", "engine"))  # silent no-op
        assert sink.emitted == 0
        warning = capsys.readouterr().err
        assert "degrading to a null sink" in warning
        assert str(tmp_path / "trace.jsonl") in warning
        sink.close()

    def test_degrade_warns_exactly_once(self, tmp_path, monkeypatch, capsys):
        sink = JsonlSink(tmp_path / "trace.jsonl")
        self._fail_data_writes(monkeypatch)
        sink.emit(thread_switch(1.0, 0, "miss", "engine"))
        sink.emit(thread_switch(2.0, 0, "miss", "engine"))
        assert capsys.readouterr().err.count("degrading") == 1
        sink.close()

    def test_degrade_event_is_recorded_and_journaled(
        self, tmp_path, monkeypatch
    ):
        from repro.telemetry.events import validate_event, validate_trace_file

        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        self._fail_data_writes(monkeypatch)
        sink.emit(thread_switch(1.0, 0, "miss", "engine"))
        event = sink.degraded_event
        assert event is not None
        assert validate_event(event)["path"] == str(path)
        assert "No space left" in event["error"]
        # The self-report landed as the file's only (valid) line.
        assert validate_trace_file(path) == 1
        sink.close()

    def test_degrade_without_writable_file_keeps_event_in_memory(
        self, tmp_path, capsys
    ):
        import os as os_module

        sink = JsonlSink(tmp_path / "trace.jsonl")
        sink.emit(thread_switch(1.0, 0, "miss", "engine"))
        # Yank the descriptor out from under the sink: every later
        # write (including the best-effort self-report) hits EBADF.
        os_module.close(sink._fd)
        sink.emit(thread_switch(2.0, 0, "miss", "engine"))
        assert sink.degraded is True
        assert sink.degraded_event is not None
        assert "degrading" in capsys.readouterr().err
        sink._fd = None  # already closed; keep close() from re-closing
        sink.close()

    def test_close_swallows_descriptor_errors(self, tmp_path):
        import os as os_module

        sink = JsonlSink(tmp_path / "trace.jsonl")
        sink.emit(thread_switch(1.0, 0, "miss", "engine"))
        os_module.close(sink._fd)
        sink.close()  # must not raise on the already-closed fd
