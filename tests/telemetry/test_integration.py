"""End-to-end telemetry tests: the invariant is bit-identity.

Tracing is observation only -- with any sink installed, at any job
count, with or without the result cache, simulation results must be
exactly what an untraced serial run produces.
"""

import json

import pytest

from repro.cli import main
from repro.experiments.common import EvalConfig, run_all_pairs
from repro.experiments.runner import ExecutionSettings, run_grid
from repro.telemetry import JsonlSink, RingBufferSink, tracing, validate_trace_file
from repro.workloads.pairs import BenchmarkPair

PAIRS = (
    BenchmarkPair("gcc", "eon"),
    BenchmarkPair("lucas", "applu"),
)


@pytest.fixture(scope="module")
def config():
    return EvalConfig.quick()


@pytest.fixture(scope="module")
def untraced_grid(config):
    return run_all_pairs(config, PAIRS)


class TestTracedGridBitIdentity:
    def test_traced_serial_matches_untraced(self, config, untraced_grid,
                                            tmp_path):
        sink = JsonlSink(tmp_path / "serial.jsonl")
        with tracing(sink):
            traced = run_all_pairs(config, PAIRS)
        sink.close()
        assert traced == untraced_grid
        assert validate_trace_file(tmp_path / "serial.jsonl") > 0

    def test_traced_parallel_matches_untraced(self, config, untraced_grid,
                                              tmp_path):
        trace = tmp_path / "parallel.jsonl"
        sink = JsonlSink(trace)
        with tracing(sink):
            traced = run_all_pairs(config, PAIRS, jobs=4)
        sink.close()
        assert traced == untraced_grid
        events = [json.loads(line) for line in
                  trace.read_text().splitlines()]
        assert validate_trace_file(trace) == len(events)
        categories = {e["cat"] for e in events}
        assert categories == {"controller", "switch", "runner"}
        # Worker tasks were traced from the worker processes themselves.
        task_stops = [e for e in events
                      if e["event"] == "task" and e["phase"] == "stop"]
        soe_stops = [e for e in task_stops if e["kind"] == "soe_pair"]
        st_stops = [e for e in task_stops if e["kind"] == "single_thread"]
        assert len(soe_stops) == len(PAIRS) * len(config.fairness_levels)
        assert len(st_stops) == 2 * len(PAIRS)  # one per thread slot
        # Schema v2: SOE tasks name their enforcing policy ("none" at
        # the F=0 baseline); single-thread tasks carry None.
        assert {e["policy"] for e in soe_stops} == {"none", config.policy}
        assert {e["policy"] for e in st_stops} == {None}

    def test_traced_cached_rerun_matches(self, config, untraced_grid,
                                         tmp_path):
        cache_dir = tmp_path / "cache"
        first = run_grid(config, PAIRS, ExecutionSettings(cache_dir=cache_dir))
        sink = RingBufferSink(capacity=100_000)
        with tracing(sink):
            second = run_grid(config, PAIRS,
                              ExecutionSettings(cache_dir=cache_dir))
        assert first.results == second.results == untraced_grid
        hits = [e for e in sink.events if e["event"] == "cache"]
        assert len(hits) == len(PAIRS)
        assert all(e["outcome"] == "hit" for e in hits)


class TestCliTraceFlag:
    """--trace must not change the rendered or JSON output at all."""

    def test_traced_json_is_byte_identical(self, tmp_path, capsys):
        plain = tmp_path / "plain.json"
        traced = tmp_path / "traced.json"
        trace = tmp_path / "trace.jsonl"
        assert main(["table2", "--scale", "quick",
                     "--json", str(plain)]) == 0
        assert main(["table2", "--scale", "quick", "--json", str(traced),
                     "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert plain.read_bytes() == traced.read_bytes()
        assert validate_trace_file(trace) > 0

    def test_manifest_written_next_to_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(["table2", "--scale", "quick",
                     "--trace", str(trace)]) == 0
        err = capsys.readouterr().err
        assert "[trace]" in err
        manifest = json.loads((tmp_path / "trace.jsonl.manifest.json")
                              .read_text())
        assert manifest["schema_version"] == 1
        assert manifest["seed"] == 0
        assert manifest["workers"] == 1
        assert manifest["events"] > 0
        assert manifest["events_per_sec"] > 0
        assert manifest["simulated_cycles"] > 0
        assert manifest["peak_rss_bytes"] > 0
        assert len(manifest["config_hash"]) == 16

    def test_trace_events_filters_categories(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(["table2", "--scale", "quick", "--trace", str(trace),
                     "--trace-events", "controller"]) == 0
        capsys.readouterr()
        events = [json.loads(line) for line in
                  trace.read_text().splitlines()]
        assert events
        assert {e["cat"] for e in events} == {"controller"}
