"""Tests for event builders, schema validation, and emission points."""

import json
import math

import pytest

from repro.core.controller import FairnessController, FairnessParams
from repro.core.policy import SwitchPolicy
from repro.cpu.soe_core import TracingSwitchPolicy
from repro.errors import ConfigurationError
from repro.telemetry import RingBufferSink
from repro.telemetry.events import (
    CATEGORIES,
    EVENT_SCHEMAS,
    SCHEMA_VERSION,
    batch_event,
    breaker_event,
    cache_event,
    checkpoint_event,
    controller_sample,
    job_event,
    parse_categories,
    queue_event,
    segment_end,
    shard_event,
    sink_degraded_event,
    stall,
    task_event,
    task_failed,
    task_retry,
    thread_switch,
    validate_event,
    validate_trace_file,
)


def _sample(**overrides):
    event = controller_sample(
        time=250_000.0,
        instructions=[1000.0, 2000.0],
        cycles=[125_000.0, 125_000.0],
        misses=[3, 1],
        ipc_st=[0.5, 1.2],
        quotas=[400.0, math.inf],
        deficits=[0.0, -10.0],
    )
    event.update(overrides)
    return event


class TestBuilders:
    def test_every_builder_validates(self):
        events = [
            _sample(),
            thread_switch(1.0, 0, "miss", "engine"),
            thread_switch(2.0, 1, "cycle_quota", "cpu"),
            segment_end(3.0, 0, 300.0),
            segment_end(4.0, 1, None),
            stall(5.0, 120.0, "engine"),
            task_event("start", "soe_pair", "gcc:eon@F0.5", worker=123),
            task_event("stop", "soe_pair", "gcc:eon@F0.5", worker=123,
                       wall_s=0.25),
            cache_event("hit", "gcc:eon"),
            cache_event("miss", "lucas:applu"),
            cache_event("corrupt", "gcc:eon"),
            cache_event("sweep", "tmp-123.tmp"),
            task_retry("soe_pair", "gcc:eon@F0.5", 2, "timeout"),
            task_retry("soe_pair", "gcc:eon@F0.5", 2, "crash",
                       backoff_s=0.375),
            task_failed("soe_pair", "gcc:eon@F0.5", 3, "crash"),
            checkpoint_event("write", 1, "grid.ckpt"),
            checkpoint_event("resume", 7, "grid.ckpt"),
            batch_event("start", "batch", 64),
            batch_event("stop", "batch", 64, iterations=2945),
            shard_event("start", 0, 4, 16, "batch"),
            shard_event("stop", 3, 4, 15, "batch"),
            job_event("submitted", "tenant-a", "ab12cd34"),
            job_event("rejected", "tenant-a", "ab12cd34",
                      detail="queue full"),
            queue_event("enqueue", "tenant-a", 3, 1.0),
            breaker_event("open", 5),
            sink_degraded_event("trace.jsonl", "OSError: ENOSPC"),
        ]
        for event in events:
            assert validate_event(event) is event

    def test_builders_cover_every_schema_entry(self):
        built = {e["event"] for e in (
            _sample(),
            thread_switch(0.0, 0, "miss", "engine"),
            segment_end(0.0, 0, None),
            stall(0.0, 1.0, "cpu"),
            task_event("start", "k", "l", 1),
            cache_event("hit", "l"),
            task_retry("k", "l", 2, "crash"),
            task_failed("k", "l", 3, "crash"),
            checkpoint_event("write", 1, "p"),
            batch_event("start", "batch", 1),
            shard_event("start", 0, 2, 8, "batch"),
            job_event("submitted", "t", "j"),
            queue_event("enqueue", "t", 1, 0.0),
            breaker_event("closed", 0),
            sink_degraded_event("p", "e"),
        )}
        assert built == set(EVENT_SCHEMAS)

    def test_task_event_policy_field(self):
        # Schema v2: task events carry the enforcing policy name (a
        # string for soe_pair tasks, None for single-thread tasks).
        named = task_event("start", "soe_pair", "gcc:eon@F1", worker=1,
                           policy="drr-arbiter")
        assert validate_event(named)["policy"] == "drr-arbiter"
        bare = task_event("start", "single_thread", "gcc", worker=1)
        assert validate_event(bare)["policy"] is None
        with pytest.raises(ConfigurationError, match="policy"):
            bad = task_event("start", "soe_pair", "l", worker=1)
            bad["policy"] = 42
            validate_event(bad)

    def test_schema_version_is_three(self):
        assert SCHEMA_VERSION == 3
        assert task_event("start", "k", "l", 1)["v"] == 3

    def test_nonfinite_floats_encode_as_strings(self):
        event = _sample()
        assert event["quotas"] == [400.0, "inf"]
        # ... and the result is strict JSON either way.
        json.dumps(event, allow_nan=False)
        validate_event(event)


class TestValidation:
    def test_rejects_non_dict(self):
        with pytest.raises(ConfigurationError, match="must be an object"):
            validate_event([1, 2, 3])

    def test_rejects_unknown_event(self):
        with pytest.raises(ConfigurationError, match="unknown trace event"):
            validate_event({"event": "nope", "cat": "switch",
                            "v": SCHEMA_VERSION})

    def test_rejects_wrong_category(self):
        with pytest.raises(ConfigurationError, match="must have cat"):
            validate_event(_sample(cat="switch"))

    def test_rejects_wrong_schema_version(self):
        with pytest.raises(ConfigurationError, match="schema version"):
            validate_event(_sample(v=SCHEMA_VERSION + 1))

    def test_rejects_missing_field(self):
        event = _sample()
        del event["quotas"]
        with pytest.raises(ConfigurationError, match="missing fields"):
            validate_event(event)

    def test_rejects_extra_field(self):
        with pytest.raises(ConfigurationError, match="unknown fields"):
            validate_event(_sample(surprise=1))

    def test_rejects_bad_switch_cause(self):
        with pytest.raises(ConfigurationError, match="cause"):
            validate_event(thread_switch(1.0, 0, "sneeze", "engine"))

    def test_rejects_bool_masquerading_as_int(self):
        with pytest.raises(ConfigurationError, match="thread"):
            validate_event(thread_switch(1.0, True, "miss", "engine"))


class TestParseCategories:
    def test_none_and_empty_mean_everything(self):
        assert parse_categories(None) is None
        assert parse_categories("") is None
        assert parse_categories("  ") is None

    def test_parses_comma_separated_subset(self):
        assert parse_categories("controller,switch") == \
            frozenset({"controller", "switch"})
        assert parse_categories(" runner ") == frozenset({"runner"})

    def test_rejects_unknown_names(self):
        with pytest.raises(ConfigurationError, match="unknown trace categories"):
            parse_categories("controller,bogus")

    def test_all_categories_are_parseable(self):
        assert parse_categories(",".join(sorted(CATEGORIES))) == CATEGORIES


class TestValidateTraceFile:
    def test_counts_valid_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        events = [thread_switch(float(i), 0, "miss", "engine")
                  for i in range(4)]
        path.write_text(
            "\n".join(json.dumps(e) for e in events) + "\n\n"
        )
        assert validate_trace_file(path) == 4

    def test_reports_line_number_on_garbage(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            json.dumps(thread_switch(0.0, 0, "miss", "engine"))
            + "\nnot json\n"
        )
        with pytest.raises(ConfigurationError, match=":2:"):
            validate_trace_file(path)

    def test_reports_line_number_on_schema_violation(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"event": "nope"}\n')
        with pytest.raises(ConfigurationError, match=":1:"):
            validate_trace_file(path)


class TestControllerEmission:
    """The fairness controller emits one sample per Delta boundary."""

    def _controller(self, sink):
        params = FairnessParams(fairness_target=1.0, sample_period=1000.0)
        return FairnessController(2, params, sink=sink)

    def test_emits_index_aligned_sample_per_boundary(self):
        sink = RingBufferSink()
        controller = self._controller(sink)
        controller.on_retired(0, 500.0, 600.0)
        controller.on_retired(1, 100.0, 400.0)
        controller.on_miss(1, 900.0)
        controller.on_boundary(1000.0)
        samples = [e for e in sink.events if e["event"] == "sample"]
        assert len(samples) == 1
        sample = validate_event(samples[0])
        assert sample["t"] == 1000.0
        assert sample["instructions"] == [500.0, 100.0]
        assert sample["misses"] == [0, 1]
        assert len(sample["ipc_st"]) == 2
        assert len(sample["quotas"]) == 2
        assert len(sample["deficits"]) == 2

    def test_sample_matches_recorded_history(self):
        sink = RingBufferSink()
        controller = self._controller(sink)
        for boundary in (1000.0, 2000.0, 3000.0):
            controller.on_retired(0, 300.0, 500.0)
            controller.on_retired(1, 200.0, 500.0)
            controller.on_boundary(boundary)
        samples = [e for e in sink.events if e["event"] == "sample"]
        assert len(samples) == len(controller.history) == 3
        for event, point in zip(samples, controller.history):
            assert event["t"] == point.time
            assert event["ipc_st"] == [e.ipc_st for e in point.estimates]

    def test_category_filter_suppresses_samples(self):
        sink = RingBufferSink(categories=frozenset({"switch"}))
        controller = self._controller(sink)
        controller.on_retired(0, 300.0, 500.0)
        controller.on_boundary(1000.0)
        assert sink.events == []

    def test_no_sink_means_no_tracing(self):
        controller = self._controller(None)  # ambient default is Null
        controller.on_retired(0, 300.0, 500.0)
        controller.on_boundary(1000.0)  # must not raise
        assert len(controller.history) == 1


class _RecordingPolicy(SwitchPolicy):
    """Inner policy that records every callback it receives."""

    def __init__(self):
        self.calls = []

    def on_run_start(self, thread_id, now):
        self.calls.append(("run_start", thread_id, now))

    def instruction_budget(self, thread_id):
        self.calls.append(("instruction_budget", thread_id))
        return 123.0

    def cycle_budget(self, thread_id):
        self.calls.append(("cycle_budget", thread_id))
        return 456.0

    def on_retired(self, thread_id, instructions, cycles):
        self.calls.append(("retired", thread_id, instructions, cycles))

    def on_miss(self, thread_id, now, latency=None):
        self.calls.append(("miss", thread_id, now, latency))

    def on_switch_out(self, thread_id, reason, now):
        self.calls.append(("switch_out", thread_id, reason, now))

    def next_boundary(self, now):
        self.calls.append(("next_boundary", now))
        return now + 1000.0

    def on_boundary(self, now):
        self.calls.append(("boundary", now))


class TestTracingSwitchPolicy:
    def test_delegates_every_callback(self):
        inner = _RecordingPolicy()
        sink = RingBufferSink()
        traced = TracingSwitchPolicy(inner, sink)
        traced.on_run_start(0, 0.0)
        assert traced.instruction_budget(0) == 123.0
        assert traced.cycle_budget(0) == 456.0
        traced.on_retired(0, 10.0, 20.0)
        traced.on_miss(0, 30.0, latency=300.0)
        traced.on_switch_out(0, "miss", 40.0)
        assert traced.next_boundary(50.0) == 1050.0
        traced.on_boundary(60.0)
        assert [c[0] for c in inner.calls] == [
            "run_start", "instruction_budget", "cycle_budget", "retired",
            "miss", "switch_out", "next_boundary", "boundary",
        ]

    def test_emits_cpu_switch_events(self):
        sink = RingBufferSink()
        traced = TracingSwitchPolicy(_RecordingPolicy(), sink)
        traced.on_switch_out(1, "quota", 77.0)
        (event,) = sink.events
        validate_event(event)
        assert event["event"] == "switch"
        assert event["thread"] == 1
        assert event["cause"] == "quota"
        assert event["substrate"] == "cpu"
