"""Tests for trace summarization and the trace-summary CLI."""

import json

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.telemetry.events import (
    cache_event,
    controller_sample,
    segment_end,
    stall,
    task_event,
    thread_switch,
)
from repro.telemetry.summary import (
    render_summary,
    render_trace_summary,
    summarize_trace,
)


def _write_trace(path, events):
    path.write_text("".join(json.dumps(e) + "\n" for e in events))


def _synthetic_events():
    """A small but complete trace touching every event type."""
    events = []
    for i in range(6):
        events.append(thread_switch(float(i * 100), i % 2, "miss", "engine"))
    events.append(thread_switch(700.0, 0, "quota", "engine"))
    events.append(thread_switch(800.0, 1, "cycle_quota", "cpu"))
    events.append(segment_end(850.0, 0, 300.0))
    events.append(stall(900.0, 50.0, "engine"))
    for step in (1, 2, 3):
        time = step * 1000.0
        events.append(controller_sample(
            time=time,
            instructions=[100.0 * step, 300.0 - 50.0 * step],
            cycles=[500.0, 500.0],
            misses=[step, 0],
            ipc_st=[0.5, 1.0 + 0.1 * step],
            quotas=[400.0, 600.0],
            deficits=[0.0, -5.0],
        ))
    events.append(task_event("start", "soe_pair", "gcc:eon@F0.5", worker=11))
    events.append(task_event("stop", "soe_pair", "gcc:eon@F0.5", worker=11,
                             wall_s=0.5))
    events.append(task_event("stop", "single_thread", "gcc@s1", worker=12,
                             wall_s=0.25))
    events.append(cache_event("hit", "gcc:eon"))
    events.append(cache_event("miss", "lucas:applu"))
    return events


class TestSummarizeTrace:
    def test_aggregates_synthetic_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        events = _synthetic_events()
        _write_trace(path, events)
        summary = summarize_trace(path)
        assert summary.events == len(events)
        assert summary.switch_causes == {
            "miss": 6, "quota": 1, "cycle_quota": 1
        }
        assert summary.segments == 1
        assert summary.stalls == 1
        assert summary.stall_cycles == 50.0
        assert summary.sample_times == [1000.0, 2000.0, 3000.0]
        assert summary.num_threads == 2
        assert summary.tasks == {
            "soe_pair": (1, 0.5), "single_thread": (1, 0.25)
        }
        assert summary.workers == {11, 12}
        assert summary.cache_hits == 1
        assert summary.cache_misses == 1

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not found"):
            summarize_trace(tmp_path / "nope.jsonl")

    def test_invalid_line_reported_with_number(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"event": "bogus"}\n')
        with pytest.raises(ConfigurationError, match=":1:"):
            summarize_trace(path)


class TestRenderSummary:
    def test_renders_all_sections(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        _write_trace(path, _synthetic_events())
        text = render_trace_summary(path)
        assert "Trace summary" in text
        assert "Thread switches by cause" in text
        assert "miss" in text and "quota" in text
        assert "3 Delta boundaries" in text
        assert "IPC_ST" in text
        assert "fairness convergence" in text
        assert "soe_pair" in text
        assert "workers: 2" in text
        assert "1 hits / 1 misses" in text

    def test_handles_trace_without_samples(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        _write_trace(path, [thread_switch(0.0, 0, "miss", "engine")])
        text = render_trace_summary(path)
        assert "no convergence timeline" in text

    def test_handles_empty_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("")
        text = render_summary(summarize_trace(path))
        assert "no switch events" in text


class TestTraceSummaryCli:
    def test_renders_to_stdout(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        _write_trace(path, _synthetic_events())
        assert main(["trace-summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Trace summary" in out
        assert "Thread switches by cause" in out

    def test_output_flag_writes_file(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        _write_trace(path, _synthetic_events())
        target = tmp_path / "report" / "summary.txt"
        assert main(["trace-summary", str(path),
                     "--output", str(target)]) == 0
        assert "Trace summary" in target.read_text()

    def test_requires_a_path(self):
        with pytest.raises(ConfigurationError, match="trace-summary"):
            main(["trace-summary"])

    def test_trace_events_without_trace_rejected(self):
        with pytest.raises(ConfigurationError, match="--trace-events"):
            main(["fig3", "--trace-events", "controller"])


class TestManifestMetrics:
    def _manifest(self):
        return {
            "schema_version": 1,
            "config_hash": "abcd" * 4,
            "seed": 0,
            "wall_seconds": 2.0,
            "workers": 4,
            "events": 1000,
            "simulated_cycles": 500_000.0,
            "tasks": 8,
            "events_per_sec": 500.0,
            "simulated_cycles_per_sec": 250_000.0,
            "peak_rss_bytes": 64 << 20,
        }

    def test_summary_includes_manifest_counters(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        _write_trace(path, _synthetic_events())
        (tmp_path / "trace.jsonl.manifest.json").write_text(
            json.dumps(self._manifest())
        )
        assert main(["trace-summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Run profile" in out
        assert "events/sec: 500" in out
        assert "simulated cycles/sec: 250,000" in out
        assert "peak RSS: 64.0 MiB" in out

    def test_summary_without_manifest_has_no_profile_section(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        _write_trace(path, _synthetic_events())
        assert "Run profile" not in render_trace_summary(path)

    def test_corrupt_manifest_is_an_error(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        _write_trace(path, _synthetic_events())
        (tmp_path / "trace.jsonl.manifest.json").write_text("{not json")
        with pytest.raises(ConfigurationError, match="manifest"):
            render_trace_summary(path)
