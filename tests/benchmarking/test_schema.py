"""Schema validation for BENCH_*.json records and the baseline file."""

from __future__ import annotations

import json

import pytest

from repro.benchmarking.schema import (
    BENCH_SCHEMA_VERSION,
    bench_result,
    load_baseline,
    load_bench_file,
    validate_bench_result,
)
from repro.errors import ConfigurationError

ENV = {
    "python": "3.12.0",
    "implementation": "CPython",
    "platform": "Linux-test",
    "machine": "x86_64",
    "calibration_ops_per_sec": 10_000_000.0,
}


def _result(**overrides):
    record = bench_result(
        name="bench_detailed_core",
        scale="quick",
        wall_seconds=2.0,
        simulated_cycles=100_000.0,
        events=50.0,
        peak_rss_bytes=1 << 26,
        exit_status=0,
        env=ENV,
    )
    record.update(overrides)
    return record


def test_bench_result_derives_rates():
    record = _result()
    assert record["schema_version"] == BENCH_SCHEMA_VERSION
    assert record["simulated_cycles_per_sec"] == pytest.approx(50_000.0)
    assert record["events_per_sec"] == pytest.approx(25.0)


def test_validate_rejects_missing_field():
    record = _result()
    del record["wall_seconds"]
    with pytest.raises(ConfigurationError, match="wall_seconds"):
        validate_bench_result(record)


def test_validate_rejects_wrong_type():
    with pytest.raises(ConfigurationError, match="wall_seconds"):
        validate_bench_result(_result(wall_seconds="fast"))


def test_validate_rejects_unknown_field():
    with pytest.raises(ConfigurationError, match="unknown"):
        validate_bench_result(_result(extra=1))


def test_validate_rejects_schema_version_mismatch():
    with pytest.raises(ConfigurationError, match="schema_version"):
        validate_bench_result(_result(schema_version=99))


def test_validate_rejects_bad_env():
    env = dict(ENV)
    del env["calibration_ops_per_sec"]
    with pytest.raises(ConfigurationError, match="calibration_ops_per_sec"):
        validate_bench_result(_result(env=env))


def test_load_bench_file_checks_name_consistency(tmp_path):
    record = _result()
    path = tmp_path / "BENCH_bench_other.json"
    path.write_text(json.dumps(record))
    with pytest.raises(ConfigurationError, match="expected file name"):
        load_bench_file(path)
    good = tmp_path / "BENCH_bench_detailed_core.json"
    good.write_text(json.dumps(record))
    assert load_bench_file(good)["name"] == "bench_detailed_core"


def test_load_baseline_round_trip(tmp_path):
    record = _result()
    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "benchmarks": {"bench_detailed_core": record},
    }
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(payload))
    baseline = load_baseline(path)
    assert baseline["bench_detailed_core"]["wall_seconds"] == 2.0


def test_load_baseline_rejects_mismatched_entry(tmp_path):
    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "benchmarks": {"bench_other": _result()},
    }
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(payload))
    with pytest.raises(ConfigurationError, match="bench_other"):
        load_baseline(path)
