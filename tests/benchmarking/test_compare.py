"""Baseline comparison: normalization, gating, rendering."""

from __future__ import annotations

import pytest

from repro.benchmarking.compare import (
    compare_results,
    normalized_cost,
    regressions,
    render_comparison,
    render_markdown,
)
from repro.benchmarking.schema import bench_result


def _record(name, wall, calibration=10_000_000.0):
    return bench_result(
        name=name,
        scale="quick",
        wall_seconds=wall,
        simulated_cycles=1_000.0,
        events=0.0,
        peak_rss_bytes=1 << 20,
        exit_status=0,
        env={
            "python": "3.12.0",
            "implementation": "CPython",
            "platform": "Linux-test",
            "machine": "x86_64",
            "calibration_ops_per_sec": calibration,
        },
    )


def test_normalized_cost_cancels_machine_speed():
    # Same workload on a 2x faster machine: half the wall time, double
    # the calibration throughput -> identical normalized cost.
    slow = _record("bench_detailed_core", 4.0, calibration=5_000_000.0)
    fast = _record("bench_detailed_core", 2.0, calibration=10_000_000.0)
    assert normalized_cost(slow) == pytest.approx(normalized_cost(fast))


def test_compare_flags_tier1_regression_beyond_threshold():
    baseline = {"bench_detailed_core": _record("bench_detailed_core", 2.0)}
    current = {"bench_detailed_core": _record("bench_detailed_core", 2.6)}
    rows = compare_results(baseline, current, threshold=0.25)
    assert rows[0].regressed
    assert regressions(rows) == ["bench_detailed_core"]
    # 30% slower but within a 50% threshold: no gate trip.
    rows = compare_results(baseline, current, threshold=0.5)
    assert not rows[0].regressed


def test_compare_ignores_non_tier1_slowdowns():
    baseline = {"bench_fig7": _record("bench_fig7", 2.0)}
    current = {"bench_fig7": _record("bench_fig7", 4.0)}
    rows = compare_results(baseline, current, threshold=0.25)
    assert rows[0].cost_growth == pytest.approx(1.0)
    assert not rows[0].regressed
    assert regressions(rows) == []


def test_compare_skips_benchmarks_missing_from_either_side():
    baseline = {"bench_detailed_core": _record("bench_detailed_core", 2.0)}
    current = {"bench_simulator_speed": _record("bench_simulator_speed", 1.0)}
    assert compare_results(baseline, current) == []


def test_compare_reports_speedup():
    baseline = {"bench_simulator_speed": _record("bench_simulator_speed", 3.0)}
    current = {"bench_simulator_speed": _record("bench_simulator_speed", 1.5)}
    rows = compare_results(baseline, current)
    assert rows[0].speedup == pytest.approx(2.0)
    assert not rows[0].regressed


def test_render_text_and_markdown():
    baseline = {
        "bench_detailed_core": _record("bench_detailed_core", 2.0),
        "bench_fig7": _record("bench_fig7", 1.0),
    }
    current = {
        "bench_detailed_core": _record("bench_detailed_core", 1.0),
        "bench_fig7": _record("bench_fig7", 1.0),
    }
    rows = compare_results(baseline, current)
    text = render_comparison(rows)
    assert "bench_detailed_core *" in text
    assert "2.00x" in text
    markdown = render_markdown(rows)
    assert markdown.startswith("| benchmark |")
    assert "| ok |" in markdown
    assert render_comparison([]).startswith("no benchmarks")
