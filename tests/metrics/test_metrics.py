"""Tests for the metrics helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.metrics.report import (
    summarize_achieved_fairness,
    truncated_fairness,
)
from repro.metrics.summary import geomean, mean, stdev
from repro.metrics.throughput import (
    normalized_throughput,
    soe_speedup_over_single_thread,
)


class TestThroughputMetrics:
    def test_speedup_over_single_thread(self):
        # Total SOE IPC 2.4 vs mean ST IPC of 2.0 -> 1.2x.
        assert soe_speedup_over_single_thread(2.4, [2.5, 1.5]) == pytest.approx(1.2)

    def test_speedup_below_one_possible(self):
        assert soe_speedup_over_single_thread(1.0, [2.0, 2.0]) == pytest.approx(0.5)

    def test_normalized_throughput(self):
        assert normalized_throughput(1.8, 2.0) == pytest.approx(0.9)

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(ConfigurationError):
            soe_speedup_over_single_thread(1.0, [])
        with pytest.raises(ConfigurationError):
            normalized_throughput(1.0, 0.0)


class TestTruncatedFairness:
    def test_truncates_above_target(self):
        assert truncated_fairness(0.9, 0.5) == pytest.approx(0.5)

    def test_keeps_below_target(self):
        assert truncated_fairness(0.3, 0.5) == pytest.approx(0.3)

    def test_no_truncation_for_f_zero(self):
        assert truncated_fairness(0.9, 0.0) == pytest.approx(0.9)

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            truncated_fairness(1.5, 0.5)
        with pytest.raises(ConfigurationError):
            truncated_fairness(0.5, 2.0)

    def test_clamps_float_noise_above_one(self):
        # min/max speedup ratios can land a few ulps above 1.0; that is
        # measurement noise, not a computation bug.
        assert truncated_fairness(1.0 + 5e-8, 0.5) == pytest.approx(0.5)
        assert truncated_fairness(1.0 + 5e-8, 0.0) == pytest.approx(1.0)
        assert truncated_fairness(1.0 + 9e-7, 1.0) == pytest.approx(1.0)

    def test_clamps_float_noise_below_zero(self):
        assert truncated_fairness(-5e-8, 0.5) == pytest.approx(0.0)

    def test_still_rejects_gross_violations(self):
        with pytest.raises(ConfigurationError):
            truncated_fairness(1.0 + 1e-5, 0.5)
        with pytest.raises(ConfigurationError):
            truncated_fairness(-1e-5, 0.5)


class TestSummarizeAchievedFairness:
    def test_mean_and_stdev(self):
        summary = summarize_achieved_fairness([0.4, 0.5, 0.6], 1.0)
        assert summary.mean == pytest.approx(0.5)
        assert summary.stdev == pytest.approx(0.1)
        assert summary.count == 3

    def test_truncation_removes_fair_run_bias(self):
        # Two runs already fair (1.0) and one poor (0.2) at F=0.25:
        # without truncation the mean would be pulled towards 1.
        summary = summarize_achieved_fairness([1.0, 1.0, 0.2], 0.25)
        assert summary.mean == pytest.approx((0.25 + 0.25 + 0.2) / 3)

    def test_single_run(self):
        summary = summarize_achieved_fairness([0.7], 1.0)
        assert summary.stdev == 0.0

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            summarize_achieved_fairness([], 0.5)


class TestSummaryStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_stdev_single_value(self):
        assert stdev([5.0]) == 0.0

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            geomean([1.0, 0.0])

    def test_empty_rejected(self):
        for fn in (mean, stdev, geomean):
            with pytest.raises(ConfigurationError):
                fn([])
