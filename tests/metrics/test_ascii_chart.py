"""Tests for the ASCII chart renderer."""

import pytest

from repro.errors import ConfigurationError
from repro.metrics.ascii_chart import bar_chart, line_chart


class TestLineChart:
    def test_renders_markers_and_legend(self):
        chart = line_chart({"a": [0.0, 1.0, 2.0], "b": [2.0, 1.0, 0.0]})
        assert "o a" in chart
        assert "x b" in chart
        assert "o" in chart.splitlines()[0] + chart.splitlines()[-3]

    def test_y_axis_annotated_with_bounds(self):
        chart = line_chart({"a": [0.0, 10.0]})
        assert "10" in chart
        assert "0 |" in chart.replace("  ", " ")

    def test_x_values_respected(self):
        chart = line_chart({"a": [1.0, 2.0]}, x_values=[0.0, 0.5])
        assert "0.5" in chart

    def test_flat_series_does_not_crash(self):
        chart = line_chart({"a": [1.0, 1.0, 1.0]})
        assert "a" in chart

    def test_dimensions(self):
        chart = line_chart({"a": [0, 1, 2]}, width=20, height=5)
        plot_rows = [l for l in chart.splitlines() if "|" in l]
        assert len(plot_rows) == 5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"series": {}},
            {"series": {"a": [1.0]}},
            {"series": {"a": [1, 2], "b": [1, 2, 3]}},
            {"series": {"a": [1, 2]}, "x_values": [0.0]},
            {"series": {"a": [1, 2]}, "width": 4},
        ],
    )
    def test_rejects_bad_inputs(self, kwargs):
        with pytest.raises(ConfigurationError):
            line_chart(**kwargs)


class TestBarChart:
    def test_bars_scale_with_values(self):
        chart = bar_chart({"big": 1.0, "small": 0.25}, width=40)
        lines = {l.split("|")[0].strip(): l for l in chart.splitlines()}
        assert lines["big"].count("#") > lines["small"].count("#")

    def test_values_shown(self):
        chart = bar_chart({"x": 0.5})
        assert "0.5" in chart

    def test_zero_value_has_no_bar(self):
        chart = bar_chart({"x": 0.0, "y": 1.0})
        x_line = next(l for l in chart.splitlines() if l.startswith("x"))
        assert "#" not in x_line

    def test_all_zero_does_not_crash(self):
        assert "x" in bar_chart({"x": 0.0})

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            bar_chart({})
