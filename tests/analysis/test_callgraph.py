"""Module summaries, symbol resolution, and the project call graph."""

import ast
import textwrap

from repro.analysis.callgraph import (
    ModuleSummary,
    build_graph,
    module_dotted_name,
    summarize_module,
)
from repro.analysis.registry import ModuleInfo


def _mod(relpath: str, source: str) -> ModuleInfo:
    source = textwrap.dedent(source)
    return ModuleInfo(relpath=relpath, tree=ast.parse(source), source=source)


def _summaries(**files: str) -> dict:
    return {
        relpath: summarize_module(_mod(relpath, source))
        for relpath, source in files.items()
    }


class TestModuleDottedName:
    def test_strips_src_prefix_and_extension(self):
        assert module_dotted_name("src/repro/engine/soe.py") == "repro.engine.soe"

    def test_package_init_names_the_package(self):
        assert module_dotted_name("src/repro/telemetry/__init__.py") == (
            "repro.telemetry"
        )


class TestSummarizeModule:
    def test_functions_methods_and_classes(self):
        summary = summarize_module(
            _mod(
                "src/repro/m.py",
                """
                class Engine:
                    def run(self):
                        return self.step()

                    def step(self):
                        return 1

                def helper():
                    return Engine()
                """,
            )
        )
        assert set(summary.functions) == {"Engine.run", "Engine.step", "helper"}
        assert summary.functions["Engine.run"].qualname == "repro.m.Engine.run"
        assert summary.functions["Engine.run"].cls == "Engine"
        assert summary.classes["Engine"].methods == ("run", "step")

    def test_imports_and_from_imports(self):
        summary = summarize_module(
            _mod(
                "src/repro/pkg/m.py",
                """
                import numpy as np
                from repro.engine.soe import run_soe as go
                from .sibling import thing
                """,
            )
        )
        assert summary.imports["np"] == "numpy"
        assert summary.from_imports["go"] == ("repro.engine.soe", "run_soe")
        # Relative imports anchor at the enclosing package.
        assert summary.from_imports["thing"] == ("repro.pkg.sibling", "thing")

    def test_mutable_globals_and_fork_safe_marker(self):
        summary = summarize_module(
            _mod(
                "src/repro/m.py",
                """
                _CACHE = {}
                # fork-safe: rebuilt lazily in every process
                _MEMO = []
                LIMIT = 10
                """,
            )
        )
        assert summary.globals["_CACHE"].mutable
        assert not summary.globals["_CACHE"].fork_safe
        assert summary.globals["_MEMO"].fork_safe
        assert not summary.globals["LIMIT"].mutable

    def test_global_mutations_detected(self):
        summary = summarize_module(
            _mod(
                "src/repro/m.py",
                """
                _ITEMS = []
                _STATE = None

                def record(x):
                    _ITEMS.append(x)

                def reset():
                    global _STATE
                    _STATE = object()
                """,
            )
        )
        record = summary.functions["record"].mutations
        assert [(m.name, m.how) for m in record] == [("_ITEMS", ".append()")]
        reset = summary.functions["reset"].mutations
        assert [(m.name, m.how) for m in reset] == [("_STATE", "global-assign")]

    def test_call_vs_ref_sites(self):
        summary = summarize_module(
            _mod(
                "src/repro/m.py",
                """
                def a():
                    pass

                def b():
                    a()
                    callback = a
                """,
            )
        )
        sites = summary.functions["b"].calls
        by_ref = {(s.callee, s.ref) for s in sites}
        assert ("a", False) in by_ref  # called
        assert ("a", True) in by_ref  # referenced as a value

    def test_nested_defs_fold_into_enclosing_function(self):
        summary = summarize_module(
            _mod(
                "src/repro/m.py",
                """
                def outer():
                    def inner():
                        target()
                    return inner
                """,
            )
        )
        assert "outer" in summary.functions
        assert "inner" not in summary.functions
        assert any(
            s.callee == "target" for s in summary.functions["outer"].calls
        )

    def test_json_round_trip(self):
        summary = summarize_module(
            _mod(
                "src/repro/m.py",
                """
                import random

                _LOG = []

                class C:
                    def m(self):
                        _LOG.append(random.random())
                """,
            )
        )
        assert ModuleSummary.from_json(summary.to_json()) == summary


class TestBuildGraph:
    def test_cross_module_call_edge(self):
        graph = build_graph(
            _summaries(**{
                "src/repro/a.py": """
                    from repro.b import helper

                    def run():
                        helper()
                """,
                "src/repro/b.py": """
                    def helper():
                        pass
                """,
            })
        )
        assert graph.call_edges["repro.a.run"] == ("repro.b.helper",)

    def test_reexport_chain_is_chased(self):
        graph = build_graph(
            _summaries(**{
                "src/repro/pkg/__init__.py": """
                    from repro.pkg.impl import helper
                """,
                "src/repro/pkg/impl.py": """
                    def helper():
                        pass
                """,
                "src/repro/a.py": """
                    from repro.pkg import helper

                    def run():
                        helper()
                """,
            })
        )
        assert graph.call_edges["repro.a.run"] == ("repro.pkg.impl.helper",)

    def test_self_method_through_base_class(self):
        graph = build_graph(
            _summaries(**{
                "src/repro/m.py": """
                    class Base:
                        def step(self):
                            pass

                    class Engine(Base):
                        def run(self):
                            self.step()
                """,
            })
        )
        assert graph.call_edges["repro.m.Engine.run"] == ("repro.m.Base.step",)

    def test_constructed_class_links_to_init(self):
        graph = build_graph(
            _summaries(**{
                "src/repro/m.py": """
                    class Widget:
                        def __init__(self):
                            pass

                    def make():
                        return Widget()
                """,
            })
        )
        assert graph.call_edges["repro.m.make"] == ("repro.m.Widget.__init__",)

    def test_self_recursion_dropped_and_unresolved_kept(self):
        graph = build_graph(
            _summaries(**{
                "src/repro/m.py": """
                    def loop(n):
                        if n:
                            loop(n - 1)
                        return mystery(n)
                """,
            })
        )
        assert "repro.m.loop" not in graph.call_edges
        assert graph.unresolved["repro.m.loop"] == ("mystery",)

    def test_reachable_from_closes_over_edges(self):
        graph = build_graph(
            _summaries(**{
                "src/repro/m.py": """
                    def a():
                        b()

                    def b():
                        c()

                    def c():
                        pass

                    def island():
                        pass
                """,
            })
        )
        reach = graph.reachable_from(["repro.m.a"])
        assert reach == {"repro.m.a", "repro.m.b", "repro.m.c"}

    def test_callers_of_reverses_edges(self):
        graph = build_graph(
            _summaries(**{
                "src/repro/m.py": """
                    def a():
                        shared()

                    def b():
                        shared()

                    def shared():
                        pass
                """,
            })
        )
        reverse = graph.callers_of()
        assert reverse["repro.m.shared"] == ["repro.m.a", "repro.m.b"]
