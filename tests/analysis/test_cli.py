"""The ``repro lint`` CLI: exit codes, output formats, baseline flow.

Most tests run against a synthetic mini-repo in tmp_path so they are
independent of the real tree's lint status; the self-check tests in
test_selfcheck.py cover HEAD.
"""

import json

import pytest

from repro.analysis.cli import main as lint_main

CLEAN = 'def f(x: float) -> float:\n    """Eq. 1: identity."""\n    return x\n'
DIRTY = (
    'def f(x: float) -> bool:\n'
    '    """Eq. 1: a float comparison."""\n'
    '    return x == 0.5\n'
)
PAPER = "The model is Eq. 1."


def _mini_repo(tmp_path, source: str, paper: str = PAPER):
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    core = pkg / "core"
    core.mkdir()
    core.joinpath("model.py").write_text(source)
    tmp_path.joinpath("PAPER.md").write_text(paper)
    return tmp_path


def run_cli(repo, *extra: str) -> int:
    return lint_main(["--repo-root", str(repo), *extra])


class TestExitCodes:
    def test_clean_repo_exits_zero(self, tmp_path, capsys):
        repo = _mini_repo(tmp_path, CLEAN)
        assert run_cli(repo) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        repo = _mini_repo(tmp_path, DIRTY)
        assert run_cli(repo) == 1
        assert "RL004" in capsys.readouterr().out

    def test_missing_target_exits_two(self, tmp_path, capsys):
        repo = _mini_repo(tmp_path, CLEAN)
        assert run_cli(repo, "no/such/dir") == 2

    def test_select_limits_rules(self, tmp_path):
        repo = _mini_repo(tmp_path, DIRTY)
        assert run_cli(repo, "--select", "RL001") == 0
        assert run_cli(repo, "--select", "RL004") == 1

    def test_disable_drops_rule(self, tmp_path):
        repo = _mini_repo(tmp_path, DIRTY)
        assert run_cli(repo, "--disable", "RL004") == 0


class TestBaselineFlow:
    def test_write_then_lint_then_ratchet(self, tmp_path, capsys):
        repo = _mini_repo(tmp_path, DIRTY)
        # Grandfather the finding...
        assert run_cli(repo, "--write-baseline") == 0
        baseline = json.loads((repo / ".repro-lint-baseline.json").read_text())
        assert baseline["format"] == 1 and len(baseline["findings"]) == 1
        # ...now lint is clean, including under the ratchet.
        assert run_cli(repo) == 0
        assert run_cli(repo, "--ratchet") == 0
        # Fix the code: the entry becomes stale; only --ratchet fails.
        (repo / "src/repro/core/model.py").write_text(CLEAN)
        capsys.readouterr()
        assert run_cli(repo) == 0
        assert run_cli(repo, "--ratchet") == 1
        assert "stale" in capsys.readouterr().out

    def test_no_baseline_ignores_file(self, tmp_path):
        repo = _mini_repo(tmp_path, DIRTY)
        assert run_cli(repo, "--write-baseline") == 0
        assert run_cli(repo) == 0
        assert run_cli(repo, "--no-baseline") == 1


class TestOutputs:
    def test_json_to_stdout(self, tmp_path, capsys):
        repo = _mini_repo(tmp_path, DIRTY)
        assert run_cli(repo, "--no-baseline", "--quiet", "--json", "-") == 1
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["version"] == 1
        assert payload["summary"]["findings"] == 1
        assert payload["findings"][0]["rule"] == "RL004"

    def test_json_and_sarif_files(self, tmp_path):
        repo = _mini_repo(tmp_path, DIRTY)
        out_json = tmp_path / "out" / "lint.json"
        out_sarif = tmp_path / "out" / "lint.sarif"
        run_cli(repo, "--no-baseline", "--json", str(out_json),
                "--sarif", str(out_sarif))
        assert json.loads(out_json.read_text())["summary"]["findings"] == 1
        sarif = json.loads(out_sarif.read_text())
        assert sarif["version"] == "2.1.0"
        results = sarif["runs"][0]["results"]
        assert results and results[0]["ruleId"] == "RL004"

    def test_eq_table_text_and_markdown(self, tmp_path, capsys):
        repo = _mini_repo(tmp_path, CLEAN)
        assert run_cli(repo, "--eq-table") == 0
        assert "traceability" in capsys.readouterr().out
        assert run_cli(repo, "--eq-table", "--format", "markdown") == 0
        assert "| " in capsys.readouterr().out

    def test_list_rules(self, tmp_path, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005",
                        "RL006", "RL007"):
            assert rule_id in out

    def test_output_file(self, tmp_path):
        repo = _mini_repo(tmp_path, CLEAN)
        target = tmp_path / "report.txt"
        run_cli(repo, "--output", str(target))
        assert "0 finding(s)" in target.read_text()


class TestGithubFormat:
    def test_annotations_for_active_findings(self, tmp_path, capsys):
        repo = _mini_repo(tmp_path, DIRTY)
        assert run_cli(repo, "--no-baseline", "--format", "github") == 1
        out = capsys.readouterr().out
        line = next(l for l in out.splitlines() if l.startswith("::"))
        assert line.startswith("::error file=src/repro/core/model.py,line=")
        assert ",title=RL004::" in line
        assert "1 finding(s)" in out

    def test_messages_are_escaped(self, tmp_path, capsys):
        repo = _mini_repo(tmp_path, DIRTY)
        run_cli(repo, "--no-baseline", "--format", "github")
        out = capsys.readouterr().out
        for line in out.splitlines():
            if line.startswith("::"):
                # A newline or percent inside the message would break
                # the single-line annotation protocol.
                assert "%" not in line or "%25" in line or "%0A" in line

    def test_baselined_findings_do_not_annotate(self, tmp_path, capsys):
        repo = _mini_repo(tmp_path, DIRTY)
        assert run_cli(repo, "--write-baseline") == 0
        capsys.readouterr()
        assert run_cli(repo, "--format", "github") == 0
        out = capsys.readouterr().out
        assert "::" not in out
        assert "0 finding(s)" in out


class TestGraphOutput:
    def test_graph_to_file(self, tmp_path):
        repo = _mini_repo(tmp_path, CLEAN)
        target = tmp_path / "graph.json"
        assert run_cli(repo, "--graph", str(target)) == 0
        graph = json.loads(target.read_text())
        assert "repro.core.model.f" in graph["functions"]
        assert graph["stats"]["functions"] == 1

    def test_graph_to_stdout(self, tmp_path, capsys):
        repo = _mini_repo(tmp_path, CLEAN)
        assert run_cli(repo, "--quiet", "--graph", "-") == 0
        out = capsys.readouterr().out
        graph = json.loads(out[out.index("{"):])
        assert "repro.core.model.f" in graph["functions"]


class TestCacheFlags:
    def test_cache_dir_and_changed_only(self, tmp_path, capsys):
        repo = _mini_repo(tmp_path, DIRTY)
        cache = tmp_path / "cache"
        assert run_cli(repo, "--no-baseline", "--cache-dir", str(cache)) == 1
        assert (cache / "repro-lint-cache.json").is_file()
        capsys.readouterr()
        # Warm + --changed-only: nothing changed, so nothing reported —
        # the finding still exists, as a plain warm run shows.
        assert run_cli(repo, "--no-baseline", "--cache-dir", str(cache),
                       "--changed-only") == 0
        assert "0 finding(s)" in capsys.readouterr().out
        assert run_cli(repo, "--no-baseline", "--cache-dir", str(cache)) == 1
