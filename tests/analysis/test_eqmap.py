"""Equation traceability: paper registry parsing, docstring scanning,
the cross-reference table and the RL005 rule that enforces it."""

import ast
import textwrap

from repro.analysis.eqmap import build_table, parse_paper_equations, scan_module
from repro.analysis.registry import ModuleInfo, ProjectInfo, get_rule

PAPER = "The model (Eq. 1) predicts IPC; fairness uses Eqs. 2-3."


def _module(source: str, relpath: str = "src/repro/core/x.py") -> ModuleInfo:
    source = textwrap.dedent(source)
    return ModuleInfo(relpath=relpath, tree=ast.parse(source), source=source)


class TestPaperRegistry:
    def test_single_and_range_references(self):
        assert parse_paper_equations(PAPER) == [1, 2, 3]

    def test_equation_spelling_variants(self):
        text = "Equation 4 and Equations 6-7 and Eq. 9"
        assert parse_paper_equations(text) == [4, 6, 7, 9]

    def test_no_equations(self):
        assert parse_paper_equations("no math here") == []

    def test_external_citations_are_not_references(self):
        # "Eq. N of/in <Capitalized source>" cites another paper's
        # numbering, so it is invisible to the registry and to RL005.
        text = (
            "the quantum of Eq. 2 in Shreedhar & Varghese (1995); "
            "compare Eq. 4 of 'Tullsen et al.' and Eq. 5 in (Gabor)."
        )
        assert parse_paper_equations(text) == []

    def test_lowercase_prose_after_of_or_in_still_counts(self):
        # Plain prose is not a citation: these reference *this* paper.
        text = "Eq. 1 in the limit; Eq. 3 of course holds; Eq. 2 into x."
        assert parse_paper_equations(text) == [1, 2, 3]

    def test_external_range_citation_is_fully_skipped(self):
        assert parse_paper_equations("see Eqs. 7-9 of Smith (2001)") == []


class TestDocstringScan:
    def test_claim_vs_mention(self):
        module = _module(
            '''
            def f(x):
                """Eq. 2: the unenforced IPC.

                Reduces to Eq. 1 when alone.
                """
            '''
        )
        claims, mentions = scan_module(module)
        assert [(c.number, c.qualname) for c in claims] == [(2, "f")]
        # The claim's own "Eq. 2" is not double-counted as a mention.
        assert [m.number for m in mentions] == [1]

    def test_method_claims_use_qualified_name(self):
        module = _module(
            '''
            class Model:
                def soe_ipcs(self):
                    """Eq. 6: enforced SOE IPC."""
            '''
        )
        claims, _ = scan_module(module)
        assert claims[0].qualname == "Model.soe_ipcs"

    def test_module_docstring_is_mention_only(self):
        module = _module('"""Covers Eq. 3 and Eq. 5."""\n')
        claims, mentions = scan_module(module)
        assert claims == [] and sorted(m.number for m in mentions) == [3, 5]


class TestEqTable:
    def _table(self, source: str):
        return build_table([_module(source)], PAPER)

    def test_complete_table(self):
        table = self._table(
            '''
            def a():
                """Eq. 1: one."""
            def b():
                """Eq. 2: two."""
            def c():
                """Eq. 3: three."""
            '''
        )
        assert table.is_complete
        assert [c.qualname for c in table.claimants(1)] == ["a"]

    def test_incomplete_and_renders(self):
        table = self._table('def a():\n    """Eq. 1: one."""\n')
        assert not table.is_complete
        text = table.render_text()
        assert "Eq." in text and "traceability" in text
        markdown = table.render_markdown()
        assert markdown.startswith("|") or "|" in markdown


class TestRL005:
    def _findings(self, source: str):
        module = _module(source)
        table = build_table([module], PAPER)
        project = ProjectInfo(modules=[module], eq_table=table)
        return sorted(get_rule("RL005").finalize(project))

    def test_complete_coverage_is_clean(self):
        findings = self._findings(
            '''
            def a():
                """Eq. 1: one."""
            def b():
                """Eq. 2: two."""
            def c():
                """Eq. 3: three."""
            '''
        )
        assert findings == []

    def test_unclaimed_equation_flagged(self):
        findings = self._findings(
            '''
            def a():
                """Eq. 1: one."""
            def b():
                """Eq. 2: two."""
            '''
        )
        assert len(findings) == 1
        assert "Eq. 3" in findings[0].message
        assert findings[0].path == "PAPER.md"

    def test_double_claim_flagged_at_each_site(self):
        findings = self._findings(
            '''
            def a():
                """Eq. 1: one."""
            def a2():
                """Eq. 1: also one."""
            def b():
                """Eq. 2: two."""
            def c():
                """Eq. 3: three."""
            '''
        )
        assert len(findings) == 2
        assert all("Eq. 1" in f.message for f in findings)

    def test_unknown_mention_flagged(self):
        findings = self._findings(
            '''
            def a():
                """Eq. 1: one.

                See Eq. 99 for details.
                """
            def b():
                """Eq. 2: two."""
            def c():
                """Eq. 3: three."""
            '''
        )
        assert len(findings) == 1 and "Eq. 99" in findings[0].message

    def test_unknown_claim_flagged(self):
        findings = self._findings(
            '''
            def a():
                """Eq. 1: one."""
            def b():
                """Eq. 2: two."""
            def c():
                """Eq. 3: three."""
            def d():
                """Eq. 42: not in the paper."""
            '''
        )
        assert any("claims Eq. 42" in f.message for f in findings)

    def test_no_paper_means_no_findings(self):
        module = _module('def a():\n    """Eq. 1: one."""\n')
        project = ProjectInfo(modules=[module], eq_table=None)
        assert list(get_rule("RL005").finalize(project)) == []
