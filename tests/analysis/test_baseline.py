"""Baseline persistence, matching semantics and the ratchet."""

import json

import pytest

from repro.analysis.baseline import Baseline, BaselineEntry, apply_baseline
from repro.analysis.findings import Finding, Severity
from repro.errors import ConfigurationError


def _finding(line: int = 1, message: str = "m", rule: str = "RL004") -> Finding:
    return Finding(
        path="src/repro/core/x.py", line=line, col=0, rule=rule,
        message=message, severity=Severity.ERROR,
    )


class TestPersistence:
    def test_round_trip(self, tmp_path):
        baseline = Baseline.from_findings([_finding(), _finding(line=9)])
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded.entries.keys() == baseline.entries.keys()
        assert loaded.total == baseline.total == 2

    def test_missing_file_is_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "nope.json").total == 0

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            Baseline.load(path)

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"format": 99, "findings": {}}))
        with pytest.raises(ConfigurationError):
            Baseline.load(path)


class TestMatching:
    def test_fingerprint_ignores_line_numbers(self):
        # Baselines must survive unrelated edits that shift code around.
        assert _finding(line=1).fingerprint == _finding(line=500).fingerprint
        assert _finding().fingerprint != _finding(message="other").fingerprint

    def test_matching_findings_marked_baselined(self):
        baseline = Baseline.from_findings([_finding()])
        kept, stale = apply_baseline([_finding(line=42)], baseline)
        assert [f.baselined for f in kept] == [True]
        assert stale == []

    def test_count_limits_how_many_match(self):
        # One baselined occurrence; two live ones -> one stays active.
        baseline = Baseline.from_findings([_finding()])
        kept, _ = apply_baseline([_finding(line=1), _finding(line=2)], baseline)
        assert sorted(f.baselined for f in kept) == [False, True]

    def test_stale_entries_reported(self):
        gone = _finding(message="fixed long ago")
        baseline = Baseline.from_findings([gone])
        kept, stale = apply_baseline([], baseline)
        assert kept == []
        assert len(stale) == 1 and "no longer found" in stale[0]

    def test_ratchet_partial_count_is_stale(self):
        # 3 grandfathered, only 1 remains -> the 2 unused occurrences
        # are stale: the ratchet demands the committed count shrink.
        baseline = Baseline(
            {_finding().fingerprint: BaselineEntry(3, "example")}
        )
        kept, stale = apply_baseline([_finding()], baseline)
        assert kept[0].baselined
        assert len(stale) == 1 and "2 baselined occurrence" in stale[0]
