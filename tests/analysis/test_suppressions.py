"""Inline-pragma suppression forms and their round trip through
check_source."""

import textwrap

from repro.analysis.engine import check_source
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import get_rule
from repro.analysis.suppressions import parse_suppressions

CORE = "src/repro/core/snippet.py"


def _finding(line: int, rule: str = "RL004") -> Finding:
    return Finding(
        path=CORE, line=line, col=0, rule=rule,
        message="m", severity=Severity.ERROR,
    )


class TestPragmaParsing:
    def test_same_line_pragma(self):
        sup = parse_suppressions("x = 1.0 == y  # repro-lint: disable=RL004\n")
        assert sup.is_suppressed(_finding(1))
        assert not sup.is_suppressed(_finding(2))

    def test_next_line_pragma(self):
        source = "# repro-lint: disable=RL004 - sentinel\nx = 1.0 == y\n"
        sup = parse_suppressions(source)
        assert sup.is_suppressed(_finding(2))
        # A comment-only pragma does not cover its own line's rule hits
        # elsewhere, nor lines past the next one.
        assert not sup.is_suppressed(_finding(3))

    def test_multiple_rules_one_pragma(self):
        sup = parse_suppressions("x = f()  # repro-lint: disable=RL001,RL004\n")
        assert sup.is_suppressed(_finding(1, "RL001"))
        assert sup.is_suppressed(_finding(1, "RL004"))
        assert not sup.is_suppressed(_finding(1, "RL002"))

    def test_disable_file_pragma(self):
        source = "# repro-lint: disable-file=RL003\ns = {1}\nfor x in s: pass\n"
        sup = parse_suppressions(source)
        assert sup.is_suppressed(_finding(3, "RL003"))
        assert sup.is_suppressed(_finding(99, "RL003"))
        assert not sup.is_suppressed(_finding(3, "RL004"))

    def test_rules_used_collects_all(self):
        source = (
            "# repro-lint: disable-file=RL003\n"
            "x = 1.0 == y  # repro-lint: disable=RL004\n"
        )
        assert parse_suppressions(source).rules_used == frozenset(
            {"RL003", "RL004"}
        )


class TestSuppressionEndToEnd:
    def test_suppressed_finding_dropped_by_check_source(self):
        rule = get_rule("RL004")
        noisy = "x = 1.0\nok = x == 0.5\n"
        quiet = "x = 1.0\nok = x == 0.5  # repro-lint: disable=RL004 - why\n"
        assert check_source(rule, noisy, CORE)
        assert check_source(rule, quiet, CORE) == []

    def test_wrong_rule_id_does_not_suppress(self):
        rule = get_rule("RL004")
        source = "x = 1.0\nok = x == 0.5  # repro-lint: disable=RL001\n"
        assert len(check_source(rule, source, CORE)) == 1

    def test_next_line_form_end_to_end(self):
        rule = get_rule("RL004")
        source = textwrap.dedent(
            """\
            x = 1.0
            # repro-lint: disable=RL004 - exact sentinel
            ok = x == 0.5
            """
        )
        assert check_source(rule, source, CORE) == []


class TestDecoratedDefs:
    """Next-line pragmas must land on the ``def``, not the decorator.

    Rules anchor findings at the function definition line; a pragma
    written above the decorator stack still has to cover the def that
    eventually follows, however many decorator lines intervene.
    """

    def test_pragma_above_single_decorator(self):
        source = textwrap.dedent(
            """\
            # repro-lint: disable=RL004 - reviewed
            @cached
            def f(x):
                return x == 0.5
            """
        )
        sup = parse_suppressions(source)
        assert sup.is_suppressed(_finding(3))  # the def line
        assert not sup.is_suppressed(_finding(2))  # not the decorator

    def test_pragma_above_stacked_decorators(self):
        source = textwrap.dedent(
            """\
            # repro-lint: disable=RL004 - reviewed
            @outer
            @inner
            @cached
            def f(x):
                return x == 0.5
            """
        )
        assert parse_suppressions(source).is_suppressed(_finding(5))

    def test_pragma_above_multiline_decorator_arguments(self):
        source = textwrap.dedent(
            """\
            # repro-lint: disable=RL004 - reviewed
            @parametrize(
                "x",
                [0.5, 1.0],
            )
            def f(x):
                return x == 0.5
            """
        )
        assert parse_suppressions(source).is_suppressed(_finding(6))

    def test_multi_rule_comma_list_with_spaces_on_decorated_def(self):
        source = textwrap.dedent(
            """\
            # repro-lint: disable=RL001, RL004 - rng + sentinel reviewed
            @cached
            def f(x):
                return random() == x
            """
        )
        sup = parse_suppressions(source)
        assert sup.is_suppressed(_finding(3, "RL001"))
        assert sup.is_suppressed(_finding(3, "RL004"))
        assert not sup.is_suppressed(_finding(3, "RL002"))
