"""Per-rule unit tests: each rule must flag the positive snippet and
stay silent on the negative one."""

import textwrap

import pytest

from repro.analysis.engine import check_source
from repro.analysis.registry import get_rule

CORE = "src/repro/core/snippet.py"


def run(rule_id: str, source: str, relpath: str = CORE):
    return check_source(get_rule(rule_id), textwrap.dedent(source), relpath)


class TestRL001NoUnseededRandom:
    @pytest.mark.parametrize(
        "source",
        [
            "import random\nx = random.random()\n",
            "import random\nrandom.seed(0)\n",
            "import random as rnd\nx = rnd.randint(0, 3)\n",
            "from random import random\nx = random()\n",
            "import numpy as np\nx = np.random.rand(3)\n",
        ],
    )
    def test_flags_global_rng(self, source):
        findings = run("RL001", source)
        assert len(findings) == 1 and findings[0].rule == "RL001"

    @pytest.mark.parametrize(
        "source",
        [
            "import random\nrng = random.Random(7)\nx = rng.random()\n",
            "from random import Random\nrng = Random(7)\n",
            "import numpy as np\nrng = np.random.default_rng(7)\n",
            "x = 1 + 2\n",
        ],
    )
    def test_allows_instance_seeded(self, source):
        assert run("RL001", source) == []


class TestRL002NoWallClock:
    @pytest.mark.parametrize(
        "source",
        [
            "import time\nt = time.perf_counter()\n",
            "import time\nt = time.monotonic_ns()\n",
            "import datetime\nd = datetime.datetime.now()\n",
            "from time import perf_counter\nt = perf_counter()\n",
        ],
    )
    def test_flags_wallclock(self, source):
        findings = run("RL002", source)
        assert len(findings) == 1 and findings[0].rule == "RL002"

    def test_allows_time_in_telemetry(self):
        source = "import time\nt = time.perf_counter()\n"
        assert run("RL002", source, "src/repro/telemetry/snippet.py") == []

    def test_allows_time_in_runner(self):
        source = "import time\nt = time.perf_counter()\n"
        assert run("RL002", source, "src/repro/experiments/runner.py") == []

    def test_allows_sleepless_code(self):
        assert run("RL002", "import time\nx = time.gmtime\n") == []


class TestRL003NoOrderingHazard:
    @pytest.mark.parametrize(
        "source",
        [
            "s = {1, 2, 3}\nfor x in s:\n    pass\n",
            "s = set([1, 2])\nout = list(s)\n",
            "s = {x for x in range(3)}\nout = [y for y in s]\n",
            "def f(s: set):\n    for x in s:\n        pass\n",
        ],
    )
    def test_flags_set_iteration(self, source):
        findings = run("RL003", source)
        assert findings and all(f.rule == "RL003" for f in findings)

    @pytest.mark.parametrize(
        "source",
        [
            "s = {1, 2, 3}\nfor x in sorted(s):\n    pass\n",
            "s = {1, 2}\nout = sorted(s)\n",
            "d = {'a': 1}\nfor k in d:\n    pass\n",  # dicts are ordered
            "xs = [1, 2]\nfor x in xs:\n    pass\n",
        ],
    )
    def test_allows_sorted_iteration(self, source):
        assert run("RL003", source) == []

    def test_out_of_scope_path_ignored(self):
        source = "s = {1, 2}\nfor x in s:\n    pass\n"
        assert run("RL003", source, "src/repro/analysis/snippet.py") == []


class TestRL004NoFloatEquality:
    @pytest.mark.parametrize(
        "source",
        [
            "x = 1.0\nok = x == 0.5\n",
            "def f(a: float):\n    return a != 0.0\n",
            "ok = (3 / 4) == 0.75\n",
            "import math\nok = math.pi == 3.14\n",
        ],
    )
    def test_flags_float_comparison(self, source):
        findings = run("RL004", source)
        assert len(findings) == 1 and findings[0].rule == "RL004"

    @pytest.mark.parametrize(
        "source",
        [
            "x = 1\nok = x == 2\n",  # ints compare exactly
            "import math\nok = math.isclose(1.0, 1.0)\n",
            "x = 1.0\nok = x < 0.5\n",  # orderings are fine
            "s = 'a'\nok = s == 'b'\n",
        ],
    )
    def test_allows_exact_or_tolerant(self, source):
        assert run("RL004", source) == []

    def test_out_of_scope_path_ignored(self):
        source = "x = 1.0\nok = x == 0.5\n"
        assert run("RL004", source, "src/repro/engine/snippet.py") == []


class TestRL006NoMutableDefaultArgs:
    def test_flags_list_default(self):
        findings = run("RL006", "def f(xs=[]):\n    return xs\n")
        assert len(findings) == 1 and findings[0].rule == "RL006"

    def test_flags_dict_and_set_defaults(self):
        assert run("RL006", "def f(d={}):\n    pass\n")
        assert run("RL006", "def f(s=set()):\n    pass\n")

    def test_allows_none_and_tuple(self):
        assert run("RL006", "def f(xs=None, t=()):\n    pass\n") == []


class TestRL007NoBareExcept:
    def test_flags_bare_except(self):
        source = "try:\n    pass\nexcept:\n    pass\n"
        findings = run("RL007", source)
        assert len(findings) == 1 and findings[0].rule == "RL007"

    def test_allows_typed_except(self):
        source = "try:\n    pass\nexcept ValueError:\n    pass\n"
        assert run("RL007", source) == []


class TestRL008NoUnsupervisedPool:
    @pytest.mark.parametrize(
        "source",
        [
            "import multiprocessing\n"
            "pool = multiprocessing.Pool(4)\n",
            "from multiprocessing import Pool\n"
            "p = Pool()\n",
            "import multiprocessing.pool as mpool\n",  # module alone is fine
        ],
    )
    def test_flags_pool_constructors(self, source):
        findings = run("RL008", source, "src/repro/experiments/snippet.py")
        expected = 0 if "mpool" in source else 1
        assert len(findings) == expected
        assert all(f.rule == "RL008" for f in findings)

    def test_flags_map_on_bound_pool(self):
        source = (
            "import multiprocessing\n"
            "with multiprocessing.Pool(2) as pool:\n"
            "    out = pool.map(f, xs)\n"
        )
        findings = run("RL008", source, "src/repro/experiments/snippet.py")
        # constructor + .map on the bound name
        assert len(findings) == 2

    def test_flags_executor_submit(self):
        source = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "ex = ProcessPoolExecutor()\n"
            "fut = ex.submit(f, 1)\n"
        )
        findings = run("RL008", source, "src/repro/experiments/snippet.py")
        assert len(findings) == 2

    @pytest.mark.parametrize(
        "source",
        [
            "from repro.experiments.runner import parallel_map\n"
            "out = parallel_map(f, xs)\n",
            # Process-per-task supervision primitives are not pools.
            "import multiprocessing\n"
            "p = multiprocessing.Process(target=f)\n"
            "p.start()\n",
            # .map on something that is not a pool
            "out = mapping.map(f, xs)\n",
        ],
    )
    def test_allows_supervised_and_non_pool(self, source):
        assert run("RL008", source, "src/repro/experiments/snippet.py") == []

    def test_supervised_executor_is_exempt(self):
        source = "from multiprocessing import Pool\np = Pool()\n"
        assert run("RL008", source, "src/repro/experiments/runner.py") == []
        assert run("RL008", source,
                   "src/repro/experiments/supervisor.py") == []

    def test_out_of_scope_path_ignored(self):
        source = "from multiprocessing import Pool\np = Pool()\n"
        assert run("RL008", source, "benchmarks/snippet.py") == []
