"""The content-hash analysis cache and deterministic file discovery."""

import json
import time

from repro.analysis.cache import (
    CACHE_FORMAT,
    AnalysisCache,
    FileRecord,
    analyzer_digest,
    content_hash,
)
from repro.analysis.engine import default_repo_root, discover_files, run_lint
from repro.errors import ConfigurationError

import pytest

DIRTY = "def f(x: float) -> bool:\n    return x == 0.5\n"
CLEAN = "def f(x: float) -> float:\n    return x\n"


def _mini_repo(tmp_path, files):
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    tmp_path.joinpath("PAPER.md").write_text("No equations here.")
    return tmp_path


def _lint(repo, cache_dir, **kwargs):
    return run_lint(repo_root=repo, cache_dir=cache_dir, **kwargs)


class TestCacheCorrectness:
    def test_cold_and_warm_reports_are_byte_identical(self, tmp_path):
        repo = _mini_repo(
            tmp_path,
            {"src/repro/core/a.py": DIRTY, "src/repro/core/b.py": CLEAN},
        )
        cache_dir = tmp_path / "cache"
        cold = _lint(repo, cache_dir)
        warm = _lint(repo, cache_dir)
        assert cold.cache_misses == 2 and cold.cache_hits == 0
        assert warm.cache_hits == 2 and warm.cache_misses == 0
        # The report must not depend on where the findings came from.
        dump = lambda r: json.dumps(r.to_json(), indent=2, sort_keys=True)
        assert dump(cold) == dump(warm)
        assert len(warm.active) == 1

    def test_content_change_invalidates_only_that_file(self, tmp_path):
        repo = _mini_repo(
            tmp_path,
            {"src/repro/core/a.py": CLEAN, "src/repro/core/b.py": CLEAN},
        )
        cache_dir = tmp_path / "cache"
        _lint(repo, cache_dir)
        (repo / "src/repro/core/b.py").write_text(DIRTY)
        rerun = _lint(repo, cache_dir)
        assert rerun.cache_hits == 1 and rerun.cache_misses == 1
        assert rerun.changed_files == ["src/repro/core/b.py"]
        assert [f.path for f in rerun.active] == ["src/repro/core/b.py"]

    def test_changed_only_drops_unchanged_findings(self, tmp_path):
        repo = _mini_repo(
            tmp_path,
            {"src/repro/core/a.py": DIRTY, "src/repro/core/b.py": CLEAN},
        )
        cache_dir = tmp_path / "cache"
        cold = _lint(repo, cache_dir)
        assert [f.path for f in cold.active] == ["src/repro/core/a.py"]
        (repo / "src/repro/core/b.py").write_text(DIRTY)
        rerun = _lint(repo, cache_dir, changed_only=True)
        # a.py's finding still exists but a.py was served from cache;
        # the developer-loop report shows only freshly analyzed files.
        assert [f.path for f in rerun.active] == ["src/repro/core/b.py"]

    def test_suppression_edit_invalidates_with_the_file(self, tmp_path):
        repo = _mini_repo(tmp_path, {"src/repro/core/a.py": DIRTY})
        cache_dir = tmp_path / "cache"
        assert len(_lint(repo, cache_dir).active) == 1
        (repo / "src/repro/core/a.py").write_text(
            DIRTY.replace(
                "return x == 0.5",
                "return x == 0.5  # repro-lint: disable=RL004 - sentinel",
            )
        )
        assert _lint(repo, cache_dir).active == []


class TestCacheRobustness:
    def test_analyzer_digest_mismatch_loads_empty(self, tmp_path):
        repo = _mini_repo(tmp_path, {"src/repro/core/a.py": CLEAN})
        cache_dir = tmp_path / "cache"
        _lint(repo, cache_dir)
        index = cache_dir / "repro-lint-cache.json"
        data = json.loads(index.read_text())
        assert data["format"] == CACHE_FORMAT
        assert data["analyzer"] == analyzer_digest()
        data["analyzer"] = "0" * 64  # an older analyzer wrote this
        index.write_text(json.dumps(data))
        assert AnalysisCache.load(cache_dir).records == {}
        assert _lint(repo, cache_dir).cache_misses == 1

    def test_corrupt_index_is_empty_never_an_error(self, tmp_path):
        repo = _mini_repo(tmp_path, {"src/repro/core/a.py": CLEAN})
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        (cache_dir / "repro-lint-cache.json").write_text("{not json")
        assert AnalysisCache.load(cache_dir).records == {}
        result = _lint(repo, cache_dir)
        assert result.cache_misses == 1
        # ...and the rewritten index is healthy again.
        assert _lint(repo, cache_dir).cache_hits == 1

    def test_prune_drops_records_outside_the_target_set(self, tmp_path):
        cache = AnalysisCache(directory=tmp_path)
        cache.store("src/repro/keep.py", FileRecord(content_hash="a"))
        cache.store("src/repro/gone.py", FileRecord(content_hash="b"))
        cache.prune(("src/repro/keep.py",))
        assert list(cache.records) == ["src/repro/keep.py"]

    def test_deleted_file_leaves_no_ghost_findings(self, tmp_path):
        repo = _mini_repo(
            tmp_path,
            {"src/repro/core/a.py": CLEAN, "src/repro/core/b.py": DIRTY},
        )
        cache_dir = tmp_path / "cache"
        assert len(_lint(repo, cache_dir).active) == 1
        (repo / "src/repro/core/b.py").unlink()
        result = _lint(repo, cache_dir)
        assert result.active == []
        index = json.loads((cache_dir / "repro-lint-cache.json").read_text())
        assert list(index["files"]) == ["src/repro/core/a.py"]

    def test_content_hash_is_stable(self):
        assert content_hash("x = 1\n") == content_hash("x = 1\n")
        assert content_hash("x = 1\n") != content_hash("x = 2\n")


class TestWarmSpeedup:
    def test_warm_run_is_at_least_5x_faster_on_the_real_repo(self, tmp_path):
        """The satellite's acceptance bar: warm >= 5x cold.

        Measured locally at ~17x (cold ~1.5s parses + runs every
        per-file rule on ~100 files; warm re-runs only the cross-file
        passes), so the 5x floor has wide margin.
        """
        root = default_repo_root()
        cache_dir = tmp_path / "cache"
        start = time.perf_counter()
        cold = run_lint(repo_root=root, cache_dir=cache_dir)
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        warm = run_lint(repo_root=root, cache_dir=cache_dir)
        warm_s = time.perf_counter() - start
        assert cold.cache_misses > 0 and warm.cache_hits == cold.cache_misses
        assert warm.cache_misses == 0
        assert cold_s >= 5 * warm_s, (
            f"cold {cold_s:.3f}s vs warm {warm_s:.3f}s "
            f"({cold_s / warm_s:.1f}x) — cache no longer pays for itself"
        )


class TestDiscovery:
    def test_sorted_by_path_string_not_components(self, tmp_path):
        # Path-component ordering would put engine/batch.py before
        # engine.py; the contract is plain string order ('.' < '/'),
        # identical on every OS and filesystem.
        repo = _mini_repo(
            tmp_path,
            {
                "src/repro/engine.py": CLEAN,
                "src/repro/engine/batch.py": CLEAN,
                "src/repro/engine/__init__.py": "",
            },
        )
        assert discover_files(repo, ["src/repro"]) == [
            "src/repro/engine.py",
            "src/repro/engine/__init__.py",
            "src/repro/engine/batch.py",
        ]

    def test_empty_init_and_stub_only_files_are_included(self, tmp_path):
        repo = _mini_repo(
            tmp_path,
            {
                "src/repro/__init__.py": "",
                "src/repro/types.py": "RunId = str\nSeed = int\n",
            },
        )
        assert discover_files(repo, ["src/repro"]) == [
            "src/repro/__init__.py",
            "src/repro/types.py",
        ]

    def test_explicit_file_and_directory_targets_deduplicate(self, tmp_path):
        repo = _mini_repo(tmp_path, {"src/repro/core/a.py": CLEAN})
        found = discover_files(
            repo, ["src/repro", "src/repro/core/a.py", "src/repro/core"]
        )
        assert found == ["src/repro/core/a.py"]

    def test_non_python_files_are_ignored(self, tmp_path):
        repo = _mini_repo(tmp_path, {"src/repro/core/a.py": CLEAN})
        (repo / "src/repro/core/notes.md").write_text("not code")
        assert discover_files(repo, ["src/repro"]) == ["src/repro/core/a.py"]

    def test_missing_target_raises_configuration_error(self, tmp_path):
        repo = _mini_repo(tmp_path, {"src/repro/core/a.py": CLEAN})
        with pytest.raises(ConfigurationError, match="no/such"):
            discover_files(repo, ["no/such"])
