"""Self-check: the tree at HEAD must satisfy its own lint rules.

These are the acceptance tests of the PR that introduced repro-lint:
zero non-baselined findings, an empty (or shrinking) baseline, and a
complete Eq. 1-13 traceability map.
"""

from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.engine import DEFAULT_BASELINE, default_repo_root, run_lint

REPO = default_repo_root()


def _lint():
    baseline = Baseline.load(REPO / DEFAULT_BASELINE)
    return run_lint(repo_root=REPO, baseline=baseline)


def test_repo_root_detection():
    assert (REPO / "src" / "repro").is_dir()
    assert (REPO / "PAPER.md").is_file()


def test_head_is_lint_clean():
    result = _lint()
    assert result.active == [], [f.render() for f in result.findings]
    assert result.stale_baseline == []


def test_baseline_is_empty():
    # The PR fixed or suppressed (with reasons) every finding rather
    # than grandfathering any; keep it that way or justify the entry.
    baseline = Baseline.load(REPO / DEFAULT_BASELINE)
    assert baseline.total == 0


def test_every_suppression_names_a_real_rule():
    from repro.analysis.registry import rule_ids
    from repro.analysis.suppressions import parse_suppressions

    known = set(rule_ids())
    for path in sorted((REPO / "src" / "repro").rglob("*.py")):
        used = parse_suppressions(path.read_text()).rules_used
        unknown = used - known
        assert not unknown, f"{path}: unknown rule ids in pragma: {unknown}"


def test_equation_map_is_complete():
    result = _lint()
    table = result.eq_table
    assert table is not None
    assert sorted(table.registry) == list(range(1, 14))
    assert table.is_complete
    # Exactly one claimant each, and they live in the simulation code.
    for number in table.registry:
        (claim,) = table.claimants(number)
        assert claim.relpath.startswith("src/repro/")


def test_all_rules_ran():
    result = _lint()
    assert set(result.rules_run) == {
        "RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007",
        "RL008", "RL009", "RL010", "RL011", "RL012",
    }
    assert result.files_checked > 50
