"""Direct-effect detection and fixed-point taint propagation."""

import ast
import textwrap

from repro.analysis.callgraph import build_graph, summarize_module
from repro.analysis.dataflow import (
    DETERMINISM_KINDS,
    EFFECT_KINDS,
    EFFECT_RULES,
    effects_to_json,
    propagate,
)
from repro.analysis.registry import ModuleInfo


def _mod(relpath: str, source: str) -> ModuleInfo:
    source = textwrap.dedent(source)
    return ModuleInfo(relpath=relpath, tree=ast.parse(source), source=source)


def _effects(source: str, fn: str = "f") -> set:
    summary = summarize_module(_mod("src/repro/m.py", source))
    return {(e.kind, e.detail) for e in summary.functions[fn].effects}


def _graph(**files: str):
    summaries = {
        relpath: summarize_module(_mod(relpath, source))
        for relpath, source in files.items()
    }
    return build_graph(summaries)


class TestLattice:
    def test_determinism_kinds_are_a_subset(self):
        assert set(DETERMINISM_KINDS) <= set(EFFECT_KINDS)
        assert set(EFFECT_RULES) == set(DETERMINISM_KINDS)


class TestDirectEffects:
    def test_module_global_rng(self):
        effects = _effects(
            """
            import random

            def f():
                return random.random()
            """
        )
        assert ("rng", "random.random") in effects

    def test_from_imported_rng_name(self):
        effects = _effects(
            """
            from random import randint

            def f():
                return randint(0, 1)
            """
        )
        assert ("rng", "randint") in effects

    def test_seeded_generators_are_allowed(self):
        effects = _effects(
            """
            import random
            import numpy

            def f(seed):
                return random.Random(seed), numpy.random.default_rng(seed)
            """
        )
        assert not {e for e in effects if e[0] == "rng"}

    def test_wallclock_sources(self):
        effects = _effects(
            """
            import time
            from datetime import datetime

            def f():
                return time.monotonic(), datetime.now()
            """
        )
        assert ("wallclock", "time.monotonic") in effects
        assert ("wallclock", "datetime.now") in effects

    def test_set_iteration(self):
        effects = _effects(
            """
            def f(xs):
                s = set(xs)
                return [x for x in s]
            """
        )
        assert any(kind == "set_iter" for kind, _ in effects)

    def test_file_io_open_and_path_methods(self):
        effects = _effects(
            """
            def f(path):
                with open(path) as fh:
                    data = fh.read()
                return path.read_text(), data
            """
        )
        assert ("file_io", "open()") in effects
        assert ("file_io", ".read_text()") in effects

    def test_global_mutation_effect(self):
        summary = summarize_module(
            _mod(
                "src/repro/m.py",
                """
                _LOG = []

                def f(x):
                    _LOG.append(x)
                """,
            )
        )
        effects = summary.functions["f"].effects
        assert [(e.kind, e.detail) for e in effects] == [
            ("global_mut", "_LOG.append()")
        ]

    def test_pure_function_has_no_effects(self):
        assert _effects("def f(x):\n    return x * 2\n") == set()


class TestPropagation:
    def test_taint_flows_up_the_call_chain(self):
        graph = _graph(**{
            "src/repro/a.py": """
                from repro.b import jitter

                def run():
                    return jitter()
            """,
            "src/repro/b.py": """
                import random

                def jitter():
                    return random.random()
            """,
        })
        seeds = {
            q: n.effects for q, n in graph.functions.items() if n.effects
        }
        taints = propagate(graph, seeds)
        taint = taints["repro.a.run"]["rng"]
        assert taint.chain == ("repro.a.run", "repro.b.jitter")
        assert taint.source == "repro.b.jitter"
        assert not taint.direct
        assert taints["repro.b.jitter"]["rng"].direct

    def test_shortest_chain_wins(self):
        graph = _graph(**{
            "src/repro/m.py": """
                import random

                def top():
                    middle()
                    source()

                def middle():
                    source()

                def source():
                    return random.random()
            """,
        })
        seeds = {
            q: n.effects for q, n in graph.functions.items() if n.effects
        }
        taints = propagate(graph, seeds)
        # top reaches the source both directly and via middle; the
        # shortest witness chain is reported.
        assert taints["repro.m.top"]["rng"].chain == (
            "repro.m.top",
            "repro.m.source",
        )

    def test_propagation_is_deterministic(self):
        files = {
            "src/repro/m.py": """
                import random

                def a():
                    z()

                def b():
                    z()

                def z():
                    return random.random()
            """,
        }
        results = []
        for _ in range(3):
            graph = _graph(**files)
            seeds = {
                q: n.effects for q, n in graph.functions.items() if n.effects
            }
            taints = propagate(graph, seeds)
            results.append(
                {
                    q: {k: t.chain for k, t in per.items()}
                    for q, per in taints.items()
                }
            )
        assert results[0] == results[1] == results[2]

    def test_ref_edges_only_propagate_when_asked(self):
        graph = _graph(**{
            "src/repro/m.py": """
                import random

                def holder():
                    callback = source

                def source():
                    return random.random()
            """,
        })
        seeds = {
            q: n.effects for q, n in graph.functions.items() if n.effects
        }
        assert "repro.m.holder" not in propagate(graph, seeds)
        with_refs = propagate(graph, seeds, include_refs=True)
        assert "repro.m.holder" in with_refs


class TestGraphDump:
    def test_effects_merged_into_graph_json(self):
        graph = _graph(**{
            "src/repro/m.py": """
                import random

                def f():
                    return random.random()
            """,
        })
        seeds = {
            q: n.effects for q, n in graph.functions.items() if n.effects
        }
        dump = effects_to_json(graph, propagate(graph, seeds))
        entry = dump["functions"]["repro.m.f"]
        assert entry["effects"]["rng"]["detail"] == "random.random"
        assert dump["stats"]["effectful_functions"] == 1
