"""Whole-program rules RL009-RL012 against synthetic multi-file projects.

The fixtures use the real resolution machinery end to end
(``check_project`` builds summaries, the call graph, and effect
propagation exactly as ``run_lint`` does), so the tests pin the rules'
cross-module behavior, not just their per-file parsing.
"""

import textwrap

from repro.analysis.engine import check_project
from repro.analysis.registry import get_rule


def _project(rule_id: str, files: dict, docs: dict = None):
    sources = {
        relpath: textwrap.dedent(source) for relpath, source in files.items()
    }
    return check_project(get_rule(rule_id), sources, docs=docs)


# ---------------------------------------------------------------------------
# RL009 determinism-taint
# ---------------------------------------------------------------------------

#: The issue's acceptance scenario: an unseeded ``random.random()`` two
#: calls below a kernel function in engine/soe.py.
TAINTED_KERNEL = {
    "src/repro/engine/soe.py": """
        from repro.metrics.jitter import perturb

        def run(x):
            return perturb(x)
    """,
    "src/repro/metrics/jitter.py": """
        import random

        def perturb(x):
            return x + noise()

        def noise():
            return random.random()
    """,
}


class TestDeterminismTaint:
    def test_kernel_reaching_rng_two_calls_down_is_flagged(self):
        findings = _project("RL009", TAINTED_KERNEL)
        assert len(findings) == 1
        (finding,) = findings
        assert finding.path == "src/repro/engine/soe.py"
        assert finding.rule == "RL009"
        # The message names the full propagation chain and the concrete
        # source in the *other* file.
        assert "repro.engine.soe.run" in finding.message
        assert "repro.metrics.jitter.perturb" in finding.message
        assert "repro.metrics.jitter.noise" in finding.message
        assert "random.random" in finding.message
        assert "src/repro/metrics/jitter.py" in finding.message

    def test_seeded_generator_is_clean(self):
        findings = _project(
            "RL009",
            {
                "src/repro/engine/soe.py": """
                    from repro.metrics.jitter import perturb

                    def run(x, seed):
                        return perturb(x, seed)
                """,
                "src/repro/metrics/jitter.py": """
                    import random

                    def perturb(x, seed):
                        return x + random.Random(seed).random()
                """,
            },
        )
        assert findings == []

    def test_direct_kernel_effect_is_left_to_per_file_rules(self):
        findings = _project(
            "RL009",
            {
                "src/repro/engine/soe.py": """
                    import random

                    def run(x):
                        return x + random.random()
                """,
            },
        )
        assert findings == []  # RL001's jurisdiction, not RL009's

    def test_non_kernel_caller_is_not_flagged(self):
        findings = _project(
            "RL009",
            {
                "src/repro/metrics/report.py": """
                    import random

                    def sample():
                        return random.random()

                    def render():
                        return sample()
                """,
            },
        )
        assert findings == []

    def test_innermost_kernel_function_reports_once(self):
        findings = _project(
            "RL009",
            {
                "src/repro/engine/soe.py": """
                    from repro.engine.step import advance

                    def run(x):
                        return advance(x)
                """,
                "src/repro/engine/step.py": """
                    from repro.metrics.jitter import noise

                    def advance(x):
                        return x + noise()
                """,
                "src/repro/metrics/jitter.py": """
                    import random

                    def noise():
                        return random.random()
                """,
            },
        )
        # Only the kernel function closest to the source reports; its
        # kernel callers carry the same taint through it.
        assert [f.path for f in findings] == ["src/repro/engine/step.py"]

    def test_wallclock_taint_is_flagged_too(self):
        findings = _project(
            "RL009",
            {
                "src/repro/cpu/sim.py": """
                    from repro.metrics.clock import stamp

                    def step():
                        return stamp()
                """,
                "src/repro/metrics/clock.py": """
                    import time

                    def stamp():
                        return time.time()
                """,
            },
        )
        assert len(findings) == 1
        assert "wall clock" in findings[0].message

    def test_suppression_at_the_kernel_anchor(self):
        # The finding anchors at the kernel def even though the taint
        # source lives in another file; a pragma above the def works.
        files = dict(TAINTED_KERNEL)
        files["src/repro/engine/soe.py"] = """
            from repro.metrics.jitter import perturb

            # repro-lint: disable=RL009 - perturbation reviewed, test-only path
            def run(x):
                return perturb(x)
        """
        assert _project("RL009", files) == []

    def test_sanctioned_source_does_not_seed_taint(self):
        # An inline RL001 suppression at the source line is a reviewed
        # exception; the whole-program pass honours it and seeds no
        # taint from that line.
        files = dict(TAINTED_KERNEL)
        files["src/repro/metrics/jitter.py"] = """
            import random

            def perturb(x):
                return x + noise()

            def noise():
                return random.random()  # repro-lint: disable=RL001 - display only
        """
        assert _project("RL009", files) == []


# ---------------------------------------------------------------------------
# RL010 fork-unsafe-state
# ---------------------------------------------------------------------------

SUPERVISOR = """
    class Supervisor:
        def __init__(self, call):
            self.call = call

        def run(self):
            return self.call

    def _child_main(conn, call, item):
        return call(item)
"""


class TestForkUnsafeState:
    def test_worker_task_mutating_global_is_flagged(self):
        findings = _project(
            "RL010",
            {
                "src/repro/experiments/supervisor.py": SUPERVISOR,
                "src/repro/experiments/work.py": """
                    from repro.experiments.supervisor import Supervisor

                    _RESULTS = []

                    def task(item):
                        _RESULTS.append(item)
                        return item

                    def launch(items):
                        sup = Supervisor(task)
                        return sup.run()
                """,
            },
        )
        assert len(findings) == 1
        (finding,) = findings
        assert finding.path == "src/repro/experiments/work.py"
        assert "_RESULTS" in finding.message
        assert "repro.experiments.work.task" in finding.message
        assert "fork-safe" in finding.message

    def test_fork_safe_marker_documents_the_global(self):
        findings = _project(
            "RL010",
            {
                "src/repro/experiments/supervisor.py": SUPERVISOR,
                "src/repro/experiments/work.py": """
                    from repro.experiments.supervisor import Supervisor

                    # fork-safe: per-process scratch, merged via the task result
                    _RESULTS = []

                    def task(item):
                        _RESULTS.append(item)
                        return item

                    def launch(items):
                        sup = Supervisor(task)
                        return sup.run()
                """,
            },
        )
        assert findings == []

    def test_parent_side_mutation_is_not_flagged(self):
        findings = _project(
            "RL010",
            {
                "src/repro/experiments/supervisor.py": SUPERVISOR,
                "src/repro/experiments/work.py": """
                    from repro.experiments.supervisor import Supervisor

                    _DEGRADED = []

                    def task(item):
                        return item

                    def launch(items):
                        sup = Supervisor(task)
                        outcome = sup.run()
                        _DEGRADED.append(outcome)
                        return outcome
                """,
            },
        )
        # launch hands ``task`` to workers but runs in the parent
        # itself; its own mutation is not worker state.
        assert findings == []

    def test_mutation_reached_through_worker_helper(self):
        findings = _project(
            "RL010",
            {
                "src/repro/experiments/supervisor.py": SUPERVISOR + """
    from repro.experiments.state import bump

    def helper(item):
        return bump(item)
""",
                "src/repro/experiments/state.py": """
                    _COUNT = {}

                    def bump(item):
                        _COUNT[item] = 1
                        return item
                """,
                "src/repro/experiments/work.py": """
                    from repro.experiments.supervisor import Supervisor, helper

                    def launch(items):
                        sup = Supervisor(helper)
                        return sup.run()
                """,
            },
        )
        assert len(findings) == 1
        assert findings[0].path == "src/repro/experiments/state.py"
        assert "_COUNT" in findings[0].message

    def test_no_dispatchers_means_no_findings(self):
        findings = _project(
            "RL010",
            {
                "src/repro/experiments/plain.py": """
                    _STATE = []

                    def mutate(x):
                        _STATE.append(x)
                """,
            },
        )
        assert findings == []


# ---------------------------------------------------------------------------
# RL011 backend-parity
# ---------------------------------------------------------------------------

PARITY_BASE = {
    "src/repro/engine/backend.py": """
        from repro.core.controller import FairnessParams

        class SoeRunSpec:
            streams: tuple
            fairness: FairnessParams
            policy: object
    """,
    "src/repro/core/controller.py": """
        class FairnessParams:
            fairness_target: float
            smoothing: float
    """,
    "src/repro/core/policies.py": """
        class PolicySpec:
            pass

        def register_policy(spec):
            pass

        register_policy(PolicySpec(name="fairness", batch_capable=True))
        register_policy(PolicySpec(name="rr-timeshare", batch_capable=False))
    """,
}

#: supports() refuses specs carrying a scalar-only policy config, and
#: the kernel consumes every remaining field.
BATCH_WITH_REFUSAL = """
    class BatchBackend:
        def supports(self, spec):
            if spec.policy is not None:
                return False
            fairness = spec.fairness
            return fairness is None or fairness.smoothing == 0.0

        def run_batch(self, specs):
            return [
                (s.streams, s.fairness.fairness_target) for s in specs
            ]
"""


class TestBackendParity:
    def test_consume_or_refuse_everything_is_clean(self):
        files = dict(PARITY_BASE)
        files["src/repro/engine/batch.py"] = BATCH_WITH_REFUSAL
        assert _project("RL011", files) == []

    def test_deleting_the_policy_refusal_is_caught(self):
        # The issue's acceptance scenario: drop supports()'s refusal of
        # scalar-only policy specs and the rule must object.
        files = dict(PARITY_BASE)
        files["src/repro/engine/batch.py"] = """
            class BatchBackend:
                def supports(self, spec):
                    fairness = spec.fairness
                    return fairness is None or fairness.smoothing == 0.0

                def run_batch(self, specs):
                    return [
                        (s.streams, s.fairness.fairness_target) for s in specs
                    ]
        """
        findings = _project("RL011", files)
        messages = "\n".join(f.message for f in findings)
        # Both guarantees collapse: the spec field is silently ignored
        # and the batch_capable=False policy is no longer refused.
        assert "SoeRunSpec.policy" in messages
        assert "rr-timeshare" in messages

    def test_silently_ignored_spec_field_is_flagged(self):
        files = dict(PARITY_BASE)
        files["src/repro/engine/backend.py"] = """
            from repro.core.controller import FairnessParams

            class SoeRunSpec:
                streams: tuple
                fairness: FairnessParams
                policy: object
                trace_tag: str
        """
        files["src/repro/engine/batch.py"] = BATCH_WITH_REFUSAL
        findings = _project("RL011", files)
        assert len(findings) == 1
        assert "SoeRunSpec.trace_tag" in findings[0].message
        assert findings[0].path == "src/repro/engine/backend.py"

    def test_silently_ignored_nested_field_is_flagged(self):
        files = dict(PARITY_BASE)
        files["src/repro/core/controller.py"] = """
            class FairnessParams:
                fairness_target: float
                smoothing: float
                deficit_cap: float
        """
        files["src/repro/engine/batch.py"] = BATCH_WITH_REFUSAL
        findings = _project("RL011", files)
        assert len(findings) == 1
        assert "FairnessParams.deficit_cap" in findings[0].message
        assert "SoeRunSpec.fairness" in findings[0].message
        assert findings[0].path == "src/repro/core/controller.py"

    def test_rule_is_inert_without_the_backend_layout(self):
        findings = _project(
            "RL011",
            {"src/repro/engine/other.py": "def f():\n    return 1\n"},
        )
        assert findings == []


# ---------------------------------------------------------------------------
# RL012 telemetry-schema-drift
# ---------------------------------------------------------------------------

EVENTS_OK = """
    SCHEMA_VERSION = 2
    RUNNER = "runner"

    EVENT_SCHEMAS = {
        "task": (RUNNER, {"label": None, "phase": None}),
    }

    def task_event(label, phase):
        return {
            "event": "task",
            "cat": RUNNER,
            "v": SCHEMA_VERSION,
            "label": label,
            "phase": phase,
        }
"""

DOC_OK = textwrap.dedent(
    """
    Events carry the envelope with schema v2.

    | category | event | emitted by | payload |
    | --- | --- | --- | --- |
    | `runner` | `task` | the runner | `label`, `phase` |
    """
)


def _telemetry(events: str, doc: str = DOC_OK):
    return _project(
        "RL012",
        {"src/repro/telemetry/events.py": events},
        docs={"docs/TELEMETRY.md": doc},
    )


class TestTelemetrySchemaDrift:
    def test_consistent_surfaces_are_clean(self):
        assert _telemetry(EVENTS_OK) == []

    def test_builder_payload_drift_is_flagged(self):
        events = EVENTS_OK.replace('"phase": phase,\n', "")
        findings = _telemetry(events)
        assert any(
            "payload disagrees" in f.message and "phase" in f.message
            for f in findings
        )

    def test_missing_doc_row_is_flagged(self):
        doc = DOC_OK.replace("| `runner` | `task` | the runner |", "| x | y |")
        findings = _telemetry(EVENTS_OK, doc)
        assert any("no row" in f.message for f in findings)

    def test_doc_row_missing_a_field_is_flagged(self):
        doc = DOC_OK.replace("`label`, `phase`", "`label`")
        findings = _telemetry(EVENTS_OK, doc)
        assert any(
            "omits payload field" in f.message and "phase" in f.message
            for f in findings
        )

    def test_hand_rolled_version_is_flagged(self):
        events = EVENTS_OK.replace('"v": SCHEMA_VERSION,', '"v": 1,')
        findings = _telemetry(events)
        assert any("SCHEMA_VERSION" in f.message for f in findings)

    def test_category_mismatch_is_flagged(self):
        events = EVENTS_OK.replace('"cat": RUNNER,', '"cat": "controller",')
        findings = _telemetry(events)
        assert any("declares" in f.message for f in findings)

    def test_schema_entry_without_builder_is_flagged(self):
        events = EVENTS_OK.replace(
            '"task": (RUNNER, {"label": None, "phase": None}),',
            '"task": (RUNNER, {"label": None, "phase": None}),\n'
            '    "ghost": (RUNNER, {"x": None}),',
        )
        findings = _telemetry(events)
        assert any("'ghost'" in f.message and "no" in f.message for f in findings)

    def test_stale_doc_version_is_flagged(self):
        doc = DOC_OK.replace("schema v2", "schema v1")
        findings = _telemetry(EVENTS_OK, doc)
        assert any("schema" in f.message and "version" in f.message for f in findings)


class TestHeadTelemetryDocCoverage:
    def test_every_schema_event_has_a_doc_row(self):
        # Regression for the drift RL012 caught on introduction: the
        # ``batch`` event existed in EVENT_SCHEMAS but had no row in
        # docs/TELEMETRY.md.
        from repro.analysis.engine import default_repo_root
        from repro.telemetry.events import EVENT_SCHEMAS

        doc = (default_repo_root() / "docs" / "TELEMETRY.md").read_text()
        rows = [
            line for line in doc.splitlines() if line.lstrip().startswith("|")
        ]
        for event in EVENT_SCHEMAS:
            assert any(
                f"`{event}`" in row for row in rows
            ), f"docs/TELEMETRY.md has no table row for event {event!r}"
