"""Tests for benchmark profiles and the SPEC CPU2000 catalogue."""

import itertools

import pytest

from repro.engine.singlethread import run_single_thread
from repro.errors import WorkloadError
from repro.workloads.profiles import BenchmarkProfile
from repro.workloads.spec2000 import PROFILES, benchmark_names, get_profile


class TestBenchmarkProfile:
    def test_thread_params_roundtrip(self):
        profile = BenchmarkProfile("toy", ipc_no_miss=2.0, ipm=1_000)
        params = profile.thread_params()
        assert params.ipc_no_miss == 2.0
        assert params.ipm == 1_000
        assert profile.cpm == pytest.approx(500)

    def test_model_ipc_st(self):
        profile = BenchmarkProfile("toy", 2.0, 1_000)
        assert profile.single_thread_ipc(300) == pytest.approx(1_000 / 800)

    def test_stream_statistics_match_profile(self):
        profile = BenchmarkProfile("toy", 2.0, 1_000, ipm_cv=0.5, ipc_cv=0.1)
        segments = list(itertools.islice(profile.stream(seed=5).segments(), 5_000))
        mean_instr = sum(s.instructions for s in segments) / len(segments)
        assert mean_instr == pytest.approx(1_000, rel=0.1)

    def test_measured_ipc_st_tracks_model(self):
        profile = BenchmarkProfile("toy", 2.0, 1_000, ipm_cv=0.5, ipc_cv=0.1)
        measured = run_single_thread(
            profile.stream(seed=11), miss_lat=300, min_instructions=500_000
        ).ipc
        assert measured == pytest.approx(profile.single_thread_ipc(300), rel=0.1)

    def test_streams_deterministic_per_seed(self):
        profile = get_profile("gcc")
        a = list(itertools.islice(profile.stream(seed=3).segments(), 100))
        b = list(itertools.islice(profile.stream(seed=3).segments(), 100))
        assert a == b


class TestSpec2000Catalogue:
    def test_paper_benchmarks_present(self):
        for name in ["gcc", "eon", "lucas", "applu", "galgel", "apsi",
                     "swim", "mgrid", "bzip2b", "mcf"]:
            assert name in PROFILES

    def test_names_sorted_and_unique(self):
        names = benchmark_names()
        assert names == sorted(names)
        assert len(names) == len(set(names))

    def test_unknown_benchmark_raises(self):
        with pytest.raises(WorkloadError):
            get_profile("does-not-exist")

    def test_catalogue_spans_the_cpm_spectrum(self):
        # Eq. 5 needs a wide CPM spread to reproduce the paper's
        # fairness range (0.01 - 1.0).
        cpms = [p.cpm for p in PROFILES.values()]
        assert min(cpms) < 300
        assert max(cpms) > 10_000

    def test_eon_is_compute_bound_and_mcf_memory_bound(self):
        assert get_profile("eon").ipm > 20 * get_profile("mcf").ipm

    def test_all_profiles_produce_streams(self):
        for name, profile in PROFILES.items():
            segments = list(itertools.islice(profile.stream(seed=1).segments(), 3))
            assert len(segments) == 3, name

    def test_model_single_thread_ipcs_are_plausible(self):
        for profile in PROFILES.values():
            ipc_st = profile.single_thread_ipc(300)
            assert 0.1 < ipc_st < 3.5, profile.name
