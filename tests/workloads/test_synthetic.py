"""Tests for synthetic segment-stream generators."""

import itertools

import pytest

from repro.errors import ConfigurationError
from repro.workloads.synthetic import (
    Phase,
    SegmentDistribution,
    make_stream,
    phased_stream,
    uniform_stream,
)


def take(stream, n):
    return list(itertools.islice(stream.segments(), n))


class TestSegmentDistribution:
    def test_deterministic_draw(self):
        import random

        dist = SegmentDistribution(ipc_no_miss=2.5, ipm=1_000)
        segment = dist.draw(random.Random(0))
        assert segment.instructions == pytest.approx(1_000)
        assert segment.cycles == pytest.approx(400)

    def test_cv_zero_is_exact(self):
        import random

        dist = SegmentDistribution(2.0, 500, ipm_cv=0.0, ipc_cv=0.0)
        rng = random.Random(42)
        for _ in range(10):
            segment = dist.draw(rng)
            assert segment.instructions == pytest.approx(500)
            assert segment.ipc == pytest.approx(2.0)

    def test_lognormal_mean_approximates_ipm(self):
        import random

        dist = SegmentDistribution(2.0, 1_000, ipm_cv=0.7)
        rng = random.Random(7)
        draws = [dist.draw(rng).instructions for _ in range(20_000)]
        assert sum(draws) / len(draws) == pytest.approx(1_000, rel=0.05)

    def test_cpm_property(self):
        assert SegmentDistribution(2.0, 1_000).cpm == pytest.approx(500)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            SegmentDistribution(0, 100)
        with pytest.raises(ConfigurationError):
            SegmentDistribution(2, 100, ipm_cv=-1)


class TestUniformStream:
    def test_restartable_and_deterministic(self):
        stream = uniform_stream(2.0, 1_000, ipm_cv=0.5, seed=3)
        first = [(s.instructions, s.cycles) for s in take(stream, 50)]
        second = [(s.instructions, s.cycles) for s in take(stream, 50)]
        assert first == second

    def test_different_seeds_differ(self):
        a = take(uniform_stream(2.0, 1_000, ipm_cv=0.5, seed=1), 20)
        b = take(uniform_stream(2.0, 1_000, ipm_cv=0.5, seed=2), 20)
        assert [s.instructions for s in a] != [s.instructions for s in b]

    def test_stream_is_effectively_infinite(self):
        stream = uniform_stream(2.0, 100)
        assert len(take(stream, 10_000)) == 10_000

    def test_skip_offsets_the_stream(self):
        base = take(uniform_stream(2.0, 1_000, ipm_cv=0.5, seed=9), 30)
        skipped = take(
            uniform_stream(2.0, 1_000, ipm_cv=0.5, seed=9, skip_instructions=2_500),
            30,
        )
        # The skipped stream starts mid-way: its early segments differ.
        assert [s.instructions for s in base[:5]] != [
            s.instructions for s in skipped[:5]
        ]

    def test_skip_preserves_rate(self):
        skipped = take(
            uniform_stream(2.5, 1_000, seed=0, skip_instructions=350), 5
        )
        for segment in skipped:
            assert segment.ipc == pytest.approx(2.5, rel=1e-6)


class TestPhasedStream:
    def test_phases_alternate(self):
        fast = SegmentDistribution(3.0, 1_000)
        slow = SegmentDistribution(1.0, 200)
        stream = phased_stream([(fast, 3_000), (slow, 1_000)], seed=0)
        segments = take(stream, 20)
        ipcs = [round(s.ipc, 1) for s in segments]
        assert 3.0 in ipcs and 1.0 in ipcs

    def test_phase_lengths_respected(self):
        fast = SegmentDistribution(3.0, 1_000)
        slow = SegmentDistribution(1.0, 200)
        stream = phased_stream([(fast, 3_000), (slow, 1_000)], seed=0)
        segments = take(stream, 8)
        # 3 fast segments (3000 instr), then 5 slow (1000), then repeat.
        assert [round(s.ipc) for s in segments] == [3, 3, 3, 1, 1, 1, 1, 1]

    def test_rejects_empty_phases(self):
        with pytest.raises(ConfigurationError):
            make_stream([])

    def test_rejects_non_positive_phase_length(self):
        with pytest.raises(ConfigurationError):
            Phase(SegmentDistribution(2.0, 100), 0)
