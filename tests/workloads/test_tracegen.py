"""Tests for the synthetic trace generator and address patterns."""

import itertools
import random

import pytest

from repro.cpu.isa import OpClass
from repro.errors import ConfigurationError
from repro.workloads.addresses import HotSetAccessor, StreamingAccessor
from repro.workloads.tracegen import (
    COMPUTE_SPEC,
    MEMORY_SPEC,
    CpuWorkloadSpec,
    make_trace,
)


def take(program, n):
    return list(itertools.islice(program.uops(), n))


class TestAccessors:
    def test_hot_set_stays_in_bounds(self):
        accessor = HotSetAccessor(0x1000, 4096, random.Random(0))
        for _ in range(1_000):
            address = accessor.next_address()
            assert 0x1000 <= address < 0x1000 + 4096

    def test_streaming_advances_by_stride(self):
        accessor = StreamingAccessor(0, 1024, stride=64)
        addresses = [accessor.next_address() for _ in range(4)]
        assert addresses == [0, 64, 128, 192]

    def test_streaming_wraps(self):
        accessor = StreamingAccessor(0, 128, stride=64)
        addresses = [accessor.next_address() for _ in range(3)]
        assert addresses == [0, 64, 0]

    def test_bad_configs_rejected(self):
        with pytest.raises(ConfigurationError):
            HotSetAccessor(0, 0, random.Random(0))
        with pytest.raises(ConfigurationError):
            StreamingAccessor(0, 0)


class TestCpuWorkloadSpec:
    def test_rejects_bad_mix(self):
        with pytest.raises(ConfigurationError):
            CpuWorkloadSpec(name="bad", load_fraction=0.9, store_fraction=0.2)

    def test_rejects_bad_ilp(self):
        with pytest.raises(ConfigurationError):
            CpuWorkloadSpec(name="bad", ilp=0)


class TestMakeTrace:
    def test_deterministic_per_seed(self):
        a = take(make_trace(MEMORY_SPEC, seed=3), 200)
        b = take(make_trace(MEMORY_SPEC, seed=3), 200)
        assert a == b

    def test_different_seeds_differ(self):
        a = take(make_trace(MEMORY_SPEC, seed=1), 200)
        b = take(make_trace(MEMORY_SPEC, seed=2), 200)
        assert a != b

    def test_code_layout_is_static(self):
        # The op class at each pc must repeat across loop iterations.
        slots = COMPUTE_SPEC.code_bytes // 4
        uops = take(make_trace(COMPUTE_SPEC, seed=1), slots * 2)
        first, second = uops[:slots], uops[slots:]
        for a, b in zip(first, second):
            assert a.pc == b.pc
            assert a.opclass == b.opclass

    def test_mix_approximates_spec(self):
        uops = take(make_trace(MEMORY_SPEC, seed=1), 20_000)
        loads = sum(1 for u in uops if u.opclass is OpClass.LOAD)
        branches = sum(1 for u in uops if u.opclass is OpClass.BRANCH)
        assert loads / len(uops) == pytest.approx(MEMORY_SPEC.load_fraction, abs=0.05)
        assert branches / len(uops) == pytest.approx(
            MEMORY_SPEC.branch_fraction, abs=0.05
        )

    def test_streaming_load_rate_approximates_ipm(self):
        uops = take(make_trace(MEMORY_SPEC, seed=1), 50_000)
        streaming = sum(
            1
            for u in uops
            if u.opclass is OpClass.LOAD and u.address >= (1 << 26)
        )
        observed_ipm = len(uops) / max(streaming, 1)
        assert observed_ipm == pytest.approx(MEMORY_SPEC.ipm, rel=0.25)

    def test_threads_get_disjoint_address_spaces(self):
        a = take(make_trace(MEMORY_SPEC, seed=1, thread_index=0), 500)
        b = take(make_trace(MEMORY_SPEC, seed=1, thread_index=1), 500)
        max_a = max(u.address for u in a if u.address is not None)
        min_b = min(u.address for u in b if u.address is not None)
        assert max_a < min_b

    def test_branch_targets_match_next_pc(self):
        uops = take(make_trace(COMPUTE_SPEC, seed=1), 5_000)
        for i, uop in enumerate(uops[:-1]):
            if uop.opclass is OpClass.BRANCH:
                assert uop.target == uops[i + 1].pc
