"""Determinism regressions backing the repro-lint rules (RL001-RL003).

The lint rules forbid unseeded randomness, wall-clock reads and
iteration over unordered sets in simulation code; these tests pin the
behaviour those rules protect, so a future violation shows up as a test
failure and not just a lint finding.
"""

import random

from repro.core.model import SoeModel, ThreadParams
from repro.engine.soe import RunLimits, SoeParams, run_soe
from repro.workloads.synthetic import uniform_stream


def _segments(seed: int, n: int = 50):
    stream = uniform_stream(2.5, 1_000.0, ipm_cv=0.3, ipc_cv=0.2, seed=seed)
    out = []
    for segment in stream.segments():
        out.append((segment.instructions, segment.cycles, segment.ends_with_miss))
        if len(out) >= n:
            break
    return out


class TestInstanceSeededStreams:
    """RL001: workloads must use ``random.Random(seed)``, never the
    module-level global RNG."""

    def test_same_seed_same_segments(self):
        assert _segments(7) == _segments(7)

    def test_different_seeds_differ(self):
        assert _segments(7) != _segments(8)

    def test_global_rng_pollution_is_irrelevant(self):
        # Re-seeding and draining the *global* RNG between constructions
        # must not change a stream: generation is instance-seeded.
        baseline = _segments(7)
        random.seed(12345)
        random.random()
        polluted = _segments(7)
        state = random.getrandbits(64)
        assert polluted == baseline
        # ...and stream generation must not consume global randomness
        # either (the global stream is untouched by _segments).
        random.seed(12345)
        random.random()
        assert random.getrandbits(64) == state


class TestRunLevelDeterminism:
    """RL002/RL003: no wall-clock and no unordered iteration in the
    engine means repeated runs are bit-identical."""

    def test_repeated_soe_runs_bit_identical(self):
        def one_run():
            streams = [
                uniform_stream(2.5, 15_000.0, ipm_cv=0.2, seed=1),
                uniform_stream(2.5, 1_000.0, ipm_cv=0.2, seed=2),
            ]
            result = run_soe(
                streams,
                params=SoeParams(miss_lat=300.0, switch_lat=25.0),
                limits=RunLimits(min_instructions=50_000.0),
            )
            return (tuple(result.ipcs), result.cycles)

        first = one_run()
        for _ in range(3):
            assert one_run() == first

    def test_model_is_pure_arithmetic(self):
        model = SoeModel(
            [ThreadParams(2.5, 15_000.0), ThreadParams(2.5, 1_000.0)],
            miss_lat=300.0,
            switch_lat=25.0,
        )
        assert model.soe_ipcs(0.5) == model.soe_ipcs(0.5)
        assert model.quotas(0.5) == model.quotas(0.5)
