"""Tests for multi-event workloads."""

import itertools

import pytest

from repro.errors import ConfigurationError
from repro.workloads.events import EventType, mean_event_latency, multi_event_stream


def take(stream, n):
    return list(itertools.islice(stream.segments(), n))


class TestEventType:
    def test_rate(self):
        assert EventType(ipm=500, latency=40).rate == pytest.approx(0.002)

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            EventType(ipm=0, latency=40)
        with pytest.raises(ConfigurationError):
            EventType(ipm=500, latency=-1)


class TestMeanEventLatency:
    def test_single_type(self):
        assert mean_event_latency([EventType(1_000, 300)]) == pytest.approx(300)

    def test_rate_weighted(self):
        # 10x more short events than long ones.
        events = [EventType(600, 40), EventType(6_000, 300)]
        assert mean_event_latency(events) == pytest.approx((10 * 40 + 300) / 11)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            mean_event_latency([])


class TestMultiEventStream:
    EVENTS = (EventType(600, 40), EventType(6_000, 300))

    def test_deterministic(self):
        a = take(multi_event_stream(2.0, self.EVENTS, seed=5), 100)
        b = take(multi_event_stream(2.0, self.EVENTS, seed=5), 100)
        assert a == b

    def test_segments_carry_event_latencies(self):
        segments = take(multi_event_stream(2.0, self.EVENTS, seed=1), 2_000)
        latencies = {s.miss_latency for s in segments}
        assert latencies == {40.0, 300.0}

    def test_event_mix_matches_rates(self):
        segments = take(multi_event_stream(2.0, self.EVENTS, seed=2), 10_000)
        short = sum(1 for s in segments if s.miss_latency == 40.0)
        assert short / len(segments) == pytest.approx(10 / 11, abs=0.03)

    def test_mean_spacing_matches_combined_rate(self):
        segments = take(multi_event_stream(2.0, self.EVENTS, seed=3), 20_000)
        mean_len = sum(s.instructions for s in segments) / len(segments)
        combined_ipm = 1.0 / (1 / 600 + 1 / 6_000)
        assert mean_len == pytest.approx(combined_ipm, rel=0.05)

    def test_segment_ipc(self):
        segments = take(multi_event_stream(2.0, self.EVENTS, seed=4), 50)
        for segment in segments:
            assert segment.ipc == pytest.approx(2.0, rel=1e-9)

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            multi_event_stream(0.0, self.EVENTS)
        with pytest.raises(ConfigurationError):
            multi_event_stream(2.0, [])


class TestEngineWithEventLatencies:
    def test_single_thread_uses_per_segment_latency(self):
        from repro.engine.segments import Segment, stream_from_segments
        from repro.engine.singlethread import run_single_thread

        stream = stream_from_segments(
            [Segment(100, 50, miss_latency=40.0)] * 10
        )
        result = run_single_thread(stream, miss_lat=300.0, min_instructions=500)
        # 100 instructions per (50 + 40) cycles, NOT (50 + 300).
        assert result.ipc == pytest.approx(100 / 90, rel=1e-6)

    def test_soe_readiness_uses_per_segment_latency(self):
        from repro.engine.segments import Segment, stream_from_segments
        from repro.engine.soe import RunLimits, SoeParams, run_soe

        # Both threads: short 40-cycle events. With the default 300-cycle
        # assumption the partner's run would always cover the stall; with
        # 40-cycle stalls and ~50-cycle partner dispatches the engine has
        # no idle time either -- but total time shrinks massively.
        short = lambda seed: stream_from_segments(
            [Segment(100, 50, miss_latency=40.0)] * 200
        )
        result = run_soe(
            [short(1), short(2)],
            params=SoeParams(miss_lat=300.0, switch_lat=5.0),
            limits=RunLimits(min_instructions=10_000),
        )
        # Round = 2 * (50 + 5) = 110 cycles per 200 instructions.
        assert result.total_ipc == pytest.approx(200 / 110, rel=0.05)
