"""Tests for column-oriented segment materialization."""

import math

import pytest

from repro.engine.segments import Segment, stream_from_segments
from repro.errors import ConfigurationError, WorkloadError
from repro.workloads.materialize import (
    ChunkedMaterializer,
    ColumnStream,
    SegmentColumns,
    columnize,
    materialize_segments,
)
from repro.workloads.synthetic import uniform_stream


class TestChunkedMaterializer:
    def test_chunks_preserve_stream_order(self):
        stream = uniform_stream(2.5, 1_000, ipm_cv=0.8, ipc_cv=0.2, seed=7)
        materializer = ChunkedMaterializer(stream, chunk_size=16)
        columns = []
        for _ in range(4):
            chunk = materializer.take()
            assert len(chunk) == 16
            assert not chunk.exhausted
            columns.append(chunk)

        reference = stream.segments()
        for chunk in columns:
            for index in range(len(chunk)):
                assert chunk.segment_at(index) == next(reference)

    def test_identical_to_scalar_iteration(self):
        # The columns must come from the same iterator protocol the
        # scalar engine uses: values match bit-for-bit, not just
        # approximately.
        stream = uniform_stream(1.8, 500, ipm_cv=1.0, ipc_cv=0.3, seed=42)
        chunk = ChunkedMaterializer(stream, chunk_size=64).take()
        for index, segment in zip(range(len(chunk)), stream.segments()):
            assert chunk.instructions[index] == segment.instructions
            assert chunk.cycles[index] == segment.cycles

    def test_finite_stream_sets_exhausted(self):
        segments = [Segment(100.0, 40.0) for _ in range(5)]
        materializer = ChunkedMaterializer(
            stream_from_segments(segments), chunk_size=3
        )
        first = materializer.take()
        assert len(first) == 3 and not first.exhausted
        second = materializer.take()
        assert len(second) == 2 and second.exhausted
        assert materializer.exhausted
        third = materializer.take()
        assert len(third) == 0 and third.exhausted

    def test_exact_boundary_exhaustion(self):
        # A stream ending exactly at a chunk boundary reports exhaustion
        # on the next (empty) take, never loses the final row.
        segments = [Segment(10.0, 5.0) for _ in range(4)]
        materializer = ChunkedMaterializer(
            stream_from_segments(segments), chunk_size=2
        )
        assert len(materializer.take()) == 2
        assert len(materializer.take()) == 2
        final = materializer.take()
        assert len(final) == 0 and final.exhausted

    def test_take_counts_override_chunk_size(self):
        stream = uniform_stream(2.0, 100, seed=1)
        materializer = ChunkedMaterializer(stream, chunk_size=8)
        assert len(materializer.take(3)) == 3
        assert len(materializer.take(20)) == 20
        assert materializer.materialized == 23

    def test_invalid_parameters_raise(self):
        stream = uniform_stream(2.0, 100, seed=1)
        with pytest.raises(ConfigurationError):
            ChunkedMaterializer(stream, chunk_size=0)
        with pytest.raises(ConfigurationError):
            ChunkedMaterializer(stream).take(0)


class TestColumnEncoding:
    def test_default_latency_encodes_as_nan(self):
        segments = [
            Segment(10.0, 5.0),
            Segment(10.0, 5.0, miss_latency=75.0),
            Segment(10.0, 5.0, ends_with_miss=False),
        ]
        chunk = ChunkedMaterializer(stream_from_segments(segments)).take()
        assert math.isnan(chunk.miss_latency[0])
        assert chunk.miss_latency[1] == 75.0
        assert chunk.ends_with_miss == [True, True, False]

    def test_segment_round_trip(self):
        segments = [
            Segment(10.0, 5.0, miss_latency=75.0),
            Segment(3.0, 2.0, ends_with_miss=False),
        ]
        chunk = ChunkedMaterializer(stream_from_segments(segments)).take()
        assert [chunk.segment_at(0), chunk.segment_at(1)] == segments


class TestMaterializeSegments:
    def test_eager_window(self):
        stream = uniform_stream(2.5, 1_000, ipm_cv=0.5, seed=3)
        columns = materialize_segments(stream, 100, chunk_size=7)
        assert len(columns) == 100
        assert not columns.exhausted
        for index, segment in zip(range(100), stream.segments()):
            assert columns.segment_at(index) == segment

    def test_short_finite_stream(self):
        segments = [Segment(10.0, 5.0) for _ in range(4)]
        columns = materialize_segments(stream_from_segments(segments), 100)
        assert len(columns) == 4
        assert columns.exhausted


class TestColumnStream:
    def test_replays_exactly_the_materialized_window(self):
        source = uniform_stream(2.0, 1_500, ipm_cv=0.7, ipc_cv=0.2, seed=9)
        stream = columnize(source, 50)
        replayed = list(stream.segments())
        assert len(replayed) == 50
        for segment, original in zip(replayed, source.segments()):
            assert segment == original

    def test_replay_is_restartable_and_cached(self):
        stream = columnize(uniform_stream(2.0, 800, ipm_cv=0.5, seed=2), 30)
        first = list(stream.segments())
        second = list(stream.segments())
        assert first == second
        assert first[0] is second[0]

    def test_columnize_truncates_infinite_streams(self):
        stream = columnize(uniform_stream(2.0, 800, seed=1), 12)
        assert len(list(stream.segments())) == 12

    def test_columnize_keeps_the_source_name(self):
        named = uniform_stream(2.0, 800, seed=1)
        assert columnize(named, 4).name == named.name
        assert columnize(named, 4, name="alias").name == "alias"

    def test_empty_columns_rejected(self):
        with pytest.raises(WorkloadError, match="at least one segment"):
            ColumnStream(SegmentColumns())


class TestArraysCache:
    def test_cache_slot_excluded_from_equality_and_repr(self):
        a = materialize_segments(
            stream_from_segments([Segment(10.0, 5.0)]), 1
        )
        b = materialize_segments(
            stream_from_segments([Segment(10.0, 5.0)]), 1
        )
        assert a == b
        a.arrays_cache = ("sentinel",)
        assert a == b
        assert "sentinel" not in repr(a)

    def test_cache_slot_starts_empty(self):
        columns = materialize_segments(
            stream_from_segments([Segment(10.0, 5.0)]), 1
        )
        assert columns.arrays_cache is None
