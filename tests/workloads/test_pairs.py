"""Tests for the evaluation pair definitions."""

import itertools

import pytest

from repro.workloads.pairs import EVALUATION_PAIRS, BenchmarkPair, evaluation_pairs


class TestEvaluationPairs:
    def test_sixteen_combinations(self):
        assert len(EVALUATION_PAIRS) == 16

    def test_eight_homogeneous(self):
        assert sum(1 for p in EVALUATION_PAIRS if p.is_homogeneous) == 8

    def test_paper_named_pairs_present(self):
        labels = {p.label for p in EVALUATION_PAIRS}
        for label in ["gcc:eon", "lucas:applu", "galgel:gcc", "apsi:swim",
                      "gcc:gcc", "mgrid:mgrid", "bzip2b:bzip2b"]:
            assert label in labels

    def test_labels_unique(self):
        labels = [p.label for p in EVALUATION_PAIRS]
        assert len(labels) == len(set(labels))

    def test_evaluation_pairs_returns_copy(self):
        pairs = evaluation_pairs()
        pairs.clear()
        assert len(EVALUATION_PAIRS) == 16


class TestBenchmarkPair:
    def test_profiles_resolve(self):
        a, b = BenchmarkPair("gcc", "eon").profiles()
        assert a.name == "gcc"
        assert b.name == "eon"

    def test_streams_are_distinct_for_heterogeneous_pair(self):
        s1, s2 = BenchmarkPair("gcc", "eon").streams(seed=0)
        seg1 = next(s1.segments())
        seg2 = next(s2.segments())
        assert seg1 != seg2

    def test_homogeneous_pair_offsets_second_thread(self):
        s1, s2 = BenchmarkPair("gcc", "gcc").streams(seed=0)
        first = [s.instructions for s in itertools.islice(s1.segments(), 10)]
        second = [s.instructions for s in itertools.islice(s2.segments(), 10)]
        assert first != second

    def test_streams_deterministic_per_seed(self):
        pair = BenchmarkPair("apsi", "swim")
        a1, _ = pair.streams(seed=4)
        a2, _ = pair.streams(seed=4)
        assert next(a1.segments()) == next(a2.segments())
