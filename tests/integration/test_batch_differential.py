"""Three-way differential suite: closed-form <-> scalar <-> batch.

The vectorized backend earns its keep only if it is indistinguishable
from the exact scalar engine, which in turn must track the paper's
closed-form model where the model applies. This suite checks the full
default pair grid (all evaluation pairs at every default fairness
level) for *bit-identical* scalar/batch agreement -- the batch
backend's documented tolerance is zero on the supported envelope --
plus Eq. 2 agreement on deterministic workloads, and equivalence
across the three segment-stream representations the batch backend
consumes (generator-chunked, columnar, and mixed).

Run lengths are reduced the same way tests/experiments/test_grid.py
reduces them: the equivalence claim is scale-free (both engines see
identical segment sequences at any length), so a shorter run probes
the same code paths in a fraction of the time.
"""

from dataclasses import replace

import pytest

np = pytest.importorskip("numpy")

from repro.core.controller import FairnessParams
from repro.core.model import SoeModel, ThreadParams
from repro.engine.backend import ScalarBackend, SoeRunSpec
from repro.engine.batch import BatchBackend
from repro.engine.segments import stream_from_segments
from repro.engine.soe import RunLimits, SoeParams
from repro.experiments.common import EvalConfig
from repro.workloads.materialize import columnize, materialize_segments
from repro.workloads.pairs import evaluation_pairs
from repro.workloads.synthetic import uniform_stream

CONFIG = EvalConfig(
    sample_period=100_000.0,
    min_instructions=400_000.0,
    warmup_instructions=150_000.0,
)


def _grid_specs(config=CONFIG):
    """Every (pair, level) cell of the default grid as run specs."""
    specs = []
    for pair in evaluation_pairs():
        for level in config.fairness_levels:
            specs.append(
                SoeRunSpec(
                    streams=pair.streams(seed=config.seed),
                    fairness=(
                        config.fairness_params(level) if level > 0.0 else None
                    ),
                    params=config.soe_params(),
                    limits=config.run_limits(),
                )
            )
    return specs


class TestFullDefaultGrid:
    def test_scalar_and_batch_bit_identical_on_every_cell(self):
        specs = _grid_specs()
        scalar = ScalarBackend().run_batch(specs)
        batch = BatchBackend().run_batch(specs)
        mismatched = [
            index
            for index, (a, b) in enumerate(zip(scalar, batch))
            if a != b
        ]
        assert mismatched == []
        assert len(batch) == len(evaluation_pairs()) * len(
            CONFIG.fairness_levels
        )

    def test_batch_supports_the_whole_default_grid(self):
        backend = BatchBackend()
        assert all(backend.supports(spec) for spec in _grid_specs())


class TestClosedFormAgreement:
    """Both backends must reproduce Eq. 2 on deterministic workloads."""

    CASES = [
        (2.5, 15_000.0, 1.2, 900.0),
        (1.0, 5_000.0, 1.0, 5_000.0),
        (3.0, 25_000.0, 0.6, 400.0),
    ]

    def _spec(self, ipc1, ipm1, ipc2, ipm2):
        return SoeRunSpec(
            streams=(uniform_stream(ipc1, ipm1), uniform_stream(ipc2, ipm2)),
            params=SoeParams(miss_lat=300, switch_lat=25),
            limits=RunLimits(min_instructions=max(ipm1, ipm2) * 20),
        )

    @pytest.mark.parametrize("ipc1,ipm1,ipc2,ipm2", CASES)
    def test_batch_matches_eq2(self, ipc1, ipm1, ipc2, ipm2):
        model = SoeModel(
            [ThreadParams(ipc1, ipm1), ThreadParams(ipc2, ipm2)],
            miss_lat=300,
            switch_lat=25,
        )
        (result,) = BatchBackend().run_batch(
            [self._spec(ipc1, ipm1, ipc2, ipm2)]
        )
        quota_switches = sum(t.cycle_quota_switches for t in result.threads)
        if result.idle_cycles == 0 and quota_switches == 0:
            for measured, predicted in zip(result.ipcs, model.soe_ipcs(0.0)):
                assert abs(measured - predicted) / predicted < 0.05

    @pytest.mark.parametrize("ipc1,ipm1,ipc2,ipm2", CASES)
    def test_batch_matches_scalar_on_model_workloads(
        self, ipc1, ipm1, ipc2, ipm2
    ):
        spec = self._spec(ipc1, ipm1, ipc2, ipm2)
        (scalar,) = ScalarBackend().run_batch([spec])
        (batch,) = BatchBackend().run_batch([spec])
        assert scalar == batch


class TestStreamRepresentations:
    """Chunked, columnar, and mixed lanes are one and the same run."""

    def _base_streams(self, seed):
        return (
            uniform_stream(2.2, 9_000, ipm_cv=0.6, ipc_cv=0.2, seed=seed),
            uniform_stream(0.9, 700, ipm_cv=0.8, ipc_cv=0.3, seed=seed + 50),
        )

    def test_columnar_and_chunked_lanes_bit_identical(self):
        limits = RunLimits(
            min_instructions=150_000.0, warmup_instructions=40_000.0
        )
        fairness = FairnessParams(
            fairness_target=0.5, sample_period=40_000.0, miss_lat=300.0
        )
        variants = []
        for mode in ("chunked", "columnar", "mixed"):
            specs = []
            for seed in range(6):
                a, b = self._base_streams(seed)
                if mode == "columnar":
                    a, b = columnize(a, 400), columnize(b, 400)
                elif mode == "mixed":
                    a = columnize(a, 400)
                specs.append(
                    SoeRunSpec(
                        streams=(a, b),
                        fairness=fairness if seed % 2 else None,
                        limits=limits,
                    )
                )
            variants.append(BatchBackend().run_batch(specs))
        chunked, columnar, mixed = variants
        assert chunked == columnar == mixed
        scalar = ScalarBackend().run_batch(
            [
                SoeRunSpec(
                    streams=self._base_streams(seed),
                    fairness=fairness if seed % 2 else None,
                    limits=limits,
                )
                for seed in range(6)
            ]
        )
        assert chunked == scalar


class TestDrrArbiterBatch:
    """drr-arbiter rides the deficit arrays: batch == scalar, bitwise.

    The policy stays in the ``policy`` channel of the run spec (unlike
    ``fairness``, which normalizes away), so these tests pin both the
    ``supports`` envelope -- drr-arbiter is the *only* residual policy
    the vectorized backend accepts -- and exact agreement with the
    scalar :class:`~repro.core.drr.DrrArbiterPolicy` reference.
    """

    def _drr_spec(self, pair, quantum, seed=0):
        from repro.core.policies import PolicyConfig

        return SoeRunSpec(
            streams=pair.streams(seed=seed),
            policy=PolicyConfig(
                name="drr-arbiter", params=(("quantum", quantum),)
            ),
            params=CONFIG.soe_params(),
            limits=CONFIG.run_limits(),
        )

    def _drr_specs(self):
        pairs = evaluation_pairs()[:3]
        return [
            self._drr_spec(pair, quantum)
            for pair in pairs
            for quantum in (3_000.0, 12_000.0)
        ]

    def test_supports_drr_and_only_drr(self):
        from repro.core.policies import PolicyConfig

        backend = BatchBackend()
        assert all(backend.supports(spec) for spec in self._drr_specs())
        strawman = replace(
            self._drr_specs()[0],
            policy=PolicyConfig(name="rr-timeshare"),
        )
        assert not backend.supports(strawman)

    def test_pure_drr_batch_bit_identical_to_scalar(self):
        specs = self._drr_specs()
        assert BatchBackend().run_batch(specs) == \
            ScalarBackend().run_batch(specs)

    def test_mixed_policy_batch_bit_identical_to_scalar(self):
        # drr lanes share one lockstep batch with fairness-enforced and
        # unenforced lanes; the per-run grant masks must keep each
        # population's arithmetic untouched by the others.
        mixed = []
        for index, pair in enumerate(evaluation_pairs()[:3]):
            mixed.append(self._drr_spec(pair, 5_000.0, seed=index))
            mixed.append(
                SoeRunSpec(
                    streams=pair.streams(seed=index),
                    fairness=CONFIG.fairness_params(0.5),
                    params=CONFIG.soe_params(),
                    limits=CONFIG.run_limits(),
                )
            )
            mixed.append(
                SoeRunSpec(
                    streams=pair.streams(seed=index),
                    params=CONFIG.soe_params(),
                    limits=CONFIG.run_limits(),
                )
            )
        assert BatchBackend().run_batch(mixed) == \
            ScalarBackend().run_batch(mixed)

    def test_drr_result_is_independent_of_batch_composition(self):
        # Batch-no-coupling extends to the new policy lanes: a drr run
        # alone equals the same run inside a mixed batch.
        (alone,) = BatchBackend().run_batch(
            [self._drr_spec(evaluation_pairs()[0], 3_000.0)]
        )
        batch = BatchBackend().run_batch(self._drr_specs())
        assert batch[0] == alone


class TestEdgeEnvelope:
    """Configurations that hit the engine's boundary arithmetic."""

    def _finite_latency_spec(self):
        # Finite streams with per-segment miss latencies and miss-free
        # segments: exercises stream exhaustion, the latency override,
        # and the miss-free join path in both engines.
        cols_a = materialize_segments(
            uniform_stream(2.0, 4_000, ipm_cv=0.5, seed=11), 60
        )
        segs_a = [
            replace(cols_a.segment_at(index), miss_latency=150.0)
            if index % 3 == 0
            else cols_a.segment_at(index)
            for index in range(len(cols_a))
        ]
        cols_b = materialize_segments(
            uniform_stream(1.0, 800, ipm_cv=0.5, seed=12), 60
        )
        segs_b = [
            replace(cols_b.segment_at(index), ends_with_miss=False)
            if index % 4 == 0
            else cols_b.segment_at(index)
            for index in range(len(cols_b))
        ]
        return SoeRunSpec(
            streams=(
                stream_from_segments(segs_a),
                stream_from_segments(segs_b),
            ),
            fairness=FairnessParams(
                fairness_target=0.75, sample_period=30_000.0
            ),
            limits=RunLimits(
                min_instructions=10_000_000.0, warmup_instructions=5_000.0
            ),
        )

    def _edge_specs(self):
        return [
            self._finite_latency_spec(),
            # Zero switch overhead plus a hard cycle cap.
            SoeRunSpec(
                streams=(
                    uniform_stream(2.0, 6_000, seed=3),
                    uniform_stream(1.0, 500, seed=4),
                ),
                params=SoeParams(switch_lat=0.0),
                limits=RunLimits(
                    min_instructions=1e18, max_cycles=40_000.0
                ),
            ),
            # Four threads, mixed fairness.
            SoeRunSpec(
                streams=tuple(
                    uniform_stream(
                        1.5, 2_000 * (t + 1), ipm_cv=0.4, seed=20 + t
                    )
                    for t in range(4)
                ),
                fairness=FairnessParams(
                    fairness_target=0.5, sample_period=50_000.0
                ),
                limits=RunLimits(
                    min_instructions=120_000.0,
                    warmup_instructions=30_000.0,
                ),
            ),
        ]

    def test_edge_specs_bit_identical(self):
        specs = self._edge_specs()
        backend = BatchBackend()
        assert all(backend.supports(spec) for spec in specs)
        assert backend.run_batch(specs) == ScalarBackend().run_batch(specs)
