"""Golden regression tests for the two simulation kernels.

Every value below was captured from the pre-optimization kernels and is
pinned exactly (integers and float bit patterns alike). Any kernel
optimization — ``__slots__``, decode tables, event-driven fast-forward,
issue-loop rewrites — must keep these runs *bit-identical*; a change to
any number here means the optimization altered simulation semantics,
not just its speed. See docs/PERFORMANCE.md.

The scenarios are deliberately small (sub-second each) but exercise the
hot paths the optimizations touch: miss-triggered switches, pipeline
flush/refill, fairness quotas and Delta boundaries, single-thread
ROB-head stalls (the fast-forward path), idle gaps, and the segment
engine's event arithmetic with and without a controller.
"""

from __future__ import annotations

from repro.core.controller import FairnessController, FairnessParams
from repro.cpu.soe_core import run_cpu_single_thread, run_cpu_soe
from repro.engine.soe import RunLimits, SoeParams, run_soe
from repro.workloads.synthetic import uniform_stream
from repro.workloads.tracegen import (
    COMPUTE_SPEC,
    MEMORY_SPEC,
    MIXED_SPEC,
    make_trace,
)


def _thread_tuples(result):
    return [
        (
            t.retired,
            t.run_cycles,
            t.misses,
            t.miss_switches,
            t.forced_switches,
            t.cycle_quota_switches,
        )
        for t in result.threads
    ]


class TestDetailedCoreGolden:
    """Pinned ``CpuRunResult`` values for the cycle-level core."""

    def test_mt_no_policy(self):
        result = run_cpu_soe(
            [
                make_trace(MIXED_SPEC, seed=3, thread_index=0),
                make_trace(MEMORY_SPEC, seed=4, thread_index=1),
            ],
            min_instructions=1_500,
            warmup_instructions=500,
        )
        assert result.cycles == 67917
        assert _thread_tuples(result) == [
            (1289, 16324, 101, 101, 0, 0),
            (5284, 25516, 101, 101, 0, 0),
        ]
        assert len(result.switch_latencies) == 202
        assert sum(result.switch_latencies) == 3812
        assert result.mean_switch_latency == 3812 / 202
        assert result.l2_miss_rate == 0.9848197343453511
        assert result.branch_mispredict_rate == 0.37988826815642457

    def test_mt_fairness_controller(self):
        controller = FairnessController(
            2, FairnessParams(fairness_target=0.5, sample_period=2_000.0)
        )
        result = run_cpu_soe(
            [
                make_trace(MEMORY_SPEC, seed=5, thread_index=0),
                make_trace(COMPUTE_SPEC, seed=6, thread_index=1),
            ],
            controller,
            min_instructions=1_500,
            warmup_instructions=500,
        )
        assert result.cycles == 55599
        assert _thread_tuples(result) == [
            (1274, 12279, 82, 82, 0, 0),
            (1453, 20870, 80, 80, 2, 0),
        ]
        assert len(result.switch_latencies) == 164
        assert sum(result.switch_latencies) == 3099
        assert result.l2_miss_rate == 1.0
        assert result.branch_mispredict_rate == 0.6718346253229974

    def test_single_thread_memory_bound(self):
        """The ROB-head-stall workload the fast-forward path targets."""
        result = run_cpu_single_thread(
            make_trace(MEMORY_SPEC, seed=1),
            min_instructions=2_000,
            warmup_instructions=500,
        )
        assert result.cycles == 34140
        assert _thread_tuples(result) == [(1500, 34140, 0, 0, 0, 0)]
        assert result.switch_latencies == ()
        assert result.l2_miss_rate == 1.0
        assert result.branch_mispredict_rate == 1.0


class TestSegmentEngineGolden:
    """Pinned ``SoeRunResult`` values for the segment-level engine."""

    def test_no_policy_variable_segments(self):
        result = run_soe(
            [
                uniform_stream(2.5, 15_000, ipm_cv=0.5, ipc_cv=0.3, seed=1),
                uniform_stream(1.2, 800, ipm_cv=1.0, seed=2),
            ],
            limits=RunLimits(min_instructions=50_000),
        )
        assert result.cycles == 362995.4064727473
        assert _thread_tuples(result) == [
            (727472.3966640637, 317179.16956988006, 53, 53, 0, 0),
            (50155.05053210322, 41795.87544341936, 53, 53, 0, 0),
        ]
        assert result.idle_cycles == 1370.3614594478058
        assert result.switch_overhead_cycles == 2650.0

    def test_fairness_controller_uniform_segments(self):
        controller = FairnessController(
            2, FairnessParams(fairness_target=0.5, sample_period=25_000.0)
        )
        result = run_soe(
            [
                uniform_stream(2.5, 15_000, seed=1),
                uniform_stream(2.5, 1_000, seed=2),
            ],
            controller,
            SoeParams(),
            RunLimits(min_instructions=50_000, warmup_instructions=10_000),
        )
        assert result.cycles == 103470.83559228173
        assert _thread_tuples(result) == [
            (202352.22794394754, 80940.89117757893, 13, 13, 37, 0),
            (50000.0, 20000.0, 50, 50, 1, 0),
        ]
        assert result.idle_cycles == 4.944414702855283
        assert result.switch_overhead_cycles == 2525.0
