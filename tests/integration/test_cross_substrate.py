"""Integration tests spanning the package's layers.

The strongest claims of the reproduction are cross-cutting: the same
FairnessController object drives both simulators; the segment engine
agrees with the closed-form model; the detailed core exhibits the same
qualitative phenomena (starvation, enforcement, throughput cost) as the
segment engine does at scale.
"""

import pytest

from repro.core.controller import FairnessController, FairnessParams
from repro.core.model import SoeModel, ThreadParams
from repro.cpu.soe_core import run_cpu_single_thread, run_cpu_soe
from repro.engine.singlethread import run_single_thread
from repro.engine.soe import RunLimits, SoeParams, run_soe
from repro.workloads.synthetic import uniform_stream
from repro.workloads.tracegen import CpuWorkloadSpec, make_trace

COMPUTE = CpuWorkloadSpec(
    name="i-compute", ilp=8, ipm=25_000.0, load_fraction=0.2,
    store_fraction=0.05, branch_fraction=0.10, branch_noise=0.02,
    hot_bytes=4 * 1024, code_bytes=2 * 1024,
)
MEMORY = CpuWorkloadSpec(
    name="i-memory", ilp=6, ipm=450.0, load_fraction=0.3,
    store_fraction=0.05, branch_fraction=0.08, branch_noise=0.02,
    hot_bytes=4 * 1024, code_bytes=2 * 1024,
)


class TestSameControllerBothSubstrates:
    """One policy class, two machines (the paper's architectural claim)."""

    def test_controller_enforces_on_segment_engine(self):
        controller = FairnessController(
            2, FairnessParams(fairness_target=0.5)
        )
        streams = [uniform_stream(2.5, 15_000, seed=1),
                   uniform_stream(2.5, 1_000, seed=2)]
        result = run_soe(
            streams, controller, SoeParams(),
            RunLimits(min_instructions=1_200_000, warmup_instructions=800_000),
        )
        st = [
            run_single_thread(uniform_stream(2.5, 15_000), 300,
                              min_instructions=500_000).ipc,
            run_single_thread(uniform_stream(2.5, 1_000), 300,
                              min_instructions=500_000).ipc,
        ]
        assert result.achieved_fairness(st) == pytest.approx(0.5, abs=0.05)

    def test_controller_enforces_on_detailed_core(self):
        st = []
        for index, spec in enumerate((COMPUTE, MEMORY)):
            run = run_cpu_single_thread(
                make_trace(spec, seed=index + 1, thread_index=index),
                min_instructions=8_000, warmup_instructions=4_000,
            )
            st.append(run.total_ipc)

        def fairness_of(run):
            speedups = [ipc / s for ipc, s in zip(run.ipcs, st)]
            return min(speedups) / max(speedups)

        programs = lambda: [
            make_trace(COMPUTE, seed=1, thread_index=0),
            make_trace(MEMORY, seed=2, thread_index=1),
        ]
        baseline = run_cpu_soe(
            programs(), min_instructions=4_000, warmup_instructions=3_000
        )
        controller = FairnessController(
            2, FairnessParams(fairness_target=0.5, sample_period=4_000.0)
        )
        enforced = run_cpu_soe(
            programs(), controller,
            min_instructions=5_000, warmup_instructions=4_000,
        )
        assert fairness_of(baseline) < 0.2
        assert fairness_of(enforced) > fairness_of(baseline) * 2
        assert enforced.total_ipc < baseline.total_ipc


class TestEngineModelAgreement:
    @pytest.mark.parametrize(
        "ipc1,ipm1,ipc2,ipm2",
        [
            (2.5, 15_000, 2.5, 1_000),
            (2.0, 4_000, 1.5, 900),
            (3.0, 20_000, 1.0, 500),
        ],
    )
    def test_enforced_ipcs_match_model(self, ipc1, ipm1, ipc2, ipm2):
        model = SoeModel(
            [ThreadParams(ipc1, ipm1), ThreadParams(ipc2, ipm2)], 300, 25
        )
        controller = FairnessController(2, FairnessParams(fairness_target=1.0))
        result = run_soe(
            [uniform_stream(ipc1, ipm1, seed=1), uniform_stream(ipc2, ipm2, seed=2)],
            controller,
            SoeParams(),
            RunLimits(min_instructions=1_200_000, warmup_instructions=900_000),
        )
        predicted = model.soe_ipcs(1.0)
        if result.idle_cycles == 0:
            for measured, expected in zip(result.ipcs, predicted):
                assert measured == pytest.approx(expected, rel=0.05)


class TestWorkloadDeterminismAcrossLayers:
    def test_same_seed_same_results_everywhere(self):
        from repro.experiments.common import EvalConfig, run_pair
        from repro.workloads.pairs import BenchmarkPair

        config = EvalConfig.quick()
        a = run_pair(BenchmarkPair("gcc", "eon"), config)
        b = run_pair(BenchmarkPair("gcc", "eon"), config)
        assert a.ipc_st == b.ipc_st
        for level in config.fairness_levels:
            assert a.runs[level].ipcs == b.runs[level].ipcs
