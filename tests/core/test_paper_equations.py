"""Closed-form equation functions added for the traceability map.

Checks the free-function forms of Eq. 2 (unenforced SOE IPC), Eq. 5
(unenforced fairness) and Eq. 8 (speedup-ratio bound) against both
hand-computed values from the paper's Example 2 and the generalized
:class:`SoeModel` methods they must reduce to at F = 0.
"""

import math

import pytest

from repro.core.fairness import speedup_ratio_bound
from repro.core.model import (
    SoeModel,
    ThreadParams,
    soe_ipcs_unenforced,
    unenforced_fairness,
)
from repro.errors import ConfigurationError

# Example 2 machine constants (Table 2).
MISS_LAT = 300.0
SWITCH_LAT = 25.0
THREADS = [ThreadParams(2.5, 15_000.0), ThreadParams(2.5, 1_000.0)]


def _example_model() -> SoeModel:
    return SoeModel(THREADS, miss_lat=MISS_LAT, switch_lat=SWITCH_LAT)


class TestEq2UnenforcedSoeIpc:
    def test_hand_computed_example2(self):
        # CPMs: 15000/2.5 = 6000, 1000/2.5 = 400; rotation takes
        # 6000 + 400 + 2*25 = 6450 cycles.
        ipcs = soe_ipcs_unenforced([15_000.0, 1_000.0], [6_000.0, 400.0], SWITCH_LAT)
        assert ipcs == pytest.approx([15_000.0 / 6_450.0, 1_000.0 / 6_450.0])

    def test_reduces_from_soe_model_at_f0(self):
        model = _example_model()
        free = soe_ipcs_unenforced(
            [t.ipm for t in THREADS], [t.cpm for t in THREADS], SWITCH_LAT
        )
        assert model.soe_ipcs(0.0) == pytest.approx(free)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            soe_ipcs_unenforced([1.0, 2.0], [1.0], 25.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            soe_ipcs_unenforced([], [], 25.0)

    def test_zero_rotation_rejected(self):
        with pytest.raises(ConfigurationError):
            soe_ipcs_unenforced([1.0], [0.0], 0.0)


class TestEq5UnenforcedFairness:
    def test_hand_computed_example2(self):
        # (400 + 300) / (6000 + 300) = 700 / 6300 = 1/9.
        assert unenforced_fairness([6_000.0, 400.0], MISS_LAT) == pytest.approx(1 / 9)

    def test_matches_soe_model_fairness_at_f0(self):
        model = _example_model()
        free = unenforced_fairness([t.cpm for t in THREADS], MISS_LAT)
        assert model.fairness(0.0) == pytest.approx(free)

    def test_is_ipm_independent(self):
        # Eq. 5's point: the IPMs cancel, leaving a pure CPM property.
        a = SoeModel(
            [ThreadParams(2.0, 12_000.0), ThreadParams(2.0, 800.0)],
            miss_lat=MISS_LAT,
            switch_lat=SWITCH_LAT,
        )
        b = SoeModel(
            [ThreadParams(4.0, 24_000.0), ThreadParams(4.0, 1_600.0)],
            miss_lat=MISS_LAT,
            switch_lat=SWITCH_LAT,
        )
        assert a.fairness(0.0) == pytest.approx(b.fairness(0.0))

    def test_identical_threads_are_perfectly_fair(self):
        assert unenforced_fairness([500.0, 500.0, 500.0], MISS_LAT) == 1.0

    def test_bad_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            unenforced_fairness([], MISS_LAT)
        with pytest.raises(ConfigurationError):
            unenforced_fairness([0.0, 400.0], MISS_LAT)
        with pytest.raises(ConfigurationError):
            unenforced_fairness([400.0], -1.0)


class TestEq8SpeedupRatioBound:
    def test_bound_is_reciprocal(self):
        assert speedup_ratio_bound(0.25) == pytest.approx(4.0)
        assert speedup_ratio_bound(1.0) == 1.0

    def test_f0_admits_unbounded_ratios(self):
        assert speedup_ratio_bound(0.0) == math.inf

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            speedup_ratio_bound(-0.1)
        with pytest.raises(ConfigurationError):
            speedup_ratio_bound(1.5)

    @pytest.mark.parametrize("target", [0.25, 0.5, 1.0])
    def test_model_speedups_respect_bound(self, target):
        model = _example_model()
        speedups = model.speedups(target)
        ratio = max(speedups) / min(speedups)
        assert ratio <= speedup_ratio_bound(target) * (1 + 1e-9)
