"""Tests for the deficit counter mechanism (Section 3.2)."""

import math

import pytest

from repro.core.deficit import DeficitCounter
from repro.errors import ConfigurationError


class TestDeficitCounter:
    def test_starts_at_zero(self):
        counter = DeficitCounter()
        assert counter.remaining == 0.0
        assert counter.exhausted

    def test_grant_increments_not_resets(self):
        # The DRR carry-over: unused quota adds to the next grant.
        counter = DeficitCounter()
        counter.grant(1_000)
        counter.consume(400)  # miss after 400 instructions
        counter.grant(1_000)
        assert counter.remaining == pytest.approx(1_600)

    def test_consume_decrements(self):
        counter = DeficitCounter()
        counter.grant(100)
        counter.consume(30)
        assert counter.remaining == pytest.approx(70)
        assert not counter.exhausted

    def test_exhaustion_at_zero(self):
        counter = DeficitCounter()
        counter.grant(50)
        counter.consume(50)
        assert counter.exhausted

    def test_consume_clamps_at_zero(self):
        counter = DeficitCounter()
        counter.grant(10)
        counter.consume(15)
        assert counter.remaining == 0.0

    def test_average_instructions_per_switch_converges(self):
        # The whole point of deficit counting: with misses cutting every
        # dispatch short, the average instructions per switch still
        # converges to the quota.
        quota = 1_000.0
        miss_every = 700.0  # miss arrives before the quota each time
        counter = DeficitCounter()
        retired = 0.0
        switches = 0
        for _ in range(1_000):
            counter.grant(quota)
            # run until deficit exhausted or a miss, whichever first
            run = min(counter.remaining, miss_every)
            counter.consume(run)
            retired += run
            switches += 1
        assert retired / switches == pytest.approx(quota, rel=0.35)

    def test_infinite_quota(self):
        counter = DeficitCounter()
        counter.grant(math.inf)
        counter.consume(1e12)
        assert counter.remaining == math.inf

    def test_finite_grant_after_infinite_resets(self):
        # Leftover from an unenforced window is meaningless.
        counter = DeficitCounter()
        counter.grant(math.inf)
        counter.grant(500)
        assert counter.remaining == pytest.approx(500)

    def test_cap_bounds_accumulation(self):
        counter = DeficitCounter(cap=1_500)
        counter.grant(1_000)
        counter.grant(1_000)
        assert counter.remaining == pytest.approx(1_500)

    def test_reset(self):
        counter = DeficitCounter()
        counter.grant(100)
        counter.reset()
        assert counter.remaining == 0.0

    def test_rejects_negative_quota(self):
        with pytest.raises(ConfigurationError):
            DeficitCounter().grant(-1)

    def test_rejects_negative_consumption(self):
        with pytest.raises(ConfigurationError):
            DeficitCounter().consume(-1)

    def test_rejects_non_positive_cap(self):
        with pytest.raises(ConfigurationError):
            DeficitCounter(cap=0)
