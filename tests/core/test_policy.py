"""Tests for the switch-policy baselines."""

import math

import pytest

from repro.core.policy import NoFairnessPolicy, TimeSharingPolicy
from repro.errors import ConfigurationError


class TestNoFairnessPolicy:
    def test_budgets_are_infinite(self):
        policy = NoFairnessPolicy()
        policy.on_run_start(0, 0.0)
        assert policy.instruction_budget(0) == math.inf
        assert policy.cycle_budget(0) == math.inf

    def test_no_boundaries(self):
        assert NoFairnessPolicy().next_boundary(123.0) == math.inf

    def test_callbacks_are_no_ops(self):
        policy = NoFairnessPolicy()
        policy.on_retired(0, 100, 50)
        policy.on_miss(0, 1.0)
        policy.on_switch_out(0, "miss", 2.0)
        policy.on_boundary(3.0)


class TestTimeSharingPolicy:
    def test_cycle_budget_equals_quota_at_dispatch(self):
        policy = TimeSharingPolicy(400)
        policy.on_run_start(0, 0.0)
        assert policy.cycle_budget(0) == pytest.approx(400)

    def test_budget_shrinks_as_cycles_pass(self):
        policy = TimeSharingPolicy(400)
        policy.on_run_start(0, 0.0)
        policy.on_retired(0, 250, 100)
        assert policy.cycle_budget(0) == pytest.approx(300)

    def test_budget_resets_each_dispatch(self):
        policy = TimeSharingPolicy(400)
        policy.on_run_start(0, 0.0)
        policy.on_retired(0, 1_000, 400)
        assert policy.cycle_budget(0) == pytest.approx(0)
        policy.on_run_start(0, 1_000.0)
        assert policy.cycle_budget(0) == pytest.approx(400)

    def test_budget_never_negative(self):
        policy = TimeSharingPolicy(100)
        policy.on_run_start(0, 0.0)
        policy.on_retired(0, 500, 150)
        assert policy.cycle_budget(0) == 0.0

    def test_threads_tracked_independently(self):
        policy = TimeSharingPolicy(400)
        policy.on_run_start(0, 0.0)
        policy.on_retired(0, 100, 100)
        policy.on_run_start(1, 100.0)
        assert policy.cycle_budget(1) == pytest.approx(400)
        assert policy.cycle_budget(0) == pytest.approx(300)

    def test_instruction_budget_is_unbounded(self):
        assert TimeSharingPolicy(400).instruction_budget(0) == math.inf

    def test_rejects_non_positive_quota(self):
        with pytest.raises(ConfigurationError):
            TimeSharingPolicy(0)
        with pytest.raises(ConfigurationError):
            TimeSharingPolicy(-5)
