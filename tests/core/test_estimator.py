"""Tests for the runtime IPC_ST estimator (Eqs. 11-13)."""

import pytest

from repro.core.counters import CounterSample
from repro.core.estimator import IpcStEstimator
from repro.errors import ConfigurationError


def sample(instructions, cycles, misses):
    return CounterSample(instructions, cycles, misses)


class TestIpcStEstimator:
    def test_basic_estimate(self):
        est = IpcStEstimator(num_threads=1, miss_lat=300)
        result = est.update(0, sample(15_000, 6_000, 1))
        assert result.ipc_st == pytest.approx(15_000 / 6_300)
        assert result.ipm == pytest.approx(15_000)
        assert result.cpm == pytest.approx(6_000)
        assert not result.carried_over

    def test_estimate_tracks_latest_window(self):
        est = IpcStEstimator(1, 300)
        est.update(0, sample(10_000, 4_000, 2))
        second = est.update(0, sample(1_000, 500, 5))
        assert est.estimate(0) == second
        assert second.ipm == pytest.approx(200)

    def test_empty_window_carries_previous_estimate(self):
        est = IpcStEstimator(1, 300)
        first = est.update(0, sample(15_000, 6_000, 1))
        carried = est.update(0, sample(0, 0, 0))
        assert carried.carried_over
        assert carried.ipc_st == pytest.approx(first.ipc_st)

    def test_empty_window_with_no_history_gives_null_estimate(self):
        est = IpcStEstimator(1, 300)
        result = est.update(0, sample(0, 0, 0))
        assert result.carried_over
        assert result.ipc_st == 0.0

    def test_update_all_respects_thread_order(self):
        est = IpcStEstimator(2, 300)
        results = est.update_all([sample(100, 50, 1), sample(200, 100, 1)])
        assert results[0].ipm == pytest.approx(100)
        assert results[1].ipm == pytest.approx(200)

    def test_update_all_rejects_wrong_count(self):
        est = IpcStEstimator(2, 300)
        with pytest.raises(ConfigurationError):
            est.update_all([sample(1, 1, 1)])

    def test_estimates_list_has_none_before_first_sample(self):
        est = IpcStEstimator(3, 300)
        assert est.estimates == [None, None, None]

    def test_smoothing_blends_windows(self):
        est = IpcStEstimator(1, 300, smoothing=0.5)
        est.update(0, sample(10_000, 5_000, 1))
        blended = est.update(0, sample(20_000, 10_000, 1))
        assert blended.ipm == pytest.approx(15_000)

    def test_no_smoothing_by_default(self):
        est = IpcStEstimator(1, 300)
        est.update(0, sample(10_000, 5_000, 1))
        raw = est.update(0, sample(20_000, 10_000, 1))
        assert raw.ipm == pytest.approx(20_000)

    def test_smoothing_skips_carried_over_history(self):
        est = IpcStEstimator(1, 300, smoothing=0.5)
        est.update(0, sample(0, 0, 0))  # carried-over null estimate
        fresh = est.update(0, sample(10_000, 5_000, 1))
        assert fresh.ipm == pytest.approx(10_000)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_threads": 0, "miss_lat": 300},
            {"num_threads": 1, "miss_lat": -1},
            {"num_threads": 1, "miss_lat": 300, "smoothing": 1.0},
            {"num_threads": 1, "miss_lat": 300, "smoothing": -0.1},
        ],
    )
    def test_rejects_bad_configuration(self, kwargs):
        with pytest.raises(ConfigurationError):
            IpcStEstimator(**kwargs)
