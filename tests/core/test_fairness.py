"""Tests for the fairness metric (Eq. 4) and related metrics."""

import pytest

from repro.core.fairness import (
    fairness,
    fairness_from_ipcs,
    harmonic_mean_fairness,
    speedups,
    weighted_speedup,
)
from repro.errors import ConfigurationError


class TestSpeedups:
    def test_elementwise_ratio(self):
        assert speedups([1.0, 2.0], [2.0, 2.0]) == [0.5, 1.0]

    def test_starved_thread_has_zero_speedup(self):
        assert speedups([0.0, 1.0], [1.5, 2.0])[0] == 0.0

    def test_rejects_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            speedups([1.0], [1.0, 2.0])

    def test_rejects_non_positive_single_thread_ipc(self):
        with pytest.raises(ConfigurationError):
            speedups([1.0], [0.0])

    def test_rejects_negative_soe_ipc(self):
        with pytest.raises(ConfigurationError):
            speedups([-0.1], [1.0])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            speedups([], [])


class TestFairness:
    def test_perfect_fairness_for_equal_speedups(self):
        assert fairness([0.63, 0.63]) == pytest.approx(1.0)

    def test_example2_unenforced_value(self):
        # Paper Example 2: speedups ~0.977 and ~0.108 give fairness 0.11.
        assert fairness([0.977, 0.108]) == pytest.approx(0.11, abs=0.005)

    def test_starved_thread_gives_zero(self):
        assert fairness([0.0, 0.9]) == 0.0

    def test_bounded_by_zero_and_one(self):
        assert 0.0 <= fairness([0.3, 1.8, 0.9]) <= 1.0

    def test_multi_thread_uses_extremes(self):
        # min/max ratio, not adjacent pairs.
        assert fairness([0.5, 1.0, 0.25]) == pytest.approx(0.25)

    def test_single_thread_is_trivially_fair(self):
        assert fairness([0.7]) == 1.0

    def test_all_starved_degenerate_case(self):
        assert fairness([0.0, 0.0]) == 1.0

    def test_scale_invariance(self):
        assert fairness([0.2, 0.4]) == pytest.approx(fairness([0.1, 0.2]))

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            fairness([-0.5, 1.0])

    def test_from_ipcs_composes(self):
        assert fairness_from_ipcs([1.0, 1.0], [2.0, 4.0]) == pytest.approx(0.5)


class TestWeightedSpeedup:
    def test_is_the_sum(self):
        assert weighted_speedup([0.5, 0.7]) == pytest.approx(1.2)

    def test_is_insensitive_to_starvation_pattern(self):
        # Section 6's criticism: these two systems score identically
        # although one starves a thread.
        balanced = weighted_speedup([0.6, 0.6])
        starved = weighted_speedup([1.15, 0.05])
        assert balanced == pytest.approx(starved)


class TestHarmonicMeanFairness:
    def test_equal_speedups(self):
        assert harmonic_mean_fairness([0.5, 0.5]) == pytest.approx(0.5)

    def test_starved_thread_gives_zero(self):
        assert harmonic_mean_fairness([0.0, 1.0]) == 0.0

    def test_less_strict_than_min_ratio(self):
        # The paper notes its metric is stricter: enforcing min-ratio
        # fairness improves the harmonic mean, but a reasonable harmonic
        # mean can hide a large speedup imbalance.
        imbalanced = [0.9, 0.3]
        assert fairness(imbalanced) == pytest.approx(1 / 3)
        assert harmonic_mean_fairness(imbalanced) == pytest.approx(0.45)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            harmonic_mean_fairness([])
