"""Tests for the miss-latency monitor (Section 6)."""

import pytest

from repro.core.latency import MissLatencyMonitor
from repro.errors import ConfigurationError


class TestMissLatencyMonitor:
    def test_defaults_until_first_observation(self):
        monitor = MissLatencyMonitor(2, default_latency=300.0)
        assert monitor.latency(0) == 300.0
        assert monitor.latencies() == [300.0, 300.0]

    def test_window_average(self):
        monitor = MissLatencyMonitor(1, 300.0)
        monitor.record(0, 40.0)
        monitor.record(0, 40.0)
        monitor.record(0, 300.0)
        averages = monitor.sample_and_reset()
        assert averages[0] == pytest.approx((40 + 40 + 300) / 3)

    def test_threads_independent(self):
        monitor = MissLatencyMonitor(2, 300.0)
        monitor.record(0, 40.0)
        monitor.record(1, 200.0)
        averages = monitor.sample_and_reset()
        assert averages[0] == pytest.approx(40.0)
        assert averages[1] == pytest.approx(200.0)

    def test_empty_window_keeps_previous_measurement(self):
        monitor = MissLatencyMonitor(1, 300.0)
        monitor.record(0, 40.0)
        monitor.sample_and_reset()
        second = monitor.sample_and_reset()
        assert second[0] == pytest.approx(40.0)

    def test_windows_do_not_leak(self):
        monitor = MissLatencyMonitor(1, 300.0)
        monitor.record(0, 100.0)
        monitor.sample_and_reset()
        monitor.record(0, 200.0)
        assert monitor.sample_and_reset()[0] == pytest.approx(200.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            MissLatencyMonitor(0, 300.0)
        with pytest.raises(ConfigurationError):
            MissLatencyMonitor(1, -1.0)
        with pytest.raises(ConfigurationError):
            MissLatencyMonitor(1, 300.0).record(0, -5.0)


class TestControllerWithLatencyMeasurement:
    def test_measured_latency_flows_into_estimates(self):
        from repro.core.controller import FairnessController, FairnessParams

        controller = FairnessController(
            2,
            FairnessParams(
                fairness_target=1.0, miss_lat=300.0, measure_miss_latency=True
            ),
        )
        # Thread 0 sees short events (latency 40), thread 1 classic 300s.
        controller.on_retired(0, 10_000, 5_000)
        for _ in range(10):
            controller.on_miss(0, 0.0, latency=40.0)
        controller.on_retired(1, 10_000, 5_000)
        for _ in range(5):
            controller.on_miss(1, 0.0, latency=300.0)
        controller.on_boundary(250_000.0)

        estimates = controller.estimates
        # Eq. 13 with the measured latency: thread 0's IPC_ST must be
        # evaluated against 40-cycle stalls, not 300-cycle ones.
        assert estimates[0].miss_lat == pytest.approx(40.0)
        assert estimates[0].ipc_st == pytest.approx(1_000 / (500 + 40))
        assert estimates[1].ipc_st == pytest.approx(2_000 / (1_000 + 300))

    def test_without_measurement_latency_is_ignored(self):
        from repro.core.controller import FairnessController, FairnessParams

        controller = FairnessController(
            2, FairnessParams(fairness_target=1.0, miss_lat=300.0)
        )
        controller.on_retired(0, 10_000, 5_000)
        controller.on_miss(0, 0.0, latency=40.0)
        controller.on_boundary(250_000.0)
        assert controller.measured_latencies is None
        assert controller.estimates[0].miss_lat is None
