"""Tests for the fairness controller (the full Section 3 mechanism)."""

import math

import pytest

from repro.core.controller import FairnessController, FairnessParams
from repro.errors import ConfigurationError


def make_controller(target=1.0, period=250_000.0, **kwargs):
    return FairnessController(
        2, FairnessParams(fairness_target=target, sample_period=period, **kwargs)
    )


def feed_example2_window(controller, cycles=250_000.0):
    """Feed counters equivalent to Example 2's steady state."""
    # Thread 0: IPM 15000, CPM 6000 -> scale to ~cycles of running time.
    controller.on_retired(0, 30_000, 12_000)
    controller.on_miss(0, 0.0)
    controller.on_miss(0, 0.0)
    # Thread 1: IPM 1000, CPM 400.
    controller.on_retired(1, 20_000, 8_000)
    for _ in range(20):
        controller.on_miss(1, 0.0)
    controller.on_boundary(cycles)


class TestFairnessParams:
    def test_defaults_match_paper(self):
        params = FairnessParams(fairness_target=0.5)
        assert params.miss_lat == 300.0
        assert params.sample_period == 250_000.0
        assert params.deficit_cap is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fairness_target": 1.5},
            {"fairness_target": -0.1},
            {"fairness_target": 0.5, "miss_lat": -1},
            {"fairness_target": 0.5, "sample_period": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            FairnessParams(**kwargs)


class TestFairnessController:
    def test_initial_quotas_are_infinite(self):
        # No estimates yet: never force-switch a thread you know nothing
        # about.
        controller = make_controller()
        assert controller.quotas == [math.inf, math.inf]

    def test_initial_budget_is_infinite(self):
        controller = make_controller()
        controller.on_run_start(0, 0.0)
        assert controller.instruction_budget(0) == math.inf

    def test_boundary_computes_example2_quotas(self):
        controller = make_controller(target=1.0)
        feed_example2_window(controller)
        quotas = controller.quotas
        assert quotas[0] == pytest.approx(1_666.7, abs=1.0)
        assert quotas[1] == pytest.approx(1_000.0, abs=1.0)

    def test_budget_follows_deficit(self):
        controller = make_controller(target=1.0)
        feed_example2_window(controller)
        controller.on_run_start(0, 250_000.0)
        budget0 = controller.instruction_budget(0)
        controller.on_retired(0, 600, 240)
        assert controller.instruction_budget(0) == pytest.approx(budget0 - 600)

    def test_deficit_carries_across_dispatches(self):
        controller = make_controller(target=1.0)
        feed_example2_window(controller)
        controller.on_run_start(0, 250_000.0)
        controller.on_retired(0, 600, 240)  # miss cuts the dispatch short
        controller.on_miss(0, 250_240.0)
        controller.on_run_start(0, 251_000.0)
        expected = controller.quotas[0] - 600 + controller.quotas[0]
        assert controller.instruction_budget(0) == pytest.approx(expected)

    def test_next_boundary_advances(self):
        controller = make_controller(period=1_000.0)
        assert controller.next_boundary(0.0) == 1_000.0
        controller.on_boundary(1_000.0)
        assert controller.next_boundary(1_000.0) == 2_000.0

    def test_history_records_sample_points(self):
        controller = make_controller(period=1_000.0)
        controller.on_retired(0, 100, 50)
        controller.on_boundary(1_000.0)
        history = controller.history
        assert len(history) == 1
        assert history[0].time == 1_000.0
        assert history[0].window_instructions[0] == pytest.approx(100)

    def test_starved_thread_keeps_infinite_quota(self):
        controller = make_controller(target=1.0)
        # Thread 1 never runs in the window.
        controller.on_retired(0, 10_000, 5_000)
        controller.on_miss(0, 0.0)
        controller.on_boundary(250_000.0)
        assert controller.quotas[1] == math.inf
        assert math.isfinite(controller.quotas[0])

    def test_counters_reset_each_window(self):
        controller = make_controller(period=1_000.0)
        controller.on_retired(0, 100, 50)
        controller.on_boundary(1_000.0)
        controller.on_boundary(2_000.0)
        # Second window was empty: estimate carried over.
        second = controller.history[1]
        assert second.window_instructions == (0.0, 0.0)
        assert second.estimates[0].carried_over

    def test_f_zero_controller_never_forces(self):
        controller = make_controller(target=0.0)
        feed_example2_window(controller)
        assert controller.quotas == [math.inf, math.inf]

    def test_miss_recording_affects_estimates(self):
        controller = make_controller()
        controller.on_retired(0, 10_000, 5_000)
        controller.on_miss(0, 0.0)
        controller.on_retired(1, 10_000, 5_000)
        controller.on_boundary(250_000.0)
        est = controller.estimates
        assert est[0].ipm == pytest.approx(10_000)
        # Thread 1 had zero misses: max(misses, 1) applies.
        assert est[1].ipm == pytest.approx(10_000)

    def test_rejects_zero_threads(self):
        with pytest.raises(ConfigurationError):
            FairnessController(0, FairnessParams(fairness_target=0.5))
