"""Tests for the policy zoo: registry, configs, and the new policies."""

import math

import pytest

from repro.core.controller import FairnessController
from repro.core.drr import DEFAULT_QUANTUM, DrrArbiterPolicy
from repro.core.icount import IcountPolicy
from repro.core.lfoc import DEFAULT_IPM_THRESHOLD, LfocClusterPolicy
from repro.core.policies import (
    PolicyConfig,
    PolicyParam,
    PolicySpec,
    get_policy,
    policy_names,
    register_policy,
    render_policy_table,
)
from repro.core.policy import SwitchPolicy, TimeSharingPolicy
from repro.engine.soe import RunLimits, SoeParams, run_soe
from repro.errors import ConfigurationError, SimulationError
from repro.workloads.synthetic import uniform_stream

BUILTINS = (
    "none",
    "fairness",
    "rr-timeshare",
    "icount",
    "lfoc-cluster",
    "drr-arbiter",
)


class TestRegistry:
    def test_builtins_registered_in_order(self):
        assert policy_names() == BUILTINS

    def test_unknown_name_lists_known_policies(self):
        with pytest.raises(ConfigurationError, match="rr-timeshare"):
            get_policy("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_policy(get_policy("fairness"))

    def test_param_default_lookup(self):
        spec = get_policy("rr-timeshare")
        assert spec.param_default("cycle_quota") == 400.0
        with pytest.raises(ConfigurationError, match="no parameter"):
            spec.param_default("quantum")

    def test_only_the_vectorized_policies_are_batch_capable(self):
        capable = [n for n in policy_names() if get_policy(n).batch_capable]
        assert capable == ["none", "fairness", "drr-arbiter"]

    def test_render_table_lists_every_policy_and_parameter(self):
        text = render_policy_table()
        for name in BUILTINS:
            assert name in text
        assert "cycle_quota" in text
        assert "ipm_threshold" in text
        assert "quantum" in text


class TestPolicyConfig:
    def test_unknown_name_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="unknown policy"):
            PolicyConfig(name="nope")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"level": -0.1},
            {"level": 1.1},
            {"miss_lat": -1.0},
            {"sample_period": 0.0},
        ],
    )
    def test_invalid_scalars_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            PolicyConfig(name="fairness", **kwargs)

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ConfigurationError, match="no parameter"):
            PolicyConfig(name="drr-arbiter", params=(("cycle_quota", 1.0),))

    def test_duplicate_parameters_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            PolicyConfig(
                name="drr-arbiter",
                params=(("quantum", 1.0), ("quantum", 2.0)),
            )

    def test_params_are_canonically_sorted(self):
        spec = PolicySpec(
            name="two-knob-test",
            title="t",
            reference="r",
            batch_capable=False,
            params=(PolicyParam("b", 1.0, "d"), PolicyParam("a", 2.0, "d")),
            factory=lambda n, c: None,
        )
        register_policy(spec)
        try:
            config = PolicyConfig(
                name="two-knob-test", params=(("b", 9.0), ("a", 8.0))
            )
            assert config.params == (("a", 8.0), ("b", 9.0))
        finally:
            from repro.core import policies

            del policies._REGISTRY["two-knob-test"]

    def test_param_falls_back_to_schema_default(self):
        config = PolicyConfig(name="drr-arbiter")
        assert config.param("quantum") == DEFAULT_QUANTUM
        override = PolicyConfig(name="drr-arbiter", params=(("quantum", 9.0),))
        assert override.param("quantum") == 9.0

    def test_normalize_none_is_the_baseline(self):
        assert PolicyConfig(name="none").normalize() == (None, None)

    def test_normalize_fairness_collapses_to_fairness_params(self):
        config = PolicyConfig(
            name="fairness", level=0.5, miss_lat=200.0, sample_period=1e5
        )
        fairness, policy = config.normalize()
        assert policy is None
        assert fairness.fairness_target == 0.5
        assert fairness.miss_lat == 200.0
        assert fairness.sample_period == 1e5

    @pytest.mark.parametrize(
        "name", ["rr-timeshare", "icount", "lfoc-cluster", "drr-arbiter"]
    )
    def test_normalize_keeps_scalar_only_policies(self, name):
        config = PolicyConfig(name=name)
        fairness, policy = config.normalize()
        assert fairness is None and policy is config


class TestFactories:
    def test_none_builds_no_policy(self):
        assert PolicyConfig(name="none").make(2) is None

    def test_fairness_builds_the_paper_controller(self):
        policy = PolicyConfig(name="fairness", level=0.5).make(2)
        assert isinstance(policy, FairnessController)
        assert policy.params.fairness_target == 0.5

    def test_rr_timeshare_honors_the_quota_override(self):
        policy = PolicyConfig(
            name="rr-timeshare", params=(("cycle_quota", 123.0),)
        ).make(2)
        assert isinstance(policy, TimeSharingPolicy)
        assert policy.cycle_quota == 123.0

    def test_icount_and_lfoc_and_drr_build_their_types(self):
        assert isinstance(PolicyConfig(name="icount").make(2), IcountPolicy)
        assert isinstance(
            PolicyConfig(name="lfoc-cluster").make(2), LfocClusterPolicy
        )
        assert isinstance(
            PolicyConfig(name="drr-arbiter").make(2), DrrArbiterPolicy
        )


class TestIcountPolicy:
    def test_prefers_the_thread_with_fewest_retired(self):
        policy = IcountPolicy(3)
        policy.on_retired(0, 100, 40)
        policy.on_retired(1, 10, 4)
        policy.on_retired(2, 50, 20)
        assert policy.select_thread((0, 1, 2), 0.0) == 1

    def test_ties_break_toward_lower_thread_id(self):
        policy = IcountPolicy(2)
        assert policy.select_thread((0, 1), 0.0) == 0
        assert policy.select_thread((1,), 0.0) == 1

    def test_never_forces_a_switch(self):
        policy = IcountPolicy(2)
        policy.on_run_start(0, 0.0)
        assert policy.instruction_budget(0) == math.inf
        assert policy.cycle_budget(0) == math.inf
        assert policy.next_boundary(0.0) == math.inf


class TestDrrArbiterPolicy:
    def test_each_dispatch_grants_one_quantum(self):
        policy = DrrArbiterPolicy(2, quantum=1_000.0)
        policy.on_run_start(0, 0.0)
        assert policy.instruction_budget(0) == 1_000.0

    def test_unused_credit_carries_over(self):
        policy = DrrArbiterPolicy(2, quantum=1_000.0)
        policy.on_run_start(0, 0.0)
        policy.on_retired(0, 400.0, 160.0)  # miss after 400 instructions
        policy.on_run_start(0, 500.0)
        assert policy.instruction_budget(0) == pytest.approx(1_600.0)

    def test_budget_reaches_zero_when_quantum_is_spent(self):
        policy = DrrArbiterPolicy(1, quantum=1_000.0)
        policy.on_run_start(0, 0.0)
        policy.on_retired(0, 1_000.0, 400.0)
        assert policy.instruction_budget(0) == 0.0

    def test_invalid_construction_rejected(self):
        with pytest.raises(ConfigurationError):
            DrrArbiterPolicy(0)
        with pytest.raises(ConfigurationError):
            DrrArbiterPolicy(2, quantum=0.0)


class TestLfocClusterPolicy:
    def _boundary(self, policy, feeds):
        """Feed per-thread (instructions, cycles, misses) and sample."""
        for tid, (instructions, cycles, misses) in enumerate(feeds):
            policy.on_retired(tid, instructions, cycles)
            for _ in range(misses):
                policy.on_miss(tid, 0.0)
        policy.on_boundary(policy.next_boundary(0.0))

    def test_clusters_split_at_the_ipm_threshold(self):
        policy = LfocClusterPolicy(2, 1.0, ipm_threshold=5_000.0)
        # Thread 0 misses every 1k instructions (hungry); thread 1
        # every 100k (light).
        self._boundary(policy, [(100_000, 40_000, 100), (100_000, 40_000, 1)])
        assert policy.clusters == ((0,), (1,))

    def test_light_thread_is_throttled_lone_hungry_is_not(self):
        policy = LfocClusterPolicy(2, 1.0, ipm_threshold=5_000.0)
        self._boundary(policy, [(100_000, 40_000, 100), (100_000, 40_000, 1)])
        quotas = policy.quotas
        assert quotas[0] == math.inf  # lone hungry thread: unenforced
        assert quotas[1] < math.inf  # light thread: globally throttled

    def test_hungry_pair_gets_cluster_local_quotas(self):
        policy = LfocClusterPolicy(2, 1.0, ipm_threshold=5_000.0)
        self._boundary(policy, [(100_000, 40_000, 100), (100_000, 40_000, 50)])
        assert policy.clusters == ((0, 1), ())
        assert all(q < math.inf for q in policy.quotas)

    def test_all_light_degenerates_to_global_enforcement(self):
        policy = LfocClusterPolicy(2, 1.0, ipm_threshold=5_000.0)
        self._boundary(policy, [(100_000, 40_000, 1), (200_000, 40_000, 1)])
        assert policy.clusters == ((), (0, 1))
        assert all(q < math.inf for q in policy.quotas)

    def test_invalid_construction_rejected(self):
        with pytest.raises(ConfigurationError):
            LfocClusterPolicy(2, 1.5)
        with pytest.raises(ConfigurationError):
            LfocClusterPolicy(2, 1.0, ipm_threshold=0.0)


class _PickHighest(SwitchPolicy):
    """Reverse the dispatch preference (highest ready thread id)."""

    def select_thread(self, ready, now):
        return max(ready)


class _PickInvalid(SwitchPolicy):
    def select_thread(self, ready, now):
        return 99


class _PickNothing(SwitchPolicy):
    """Overrides the hook but always defers to the default rotation."""

    def select_thread(self, ready, now):
        return None


def _streams():
    return [
        uniform_stream(2.5, 15_000, seed=1),
        uniform_stream(2.5, 1_000, seed=2),
    ]


LIMITS = RunLimits(min_instructions=200_000)
PARAMS = SoeParams(miss_lat=300, switch_lat=25)


class TestSelectThreadIntegration:
    def test_deferring_override_matches_default_round_robin(self):
        from repro.core.policy import NoFairnessPolicy

        base = run_soe(_streams(), NoFairnessPolicy(), PARAMS, LIMITS)
        defer = run_soe(_streams(), _PickNothing(), PARAMS, LIMITS)
        assert [t.retired for t in base.threads] == [
            t.retired for t in defer.threads
        ]
        assert base.cycles == defer.cycles

    def test_custom_selection_changes_the_schedule(self):
        base = run_soe(_streams(), _PickNothing(), PARAMS, LIMITS)
        flipped = run_soe(_streams(), _PickHighest(), PARAMS, LIMITS)
        assert [t.retired for t in base.threads] != [
            t.retired for t in flipped.threads
        ]

    def test_selecting_a_non_ready_thread_is_a_simulation_error(self):
        with pytest.raises(SimulationError, match="ready set"):
            run_soe(_streams(), _PickInvalid(), PARAMS, LIMITS)
