"""Tests for the IPSw quota computation (Eq. 9)."""

import math

import pytest

from repro.core.estimator import ThreadEstimate
from repro.core.quota import quotas_from_estimates
from repro.errors import ConfigurationError


def estimate(ipm, cpm, miss_lat=300.0):
    return ThreadEstimate(ipm=ipm, cpm=cpm, ipc_st=ipm / (cpm + miss_lat))


class TestQuotasFromEstimates:
    def test_example2_quotas_at_f1(self):
        estimates = [estimate(15_000, 6_000), estimate(1_000, 400)]
        quotas = quotas_from_estimates(estimates, 1.0, 300)
        assert quotas[0] == pytest.approx(1_666.7, abs=0.5)
        assert quotas[1] == pytest.approx(1_000)

    def test_f_zero_means_no_forced_switches(self):
        estimates = [estimate(15_000, 6_000), estimate(1_000, 400)]
        assert quotas_from_estimates(estimates, 0.0, 300) == [math.inf, math.inf]

    def test_quota_scales_inversely_with_f(self):
        estimates = [estimate(15_000, 6_000), estimate(1_000, 400)]
        q1 = quotas_from_estimates(estimates, 1.0, 300)[0]
        q_quarter = quotas_from_estimates(estimates, 0.25, 300)[0]
        assert q_quarter == pytest.approx(4 * q1)

    def test_quota_capped_by_ipm(self):
        estimates = [estimate(15_000, 6_000), estimate(1_000, 400)]
        quotas = quotas_from_estimates(estimates, 0.25, 300)
        assert quotas[1] == pytest.approx(1_000)  # still capped by IPM

    def test_unknown_thread_gets_infinite_quota(self):
        # A thread with no usable estimate must never be force-switched.
        estimates = [ThreadEstimate(0.0, 0.0, 0.0), estimate(1_000, 400)]
        quotas = quotas_from_estimates(estimates, 1.0, 300)
        assert quotas[0] == math.inf
        assert math.isfinite(quotas[1])

    def test_all_unknown_threads(self):
        estimates = [ThreadEstimate(0.0, 0.0, 0.0)] * 2
        assert quotas_from_estimates(estimates, 1.0, 300) == [math.inf, math.inf]

    def test_cpm_min_excludes_unknown_threads(self):
        # The unknown thread's cpm (0.0) must not poison CPM_min.
        estimates = [ThreadEstimate(0.0, 0.0, 0.0), estimate(15_000, 6_000)]
        quotas = quotas_from_estimates(estimates, 1.0, 300)
        expected = estimates[1].ipc_st * (6_000 + 300)
        assert quotas[1] == pytest.approx(min(15_000, expected))

    def test_min_quota_floor(self):
        # A pathological estimate cannot produce a sub-instruction quota.
        tiny = ThreadEstimate(ipm=0.5, cpm=10_000.0, ipc_st=0.00005)
        other = estimate(1_000, 400)
        quotas = quotas_from_estimates([tiny, other], 1.0, 300, min_quota=1.0)
        assert quotas[0] >= 1.0

    def test_symmetric_threads_get_equal_quotas(self):
        estimates = [estimate(5_000, 2_000)] * 3
        quotas = quotas_from_estimates(estimates, 0.5, 300)
        assert quotas[0] == quotas[1] == quotas[2]

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            quotas_from_estimates([], 0.5, 300)

    def test_rejects_bad_target(self):
        with pytest.raises(ConfigurationError):
            quotas_from_estimates([estimate(100, 50)], 2.0, 300)

    def test_rejects_bad_min_quota(self):
        with pytest.raises(ConfigurationError):
            quotas_from_estimates([estimate(100, 50)], 0.5, 300, min_quota=0)
