"""Tests for the analytical SOE model (paper Section 2, Eqs. 1-10)."""

import math

import pytest

from repro.core.model import SoeModel, ThreadParams, compute_ipsw, single_thread_ipc
from repro.errors import ConfigurationError


def example2_model() -> SoeModel:
    """The paper's Example 2 configuration."""
    return SoeModel(
        [ThreadParams(2.5, 15_000), ThreadParams(2.5, 1_000)],
        miss_lat=300,
        switch_lat=25,
    )


class TestThreadParams:
    def test_cpm_is_ipm_over_ipc(self):
        t = ThreadParams(ipc_no_miss=2.5, ipm=15_000)
        assert t.cpm == pytest.approx(6_000)

    def test_single_thread_ipc_matches_eq1(self):
        t = ThreadParams(2.5, 15_000)
        # 15000 / (6000 + 300)
        assert t.single_thread_ipc(300) == pytest.approx(2.381, abs=1e-3)

    def test_zero_miss_latency_recovers_ipc_no_miss(self):
        t = ThreadParams(1.7, 4_200)
        assert t.single_thread_ipc(0.0) == pytest.approx(1.7)

    @pytest.mark.parametrize("ipc,ipm", [(0, 100), (-1, 100), (2, 0), (2, -5)])
    def test_rejects_non_positive_parameters(self, ipc, ipm):
        with pytest.raises(ConfigurationError):
            ThreadParams(ipc, ipm)

    def test_rejects_infinite_ipm(self):
        with pytest.raises(ConfigurationError):
            ThreadParams(2.0, math.inf)


class TestSingleThreadIpcFunction:
    def test_matches_thread_params(self):
        t = ThreadParams(2.0, 1_000)
        assert single_thread_ipc(t.ipm, t.cpm, 300) == pytest.approx(
            t.single_thread_ipc(300)
        )

    def test_rejects_degenerate_denominator(self):
        with pytest.raises(ConfigurationError):
            single_thread_ipc(100, 0, 0)


class TestComputeIpsw:
    def test_f_zero_disables_forced_switches(self):
        assert compute_ipsw(1_000, 1.4, 400, 300, 0.0) == math.inf

    def test_f_one_matches_example2_thread1(self):
        # Paper: thread 1 is forced to switch every 1,667 instructions.
        ipc_st = 15_000 / 6_300
        quota = compute_ipsw(15_000, ipc_st, 400, 300, 1.0)
        assert quota == pytest.approx(1_666.7, abs=0.5)

    def test_quota_never_exceeds_ipm(self):
        # Thread 2's quota is capped by its IPM (it misses first anyway).
        ipc_st = 1_000 / 700
        quota = compute_ipsw(1_000, ipc_st, 400, 300, 1.0)
        assert quota == pytest.approx(1_000)

    def test_lower_f_gives_larger_quota(self):
        ipc_st = 15_000 / 6_300
        q_half = compute_ipsw(15_000, ipc_st, 400, 300, 0.5)
        q_one = compute_ipsw(15_000, ipc_st, 400, 300, 1.0)
        assert q_half == pytest.approx(2 * q_one)

    def test_rejects_out_of_range_target(self):
        with pytest.raises(ConfigurationError):
            compute_ipsw(1_000, 1.0, 400, 300, 1.5)
        with pytest.raises(ConfigurationError):
            compute_ipsw(1_000, 1.0, 400, 300, -0.1)


class TestSoeModelExample2:
    """Table 2 of the paper, reproduced from the closed-form model."""

    def test_single_thread_ipcs(self):
        model = example2_model()
        st = model.single_thread_ipcs()
        assert st[0] == pytest.approx(2.381, abs=1e-3)
        assert st[1] == pytest.approx(1.429, abs=1e-3)

    def test_unenforced_soe_ipcs(self):
        model = example2_model()
        soe = model.soe_ipcs(0.0)
        # Round = 6000 + 400 + 2*25 cycles.
        assert soe[0] == pytest.approx(15_000 / 6_450, abs=1e-6)
        assert soe[1] == pytest.approx(1_000 / 6_450, abs=1e-6)

    def test_unenforced_slowdowns_match_paper(self):
        # Paper: thread 1's IPC drops by 1.02x, thread 2's by 9.2x.
        model = example2_model()
        st = model.single_thread_ipcs()
        soe = model.soe_ipcs(0.0)
        assert st[0] / soe[0] == pytest.approx(1.02, abs=0.01)
        assert st[1] / soe[1] == pytest.approx(9.2, abs=0.1)

    def test_unenforced_fairness_is_0_11(self):
        assert example2_model().fairness(0.0) == pytest.approx(0.111, abs=1e-3)

    def test_enforced_f1_is_perfectly_fair(self):
        assert example2_model().fairness(1.0) == pytest.approx(1.0)

    def test_f1_speedups_match_paper_0_63(self):
        # Paper Section 6: both speedups adjust to 0.63 (1/1.59).
        speedups = example2_model().speedups(1.0)
        for s in speedups:
            assert s == pytest.approx(0.63, abs=0.005)

    def test_f_half_bounds_speedup_ratio_by_two(self):
        speedups = example2_model().speedups(0.5)
        assert max(speedups) / min(speedups) == pytest.approx(2.0, rel=1e-6)

    def test_quotas_at_f1(self):
        quotas = example2_model().quotas(1.0)
        assert quotas[0] == pytest.approx(1_666.7, abs=0.5)
        assert quotas[1] == pytest.approx(1_000.0)


class TestSoeModelProperties:
    def test_fairness_monotone_in_target(self):
        model = SoeModel([ThreadParams(2.0, 20_000), ThreadParams(2.2, 800)])
        values = [model.fairness(f) for f in (0.0, 0.25, 0.5, 1.0)]
        assert values == sorted(values)

    def test_enforced_fairness_at_least_target(self):
        model = SoeModel([ThreadParams(1.8, 12_000), ThreadParams(2.5, 600)])
        for target in (0.25, 0.5, 0.75, 1.0):
            assert model.fairness(target) >= target - 1e-9

    def test_eq5_closed_form_for_unenforced_fairness(self):
        # Eq. 5: fairness = min (CPM_j + L) / (CPM_k + L).
        a, b = ThreadParams(2.0, 10_000), ThreadParams(2.0, 1_000)
        model = SoeModel([a, b], miss_lat=300, switch_lat=25)
        expected = (b.cpm + 300) / (a.cpm + 300)
        assert model.fairness(0.0) == pytest.approx(expected)

    def test_identical_threads_are_always_fair(self):
        model = SoeModel([ThreadParams(2.5, 5_000)] * 2)
        for target in (0.0, 0.5, 1.0):
            assert model.fairness(target) == pytest.approx(1.0)

    def test_identical_threads_lose_no_throughput(self):
        model = SoeModel([ThreadParams(2.5, 5_000)] * 2)
        assert model.throughput_change(1.0) == pytest.approx(0.0, abs=1e-9)

    def test_enforcement_can_improve_throughput(self):
        # Figure 3's IPC_no_miss = [2, 3] observation: when the
        # faster-retiring thread is also the missy one, biasing towards
        # it improves throughput.
        model = SoeModel(
            [ThreadParams(2.0, 10_000), ThreadParams(3.0, 1_000)],
            miss_lat=300,
            switch_lat=25,
        )
        assert model.throughput_change(1.0) > 0

    def test_enforcement_usually_costs_throughput(self):
        model = SoeModel(
            [ThreadParams(2.5, 15_000), ThreadParams(2.5, 1_000)],
            miss_lat=300,
            switch_lat=25,
        )
        assert model.throughput_change(1.0) < 0

    def test_throughput_is_sum_of_per_thread_ipcs(self):
        model = example2_model()
        for f in (0.0, 0.5, 1.0):
            assert model.throughput(f) == pytest.approx(sum(model.soe_ipcs(f)))

    def test_three_thread_model(self):
        model = SoeModel(
            [ThreadParams(2.5, 9_000), ThreadParams(2.0, 3_000), ThreadParams(1.5, 600)]
        )
        assert model.fairness(1.0) == pytest.approx(1.0, abs=1e-9)
        assert len(model.soe_ipcs(0.5)) == 3

    def test_speedup_over_single_thread_positive_for_missy_pairs(self):
        model = SoeModel([ThreadParams(2.0, 800), ThreadParams(2.0, 700)])
        assert model.soe_speedup_over_single_thread(0.0) > 1.0

    def test_needs_two_threads(self):
        with pytest.raises(ConfigurationError):
            SoeModel([ThreadParams(2.0, 1_000)])

    def test_rejects_negative_latencies(self):
        with pytest.raises(ConfigurationError):
            SoeModel([ThreadParams(2, 100)] * 2, miss_lat=-1)
        with pytest.raises(ConfigurationError):
            SoeModel([ThreadParams(2, 100)] * 2, switch_lat=-1)
