"""Tests for weighted (prioritized) fairness enforcement."""

import math

import pytest

from repro.core.estimator import ThreadEstimate
from repro.core.fairness import weighted_fairness
from repro.core.quota import quotas_from_estimates
from repro.errors import ConfigurationError


def estimate(ipm, cpm, miss_lat=300.0):
    return ThreadEstimate(ipm=ipm, cpm=cpm, ipc_st=ipm / (cpm + miss_lat))


EXAMPLE2 = [estimate(15_000, 6_000), estimate(1_000, 400)]


class TestWeightedFairnessMetric:
    def test_equal_weights_recover_base_metric(self):
        assert weighted_fairness([0.6, 0.3], [1.0, 1.0]) == pytest.approx(0.5)

    def test_weights_normalize_entitlement(self):
        # Thread 0 entitled to 2x: speedups 0.6 vs 0.3 are perfectly fair.
        assert weighted_fairness([0.6, 0.3], [2.0, 1.0]) == pytest.approx(1.0)

    def test_scale_invariant_in_weights(self):
        a = weighted_fairness([0.6, 0.3], [2.0, 1.0])
        b = weighted_fairness([0.6, 0.3], [4.0, 2.0])
        assert a == pytest.approx(b)

    def test_rejects_bad_weights(self):
        with pytest.raises(ConfigurationError):
            weighted_fairness([0.5, 0.5], [1.0])
        with pytest.raises(ConfigurationError):
            weighted_fairness([0.5, 0.5], [1.0, 0.0])


class TestWeightedQuotas:
    def test_equal_weights_match_unweighted(self):
        unweighted = quotas_from_estimates(EXAMPLE2, 1.0, 300)
        weighted = quotas_from_estimates(EXAMPLE2, 1.0, 300, weights=[1.0, 1.0])
        assert weighted == pytest.approx(unweighted)

    def test_upweighting_the_unconstrained_thread(self):
        # Weight 2 on thread 0 doubles its quota relative to the base.
        base = quotas_from_estimates(EXAMPLE2, 1.0, 300)
        weighted = quotas_from_estimates(EXAMPLE2, 1.0, 300, weights=[2.0, 1.0])
        assert weighted[0] == pytest.approx(2 * base[0])
        assert weighted[1] == pytest.approx(base[1])

    def test_upweighting_the_ipm_constrained_thread_shrinks_others(self):
        # Thread 1 is pinned at its IPM; giving it weight 2 cannot raise
        # its own quota, so thread 0's must halve to hit the 1:2 ratio.
        base = quotas_from_estimates(EXAMPLE2, 1.0, 300)
        weighted = quotas_from_estimates(EXAMPLE2, 1.0, 300, weights=[1.0, 2.0])
        assert weighted[1] == pytest.approx(base[1])  # still at IPM
        assert weighted[0] == pytest.approx(base[0] / 2)

    def test_quota_ratio_tracks_weight_ratio(self):
        for weights in ([3.0, 1.0], [1.0, 1.5]):
            quotas = quotas_from_estimates(EXAMPLE2, 1.0, 300, weights=weights)
            # quota_j / (w_j * ipc_st_j) must be a common constant
            # wherever the IPM cap is not binding.
            constants = [
                q / (w * e.ipc_st)
                for q, w, e in zip(quotas, weights, EXAMPLE2)
                if q < e.ipm - 1e-9
            ]
            for constant in constants:
                assert constant == pytest.approx(constants[0])

    def test_rejects_bad_weights(self):
        with pytest.raises(ConfigurationError):
            quotas_from_estimates(EXAMPLE2, 1.0, 300, weights=[1.0])
        with pytest.raises(ConfigurationError):
            quotas_from_estimates(EXAMPLE2, 1.0, 300, weights=[1.0, -1.0])


class TestPerThreadLatencyQuotas:
    def test_uniform_override_matches_constant(self):
        with_lat = [
            ThreadEstimate(15_000, 6_000, 15_000 / 6_300, miss_lat=300.0),
            ThreadEstimate(1_000, 400, 1_000 / 700, miss_lat=300.0),
        ]
        assert quotas_from_estimates(with_lat, 1.0, 999) == pytest.approx(
            quotas_from_estimates(EXAMPLE2, 1.0, 300)
        )

    def test_short_latency_thread_changes_scale(self):
        # Thread 1's events stall only 40 cycles: its combined
        # CPM + latency (440) becomes the scale.
        short = [
            ThreadEstimate(15_000, 6_000, 15_000 / 6_300, miss_lat=300.0),
            ThreadEstimate(1_000, 400, 1_000 / 440, miss_lat=40.0),
        ]
        quotas = quotas_from_estimates(short, 1.0, 300)
        assert quotas[1] == pytest.approx(1_000)  # pinned at IPM
        assert quotas[0] == pytest.approx((15_000 / 6_300) * 440)
