"""Edge-case tests for the analytical model's less-travelled paths."""

import math

import pytest

from repro.core.model import SoeModel, ThreadParams
from repro.errors import ConfigurationError


class TestDegenerateConfigurations:
    def test_zero_switch_latency(self):
        model = SoeModel(
            [ThreadParams(2.5, 15_000), ThreadParams(2.5, 1_000)],
            miss_lat=300,
            switch_lat=0,
        )
        # With free switches, F=1 enforcement on same-IPC threads is
        # free in the equal-IPC_no_miss case... but still biases cycles,
        # so throughput change is the reallocation term only.
        assert model.fairness(1.0) == pytest.approx(1.0)
        assert abs(model.throughput_change(1.0)) < 0.05

    def test_zero_miss_latency(self):
        model = SoeModel(
            [ThreadParams(2.0, 5_000), ThreadParams(2.0, 500)],
            miss_lat=0,
            switch_lat=25,
        )
        # No stall to hide: SOE only adds overhead, so the combined
        # throughput sits below the mean single-thread IPC.
        assert model.soe_speedup_over_single_thread(0.0) < 1.0

    def test_extreme_ipm_ratio(self):
        model = SoeModel(
            [ThreadParams(2.5, 1_000_000), ThreadParams(2.5, 100)],
            miss_lat=300,
            switch_lat=25,
        )
        assert model.fairness(0.0) < 0.01
        assert model.fairness(1.0) == pytest.approx(1.0)

    def test_many_threads(self):
        threads = [ThreadParams(2.0, 1_000 * (i + 1)) for i in range(8)]
        model = SoeModel(threads, miss_lat=300, switch_lat=25)
        assert len(model.soe_ipcs(0.5)) == 8
        assert model.fairness(1.0) == pytest.approx(1.0)

    def test_quota_of_min_cpm_thread_is_its_ipm_at_f1(self):
        threads = [ThreadParams(2.5, 15_000), ThreadParams(2.5, 1_000)]
        model = SoeModel(threads, miss_lat=300, switch_lat=25)
        quotas = model.quotas(1.0)
        # The fastest-missing thread is maximally permissive at F=1.
        assert quotas[1] == pytest.approx(1_000)

    def test_fairness_target_zero_returns_infinite_quotas(self):
        model = SoeModel([ThreadParams(2.0, 5_000)] * 2)
        assert model.quotas(0.0) == [math.inf, math.inf]

    def test_throughput_change_continuous_at_small_f(self):
        model = SoeModel(
            [ThreadParams(2.5, 15_000), ThreadParams(2.5, 1_000)]
        )
        # For small F the quota exceeds IPM everywhere: no change.
        assert model.throughput_change(0.01) == pytest.approx(0.0, abs=1e-9)

    def test_rejects_bad_target(self):
        model = SoeModel([ThreadParams(2.0, 5_000)] * 2)
        with pytest.raises(ConfigurationError):
            model.quotas(1.5)


class TestRoundStructure:
    def test_round_time_consistency(self):
        """Eq. 6/10 consistency: per-thread IPCs and the total must use
        the same round denominator."""
        model = SoeModel(
            [ThreadParams(2.0, 8_000), ThreadParams(3.0, 1_200)],
            miss_lat=300,
            switch_lat=25,
        )
        for target in (0.0, 0.3, 0.7, 1.0):
            ipcs = model.soe_ipcs(target)
            quotas = [
                min(q, t.ipm)
                for q, t in zip(model.quotas(target), model.threads)
            ]
            # IPC ratios equal quota ratios (shared denominator).
            assert ipcs[0] / ipcs[1] == pytest.approx(quotas[0] / quotas[1])

    def test_speedups_scale_with_quotas(self):
        model = SoeModel(
            [ThreadParams(2.0, 8_000), ThreadParams(3.0, 1_200)],
            miss_lat=300,
        )
        speedups = model.speedups(1.0)
        assert speedups[0] == pytest.approx(speedups[1])
