"""Tests for the per-thread hardware counters (Section 3.1)."""

import pytest

from repro.core.counters import CounterSample, HardwareCounters
from repro.errors import ConfigurationError


class TestCounterSample:
    def test_ipm_eq11(self):
        sample = CounterSample(instructions=30_000, cycles=12_000, misses=2)
        assert sample.ipm == pytest.approx(15_000)

    def test_cpm_eq12(self):
        sample = CounterSample(instructions=30_000, cycles=12_000, misses=2)
        assert sample.cpm == pytest.approx(6_000)

    def test_zero_misses_uses_max_misses_one(self):
        # The paper's max(Misses, 1) guard.
        sample = CounterSample(instructions=5_000, cycles=2_000, misses=0)
        assert sample.ipm == pytest.approx(5_000)
        assert sample.cpm == pytest.approx(2_000)

    def test_estimated_ipc_st_eq13(self):
        sample = CounterSample(instructions=15_000, cycles=6_000, misses=1)
        assert sample.estimated_single_thread_ipc(300) == pytest.approx(
            15_000 / 6_300
        )

    def test_zero_miss_window_underestimates_ipc_st(self):
        # Section 3.1: with Misses = 1 substituted, the estimate is low
        # but usable.
        sample = CounterSample(instructions=5_000, cycles=2_000, misses=0)
        estimate = sample.estimated_single_thread_ipc(300)
        true_no_miss_ipc = 2.5
        assert 0 < estimate < true_no_miss_ipc

    def test_empty_sample(self):
        sample = CounterSample(0, 0, 0)
        assert sample.is_empty
        assert sample.estimated_single_thread_ipc(300) == 0.0

    def test_rejects_negative_counts(self):
        with pytest.raises(ConfigurationError):
            CounterSample(-1, 0, 0)
        with pytest.raises(ConfigurationError):
            CounterSample(0, -1, 0)
        with pytest.raises(ConfigurationError):
            CounterSample(0, 0, -1)


class TestHardwareCounters:
    def test_accumulates_retirement(self):
        counters = HardwareCounters()
        counters.retire(100, 40)
        counters.retire(200, 90)
        sample = counters.current
        assert sample.instructions == pytest.approx(300)
        assert sample.cycles == pytest.approx(130)

    def test_counts_misses(self):
        counters = HardwareCounters()
        counters.record_miss()
        counters.record_miss()
        assert counters.current.misses == 2

    def test_sample_and_reset_clears_window(self):
        counters = HardwareCounters()
        counters.retire(500, 250)
        counters.record_miss()
        first = counters.sample_and_reset()
        assert first.instructions == pytest.approx(500)
        assert first.misses == 1
        second = counters.current
        assert second.is_empty
        assert second.misses == 0

    def test_windows_are_independent(self):
        counters = HardwareCounters()
        counters.retire(100, 50)
        counters.sample_and_reset()
        counters.retire(7, 3)
        assert counters.current.instructions == pytest.approx(7)

    def test_rejects_negative_retirement(self):
        counters = HardwareCounters()
        with pytest.raises(ConfigurationError):
            counters.retire(-1, 1)
        with pytest.raises(ConfigurationError):
            counters.retire(1, -1)

    def test_rejects_non_finite_retirement(self):
        counters = HardwareCounters()
        with pytest.raises(ConfigurationError):
            counters.retire(float("inf"), 1)
