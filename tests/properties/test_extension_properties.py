"""Property-based tests for the extension features (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimator import ThreadEstimate
from repro.core.fairness import fairness, weighted_fairness
from repro.core.latency import MissLatencyMonitor
from repro.core.quota import quotas_from_estimates
from repro.workloads.events import EventType, mean_event_latency

positive = st.floats(min_value=0.01, max_value=100.0)
speedup_lists = st.lists(
    st.floats(min_value=0.001, max_value=5.0), min_size=2, max_size=6
)


@st.composite
def estimates_and_weights(draw):
    n = draw(st.integers(min_value=2, max_value=5))
    estimates = []
    for _ in range(n):
        ipm = draw(st.floats(min_value=100, max_value=50_000))
        cpm = draw(st.floats(min_value=50, max_value=25_000))
        estimates.append(ThreadEstimate(ipm, cpm, ipm / (cpm + 300)))
    weights = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=10.0), min_size=n, max_size=n
        )
    )
    return estimates, weights


class TestWeightedFairnessProperties:
    @given(speedup_lists)
    @settings(max_examples=150, deadline=None)
    def test_unit_weights_match_base_metric(self, speedups):
        weights = [1.0] * len(speedups)
        assert math.isclose(
            weighted_fairness(speedups, weights), fairness(speedups)
        )

    @given(speedup_lists, positive)
    @settings(max_examples=150, deadline=None)
    def test_uniform_weight_scaling_is_identity(self, speedups, scale):
        weights = [scale] * len(speedups)
        assert math.isclose(
            weighted_fairness(speedups, weights),
            fairness(speedups),
            rel_tol=1e-9,
        )

    @given(speedup_lists)
    @settings(max_examples=150, deadline=None)
    def test_weights_equal_to_speedups_give_perfect_fairness(self, speedups):
        # If each thread's speedup matches its entitlement exactly, the
        # weighted metric reports 1.
        assert weighted_fairness(speedups, speedups) == 1.0


class TestWeightedQuotaProperties:
    @given(estimates_and_weights(), st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=150, deadline=None)
    def test_quota_constant_is_common_below_the_cap(self, data, target):
        estimates, weights = data
        quotas = quotas_from_estimates(estimates, target, 300, weights=weights)
        constants = [
            q / (w * e.ipc_st)
            for q, w, e in zip(quotas, weights, estimates)
            if math.isfinite(q) and q < e.ipm * (1 - 1e-9) and q > 1.0
        ]
        for constant in constants[1:]:
            assert math.isclose(constant, constants[0], rel_tol=1e-9)

    @given(estimates_and_weights(), st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=150, deadline=None)
    def test_no_quota_exceeds_ipm(self, data, target):
        estimates, weights = data
        quotas = quotas_from_estimates(estimates, target, 300, weights=weights)
        for quota, estimate in zip(quotas, estimates):
            if math.isfinite(quota):
                assert quota <= estimate.ipm + 1e-6 or quota == 1.0

    @given(estimates_and_weights())
    @settings(max_examples=100, deadline=None)
    def test_at_least_one_thread_pinned_at_ipm_when_f_is_one(self, data):
        estimates, weights = data
        quotas = quotas_from_estimates(estimates, 1.0, 300, weights=weights)
        assert any(
            math.isclose(q, e.ipm, rel_tol=1e-6)
            for q, e in zip(quotas, estimates)
        )


class TestLatencyMonitorProperties:
    @given(
        st.lists(st.floats(min_value=0.0, max_value=1_000.0), min_size=1,
                 max_size=100)
    )
    @settings(max_examples=150, deadline=None)
    def test_window_average_is_the_mean(self, latencies):
        monitor = MissLatencyMonitor(1, 300.0)
        for latency in latencies:
            monitor.record(0, latency)
        average = monitor.sample_and_reset()[0]
        assert math.isclose(
            average, sum(latencies) / len(latencies), rel_tol=1e-9
        )

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1_000.0), min_size=1,
                 max_size=50)
    )
    @settings(max_examples=100, deadline=None)
    def test_average_bounded_by_observations(self, latencies):
        monitor = MissLatencyMonitor(1, 300.0)
        for latency in latencies:
            monitor.record(0, latency)
        average = monitor.sample_and_reset()[0]
        assert min(latencies) - 1e-9 <= average <= max(latencies) + 1e-9


class TestEventMixtureProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=10, max_value=100_000),
                st.floats(min_value=0, max_value=1_000),
            ),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_mean_latency_bounded_by_extremes(self, raw):
        events = [EventType(ipm, lat) for ipm, lat in raw]
        mean = mean_event_latency(events)
        latencies = [e.latency for e in events]
        assert min(latencies) - 1e-9 <= mean <= max(latencies) + 1e-9

    @given(st.floats(min_value=10, max_value=100_000),
           st.floats(min_value=0, max_value=1_000))
    @settings(max_examples=100, deadline=None)
    def test_single_event_mean_is_its_latency(self, ipm, latency):
        assert math.isclose(
            mean_event_latency([EventType(ipm, latency)]), latency,
            abs_tol=1e-12,
        )
