"""Property-based tests for the analytical model (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fairness import fairness, harmonic_mean_fairness
from repro.core.model import SoeModel, ThreadParams, compute_ipsw

ipc_values = st.floats(min_value=0.2, max_value=4.0)
ipm_values = st.floats(min_value=50.0, max_value=100_000.0)
fairness_targets = st.floats(min_value=0.01, max_value=1.0)


def thread_params():
    return st.builds(ThreadParams, ipc_no_miss=ipc_values, ipm=ipm_values)


@st.composite
def models(draw, n_threads=st.integers(min_value=2, max_value=4)):
    threads = draw(
        st.lists(thread_params(), min_size=draw(n_threads), max_size=4)
    )
    if len(threads) < 2:
        threads = threads + threads
    return SoeModel(threads, miss_lat=300, switch_lat=25)


class TestModelInvariants:
    @given(models(), fairness_targets)
    @settings(max_examples=150, deadline=None)
    def test_enforced_fairness_meets_target(self, model, target):
        """Eq. 9's guarantee: quotas computed for F achieve >= F."""
        assert model.fairness(target) >= target - 1e-9

    @given(models(), fairness_targets)
    @settings(max_examples=100, deadline=None)
    def test_fairness_bounded(self, model, target):
        assert 0.0 <= model.fairness(target) <= 1.0 + 1e-12

    @given(models())
    @settings(max_examples=100, deadline=None)
    def test_throughput_positive_and_bounded(self, model):
        throughput = model.throughput(0.0)
        assert throughput > 0
        assert throughput <= sum(t.ipc_no_miss for t in model.threads)

    @given(models(), fairness_targets, fairness_targets)
    @settings(max_examples=100, deadline=None)
    def test_fairness_monotone_in_target(self, model, f1, f2):
        lo, hi = sorted((f1, f2))
        assert model.fairness(lo) <= model.fairness(hi) + 1e-9

    @given(models(), fairness_targets)
    @settings(max_examples=100, deadline=None)
    def test_quota_never_exceeds_ipm(self, model, target):
        for thread, quota in zip(model.threads, model.quotas(target)):
            assert quota <= thread.ipm + 1e-9

    @given(models(), fairness_targets)
    @settings(max_examples=100, deadline=None)
    def test_per_thread_ipc_below_single_thread_rate(self, model, target):
        """A thread can never retire faster under SOE than its own
        no-miss rate."""
        for thread, soe_ipc in zip(model.threads, model.soe_ipcs(target)):
            assert soe_ipc <= thread.ipc_no_miss + 1e-9

    @given(thread_params(), fairness_targets)
    @settings(max_examples=100, deadline=None)
    def test_identical_pair_is_perfectly_fair(self, params, target):
        model = SoeModel([params, params], miss_lat=300, switch_lat=25)
        assert model.fairness(target) == 1.0

    @given(
        st.floats(min_value=100, max_value=50_000),
        st.floats(min_value=0.2, max_value=4.0),
        st.floats(min_value=10, max_value=10_000),
        fairness_targets,
    )
    @settings(max_examples=150, deadline=None)
    def test_compute_ipsw_scales_inversely_with_f(self, ipm, ipc_st, cpm_min, f):
        quota = compute_ipsw(ipm, ipc_st, cpm_min, 300, f)
        half = compute_ipsw(ipm, ipc_st, cpm_min, 300, f / 2)
        # Halving F grows the quota, exactly doubling it below the IPM
        # cap.
        assert half >= quota - 1e-9
        if half < ipm:
            assert math.isclose(half, 2 * quota, rel_tol=1e-9)


class TestFairnessMetricProperties:
    @given(st.lists(st.floats(min_value=0.001, max_value=5.0), min_size=1, max_size=8))
    @settings(max_examples=200, deadline=None)
    def test_bounded(self, speedups):
        assert 0.0 <= fairness(speedups) <= 1.0

    @given(
        st.lists(st.floats(min_value=0.001, max_value=5.0), min_size=1, max_size=8),
        st.floats(min_value=0.01, max_value=100.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_scale_invariant(self, speedups, scale):
        scaled = [s * scale for s in speedups]
        assert math.isclose(
            fairness(speedups), fairness(scaled), rel_tol=1e-9
        )

    @given(st.lists(st.floats(min_value=0.001, max_value=5.0), min_size=2, max_size=8))
    @settings(max_examples=200, deadline=None)
    def test_stricter_than_harmonic_mean_normalized(self, speedups):
        """The paper's claim: the min-ratio metric is stricter -- perfect
        min-ratio fairness implies equal speedups, while the harmonic
        mean can be high despite imbalance."""
        if fairness(speedups) == 1.0:
            assert max(speedups) == min(speedups)

    @given(st.lists(st.floats(min_value=0.001, max_value=5.0), min_size=1, max_size=8))
    @settings(max_examples=200, deadline=None)
    def test_permutation_invariant(self, speedups):
        assert math.isclose(
            fairness(speedups), fairness(sorted(speedups)), rel_tol=1e-12
        )

    @given(st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=2, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_harmonic_mean_between_min_and_max(self, speedups):
        hm = harmonic_mean_fairness(speedups)
        assert min(speedups) - 1e-9 <= hm <= max(speedups) + 1e-9
