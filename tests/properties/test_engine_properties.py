"""Property-based tests for the segment engine and the mechanism."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.controller import FairnessController, FairnessParams
from repro.core.counters import CounterSample
from repro.core.deficit import DeficitCounter
from repro.core.model import SoeModel, ThreadParams
from repro.core.quota import quotas_from_estimates
from repro.engine.singlethread import run_single_thread
from repro.engine.soe import RunLimits, SoeParams, run_soe
from repro.workloads.synthetic import uniform_stream

ipc_values = st.floats(min_value=0.5, max_value=3.0)
ipm_values = st.floats(min_value=200.0, max_value=30_000.0)


class TestEngineAgainstModel:
    @given(ipc_values, ipm_values, ipc_values, ipm_values)
    @settings(max_examples=25, deadline=None)
    def test_unenforced_engine_matches_eq2(self, ipc1, ipm1, ipc2, ipm2):
        """For deterministic workloads the engine must reproduce the
        closed-form model (when miss resolution is covered by the
        partner's run, which Eq. 2 assumes)."""
        model = SoeModel(
            [ThreadParams(ipc1, ipm1), ThreadParams(ipc2, ipm2)],
            miss_lat=300,
            switch_lat=25,
        )
        result = run_soe(
            [uniform_stream(ipc1, ipm1), uniform_stream(ipc2, ipm2)],
            params=SoeParams(miss_lat=300, switch_lat=25),
            limits=RunLimits(min_instructions=max(ipm1, ipm2) * 20),
        )
        # Eq. 2 assumes switches happen only on misses: exclude runs
        # where the engine's maximum-cycles quota fired (CPM near 50k)
        # or where a miss outlived the partner's dispatch (idle).
        quota_switches = sum(t.cycle_quota_switches for t in result.threads)
        if result.idle_cycles == 0 and quota_switches == 0:
            for measured, predicted in zip(result.ipcs, model.soe_ipcs(0.0)):
                assert measured == predicted or abs(measured - predicted) / predicted < 0.05

    @given(ipc_values, ipm_values)
    @settings(max_examples=25, deadline=None)
    def test_single_thread_matches_eq1(self, ipc, ipm):
        stream = uniform_stream(ipc, ipm)
        result = run_single_thread(stream, miss_lat=300, min_instructions=ipm * 20)
        expected = ipm / (ipm / ipc + 300)
        assert abs(result.ipc - expected) / expected < 0.01

    @given(ipc_values, ipm_values, ipc_values, ipm_values)
    @settings(max_examples=15, deadline=None)
    def test_window_accounting_complete(self, ipc1, ipm1, ipc2, ipm2):
        result = run_soe(
            [uniform_stream(ipc1, ipm1), uniform_stream(ipc2, ipm2)],
            params=SoeParams(miss_lat=300, switch_lat=25),
            limits=RunLimits(min_instructions=max(ipm1, ipm2) * 10),
        )
        accounted = (
            sum(t.run_cycles for t in result.threads)
            + result.idle_cycles
            + result.switch_overhead_cycles
        )
        assert math.isclose(accounted, result.cycles, rel_tol=1e-6)


class TestDeficitProperties:
    @given(
        st.floats(min_value=10, max_value=10_000),
        st.lists(st.floats(min_value=1, max_value=5_000), min_size=5, max_size=200),
    )
    @settings(max_examples=100, deadline=None)
    def test_deficit_preserves_total_quota(self, quota, miss_gaps):
        """Across any miss pattern, total granted = total consumed +
        final leftover (conservation)."""
        counter = DeficitCounter()
        consumed = 0.0
        grants = 0
        for gap in miss_gaps:
            counter.grant(quota)
            grants += 1
            run = min(counter.remaining, gap)
            counter.consume(run)
            consumed += run
        assert math.isclose(
            grants * quota, consumed + counter.remaining, rel_tol=1e-9
        )

    @given(
        st.floats(min_value=10, max_value=1_000),
        st.integers(min_value=50, max_value=500),
    )
    @settings(max_examples=50, deadline=None)
    def test_average_converges_without_misses(self, quota, rounds):
        counter = DeficitCounter()
        total = 0.0
        for _ in range(rounds):
            counter.grant(quota)
            run = counter.remaining
            counter.consume(run)
            total += run
        assert math.isclose(total / rounds, quota, rel_tol=1e-9)


class TestQuotaProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=100, max_value=50_000),   # instructions
                st.floats(min_value=50, max_value=25_000),    # cycles
                st.integers(min_value=0, max_value=100),      # misses
            ),
            min_size=2,
            max_size=4,
        ),
        st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_quotas_positive_and_capped(self, raw_samples, target):
        from repro.core.estimator import IpcStEstimator

        estimator = IpcStEstimator(len(raw_samples), 300)
        samples = [CounterSample(i, c, m) for i, c, m in raw_samples]
        estimates = estimator.update_all(samples)
        quotas = quotas_from_estimates(estimates, target, 300)
        for estimate, quota in zip(estimates, quotas):
            assert quota >= 1.0
            if math.isfinite(quota):
                assert quota <= max(estimate.ipm, 1.0) + 1e-9


class TestControllerProperties:
    @given(
        st.floats(min_value=0.1, max_value=1.0),
        st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_controller_boundaries_always_advance(self, target, n):
        controller = FairnessController(
            n, FairnessParams(fairness_target=target, sample_period=1_000.0)
        )
        time = 0.0
        for _ in range(20):
            boundary = controller.next_boundary(time)
            assert boundary > time
            controller.on_boundary(boundary)
            time = boundary
        assert len(controller.history) == 20
