"""Property-based differential tests for the vectorized batch backend.

Randomized workloads and configurations drawn by hypothesis must never
separate the batch backend from the scalar reference: on the supported
envelope the two are bit-identical, and batching runs together must
not couple them (each run's result is independent of its batchmates).
"""

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.controller import FairnessParams
from repro.engine.backend import ScalarBackend, SoeRunSpec
from repro.engine.batch import BatchBackend
from repro.engine.soe import RunLimits, SoeParams
from repro.workloads.synthetic import uniform_stream

ipc_values = st.floats(min_value=0.5, max_value=3.0)
ipm_values = st.floats(min_value=300.0, max_value=20_000.0)
cv_values = st.floats(min_value=0.0, max_value=1.0)
seeds = st.integers(min_value=0, max_value=2**31 - 1)
targets = st.one_of(st.none(), st.floats(min_value=0.1, max_value=1.0))
switch_lats = st.sampled_from([0.0, 10.0, 25.0])

LIMITS = RunLimits(min_instructions=60_000.0, warmup_instructions=15_000.0)


def _spec(ipc1, ipm1, ipc2, ipm2, cv, seed, target, switch_lat):
    fairness = (
        None
        if target is None
        else FairnessParams(fairness_target=target, sample_period=25_000.0)
    )
    return SoeRunSpec(
        streams=(
            uniform_stream(ipc1, ipm1, ipm_cv=cv, ipc_cv=cv / 2, seed=seed),
            uniform_stream(
                ipc2, ipm2, ipm_cv=cv, ipc_cv=cv / 2, seed=seed + 1
            ),
        ),
        fairness=fairness,
        params=SoeParams(switch_lat=switch_lat),
        limits=LIMITS,
    )


class TestBatchMatchesScalar:
    @given(
        ipc_values, ipm_values, ipc_values, ipm_values,
        cv_values, seeds, targets, switch_lats,
    )
    @settings(max_examples=30, deadline=None)
    def test_single_spec_bit_identical(
        self, ipc1, ipm1, ipc2, ipm2, cv, seed, target, switch_lat
    ):
        spec = _spec(ipc1, ipm1, ipc2, ipm2, cv, seed, target, switch_lat)
        assert BatchBackend().supports(spec)
        (scalar,) = ScalarBackend().run_batch([spec])
        (batch,) = BatchBackend().run_batch([spec])
        assert scalar == batch

    @given(
        st.lists(
            st.tuples(ipc_values, ipm_values, cv_values, seeds, targets),
            min_size=2,
            max_size=5,
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_batchmates_do_not_couple(self, rows):
        """run_batch(specs) == the concatenation of singleton batches."""
        specs = [
            _spec(ipc, ipm, 1.0, 700.0, cv, seed, target, 25.0)
            for ipc, ipm, cv, seed, target in rows
        ]
        together = BatchBackend().run_batch(specs)
        alone = [BatchBackend().run_batch([spec])[0] for spec in specs]
        assert together == alone
