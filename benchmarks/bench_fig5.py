"""Benchmark: Figure 5 (detailed examination of gcc:eon at F = 1/4).

Regenerates the three time-series panels and checks their qualitative
claims: the runtime IPC_ST estimate closely tracks (and usually sits
slightly below) the real value, and enforcement makes the starved gcc
thread run an order of magnitude faster.
"""

import pytest

from conftest import write_result
from repro.experiments import fig5
from repro.experiments.common import EvalConfig
from repro.workloads.pairs import BenchmarkPair


@pytest.fixture(scope="module")
def config():
    return EvalConfig(min_instructions=1_200_000, warmup_instructions=0.0)


@pytest.fixture(scope="module")
def result(config):
    return fig5.run(BenchmarkPair("gcc", "eon"), config, fairness_target=0.25)


def test_fig5_series_regeneration(benchmark, config, results_dir, result):
    quick = EvalConfig(
        sample_period=100_000.0, min_instructions=400_000, warmup_instructions=0.0,
        st_min_instructions=300_000.0,
    )
    timed = benchmark.pedantic(
        lambda: fig5.run(BenchmarkPair("gcc", "eon"), quick, 0.25),
        rounds=1, iterations=1,
    )
    assert len(timed.times) > 2
    write_result(results_dir, "fig5", fig5.render(result))


def test_fig5_estimates_track_real_ipc_st(benchmark, result):
    errors = benchmark.pedantic(
        lambda: [result.estimation_error(t) for t in range(2)],
        rounds=1, iterations=1,
    )
    # Paper 5.1.1: "the estimated IPC_ST closely tracks the real".
    # eon sees only a handful of misses per Delta window, so its
    # estimate is noisier; ~25% mean deviation still tracks the level.
    assert all(error < 0.25 for error in errors)


def test_fig5_estimates_usually_slightly_lower(benchmark, result):
    usually_lower = benchmark.pedantic(
        lambda: result.estimate_is_usually_lower(0), rounds=1, iterations=1
    )
    # Paper 5.1.1: "usually slightly lower than the real IPC_ST".
    assert usually_lower


def test_fig5_enforcement_rescues_starved_thread(benchmark, result):
    gain = benchmark.pedantic(
        result.starved_thread_improvement, rounds=1, iterations=1
    )
    # Paper: gcc runs ~20x faster with F=1/4; our substitute workloads
    # give a smaller but still multi-x factor.
    assert gain > 2.0


def test_fig5_interval_fairness_near_target(benchmark, result):
    median = benchmark.pedantic(
        lambda: sorted(result.fairness)[len(result.fairness) // 2],
        rounds=1, iterations=1,
    )
    assert median == pytest.approx(0.25, abs=0.12)
