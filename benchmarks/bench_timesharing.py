"""Benchmark: Section 6 (time sharing vs fairness enforcement).

Regenerates the discussion's quantitative example: a ~400-cycle time
quota divides time equally but achieves fairness ~0.6, while the
mechanism reaches ~1.0 at comparable throughput.
"""

import pytest

from conftest import write_result
from repro.experiments import timesharing


@pytest.fixture(scope="module")
def result():
    return timesharing.run(min_instructions=1_000_000)


def test_timesharing_regeneration(benchmark, results_dir):
    timed = benchmark.pedantic(
        lambda: timesharing.run(min_instructions=400_000),
        rounds=1, iterations=1,
    )
    assert timed.points
    full = timesharing.run(min_instructions=1_000_000)
    write_result(results_dir, "timesharing", timesharing.render(full))


def test_timesharing_quota_400_gives_fairness_0_6(benchmark, result):
    point = benchmark.pedantic(
        lambda: next(p for p in result.points if p.cycle_quota == 400.0),
        rounds=1, iterations=1,
    )
    # Paper: speedups 0.5 and 0.8 -> fairness 0.5/0.8 = 0.6.
    assert point.fairness == pytest.approx(0.6, abs=0.08)
    assert point.time_share[0] == pytest.approx(0.5, abs=0.05)


def test_timesharing_mechanism_wins(benchmark, result):
    enforced = benchmark.pedantic(
        lambda: (result.enforced_fairness, result.enforced_ipc),
        rounds=1, iterations=1,
    )
    # Paper: "the speedup of both threads can be adjusted to 0.63 and
    # the achieved fairness ... will be 1.0".
    assert enforced[0] > 0.9
    best_ts = max(result.points, key=lambda p: p.fairness)
    assert enforced[0] > best_ts.fairness or enforced[1] > best_ts.total_ipc
