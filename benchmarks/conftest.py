"""Shared fixtures for the paper-reproduction benchmarks.

The evaluation grid (16 pairs x 4 fairness levels + single-thread
references) backs Figures 6, 7 and 8, so it is computed once per
benchmark session. Every benchmark writes its reproduced table/series
to ``benchmarks/results/<id>.txt`` so the artefacts survive pytest's
output capture.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib

import pytest

from repro.experiments.common import EvalConfig, run_all_pairs

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_sessionfinish(session, exitstatus) -> None:
    """Export this process's PROFILE totals for the perf harness.

    ``benchmarks/harness.py`` runs each bench file in a subprocess with
    ``REPRO_BENCH_PROFILE_OUT`` set; the snapshot (simulated cycles,
    events, peak RSS) is how the harness attributes simulator work to
    the wall time it measured from outside.
    """
    out = os.environ.get("REPRO_BENCH_PROFILE_OUT")
    if not out:
        return
    from repro.telemetry.profile import PROFILE

    snapshot = dataclasses.asdict(PROFILE.snapshot())
    pathlib.Path(out).write_text(json.dumps(snapshot))


@pytest.fixture(scope="session")
def eval_config() -> EvalConfig:
    """Default evaluation scale (see DESIGN.md): full 16-pair sweep in
    seconds while preserving every paper-shape property.

    ``REPRO_BENCH_SCALE=quick`` drops to the quick preset -- CI's
    benchmark smoke step uses it to keep the job short.
    """
    if os.environ.get("REPRO_BENCH_SCALE") == "quick":
        return EvalConfig.quick()
    return EvalConfig()


@pytest.fixture(scope="session")
def pair_grid(eval_config):
    """The 16-pair evaluation grid, shared across Figure 6/7/8 benches."""
    return run_all_pairs(eval_config)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: pathlib.Path, name: str, text: str) -> None:
    (results_dir / f"{name}.txt").write_text(text + "\n")
