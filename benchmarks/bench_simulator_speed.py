"""Benchmark: raw simulator performance (not a paper figure).

Conventional pytest-benchmark microbenchmarks of the two simulation
substrates and the mechanism's hot paths, so performance regressions in
the simulators themselves are visible. Run lengths are long enough at
the default scale that wall time measures the simulator, not process
startup; ``REPRO_BENCH_SCALE=quick`` shortens them for CI smoke runs.
"""

import os

from repro.core.controller import FairnessController, FairnessParams
from repro.core.counters import CounterSample
from repro.core.quota import quotas_from_estimates
from repro.engine.soe import RunLimits, SoeParams, run_soe
from repro.workloads.synthetic import uniform_stream
from repro.workloads.tracegen import MEMORY_SPEC, make_trace

_QUICK = os.environ.get("REPRO_BENCH_SCALE") == "quick"
_ENGINE_INSTRUCTIONS = 200_000 if _QUICK else 2_000_000
_CORE_INSTRUCTIONS = 4_000 if _QUICK else 20_000
_CORE_WARMUP = 1_000 if _QUICK else 5_000


def test_segment_engine_throughput(benchmark):
    def run():
        streams = [
            uniform_stream(2.5, 15_000, seed=1),
            uniform_stream(2.5, 1_000, seed=2),
        ]
        return run_soe(
            streams,
            params=SoeParams(),
            limits=RunLimits(min_instructions=_ENGINE_INSTRUCTIONS),
        )

    result = benchmark(run)
    assert result.total_ipc > 0


def test_segment_engine_with_controller(benchmark):
    def run():
        streams = [
            uniform_stream(2.5, 15_000, seed=1),
            uniform_stream(2.5, 1_000, seed=2),
        ]
        controller = FairnessController(2, FairnessParams(fairness_target=0.5))
        return run_soe(
            streams,
            controller,
            SoeParams(),
            RunLimits(min_instructions=_ENGINE_INSTRUCTIONS),
        )

    result = benchmark(run)
    assert result.total_ipc > 0


def test_detailed_core_throughput(benchmark):
    def run():
        from repro.cpu.soe_core import run_cpu_single_thread

        return run_cpu_single_thread(
            make_trace(MEMORY_SPEC, seed=1),
            min_instructions=_CORE_INSTRUCTIONS,
            warmup_instructions=_CORE_WARMUP,
        )

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.total_ipc > 0


def test_quota_computation_hot_path(benchmark):
    from repro.core.estimator import IpcStEstimator

    estimator = IpcStEstimator(2, 300)
    estimates = estimator.update_all(
        [CounterSample(30_000, 12_000, 2), CounterSample(20_000, 8_000, 20)]
    )
    quotas = benchmark(lambda: quotas_from_estimates(estimates, 0.5, 300))
    assert len(quotas) == 2
