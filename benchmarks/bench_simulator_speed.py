"""Benchmark: raw simulator performance (not a paper figure).

Conventional pytest-benchmark microbenchmarks of the two simulation
substrates and the mechanism's hot paths, so performance regressions in
the simulators themselves are visible.
"""

from repro.core.controller import FairnessController, FairnessParams
from repro.core.counters import CounterSample
from repro.core.quota import quotas_from_estimates
from repro.engine.soe import RunLimits, SoeParams, run_soe
from repro.workloads.synthetic import uniform_stream
from repro.workloads.tracegen import MEMORY_SPEC, make_trace


def test_segment_engine_throughput(benchmark):
    def run():
        streams = [
            uniform_stream(2.5, 15_000, seed=1),
            uniform_stream(2.5, 1_000, seed=2),
        ]
        return run_soe(
            streams,
            params=SoeParams(),
            limits=RunLimits(min_instructions=200_000),
        )

    result = benchmark(run)
    assert result.total_ipc > 0


def test_segment_engine_with_controller(benchmark):
    def run():
        streams = [
            uniform_stream(2.5, 15_000, seed=1),
            uniform_stream(2.5, 1_000, seed=2),
        ]
        controller = FairnessController(2, FairnessParams(fairness_target=0.5))
        return run_soe(
            streams,
            controller,
            SoeParams(),
            RunLimits(min_instructions=200_000),
        )

    result = benchmark(run)
    assert result.total_ipc > 0


def test_detailed_core_throughput(benchmark):
    def run():
        from repro.cpu.soe_core import run_cpu_single_thread

        return run_cpu_single_thread(
            make_trace(MEMORY_SPEC, seed=1),
            min_instructions=4_000,
            warmup_instructions=1_000,
        )

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.total_ipc > 0


def test_quota_computation_hot_path(benchmark):
    from repro.core.estimator import IpcStEstimator

    estimator = IpcStEstimator(2, 300)
    estimates = estimator.update_all(
        [CounterSample(30_000, 12_000, 2), CounterSample(20_000, 8_000, 20)]
    )
    quotas = benchmark(lambda: quotas_from_estimates(estimates, 0.5, 300))
    assert len(quotas) == 2
