"""Benchmark: cross-simulator validation.

Times and checks the two validation layers: the segment engine against
the closed-form model (must agree almost exactly), and the segment
engine against the detailed out-of-order core on matched workloads
(must agree within the microarchitectural effects the segment model
abstracts away -- we allow 15%).
"""

import pytest

from conftest import write_result
from repro.experiments import validation


def test_validation_model_vs_engine(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: validation.run(min_instructions=500_000),
        rounds=1, iterations=1,
    )
    write_result(results_dir, "validation_model_engine", validation.render(result))
    assert result.worst_error < 0.02


def test_validation_engine_vs_detailed_core(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: validation.run(min_instructions=400_000, include_cpu=True),
        rounds=1, iterations=1,
    )
    assert result.cpu_cases
    for case in result.cpu_cases:
        assert case.relative_error < 0.15, case.label
    write_result(results_dir, "validation_engine_cpu", validation.render(result))
