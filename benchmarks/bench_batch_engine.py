"""Benchmark: the vectorized batch engine vs the scalar per-run loop.

Materializes a grid-shaped population of pair workloads once (workload
generation is identical for both backends and excluded from timing),
then times the scalar reference on a sample to get a per-run cost and
the batch backend on the whole population. The headline number is the
speedup of ``BatchBackend.run_batch`` over the scalar per-run loop at
batch sizes >= 1000 (the default scale); correctness is anchored by
bit-identity between the two backends on the sampled runs.

The batch is timed warm (one untimed pass first) so the measurement is
the steady-state engine cost the grid runner sees, with the one-time
list-to-array conversion memoized on the workload columns.
"""

import os
import time

import pytest

from conftest import write_result
from repro.core.controller import FairnessParams
from repro.engine.backend import ScalarBackend, SoeRunSpec, numpy_available
from repro.engine.soe import RunLimits, SoeParams
from repro.workloads.materialize import columnize
from repro.workloads.synthetic import uniform_stream

pytestmark = pytest.mark.skipif(not numpy_available(), reason="needs numpy")

_QUICK = os.environ.get("REPRO_BENCH_SCALE") == "quick"
#: Population size. The acceptance claim (>= 10x over the scalar
#: per-run loop at batch sizes >= 1000) is made at the default scale;
#: the quick preset only smoke-tests the machinery. Speedup grows with
#: the batch size (the lockstep iteration count is roughly independent
#: of it, so per-iteration numpy overhead amortizes across lanes).
_BATCH_RUNS = 200 if _QUICK else 2_000
#: Scalar runs timed to estimate the per-run cost (and cross-checked
#: bit-identically against the batch results).
_SCALAR_SAMPLE = 10 if _QUICK else 40
_MIN_SPEEDUP = 1.5 if _QUICK else 10.0

LIMITS = RunLimits(min_instructions=200_000.0, warmup_instructions=50_000.0)
FAIRNESS = FairnessParams(
    fairness_target=0.5, sample_period=50_000.0, miss_lat=300.0
)


def _column_specs(count):
    """Grid-shaped pair workloads, pre-columnized for the batch engine.

    Segment budgets are sized to what a run of this length actually
    consumes, so the batch engine's lanes carry no dead weight and the
    scalar engine sees finite streams long enough never to exhaust.
    """
    specs = []
    for index in range(count):
        a = columnize(
            uniform_stream(
                800 / 300, 800, ipm_cv=0.8, ipc_cv=0.2, seed=index
            ),
            500,
        )
        b = columnize(
            uniform_stream(
                150 / 300, 150, ipm_cv=1.0, ipc_cv=0.3, seed=100_000 + index
            ),
            1_700,
        )
        # Every run carries the fairness controller, mirroring a grid
        # level's homogeneous batch (3 of the 4 default levels enforce;
        # homogeneity also keeps the batch engine on its uniform-
        # controller fast path, the configuration the grid runner
        # actually hands it).
        specs.append(
            SoeRunSpec(
                streams=(a, b),
                fairness=FAIRNESS,
                params=SoeParams(),
                limits=LIMITS,
            )
        )
    return specs


def test_batch_engine_speedup(benchmark, results_dir):
    from repro.engine.batch import BatchBackend

    specs = _column_specs(_BATCH_RUNS)

    # Same spec objects, two backends: the scalar reference consumes
    # the very ColumnStreams the batch engine reads, so the comparison
    # is engine-vs-engine with workload representation held fixed.
    sample = specs[:_SCALAR_SAMPLE]
    start = time.perf_counter()
    scalar_results = ScalarBackend().run_batch(sample)
    per_run = (time.perf_counter() - start) / _SCALAR_SAMPLE

    backend = BatchBackend()
    backend.run_batch(specs)  # warm: memoize the array conversion
    start = time.perf_counter()
    batch_results = benchmark.pedantic(
        lambda: backend.run_batch(specs), rounds=1, iterations=1
    )
    batch_s = time.perf_counter() - start

    assert batch_results[:_SCALAR_SAMPLE] == scalar_results
    speedup = per_run * _BATCH_RUNS / batch_s
    write_result(
        results_dir,
        "batch_engine",
        "\n".join(
            [
                f"Vectorized batch engine ({_BATCH_RUNS} pair runs)",
                f"  scalar per-run cost:  {per_run * 1_000:8.2f} ms "
                f"(over {_SCALAR_SAMPLE} sampled runs)",
                f"  batch wall (warm):    {batch_s:8.3f} s",
                f"  speedup:              {speedup:8.1f}x "
                f"(gate: >= {_MIN_SPEEDUP:g}x)",
            ]
        ),
    )
    assert speedup >= _MIN_SPEEDUP


def test_batch_engine_cold_start(benchmark, results_dir):
    """Cold batch (conversion included) must stay within 2x of warm."""
    from repro.engine.batch import BatchBackend

    specs = _column_specs(_BATCH_RUNS // 2)
    start = time.perf_counter()
    benchmark.pedantic(
        lambda: BatchBackend().run_batch(specs), rounds=1, iterations=1
    )
    cold_s = time.perf_counter() - start
    start = time.perf_counter()
    BatchBackend().run_batch(specs)
    warm_s = time.perf_counter() - start
    write_result(
        results_dir,
        "batch_engine_cold",
        "\n".join(
            [
                f"Batch engine cold vs warm ({len(specs)} pair runs)",
                f"  cold (converts columns): {cold_s:8.3f} s",
                f"  warm (memoized arrays):  {warm_s:8.3f} s",
            ]
        ),
    )
    assert cold_s < warm_s * 2.0 + 1.0
