"""Benchmark: Figure 3 (analytical fairness/throughput tradeoff).

Sweeps F through the closed-form model for the paper's legend cases and
checks the envelope: equal-IPC pairs degrade by at most a few percent,
mixed-IPC pairs degrade up to ~15% or improve up to ~10%.
"""

import pytest

from conftest import write_result
from repro.experiments import fig3


def test_fig3_sweep(benchmark, results_dir):
    result = benchmark.pedantic(fig3.run, rounds=5, iterations=1)
    write_result(results_dir, "fig3", fig3.render(result))
    assert len(result.series) == len(fig3.PAPER_CASES)


def test_fig3_equal_ipc_mild_degradation(benchmark):
    result = benchmark.pedantic(fig3.run, rounds=1, iterations=1)
    for series in result.series:
        if series.ipc_no_miss[0] == series.ipc_no_miss[1]:
            # Paper: "throughput degrades by up to 4%".
            assert min(series.throughput_change) > -0.05


def test_fig3_mixed_ipc_envelope(benchmark):
    result = benchmark.pedantic(fig3.run, rounds=1, iterations=1)
    # Paper: "can degrade by up to 15% or improve by up to 10%".
    assert -0.20 < result.max_degradation() < -0.08
    assert 0.05 < result.max_improvement() < 0.15


def test_fig3_improvement_biases_toward_faster_thread(benchmark):
    result = benchmark.pedantic(fig3.run, rounds=1, iterations=1)
    improving = [s for s in result.series if s.ipc_no_miss == (2.0, 3.0)]
    degrading = [s for s in result.series if s.ipc_no_miss == (3.0, 2.0)]
    # Enforcement moves cycles to the *slower-CPM* thread; when that
    # thread also retires faster (the [2,3] cases), throughput improves.
    assert all(max(s.throughput_change) > 0 for s in improving)
    assert all(min(s.throughput_change) < 0 for s in degrading)
