"""Benchmark: the flagship result on the cycle-level substrate.

Rebuilds the paper's gcc:eon starvation scenario from first principles
on the detailed out-of-order core (no segment abstraction anywhere) and
checks that the same FairnessController rescues it. Slow by nature --
every cycle is simulated -- so scales are small and rounds are 1.
"""

import pytest

from conftest import write_result
from repro.core.controller import FairnessController, FairnessParams
from repro.cpu.soe_core import run_cpu_single_thread, run_cpu_soe
from repro.workloads.cpu_mapping import cpu_spec_for_profile
from repro.workloads.spec2000 import get_profile
from repro.workloads.tracegen import make_trace


@pytest.fixture(scope="module")
def specs():
    return (
        cpu_spec_for_profile(get_profile("gcc")),
        cpu_spec_for_profile(get_profile("eon")),
    )


@pytest.fixture(scope="module")
def single_thread_ipcs(specs):
    ipcs = []
    for index, spec in enumerate(specs):
        result = run_cpu_single_thread(
            make_trace(spec, seed=index + 1, thread_index=index),
            min_instructions=10_000,
            warmup_instructions=5_000,
        )
        ipcs.append(result.total_ipc)
    return ipcs


def _programs(specs):
    return [
        make_trace(specs[0], seed=1, thread_index=0),
        make_trace(specs[1], seed=2, thread_index=1),
    ]


def _fairness(run, st):
    speedups = [ipc / s for ipc, s in zip(run.ipcs, st)]
    return min(speedups) / max(speedups)


def test_detailed_core_starvation(benchmark, specs, single_thread_ipcs,
                                  results_dir):
    baseline = benchmark.pedantic(
        lambda: run_cpu_soe(
            _programs(specs), min_instructions=5_000, warmup_instructions=3_000
        ),
        rounds=1, iterations=1,
    )
    fairness = _fairness(baseline, single_thread_ipcs)
    # The gcc-like thread starves on the real microarchitecture too.
    assert fairness < 0.35
    write_result(
        results_dir,
        "detailed_core_baseline",
        (
            f"gcc:eon on the cycle-level core\n"
            f"IPC_ST: {single_thread_ipcs[0]:.2f}/{single_thread_ipcs[1]:.2f}\n"
            f"F=0 IPCs: {baseline.ipcs[0]:.2f}/{baseline.ipcs[1]:.2f} "
            f"fairness {fairness:.3f}\n"
            f"mean switch latency: {baseline.mean_switch_latency:.1f} cycles "
            f"(paper: ~25)"
        ),
    )


def test_detailed_core_enforcement(benchmark, specs, single_thread_ipcs):
    def enforced_run():
        controller = FairnessController(
            2, FairnessParams(fairness_target=0.5, sample_period=5_000.0)
        )
        return run_cpu_soe(
            _programs(specs), controller,
            min_instructions=5_000, warmup_instructions=3_500,
        )

    enforced = benchmark.pedantic(enforced_run, rounds=1, iterations=1)
    baseline = run_cpu_soe(
        _programs(specs), min_instructions=5_000, warmup_instructions=3_000
    )
    assert _fairness(enforced, single_thread_ipcs) > 2 * _fairness(
        baseline, single_thread_ipcs
    )
    assert enforced.total_ipc < baseline.total_ipc


def test_detailed_core_switch_latency(benchmark, specs):
    result = benchmark.pedantic(
        lambda: run_cpu_soe(
            _programs(specs), min_instructions=4_000, warmup_instructions=2_000
        ),
        rounds=1, iterations=1,
    )
    # Paper Section 4.1: switch latency "usually accumulates to around
    # 25 cycles".
    assert 10 <= result.mean_switch_latency <= 40
