"""Benchmark: Figure 6 (per-pair SOE throughput, stacked by thread).

Regenerates the 16-pair throughput chart at F = 0, 1/4, 1/2, 1 plus the
single-thread references, and checks the headline series: the average
SOE speedup over single thread declines monotonically as F rises
(paper: 24%, 21%, 19%, 15%).
"""

import pytest

from conftest import write_result
from repro.experiments import fig6
from repro.experiments.common import run_pair
from repro.workloads.pairs import BenchmarkPair


def test_fig6_regeneration(benchmark, eval_config, pair_grid, results_dir):
    result = benchmark.pedantic(
        lambda: fig6.run(eval_config, pairs=pair_grid), rounds=3, iterations=1
    )
    write_result(results_dir, "fig6", fig6.render(result))
    assert len(result.pairs) == 16


def test_fig6_single_pair_run_cost(benchmark, eval_config):
    # The per-pair unit of the grid, timed end-to-end.
    result = benchmark.pedantic(
        lambda: run_pair(BenchmarkPair("gcc", "eon"), eval_config),
        rounds=1, iterations=1,
    )
    assert result.baseline.total_ipc > 0


def test_fig6_average_speedup_ladder(benchmark, eval_config, pair_grid):
    result = fig6.run(eval_config, pairs=pair_grid)
    ladder = benchmark.pedantic(result.speedup_ladder, rounds=1, iterations=1)
    # Paper: +24% / +21% / +19% / +15% for F = 0, 1/4, 1/2, 1.
    assert ladder[0.0] == pytest.approx(0.24, abs=0.08)
    assert ladder[1.0] == pytest.approx(0.15, abs=0.08)
    values = [ladder[level] for level in sorted(ladder)]
    assert values == sorted(values, reverse=True)


def test_fig6_homogeneous_pairs_keep_throughput(benchmark, eval_config, pair_grid):
    result = fig6.run(eval_config, pairs=pair_grid)
    drops = benchmark.pedantic(
        lambda: [
            1.0 - p.normalized_throughput(1.0)
            for p in result.pairs
            if p.pair.is_homogeneous
        ],
        rounds=1, iterations=1,
    )
    # Paper: "fairness enforcement has only negligible effect on the
    # throughput when IPC_ST of the two threads is roughly the same".
    assert max(drops) < 0.03
