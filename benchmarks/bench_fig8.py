"""Benchmark: Figure 8 (achieved fairness, left and right panels).

Regenerates the per-run achieved-fairness series (runs ordered by their
unenforced fairness) and the truncated averages, and checks the paper's
claims: over a third of unenforced runs are severely unfair, enforced
runs land close to the target, and accuracy degrades as F approaches 1.
"""

import pytest

from conftest import write_result
from repro.experiments import fig8


@pytest.fixture(scope="module")
def result(eval_config, pair_grid):
    return fig8.run(eval_config, pairs=pair_grid)


def test_fig8_regeneration(benchmark, result, results_dir):
    rendered = benchmark.pedantic(
        lambda: fig8.render(result), rounds=3, iterations=1
    )
    write_result(results_dir, "fig8", rendered)
    assert "Figure 8" in rendered


def test_fig8_over_a_third_unfair_without_enforcement(benchmark, result):
    fraction = benchmark.pedantic(
        lambda: result.unfair_run_fraction(0.1), rounds=1, iterations=1
    )
    # Paper: "over a third of our runs achieved poor fairness in which
    # one thread ran extremely slowly (10 to 100 times slower)".
    assert fraction >= 1 / 3


def test_fig8_truncated_means_close_to_targets(benchmark, result):
    summaries = benchmark.pedantic(
        lambda: {level: result.summary(level) for level in (0.25, 0.5, 1.0)},
        rounds=1, iterations=1,
    )
    assert summaries[0.25].mean == pytest.approx(0.25, rel=0.25)
    assert summaries[0.5].mean == pytest.approx(0.5, rel=0.25)
    # Accuracy degrades as F rises (paper Fig. 8 right); the F=1 mean
    # sits visibly below the target but well above 1/2.
    assert 0.6 < summaries[1.0].mean <= 1.0


def test_fig8_enforcement_tracks_target_on_unfair_runs(benchmark, result):
    deviations = benchmark.pedantic(
        lambda: [
            abs(p.achieved_fairness(0.5) - 0.5)
            for p in result.pairs
            if p.achieved_fairness(0.0) < 0.1
        ],
        rounds=1, iterations=1,
    )
    assert deviations  # the unfair runs exist
    assert max(deviations) < 0.2


def test_fig8_enforcement_preserves_already_fair_runs(benchmark, result):
    changes = benchmark.pedantic(
        lambda: [
            p.achieved_fairness(0.25) - p.achieved_fairness(0.0)
            for p in result.pairs
            if p.achieved_fairness(0.0) > 0.8
        ],
        rounds=1, iterations=1,
    )
    # Paper: "on runs which are also fair without fairness enforcement,
    # the mechanism has small effect".
    assert all(abs(change) < 0.2 for change in changes)
