"""Benchmark: Figure 7 (throughput degradation due to enforcement).

Regenerates normalized throughput and forced-switch rates per pair and
checks the paper's averages -- degradation ordering 2.2% (F=1/4) <
3.7% (F=1/2) < 7.2% (F=1) -- and the forced-switch correlation.
"""

import pytest

from conftest import write_result
from repro.experiments import fig7


@pytest.fixture(scope="module")
def result(eval_config, pair_grid):
    return fig7.run(eval_config, pairs=pair_grid)


def test_fig7_regeneration(benchmark, result, results_dir):
    rendered = benchmark.pedantic(
        lambda: fig7.render(result), rounds=3, iterations=1
    )
    write_result(results_dir, "fig7", rendered)
    assert "norm tput" in rendered


def test_fig7_average_degradations(benchmark, result):
    degradations = benchmark.pedantic(
        lambda: {
            level: result.average_degradation(level)
            for level in result.enforced_levels
        },
        rounds=1, iterations=1,
    )
    # Paper: 2.2% / 3.7% / 7.2% average loss at F = 1/4, 1/2, 1.
    assert degradations[0.25] == pytest.approx(0.022, abs=0.015)
    assert degradations[0.5] == pytest.approx(0.037, abs=0.02)
    assert degradations[1.0] == pytest.approx(0.072, abs=0.03)
    ordered = [degradations[level] for level in sorted(degradations)]
    assert ordered == sorted(ordered)


def test_fig7_forced_switch_rate_grows_with_f(benchmark, result):
    rates = benchmark.pedantic(
        lambda: [
            result.average_forced_switch_rate(level)
            for level in result.enforced_levels
        ],
        rounds=1, iterations=1,
    )
    assert rates == sorted(rates)
    assert rates[-1] > 0


def test_fig7_loss_correlates_with_forced_switches(benchmark, result):
    correlation = benchmark.pedantic(
        lambda: result.degradation_correlates_with_forced_switches(1.0),
        rounds=1, iterations=1,
    )
    # Paper: "there is a high correlation between the number of forced
    # thread switches and the effect on the throughput".
    assert correlation > 0.5
