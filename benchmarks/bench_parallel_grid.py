"""Benchmark: the parallel, cached grid runner vs the serial baseline.

Times the 16-pair evaluation grid three ways -- serial, multiprocess
(``jobs = cpu_count``), and warm-cache -- and records the wall-clock
numbers plus cache hit/miss counts to ``results/parallel_grid.txt``.
The speedup column is informative only (on a single-core host the
parallel run pays pool overhead for nothing); the correctness assertion
is bit-identity between all three result sets.
"""

import multiprocessing
import time

from conftest import write_result
from repro.experiments.runner import ExecutionSettings, run_grid


def _timed_grid(config, settings):
    start = time.perf_counter()
    outcome = run_grid(config, settings=settings)
    return outcome, time.perf_counter() - start


def test_parallel_grid_wall_clock(benchmark, eval_config, results_dir):
    jobs = max(2, multiprocessing.cpu_count())
    serial, serial_s = _timed_grid(eval_config, ExecutionSettings(jobs=1))
    (parallel, parallel_s) = benchmark.pedantic(
        lambda: _timed_grid(eval_config, ExecutionSettings(jobs=jobs)),
        rounds=1, iterations=1,
    )
    assert parallel.results == serial.results
    write_result(
        results_dir,
        "parallel_grid",
        "\n".join([
            "Grid runner wall-clock (16 pairs x 4 fairness levels)",
            f"  serial   (jobs=1):      {serial_s:8.3f} s",
            f"  parallel (jobs={jobs}):      {parallel_s:8.3f} s",
            f"  speedup:                {serial_s / parallel_s:8.2f}x "
            f"on {multiprocessing.cpu_count()} core(s)",
        ]),
    )


def test_cache_hit_rate_on_rerun(benchmark, eval_config, results_dir,
                                 tmp_path):
    cold, cold_s = _timed_grid(
        eval_config, ExecutionSettings(cache_dir=tmp_path))
    (warm, warm_s) = benchmark.pedantic(
        lambda: _timed_grid(eval_config, ExecutionSettings(cache_dir=tmp_path)),
        rounds=1, iterations=1,
    )
    assert warm.results == cold.results
    assert cold.stats.misses == 16 and cold.stats.hits == 0
    assert warm.stats.hits == 16 and warm.stats.misses == 0
    assert warm.stats.hit_rate == 1.0
    report = "\n".join([
        "Result-cache effectiveness (same config, same code version)",
        f"  cold run: {cold.stats.hits:2d} hits / {cold.stats.misses:2d} "
        f"misses, {cold_s:8.3f} s",
        f"  warm run: {warm.stats.hits:2d} hits / {warm.stats.misses:2d} "
        f"misses, {warm_s:8.3f} s",
        f"  warm/cold wall-clock:    {warm_s / cold_s:8.3f}",
    ])
    previous = (results_dir / "parallel_grid.txt")
    base = previous.read_text().rstrip() + "\n\n" if previous.exists() else ""
    write_result(results_dir, "parallel_grid", base + report)
