"""Benchmarks: the sensitivity and stability methodology studies."""

import pytest

from conftest import write_result
from repro.experiments import sensitivity, stability
from repro.experiments.common import EvalConfig


def test_sensitivity_regeneration(benchmark, results_dir):
    result = benchmark.pedantic(sensitivity.run, rounds=1, iterations=1)
    write_result(results_dir, "sensitivity", sensitivity.render(result))
    # The two monotone laws (Eq. 5 / switch-cost linearity).
    miss_series = result.series("miss_lat")
    fairness_values = [row.unenforced_fairness for row in miss_series]
    assert fairness_values == sorted(fairness_values)
    switch_costs = [
        row.f1_throughput_cost for row in result.series("switch_lat")
    ]
    assert switch_costs == sorted(switch_costs)


def test_stability_regeneration(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: stability.run(seeds=(0, 1), config=EvalConfig.quick()),
        rounds=1, iterations=1,
    )
    full = stability.run(seeds=(0, 1, 2))
    write_result(results_dir, "stability", stability.render(full))
    # Aggregates must be seed-stable.
    for level in (0.25, 0.5, 1.0):
        _mean, std = full.degradation_spread(level)
        assert std < 0.01
    _mean, std = full.unfair_fraction_spread()
    assert std < 0.15
