"""Benchmark: mechanism ablations (Delta, quotas, deficit cap,
miss-latency misestimation) on the gcc:eon pair."""

import pytest

from conftest import write_result
from repro.experiments import ablations
from repro.experiments.common import EvalConfig
from repro.workloads.pairs import BenchmarkPair


@pytest.fixture(scope="module")
def result():
    return ablations.run(
        BenchmarkPair("gcc", "eon"), EvalConfig(), fairness_target=0.5
    )


def test_ablations_regeneration(benchmark, results_dir):
    quick = EvalConfig(
        sample_period=100_000.0,
        min_instructions=500_000.0,
        warmup_instructions=250_000.0,
        st_min_instructions=400_000.0,
    )
    timed = benchmark.pedantic(
        lambda: ablations.run(BenchmarkPair("gcc", "eon"), quick, 0.5),
        rounds=1, iterations=1,
    )
    assert timed.points
    full = ablations.run(BenchmarkPair("gcc", "eon"), EvalConfig(), 0.5)
    write_result(results_dir, "ablations", ablations.render(full))


def test_ablation_paper_delta_hits_target(benchmark, result):
    point = benchmark.pedantic(
        lambda: next(
            p for p in result.series("delta") if p.value == "250,000"
        ),
        rounds=1, iterations=1,
    )
    assert point.achieved_fairness == pytest.approx(0.5, abs=0.1)


def test_ablation_oversized_delta_tracks_phases_poorly(benchmark, result):
    series = benchmark.pedantic(
        lambda: {p.value: p for p in result.series("delta")},
        rounds=1, iterations=1,
    )
    # Section 3.1: Delta "not too large in order to allow performance
    # phases to be accurately tracked".
    paper = abs(series["250,000"].achieved_fairness - 0.5)
    oversized = abs(series["1,000,000"].achieved_fairness - 0.5)
    assert oversized > paper


def test_ablation_wrong_miss_latency_skews_fairness(benchmark, result):
    series = benchmark.pedantic(
        lambda: {p.value: p for p in result.series("assumed_miss_lat")},
        rounds=1, iterations=1,
    )
    correct = abs(series["300"].achieved_fairness - 0.5)
    wrong = abs(series["600"].achieved_fairness - 0.5)
    assert wrong > correct
