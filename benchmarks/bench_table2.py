"""Benchmark: Table 2 (Example 2 with and without enforcement).

Regenerates the paper's worked example from both the closed-form model
and the segment engine, and asserts the table's headline facts:
thread 2 slows down ~9.2x unenforced, F = 1 equalizes both speedups at
~0.63, and the enforced quota for thread 1 is ~1,667 instructions.

Every test here both *times* its computation (pytest-benchmark) and
*checks* the paper-shape property, so ``pytest benchmarks/
--benchmark-only`` regenerates and verifies the table in one pass.
"""

import pytest

from conftest import write_result
from repro.experiments import table2


@pytest.fixture(scope="module")
def result():
    return table2.run(min_instructions=1_500_000, warmup=1_000_000)


def test_table2_regeneration(benchmark, result, results_dir):
    rendered = benchmark.pedantic(
        lambda: table2.render(result), rounds=3, iterations=1
    )
    write_result(results_dir, "table2", rendered)
    assert "analytical model" in rendered


def test_table2_unenforced_slowdowns(benchmark, result):
    rows = benchmark.pedantic(
        lambda: {(r.fairness_target, r.thread): r for r in result.analytical},
        rounds=1, iterations=1,
    )
    # Paper: thread 1's IPC drops by 1.02x, thread 2's by 9.2x at F=0.
    assert rows[(0.0, 0)].slowdown_factor == pytest.approx(1.02, abs=0.01)
    assert rows[(0.0, 1)].slowdown_factor == pytest.approx(9.2, abs=0.1)


def test_table2_simulated_example2_run(benchmark, result):
    # Time a full simulated Example 2 grid. The warmup must outlast the
    # first Delta window (~600k instructions at this pair's throughput)
    # for the quotas to be active over the whole measured window.
    simulated = benchmark.pedantic(
        lambda: table2.run(min_instructions=1_000_000, warmup=700_000),
        rounds=1, iterations=1,
    )
    assert simulated.simulated
    f1 = [r for r in result.simulated if r.fairness_target == 1.0]
    # Paper Section 6: both speedups adjust to ~0.63 at F=1.
    assert f1[0].speedup == pytest.approx(0.63, abs=0.04)
    assert f1[1].speedup == pytest.approx(0.63, abs=0.04)


def test_table2_enforced_quota(benchmark, result):
    quotas = benchmark.pedantic(
        lambda: {
            (r.fairness_target, r.thread): r.quota for r in result.simulated
        },
        rounds=1, iterations=1,
    )
    # Paper: the first thread is forced to switch every ~1,667
    # instructions at F=1.
    assert quotas[(1.0, 0)] == pytest.approx(1_667, rel=0.02)
