"""Benchmark: sharded multi-core batch execution vs one-process batch.

Times the vectorized batch backend two ways on the same population --
one in-process batch on a single core, and the same runs partitioned
into lane-contiguous shards executed by persistent pool workers with
shared-memory columnar dispatch (``run_specs_sharded``) -- plus the
grid-level integration (``run_grid --shards``) on the full default
evaluation grid. Correctness is anchored by unconditional bit-identity
between every leg; the speedup gate (>= 2.5x at 4 workers) is asserted
only on hosts that actually have >= 4 cores and at the default scale
(on fewer cores the workers time-share and the gate is meaningless --
same precedent as ``bench_parallel_grid``).
"""

import multiprocessing
import os
import time

import pytest

from conftest import write_result
from repro.core.controller import FairnessParams
from repro.engine.backend import SoeRunSpec, get_backend, numpy_available
from repro.engine.soe import RunLimits, SoeParams
from repro.experiments.runner import ExecutionSettings, run_grid
from repro.experiments.sharding import run_specs_sharded
from repro.workloads.materialize import columnize
from repro.workloads.synthetic import uniform_stream

pytestmark = pytest.mark.skipif(not numpy_available(), reason="needs numpy")

_QUICK = os.environ.get("REPRO_BENCH_SCALE") == "quick"
#: Spec-level population. The acceptance claim (>= 2.5x over the
#: single-process batch at 4 workers) is made at the default scale on
#: hosts with >= 4 cores; the quick preset smoke-tests the machinery.
_BATCH_RUNS = 64 if _QUICK else 600
_JOBS = 4
_MIN_SPEEDUP = 2.5

LIMITS = RunLimits(min_instructions=200_000.0, warmup_instructions=50_000.0)
FAIRNESS = FairnessParams(
    fairness_target=0.5, sample_period=50_000.0, miss_lat=300.0
)


def _gate_speedup() -> bool:
    return multiprocessing.cpu_count() >= _JOBS and not _QUICK


def _column_specs(count):
    """Grid-shaped pair workloads, pre-columnized (same population
    shape as ``bench_batch_engine``, the single-process reference)."""
    specs = []
    for index in range(count):
        a = columnize(
            uniform_stream(
                800 / 300, 800, ipm_cv=0.8, ipc_cv=0.2, seed=index
            ),
            500,
        )
        b = columnize(
            uniform_stream(
                150 / 300, 150, ipm_cv=1.0, ipc_cv=0.3, seed=100_000 + index
            ),
            1_700,
        )
        specs.append(
            SoeRunSpec(
                streams=(a, b),
                fairness=FAIRNESS,
                params=SoeParams(),
                limits=LIMITS,
            )
        )
    return specs


def test_sharded_specs_speedup(benchmark, results_dir):
    specs = _column_specs(_BATCH_RUNS)
    backend = get_backend("batch")

    backend.run_batch(specs)  # warm: memoize the array conversion
    start = time.perf_counter()
    single = backend.run_batch(specs)
    single_s = time.perf_counter() - start

    start = time.perf_counter()
    sharded = benchmark.pedantic(
        lambda: run_specs_sharded(specs, jobs=_JOBS, shards=_JOBS),
        rounds=1, iterations=1,
    )
    sharded_s = time.perf_counter() - start

    assert sharded == single
    speedup = single_s / sharded_s
    gated = _gate_speedup()
    write_result(
        results_dir,
        "sharded_batch",
        "\n".join([
            f"Sharded batch dispatch ({_BATCH_RUNS} pair runs, "
            f"{_JOBS} shards / {_JOBS} pool workers)",
            f"  single-process batch:  {single_s:8.3f} s",
            f"  sharded (shm arenas):  {sharded_s:8.3f} s",
            f"  speedup:               {speedup:8.2f}x on "
            f"{multiprocessing.cpu_count()} core(s) "
            f"(gate >= {_MIN_SPEEDUP:g}x: "
            f"{'enforced' if gated else 'informative only'})",
        ]),
    )
    if gated:
        assert speedup >= _MIN_SPEEDUP


def test_sharded_grid_end_to_end(benchmark, eval_config, results_dir):
    """``run_grid --shards`` on the full default grid: identity always,
    the multi-core speedup gate when the host can express it."""
    start = time.perf_counter()
    single = run_grid(
        eval_config,
        settings=ExecutionSettings(jobs=1, backend="batch", shards=1),
    )
    single_s = time.perf_counter() - start

    start = time.perf_counter()
    sharded = benchmark.pedantic(
        lambda: run_grid(
            eval_config,
            settings=ExecutionSettings(
                jobs=_JOBS, backend="batch", shards=_JOBS
            ),
        ),
        rounds=1, iterations=1,
    )
    sharded_s = time.perf_counter() - start

    assert sharded.results == single.results
    previous = results_dir / "sharded_batch.txt"
    base = previous.read_text().rstrip() + "\n\n" if previous.exists() else ""
    write_result(
        results_dir,
        "sharded_batch",
        base + "\n".join([
            "Grid integration (--shards, full evaluation grid)",
            f"  jobs=1 shards=1:       {single_s:8.3f} s",
            f"  jobs={_JOBS} shards={_JOBS}:       {sharded_s:8.3f} s",
            f"  wall ratio:            {single_s / sharded_s:8.2f}x on "
            f"{multiprocessing.cpu_count()} core(s)",
        ]),
    )
