"""Benchmarks: the Section 6 / generalization extensions.

Regenerates the three extension studies (variable-latency events with
measured latencies, thread-count scaling, prioritized fairness) and
asserts their headline shapes.
"""

import pytest

from conftest import write_result
from repro.experiments import events, threadcount, weighted


@pytest.fixture(scope="module")
def events_result():
    return events.run(min_instructions=2_000_000, warmup_instructions=1_200_000)


@pytest.fixture(scope="module")
def threadcount_result():
    return threadcount.run()


@pytest.fixture(scope="module")
def weighted_result():
    return weighted.run()


def test_events_regeneration(benchmark, results_dir, events_result):
    timed = benchmark.pedantic(
        lambda: events.run(min_instructions=800_000, warmup_instructions=500_000),
        rounds=1, iterations=1,
    )
    assert timed.rows
    write_result(results_dir, "events", events.render(events_result))


def test_events_measurement_restores_accuracy(benchmark, events_result):
    closes = benchmark.pedantic(
        lambda: events_result.measurement_closes_the_gap, rounds=1, iterations=1
    )
    # Section 6's proposal: measured latencies fix what the 300-cycle
    # assumption breaks on mixed-event workloads.
    assert closes
    wrong = events_result.row("assumed 300")
    measured = events_result.row("measured")
    target = events_result.fairness_target
    assert abs(wrong.achieved_fairness - target) > 0.1
    assert measured.achieved_fairness == pytest.approx(target, abs=0.08)


def test_events_monitor_converges(benchmark, events_result):
    measured = benchmark.pedantic(
        lambda: events_result.row("measured").measured_latency,
        rounds=1, iterations=1,
    )
    assert measured == pytest.approx(events_result.true_mean_latency, rel=0.25)


def test_threadcount_regeneration(benchmark, results_dir, threadcount_result):
    timed = benchmark.pedantic(
        lambda: threadcount.run(
            thread_counts=(2, 3, 4),
            min_instructions=400_000,
            warmup_instructions=300_000,
        ),
        rounds=1, iterations=1,
    )
    assert timed.rows
    write_result(results_dir, "threadcount", threadcount.render(threadcount_result))


def test_threadcount_saturation_near_three(benchmark, threadcount_result):
    saturation = benchmark.pedantic(
        threadcount_result.saturation_point, rounds=1, iterations=1
    )
    # Eickemeyer et al.: SOE reaches maximum throughput at ~3 threads.
    assert saturation in (3, 4)


def test_threadcount_enforcement_scales(benchmark, threadcount_result):
    deviations = benchmark.pedantic(
        lambda: [
            abs(row.fairness_enforced - threadcount_result.fairness_target)
            for row in threadcount_result.rows
        ],
        rounds=1, iterations=1,
    )
    assert max(deviations) < 0.1


def test_weighted_regeneration(benchmark, results_dir, weighted_result):
    timed = benchmark.pedantic(
        lambda: weighted.run(
            weight_ratios=((2.0, 1.0),),
            min_instructions=800_000,
            warmup_instructions=500_000,
        ),
        rounds=1, iterations=1,
    )
    assert timed.rows
    write_result(results_dir, "weighted", weighted.render(weighted_result))


def test_weighted_ratios_achieved(benchmark, weighted_result):
    errors = benchmark.pedantic(
        lambda: [
            abs(row.achieved_ratio / row.target_ratio - 1.0)
            for row in weighted_result.rows
        ],
        rounds=1, iterations=1,
    )
    assert max(errors) < 0.08
