#!/usr/bin/env python
"""Perf harness: run each ``bench_*.py`` and write ``BENCH_<name>.json``.

This file owns every wall-clock read of the benchmarking pipeline (it
is the one RL002-exempt file outside telemetry): it measures wall time
around a fresh ``pytest`` subprocess per benchmark file, collects the
subprocess's PROFILE snapshot (simulated cycles, events, peak RSS) via
``REPRO_BENCH_PROFILE_OUT``, and emits one schema-validated JSON record
per benchmark plus, on request, an updated ``benchmarks/baseline.json``.

Cross-machine comparability comes from a calibration loop: a fixed
pure-Python workload timed in the same environment. The committed
baseline stores each run's ``calibration_ops_per_sec`` so the gate can
compare machine-normalized cost (see repro.benchmarking.compare).

Usage::

    PYTHONPATH=src python benchmarks/harness.py                 # all benches
    PYTHONPATH=src python benchmarks/harness.py bench_detailed_core
    PYTHONPATH=src python benchmarks/harness.py --scale quick --update-baseline
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_DIR = REPO_ROOT / "src"
BENCH_DIR = REPO_ROOT / "benchmarks"

if str(SRC_DIR) not in sys.path:
    sys.path.insert(0, str(SRC_DIR))

from repro.benchmarking.schema import (  # noqa: E402
    BENCH_SCHEMA_VERSION,
    bench_result,
    load_baseline,
)
from repro.errors import ConfigurationError  # noqa: E402

#: Iterations of the calibration loop (fixed so ops/sec is comparable).
_CALIBRATION_OPS = 2_000_000
#: Calibration repetitions; the best (max ops/sec) is kept to damp
#: scheduling noise.
_CALIBRATION_REPEATS = 3


def discover_benchmarks() -> List[str]:
    """All ``bench_*.py`` files, by name, sorted."""
    return sorted(path.stem for path in BENCH_DIR.glob("bench_*.py"))


def calibrate() -> float:
    """Ops/sec of a fixed pure-Python integer loop on this host."""
    best = 0.0
    for _ in range(_CALIBRATION_REPEATS):
        acc = 0
        start = time.perf_counter()
        for i in range(_CALIBRATION_OPS):
            acc = (acc + i) % 1000003
        elapsed = time.perf_counter() - start
        if elapsed > 0:
            best = max(best, _CALIBRATION_OPS / elapsed)
    return best


def _subprocess_env(scale: str, profile_out: Path) -> Dict[str, str]:
    env = dict(os.environ)
    pythonpath = env.get("PYTHONPATH", "")
    parts = [str(SRC_DIR)] + ([pythonpath] if pythonpath else [])
    env["PYTHONPATH"] = os.pathsep.join(parts)
    env["PYTHONHASHSEED"] = "0"
    env["REPRO_BENCH_SCALE"] = scale
    env["REPRO_BENCH_PROFILE_OUT"] = str(profile_out)
    return env


def run_benchmark(
    name: str, scale: str, env_fingerprint: Dict[str, Any]
) -> Dict[str, Any]:
    """Run one bench file in a fresh interpreter; return its record.

    ``--benchmark-disable`` makes pytest-benchmark call each benched
    function exactly once, so wall time measures one deterministic pass
    rather than the plugin's adaptive rounds.
    """
    bench_file = BENCH_DIR / f"{name}.py"
    if not bench_file.exists():
        raise ConfigurationError(f"no such benchmark: {bench_file}")
    with tempfile.NamedTemporaryFile(
        mode="r", suffix=".json", prefix=f"profile_{name}_", delete=False
    ) as handle:
        profile_out = Path(handle.name)
    try:
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            str(bench_file),
            "-q",
            "-p",
            "no:cacheprovider",
            "--benchmark-disable",
        ]
        start = time.perf_counter()
        proc = subprocess.run(
            cmd,
            cwd=REPO_ROOT,
            env=_subprocess_env(scale, profile_out),
            capture_output=True,
            text=True,
        )
        wall = time.perf_counter() - start
        profile: Dict[str, Any] = {}
        try:
            profile = json.loads(profile_out.read_text())
        except (OSError, json.JSONDecodeError):
            pass
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout[-2000:] + proc.stderr[-2000:])
        return bench_result(
            name=name,
            scale=scale,
            wall_seconds=wall,
            simulated_cycles=float(profile.get("simulated_cycles", 0.0)),
            events=float(profile.get("events", 0)),
            peak_rss_bytes=int(profile.get("peak_rss_bytes", 0)),
            exit_status=proc.returncode,
            env=env_fingerprint,
        )
    finally:
        profile_out.unlink(missing_ok=True)


def write_baseline(
    path: Path, results: Dict[str, Dict[str, Any]]
) -> None:
    """Merge this run's results into the baseline file."""
    benchmarks: Dict[str, Dict[str, Any]] = {}
    if path.exists():
        try:
            benchmarks = load_baseline(path)
        except ConfigurationError:
            benchmarks = {}
    benchmarks.update(results)
    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "benchmarks": {name: benchmarks[name] for name in sorted(benchmarks)},
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "names",
        nargs="*",
        help="benchmark names (default: every bench_*.py)",
    )
    parser.add_argument(
        "--scale",
        default=os.environ.get("REPRO_BENCH_SCALE", "default"),
        choices=("quick", "default"),
        help="benchmark scale preset (default: REPRO_BENCH_SCALE or "
        "'default')",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=BENCH_DIR / "results",
        help="directory for BENCH_<name>.json files",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=BENCH_DIR / "baseline.json",
        help="baseline file updated by --update-baseline",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="merge this run's results into the baseline file",
    )
    args = parser.parse_args(argv)

    names = list(args.names) or discover_benchmarks()
    unknown = [n for n in names if not (BENCH_DIR / f"{n}.py").exists()]
    if unknown:
        parser.error(f"unknown benchmark(s): {', '.join(unknown)}")

    calibration = calibrate()
    env_fingerprint = {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "calibration_ops_per_sec": calibration,
    }
    print(f"calibration: {calibration:,.0f} ops/sec; scale={args.scale}; "
          f"{len(names)} benchmark(s)")

    args.out.mkdir(parents=True, exist_ok=True)
    results: Dict[str, Dict[str, Any]] = {}
    failed: List[str] = []
    for name in names:
        record = run_benchmark(name, args.scale, env_fingerprint)
        results[name] = record
        out_path = args.out / f"BENCH_{name}.json"
        out_path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        status = "ok" if record["exit_status"] == 0 else "FAILED"
        print(
            f"  {name:28s} {record['wall_seconds']:8.2f}s  "
            f"{record['simulated_cycles_per_sec']:>14,.0f} cyc/s  "
            f"{record['peak_rss_bytes'] / (1 << 20):7.1f} MiB  {status}"
        )
        if record["exit_status"] != 0:
            failed.append(name)

    if args.update_baseline:
        ok_results = {
            name: record
            for name, record in results.items()
            if record["exit_status"] == 0
        }
        write_baseline(args.baseline, ok_results)
        print(f"baseline updated: {args.baseline} "
              f"({len(ok_results)} benchmark(s))")

    if failed:
        print(f"FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
