"""Legacy shim so `pip install -e . --no-use-pep517` works offline
(the sandbox has setuptools but no `wheel` package)."""

from setuptools import setup

setup()
