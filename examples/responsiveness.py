#!/usr/bin/env python
"""Responsiveness scenario: why SOE fairness matters to a system.

The paper's introduction motivates fairness with responsiveness:
"unfair execution can cause serious responsiveness problems, in which
some threads run extremely slowly." This example models that system
directly: a latency-sensitive request-handler thread (frequent cache
misses -- it chases pointers through session state) shares an SOE core
with a compute-heavy batch thread (rarely misses).

We measure the request handler's effective slowdown -- a proxy for its
response latency inflation -- across fairness targets, and sweep the
knob a deployment would actually turn.

Run with::

    python examples/responsiveness.py
"""

from repro import FairnessController, FairnessParams, RunLimits, run_single_thread, run_soe
from repro.workloads import uniform_stream


def streams():
    # Request handler: misses every ~800 instructions (session/heap
    # misses), moderate IPC between misses.
    handler = uniform_stream(1.8, 800, ipm_cv=0.6, seed=11, name="handler")
    # Batch job: compute-bound, a miss every ~40k instructions.
    batch = uniform_stream(2.6, 40_000, ipm_cv=0.5, seed=12, name="batch")
    return [handler, batch]


def main() -> None:
    ipc_st = [
        run_single_thread(stream, miss_lat=300.0, min_instructions=1_000_000).ipc
        for stream in streams()
    ]
    print(f"alone: handler {ipc_st[0]:.2f} IPC, batch {ipc_st[1]:.2f} IPC\n")
    print(f"{'F':>6} {'handler x-slower':>17} {'batch x-slower':>15} "
          f"{'total IPC':>10} {'fairness':>9}")

    limits = RunLimits(min_instructions=1_500_000, warmup_instructions=1_000_000)
    for target in (0.0, 0.25, 0.5, 1.0):
        policy = (
            FairnessController(2, FairnessParams(fairness_target=target))
            if target > 0
            else None
        )
        result = run_soe(streams(), policy, limits=limits)
        speedups = result.speedups(ipc_st)
        slowdowns = [1.0 / s if s > 0 else float("inf") for s in speedups]
        print(
            f"{target:>6g} {slowdowns[0]:>16.1f}x {slowdowns[1]:>14.2f}x "
            f"{result.total_ipc:>10.2f} "
            f"{result.achieved_fairness(ipc_st):>9.3f}"
        )

    print(
        "\nWithout enforcement the request handler runs an order of"
        "\nmagnitude slower than alone (its response times inflate by the"
        "\nsame factor) while the batch job barely notices the sharing."
        "\nF = 1/4 already caps the imbalance at 4x for ~2% throughput."
    )


if __name__ == "__main__":
    main()
