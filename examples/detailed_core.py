#!/usr/bin/env python
"""The detailed cycle-level core: same mechanism, different substrate.

Runs two synthetic traces (a compute-bound and a memory-bound thread)
on the out-of-order core simulator -- full pipeline, caches, TLBs,
branch prediction -- first alone, then together under SOE without and
with the fairness controller. The controller object is *identical* to
the one the segment engine uses: the mechanism is architectural.

Expect a minute or so of runtime; the detailed core simulates every
cycle.

Run with::

    python examples/detailed_core.py
"""

from repro.core import FairnessController, FairnessParams
from repro.cpu import run_cpu_single_thread, run_cpu_soe
from repro.workloads.tracegen import CpuWorkloadSpec, make_trace

COMPUTE = CpuWorkloadSpec(
    name="compute", ilp=8, ipm=25_000.0, load_fraction=0.2,
    store_fraction=0.05, branch_fraction=0.10, branch_noise=0.02,
    hot_bytes=8 * 1024, code_bytes=4 * 1024,
)
MEMORY = CpuWorkloadSpec(
    name="memory", ilp=6, ipm=450.0, load_fraction=0.3,
    store_fraction=0.05, branch_fraction=0.08, branch_noise=0.02,
    hot_bytes=8 * 1024, code_bytes=4 * 1024,
)


def main() -> None:
    ipc_st = []
    for index, spec in enumerate((COMPUTE, MEMORY)):
        result = run_cpu_single_thread(
            make_trace(spec, seed=index + 1, thread_index=index),
            min_instructions=15_000,
            warmup_instructions=6_000,
        )
        ipc_st.append(result.total_ipc)
        print(
            f"{spec.name} alone: IPC={result.total_ipc:.2f} "
            f"(L2 miss rate {result.l2_miss_rate:.2f}, "
            f"branch mispredicts {result.branch_mispredict_rate:.1%})"
        )

    def report(label, run):
        speedups = [ipc / st for ipc, st in zip(run.ipcs, ipc_st)]
        fairness = min(speedups) / max(speedups)
        print(
            f"{label}: IPCs={run.ipcs[0]:.2f}/{run.ipcs[1]:.2f} "
            f"total={run.total_ipc:.2f} fairness={fairness:.3f} "
            f"switch latency~{run.mean_switch_latency:.0f} cycles"
        )

    programs = lambda: [
        make_trace(COMPUTE, seed=1, thread_index=0),
        make_trace(MEMORY, seed=2, thread_index=1),
    ]
    baseline = run_cpu_soe(
        programs(), min_instructions=8_000, warmup_instructions=5_000
    )
    report("SOE F=0  ", baseline)

    controller = FairnessController(
        2, FairnessParams(fairness_target=0.5, sample_period=5_000.0)
    )
    enforced = run_cpu_soe(
        programs(), controller,
        min_instructions=8_000, warmup_instructions=5_000,
    )
    report("SOE F=1/2", enforced)
    print(
        f"forced switches under enforcement: "
        f"{sum(t.forced_switches for t in enforced.threads)}"
    )


if __name__ == "__main__":
    main()
