#!/usr/bin/env python
"""Quickstart: SOE fairness enforcement in a dozen lines.

Runs the paper's motivating scenario -- a compute-bound thread (eon)
next to a missy one (gcc) -- without and with fairness enforcement, and
prints throughput, per-thread speedups and the achieved fairness.

Run with::

    python examples/quickstart.py
"""

from repro import FairnessController, FairnessParams, RunLimits, run_single_thread, run_soe
from repro.workloads import get_profile


def main() -> None:
    gcc, eon = get_profile("gcc"), get_profile("eon")

    # Real single-thread performance: each benchmark alone on the core.
    ipc_st = [
        run_single_thread(
            profile.stream(seed=i + 1),
            miss_lat=profile.single_thread_stall(300.0),
            min_instructions=1_000_000,
        ).ipc
        for i, profile in enumerate((gcc, eon))
    ]
    print(f"single-thread IPC: gcc={ipc_st[0]:.2f}, eon={ipc_st[1]:.2f}")

    limits = RunLimits(min_instructions=1_500_000, warmup_instructions=1_000_000)
    for target in (0.0, 0.5):
        streams = [gcc.stream(seed=1), eon.stream(seed=2)]
        policy = (
            FairnessController(2, FairnessParams(fairness_target=target))
            if target > 0
            else None
        )
        result = run_soe(streams, policy, limits=limits)
        speedups = result.speedups(ipc_st)
        print(
            f"F={target:g}: throughput={result.total_ipc:.2f} IPC, "
            f"speedups gcc={speedups[0]:.2f} eon={speedups[1]:.2f}, "
            f"fairness={result.achieved_fairness(ipc_st):.3f}"
        )


if __name__ == "__main__":
    main()
