#!/usr/bin/env python
"""The Section 6 extensions: measured latencies and priorities.

Two short studies on top of the base mechanism:

1. **Variable-latency events.** A thread whose switch events mix L1
   misses (~40-cycle stalls) with memory misses (300 cycles) breaks the
   constant-latency assumption; enabling
   ``FairnessParams(measure_miss_latency=True)`` lets the controller
   measure each thread's real average event latency and restores
   enforcement accuracy.
2. **Prioritized fairness.** Passing ``weights`` to ``FairnessParams``
   retargets the mechanism from equal speedups to weighted speedup
   ratios -- thread priorities, enforced at the architectural level.

Run with::

    python examples/extensions.py
"""

from repro import FairnessController, FairnessParams, RunLimits, run_single_thread, run_soe
from repro.core import weighted_fairness
from repro.workloads import EventType, mean_event_latency, multi_event_stream, uniform_stream


def variable_latency_study() -> None:
    print("-- variable-latency events (F = 0.5) --")
    events = (EventType(ipm=600, latency=40), EventType(ipm=6_000, latency=300))
    make_streams = lambda: [
        multi_event_stream(2.0, events, seed=31, name="mixed"),
        uniform_stream(2.6, 20_000, ipm_cv=0.5, seed=32, name="compute"),
    ]
    ipc_st = [
        run_single_thread(s, miss_lat=300.0, min_instructions=1_500_000).ipc
        for s in make_streams()
    ]
    limits = RunLimits(min_instructions=1_500_000, warmup_instructions=1_000_000)
    for label, params in (
        ("assume 300 cycles", FairnessParams(fairness_target=0.5)),
        ("measure latencies", FairnessParams(fairness_target=0.5,
                                             measure_miss_latency=True)),
    ):
        controller = FairnessController(2, params)
        result = run_soe(make_streams(), controller, limits=limits)
        measured = controller.measured_latencies
        note = f", measured ~{measured[0]:.0f} cyc" if measured else ""
        print(f"  {label}: achieved fairness "
              f"{result.achieved_fairness(ipc_st):.3f}{note} "
              f"(true mean {mean_event_latency(events):.0f} cyc)")


def priority_study() -> None:
    print("\n-- prioritized fairness (Example 2's threads, F = 1) --")
    make_streams = lambda: [
        uniform_stream(2.5, 15_000, seed=1),
        uniform_stream(2.5, 1_000, seed=2),
    ]
    ipc_st = [
        run_single_thread(s, miss_lat=300.0, min_instructions=1_500_000).ipc
        for s in make_streams()
    ]
    limits = RunLimits(min_instructions=1_500_000, warmup_instructions=1_000_000)
    for weights in ((1.0, 1.0), (2.0, 1.0), (1.0, 2.0)):
        controller = FairnessController(
            2, FairnessParams(fairness_target=1.0, weights=weights)
        )
        result = run_soe(make_streams(), controller, limits=limits)
        speedups = result.speedups(ipc_st)
        print(f"  weights {weights[0]:g}:{weights[1]:g} -> speedups "
              f"{speedups[0]:.2f}/{speedups[1]:.2f} "
              f"(ratio {speedups[0] / speedups[1]:.2f}, weighted fairness "
              f"{weighted_fairness(speedups, weights):.3f})")


if __name__ == "__main__":
    variable_latency_study()
    priority_study()
