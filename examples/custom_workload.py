#!/usr/bin/env python
"""Custom workloads: phased streams, three threads, and an F sweep.

Shows the workload-construction API: a phased program (alternating
compute and memory phases, like the paper's Section 5.1.2 discussion of
performance phases), a steady compute thread, and a missy thread, all
sharing a three-way SOE core. Sweeps the fairness target and prints the
fairness/throughput tradeoff, plus the analytical model's prediction
for comparison.

Run with::

    python examples/custom_workload.py
"""

from repro import (
    FairnessController,
    FairnessParams,
    RunLimits,
    SoeModel,
    SoeParams,
    ThreadParams,
    run_single_thread,
    run_soe,
)
from repro.workloads import SegmentDistribution, phased_stream, uniform_stream


def make_streams():
    compute_phase = SegmentDistribution(ipc_no_miss=2.6, ipm=20_000, ipm_cv=0.5)
    memory_phase = SegmentDistribution(ipc_no_miss=1.6, ipm=600, ipm_cv=0.4)
    phased = phased_stream(
        [(compute_phase, 800_000), (memory_phase, 400_000)],
        seed=21,
        name="phased",
    )
    steady = uniform_stream(2.8, 30_000, ipm_cv=0.5, seed=22, name="steady")
    missy = uniform_stream(1.4, 350, ipm_cv=0.8, seed=23, name="missy")
    return [phased, steady, missy]


def main() -> None:
    ipc_st = [
        run_single_thread(stream, miss_lat=300.0, min_instructions=1_500_000).ipc
        for stream in make_streams()
    ]
    names = ["phased", "steady", "missy"]
    print("alone:", "  ".join(f"{n}={v:.2f}" for n, v in zip(names, ipc_st)))

    # Analytical prediction from aggregate characteristics (Eq. 1-10).
    model = SoeModel(
        [
            ThreadParams(2.23, 4_170),   # phased aggregate
            ThreadParams(2.8, 30_000),
            ThreadParams(1.4, 350),
        ],
        miss_lat=300.0,
        switch_lat=25.0,
    )

    print(f"\n{'F':>5} {'IPC_SOE':>8} {'fairness':>9} {'model IPC':>10} "
          f"{'model fairness':>15}")
    limits = RunLimits(min_instructions=2_000_000, warmup_instructions=1_200_000)
    for target in (0.0, 0.25, 0.5, 0.75, 1.0):
        policy = (
            FairnessController(3, FairnessParams(fairness_target=target))
            if target > 0
            else None
        )
        result = run_soe(make_streams(), policy, SoeParams(), limits)
        print(
            f"{target:>5g} {result.total_ipc:>8.2f} "
            f"{result.achieved_fairness(ipc_st):>9.3f} "
            f"{model.throughput(target):>10.2f} "
            f"{model.fairness(target):>15.3f}"
        )


if __name__ == "__main__":
    main()
