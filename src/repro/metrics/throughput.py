"""Throughput metrics (paper Section 2.4, footnote 6)."""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError

__all__ = ["soe_speedup_over_single_thread", "normalized_throughput"]


def soe_speedup_over_single_thread(
    total_soe_ipc: float, ipc_st: Sequence[float]
) -> float:
    """Footnote 6's "speedup of SOE over single thread".

    Total SOE throughput divided by the mean of the threads' single-
    thread IPCs: how much more work per cycle the machine delivers
    running the threads together than it would averaging dedicated runs.
    The paper reports 24% / 21% / 19% / 15% average speedups for
    F = 0, 1/4, 1/2, 1 under this measure.
    """
    if not ipc_st:
        raise ConfigurationError("at least one single-thread IPC is required")
    mean_st = sum(ipc_st) / len(ipc_st)
    if mean_st <= 0:
        raise ConfigurationError("single-thread IPCs must be positive")
    return total_soe_ipc / mean_st


def normalized_throughput(ipc_with_fairness: float, ipc_without: float) -> float:
    """Figure 7's y-axis: throughput normalized to the F = 0 run."""
    if ipc_without <= 0:
        raise ConfigurationError("baseline throughput must be positive")
    return ipc_with_fairness / ipc_without
