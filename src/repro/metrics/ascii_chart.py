"""Terminal chart rendering for the figure experiments.

The paper's artefacts are figures; the experiment runners print tables
plus these lightweight ASCII plots so the *shape* of each result
(crossovers, saturation, who wins where) is visible directly in a
terminal or a CI log, without a plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.errors import ConfigurationError

__all__ = ["line_chart", "bar_chart"]

_MARKERS = "ox+*#@%&"


def _bounds(values: Sequence[float]) -> tuple[float, float]:
    lo, hi = min(values), max(values)
    if lo == hi:
        lo -= 0.5
        hi += 0.5
    return lo, hi


def line_chart(
    series: Mapping[str, Sequence[float]],
    x_values: Optional[Sequence[float]] = None,
    width: int = 64,
    height: int = 14,
    y_label: str = "",
) -> str:
    """Plot one or more series against a shared x axis.

    Each series gets its own marker; overlapping points show the later
    series' marker. The y axis is annotated with min/max, the x axis
    with its first and last values.
    """
    if not series:
        raise ConfigurationError("at least one series is required")
    lengths = {len(v) for v in series.values()}
    if len(lengths) != 1:
        raise ConfigurationError("all series must have the same length")
    (length,) = lengths
    if length < 2:
        raise ConfigurationError("series need at least two points")
    if x_values is None:
        x_values = list(range(length))
    if len(x_values) != length:
        raise ConfigurationError("x_values length must match the series")
    if width < 8 or height < 3:
        raise ConfigurationError("chart must be at least 8x3")

    all_values = [v for values in series.values() for v in values]
    lo, hi = _bounds(all_values)
    x_lo, x_hi = _bounds(list(x_values))

    grid = [[" "] * width for _ in range(height)]
    for series_index, (label, values) in enumerate(series.items()):
        marker = _MARKERS[series_index % len(_MARKERS)]
        for x, y in zip(x_values, values):
            col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((hi - y) / (hi - lo) * (height - 1))
            grid[row][col] = marker

    lines = []
    if y_label:
        lines.append(y_label)
    for index, row in enumerate(grid):
        if index == 0:
            prefix = f"{hi:>8.3g} |"
        elif index == height - 1:
            prefix = f"{lo:>8.3g} |"
        else:
            prefix = " " * 8 + " |"
        lines.append(prefix + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(
        " " * 10 + f"{x_lo:<.4g}" + " " * max(1, width - 16) + f"{x_hi:>.4g}"
    )
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {label}"
        for i, label in enumerate(series)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float],
    width: int = 48,
    show_value: bool = True,
) -> str:
    """Horizontal bar chart, one labelled row per entry."""
    if not values:
        raise ConfigurationError("at least one bar is required")
    if width < 4:
        raise ConfigurationError("chart must be at least 4 wide")
    peak = max(abs(v) for v in values.values())
    if peak == 0:
        peak = 1.0
    label_width = max(len(label) for label in values)
    lines = []
    for label, value in values.items():
        bar = "#" * max(1, round(abs(value) / peak * width)) if value else ""
        suffix = f"  {value:.3g}" if show_value else ""
        lines.append(f"{label:<{label_width}} |{bar}{suffix}")
    return "\n".join(lines)
