"""Measurement and reporting helpers for SOE runs."""

from repro.metrics.ascii_chart import bar_chart, line_chart
from repro.metrics.report import (
    FairnessSummary,
    summarize_achieved_fairness,
    truncated_fairness,
)
from repro.metrics.summary import geomean, mean, stdev
from repro.metrics.throughput import normalized_throughput, soe_speedup_over_single_thread

__all__ = [
    "FairnessSummary",
    "bar_chart",
    "geomean",
    "line_chart",
    "mean",
    "normalized_throughput",
    "soe_speedup_over_single_thread",
    "stdev",
    "summarize_achieved_fairness",
    "truncated_fairness",
]
