"""Small statistics helpers shared by the experiment runners."""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import ConfigurationError

__all__ = ["mean", "stdev", "geomean"]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean."""
    if not values:
        raise ConfigurationError("mean of an empty sequence")
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Sample standard deviation (0.0 for a single value)."""
    if not values:
        raise ConfigurationError("stdev of an empty sequence")
    if len(values) == 1:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / (len(values) - 1))


def geomean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    if not values:
        raise ConfigurationError("geomean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ConfigurationError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
