"""Achieved-fairness reporting (Figure 8 support).

Figure 8 (right) averages ``min(F, achieved_fairness)`` across runs:
truncating at the target F removes the bias of runs that are fair even
without enforcement (they would otherwise pull the average towards 1
regardless of the mechanism). No truncation is applied for F = 0.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError

__all__ = ["truncated_fairness", "FairnessSummary", "summarize_achieved_fairness"]


#: Tolerance for float noise in achieved-fairness ratios. Achieved
#: fairness is min/max of measured speedups, so it is <= 1 by
#: construction -- but the division can land a few ulps above 1.0 (or
#: below 0.0); such values are clamped, while anything further out
#: still signals a real computation bug and raises.
_FAIRNESS_NOISE = 1e-6


def truncated_fairness(achieved: float, fairness_target: float) -> float:
    """``min(F, achieved)``, except no truncation when F = 0.

    ``achieved`` values within :data:`_FAIRNESS_NOISE` outside [0, 1]
    are clamped back into range instead of rejected.
    """
    if not 0.0 <= fairness_target <= 1.0:
        raise ConfigurationError("fairness target must be in [0, 1]")
    if not -_FAIRNESS_NOISE <= achieved <= 1.0 + _FAIRNESS_NOISE:
        raise ConfigurationError(f"achieved fairness out of range: {achieved}")
    achieved = min(max(achieved, 0.0), 1.0)
    # repro-lint: disable=RL004 - F=0 is an exact, validated sentinel input
    if fairness_target == 0.0:
        return achieved
    return min(fairness_target, achieved)


@dataclass(frozen=True)
class FairnessSummary:
    """Mean and standard deviation of (truncated) achieved fairness."""

    fairness_target: float
    mean: float
    stdev: float
    count: int


def summarize_achieved_fairness(
    achieved_values: Sequence[float], fairness_target: float
) -> FairnessSummary:
    """Figure 8 (right): aggregate achieved fairness across runs."""
    if not achieved_values:
        raise ConfigurationError("at least one run is required")
    truncated = [truncated_fairness(v, fairness_target) for v in achieved_values]
    mean = sum(truncated) / len(truncated)
    if len(truncated) > 1:
        variance = sum((v - mean) ** 2 for v in truncated) / (len(truncated) - 1)
    else:
        variance = 0.0
    return FairnessSummary(
        fairness_target=fairness_target,
        mean=mean,
        stdev=math.sqrt(variance),
        count=len(truncated),
    )
