"""Cycle-level out-of-order pipeline with SOE multithreading.

The pipeline models the paper's P6-derived core (Section 4.1):

* 4-wide fetch / rename / retire; ROB, RS, load and store buffers;
* gshare + BTB branch prediction (shared, not flushed on switch);
* L1I/L1D, unified L2, i/dTLB with page walks, pipelined bus, fixed
  300-cycle memory; clustered misses to one line merge (overlap);
* retirement-stage SOE trigger: when the ROB head is a load flagged
  with an unresolved L2 miss, the active thread is switched out, the
  pipeline drains (``drain_latency``), and in-flight uops are returned
  to the thread's trace cursor for later refetch;
* senior stores keep draining to the cache after a switch, and loads
  forward only from same-thread stores;
* the attached :class:`~repro.core.policy.SwitchPolicy` adds the
  fairness mechanism's instruction quota and the maximum-cycles quota.

Trace-driven modelling choices (standard for this class of simulator):
wrong-path execution is approximated by stalling fetch from a
mispredicted branch until it resolves plus a redirect penalty, and
architectural values are never computed.

Performance notes (see docs/PERFORMANCE.md): every hot structure uses
``__slots__``, uop decode happens once at fetch via a precomputed
table (port index, kind, latency) instead of per-cycle enum dispatch,
store-to-load forwarding uses an address-indexed ROB store map, and
the main loop fast-forwards over provably idle cycles straight to the
next retirement / wakeup / frontend / quota / Delta-boundary event.
All of these are bit-identical transformations -- golden tests in
``tests/integration/test_golden_kernels.py`` pin the exact outputs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from math import ceil, isinf
from typing import Optional, Sequence

from repro.core.policy import NoFairnessPolicy, SwitchPolicy
from repro.cpu.branch import BranchPredictor
from repro.cpu.hierarchy import AccessResult, MemoryHierarchy
from repro.cpu.isa import NUM_ARCH_REGS, MicroOp, OpClass
from repro.cpu.machine import MachineConfig
from repro.cpu.program import ProgramCursor, TraceProgram
from repro.errors import ConfigurationError, SimulationError

__all__ = ["CpuThreadStats", "CpuRunResult", "OooPipeline"]

# Uop kinds: the execute/retire dispatch key, decoded once at fetch.
_KIND_SIMPLE = 0  # ALU / NOP / MUL / FP
_KIND_BRANCH = 1
_KIND_STORE = 2
_KIND_LOAD = 3

# Issue-port indices (ALU-class ops share port 0).
_PORT_ALU, _PORT_MUL, _PORT_FP, _PORT_LOAD, _PORT_STORE = range(5)


class _Inflight:
    """One in-flight uop instance."""

    __slots__ = (
        "uop", "thread_id", "seq", "visible_at", "deps", "completed_at",
        "issued", "access", "access_issued_at", "mispredicted", "forwarded",
        "port", "kind", "exec_latency",
    )

    def __init__(self, uop: MicroOp, thread_id: int, seq: int, visible_at: int) -> None:
        self.uop = uop
        self.thread_id = thread_id
        self.seq = seq
        self.visible_at = visible_at
        self.deps: list["_Inflight"] = []
        self.completed_at: Optional[int] = None
        self.issued = False
        self.access: Optional[AccessResult] = None
        self.access_issued_at: Optional[int] = None
        self.mispredicted = False
        self.forwarded = False
        self.port = _PORT_ALU
        self.kind = _KIND_SIMPLE
        self.exec_latency = 1

    def ready(self, now: int) -> bool:
        return all(
            d.completed_at is not None and d.completed_at <= now for d in self.deps
        )


class _ThreadContext:
    """Per-thread fetch/rename state and raw statistics."""

    __slots__ = (
        "thread_id", "cursor", "producers", "ready_at", "last_dispatch_seq",
        "current_fetch_line", "retired", "run_cycles", "misses",
        "miss_switches", "forced_switches", "cycle_quota_switches",
    )

    def __init__(self, thread_id: int, program: TraceProgram) -> None:
        self.thread_id = thread_id
        self.cursor: ProgramCursor = program.cursor()
        #: arch reg -> producing in-flight uop (None = value ready)
        self.producers: list[Optional[_Inflight]] = [None] * NUM_ARCH_REGS
        self.ready_at = 0
        self.last_dispatch_seq = -1
        self.current_fetch_line: Optional[int] = None

        self.retired = 0
        self.run_cycles = 0
        self.misses = 0
        self.miss_switches = 0
        self.forced_switches = 0
        self.cycle_quota_switches = 0

    def snapshot(self) -> tuple:
        return (self.retired, self.run_cycles, self.misses, self.miss_switches,
                self.forced_switches, self.cycle_quota_switches)


@dataclass(frozen=True)
class CpuThreadStats:
    """Per-thread statistics over the measured window."""

    retired: int
    run_cycles: int
    misses: int
    miss_switches: int
    forced_switches: int
    cycle_quota_switches: int

    @property
    def switches(self) -> int:
        return self.miss_switches + self.forced_switches + self.cycle_quota_switches


@dataclass(frozen=True)
class CpuRunResult:
    """Outcome of one detailed-core run (measured window)."""

    cycles: int
    threads: tuple[CpuThreadStats, ...]
    switch_latencies: tuple[int, ...] = field(default=())
    l2_miss_rate: float = 0.0
    branch_mispredict_rate: float = 0.0

    @property
    def ipcs(self) -> list[float]:
        return [t.retired / self.cycles for t in self.threads]

    @property
    def total_ipc(self) -> float:
        return sum(self.ipcs)

    @property
    def mean_switch_latency(self) -> float:
        if not self.switch_latencies:
            return 0.0
        return sum(self.switch_latencies) / len(self.switch_latencies)


class OooPipeline:
    """The core. One instance simulates one run (single- or multi-thread)."""

    def __init__(
        self,
        programs: Sequence[TraceProgram],
        config: MachineConfig = MachineConfig(),
        policy: Optional[SwitchPolicy] = None,
    ) -> None:
        if not programs:
            raise ConfigurationError("at least one program is required")
        self.config = config
        self.policy = policy if policy is not None else NoFairnessPolicy()
        # Selection hook: consulted only when the policy overrides it,
        # so the default round-robin dispatch stays untouched otherwise.
        self._policy_select = (
            self.policy.select_thread
            if type(self.policy).select_thread is not SwitchPolicy.select_thread
            else None
        )
        self.hierarchy = MemoryHierarchy(config)
        self.predictor = BranchPredictor(
            config.predictor_history_bits,
            config.predictor_table_entries,
            config.btb_entries,
        )
        self.threads = [
            _ThreadContext(i, program) for i, program in enumerate(programs)
        ]
        self.now = 0
        self._seq = 0
        self._dispatch_counter = 0

        self._active: Optional[_ThreadContext] = None
        self._fetch_queue: deque[_Inflight] = deque()
        self._rob: deque[_Inflight] = deque()
        self._rs: list[_Inflight] = []
        self._loads_in_flight = 0
        #: senior stores: (thread_id, address) awaiting cache drain
        self._store_buffer: deque[tuple[int, int]] = deque()
        #: address -> seqs of un-retired active-thread stores in the ROB
        #: (in program order), so forwarding lookups skip the ROB scan
        self._rob_stores: dict[int, deque[int]] = {}

        self._fetch_resume_at = 0
        self._pending_branch: Optional[_Inflight] = None
        self._dispatch_start = 0
        self._first_retire_seen = False
        self._switch_started_at: Optional[int] = None
        self.switch_latencies: list[int] = []
        #: min ready_at over pending (not-ready, not-exhausted) threads,
        #: refreshed by each _pick_ready call (satellite: no per-cycle
        #: list rebuild in the no-runnable idle-skip)
        self._pending_ready_min: Optional[int] = None
        self._total_retired = 0

        # Decode table: OpClass -> (issue port, kind, execute latency),
        # consulted once per fetched uop instead of per issue attempt.
        self._decode: dict[OpClass, tuple[int, int, int]] = {
            OpClass.ALU: (_PORT_ALU, _KIND_SIMPLE, config.alu_latency),
            OpClass.NOP: (_PORT_ALU, _KIND_SIMPLE, config.alu_latency),
            OpClass.BRANCH: (_PORT_ALU, _KIND_BRANCH, config.alu_latency),
            OpClass.MUL: (_PORT_MUL, _KIND_SIMPLE, config.mul_latency),
            OpClass.FP: (_PORT_FP, _KIND_SIMPLE, config.fp_latency),
            OpClass.LOAD: (_PORT_LOAD, _KIND_LOAD, 0),
            OpClass.STORE: (_PORT_STORE, _KIND_STORE, 1),
        }
        self._port_limits = (
            config.alu_ports, config.mul_ports, config.fp_ports,
            config.load_ports, config.store_ports,
        )
        # Invariant config scalars, hoisted out of the cycle loop.
        self._fetch_width = config.fetch_width
        self._rename_width = config.rename_width
        self._retire_width = config.retire_width
        self._rob_entries = config.rob_entries
        self._rs_entries = config.rs_entries
        self._load_buffer_entries = config.load_buffer_entries
        self._store_buffer_entries = config.store_buffer_entries
        self._fetch_queue_entries = config.fetch_queue_entries
        self._frontend_latency = config.frontend_latency
        self._branch_redirect_penalty = config.branch_redirect_penalty
        self._l1i_line_bytes = config.l1i.line_bytes
        self._l1i_latency = config.l1i.latency
        self._l1d_latency = config.l1d.latency
        self._max_cycles_quota = config.max_cycles_quota
        self._switch_on_l1 = config.switch_event == "l1"

    # ------------------------------------------------------------------
    # Scheduling / switching
    # ------------------------------------------------------------------
    def _pick_ready(self) -> Optional[_ThreadContext]:
        """Oldest-dispatch ready thread; refreshes the cached minimum
        ``ready_at`` over pending threads in the same single pass. A
        policy overriding ``select_thread`` replaces the round-robin
        choice (but not the bookkeeping)."""
        now = self.now
        select = self._policy_select
        ready: Optional[list[int]] = [] if select is not None else None
        best: Optional[_ThreadContext] = None
        best_seq = 0
        pending_min: Optional[int] = None
        for t in self.threads:
            if t.cursor.exhausted:
                continue
            r = t.ready_at
            if r <= now:
                if ready is not None:
                    ready.append(t.thread_id)
                s = t.last_dispatch_seq
                if best is None or s < best_seq:
                    best = t
                    best_seq = s
            elif pending_min is None or r < pending_min:
                pending_min = r
        self._pending_ready_min = pending_min
        if select is not None and ready:
            choice = select(tuple(ready), float(now))
            if choice is not None:
                if choice not in ready:
                    raise SimulationError(
                        f"policy selected thread {choice!r} at cycle {now}, "
                        f"but the ready set is {tuple(ready)}"
                    )
                return self.threads[choice]
        return best

    def _dispatch(self, thread: _ThreadContext) -> None:
        thread.last_dispatch_seq = self._dispatch_counter
        self._dispatch_counter += 1
        self._active = thread
        self._dispatch_start = self.now
        self._first_retire_seen = False
        thread.current_fetch_line = None
        self._pending_branch = None
        self._fetch_resume_at = max(self._fetch_resume_at, self.now)
        if self._switch_started_at is not None:
            # Measure the refill latency from the dispatch, not from the
            # switch: cycles the previous thread's idle gap already paid
            # are not switch overhead.
            self._switch_started_at = self.now
        self.policy.on_run_start(thread.thread_id, float(self.now))

    def _flush_active(self) -> None:
        """Return all in-flight uops of the active thread to its cursor."""
        thread = self._active
        assert thread is not None
        flushed: list[_Inflight] = []
        flushed.extend(u for u in self._fetch_queue)
        flushed.extend(u for u in self._rob)
        self._fetch_queue.clear()
        # All in-flight uops belong to the active thread by construction.
        self._rob.clear()
        self._rs.clear()
        self._rob_stores.clear()
        self._loads_in_flight = 0
        self._pending_branch = None
        flushed.sort(key=lambda u: u.seq)
        thread.cursor.push_back(u.uop for u in flushed)
        thread.producers = [None] * NUM_ARCH_REGS

    def _switch_out(self, reason: str, thread_ready_at: int) -> None:
        thread = self._active
        assert thread is not None
        self._flush_active()
        thread.ready_at = thread_ready_at
        self.policy.on_switch_out(thread.thread_id, reason, float(self.now))
        self._active = None
        # Drain: the next thread cannot start fetching before this.
        self._fetch_resume_at = self.now + self.config.drain_latency
        self._switch_started_at = self.now

    # ------------------------------------------------------------------
    # Pipeline stages
    # ------------------------------------------------------------------
    def _retire(self) -> int:
        thread = self._active
        if thread is None:
            return 0
        rob = self._rob
        if not rob:
            return 0
        now = self.now
        retired = 0
        multithreaded = len(self.threads) > 1
        retire_width = self._retire_width
        while retired < retire_width and rob:
            head = rob[0]
            completed_at = head.completed_at
            if completed_at is None or completed_at > now:
                if (
                    multithreaded
                    and head.kind == _KIND_LOAD
                    and head.issued
                    and head.access is not None
                    and self._is_switch_event(head.access)
                    and completed_at is not None
                ):
                    # SOE trigger: unresolved miss at the ROB head.
                    thread.misses += 1
                    thread.miss_switches += 1
                    latency = None
                    if head.access_issued_at is not None:
                        latency = float(completed_at - head.access_issued_at)
                    self.policy.on_miss(
                        thread.thread_id, float(now), latency=latency
                    )
                    self._switch_out("miss", completed_at)
                    return retired
                break
            kind = head.kind
            if kind == _KIND_STORE:
                if len(self._store_buffer) >= self._store_buffer_entries:
                    break  # retirement stalls on a full store buffer
                address = head.uop.address
                self._store_buffer.append((head.thread_id, address))
                seqs = self._rob_stores[address]
                seqs.popleft()
                if not seqs:
                    del self._rob_stores[address]
            elif kind == _KIND_LOAD:
                self._loads_in_flight -= 1
            rob.popleft()
            thread.retired += 1
            self._total_retired += 1
            retired += 1
            if self._switch_started_at is not None:
                self.switch_latencies.append(now - self._switch_started_at)
                self._switch_started_at = None
        return retired

    def _is_switch_event(self, access: AccessResult) -> bool:
        """Does this access's miss trigger a thread switch?

        ``switch_event="l2"`` is the paper's base scheme (switch only on
        misses that go to memory); ``"l1"`` also switches on L1 misses
        that hit the L2 -- the dMT-style Section 6 variant.
        """
        if self._switch_on_l1:
            return access.level != "l1"
        return access.l2_miss

    def _issue(self) -> int:
        rs = self._rs
        if not rs:
            return 0
        now = self.now
        free = list(self._port_limits)
        issued = 0
        # ALU-class ops share port 0 (decoded at fetch). The RS list is
        # kept in seq (age) order by construction, so oldest-first
        # scheduling is a plain scan; the keep-list rebuild preserves
        # that order for the survivors.
        keep: list[_Inflight] = []
        keep_append = keep.append
        for entry in rs:
            if free[entry.port]:
                for d in entry.deps:
                    completed_at = d.completed_at
                    if completed_at is None or completed_at > now:
                        keep_append(entry)
                        break
                else:
                    free[entry.port] -= 1
                    self._execute(entry)
                    issued += 1
            else:
                keep_append(entry)
        if issued:
            self._rs = keep
        return issued

    def _execute(self, entry: _Inflight) -> None:
        entry.issued = True
        now = self.now
        kind = entry.kind
        if kind == _KIND_SIMPLE:
            entry.completed_at = now + entry.exec_latency
        elif kind == _KIND_LOAD:
            if self._forwarding_hit(entry):
                entry.forwarded = True
                entry.completed_at = now + 1 + self._l1d_latency
            else:
                access = self.hierarchy.data_access(entry.uop.address, now + 1)
                entry.access = access
                entry.access_issued_at = now + 1
                entry.completed_at = access.ready_at
        elif kind == _KIND_BRANCH:
            completed_at = now + entry.exec_latency
            entry.completed_at = completed_at
            if entry.mispredicted:
                # Fetch resumes after resolve + redirect penalty.
                resume = completed_at + self._branch_redirect_penalty
                if resume > self._fetch_resume_at:
                    self._fetch_resume_at = resume
                if self._pending_branch is entry:
                    self._pending_branch = None
        else:  # _KIND_STORE
            # Stores only generate their address before retirement.
            entry.completed_at = now + 1

    def _forwarding_hit(self, load: _Inflight) -> bool:
        """Store-to-load forwarding: an older same-thread store to the
        same address, still in the ROB or the senior store buffer."""
        address = load.uop.address
        for thread_id, store_address in self._store_buffer:
            if store_address == address:
                if thread_id == load.thread_id:
                    return True
                # Cross-thread senior store: data exists but is not
                # forwarded (Section 4.1); the load must access the
                # cache.
                return False
        # Every un-retired ROB store belongs to the active thread, so
        # the address index fully replaces the ROB scan.
        seqs = self._rob_stores.get(address)
        return seqs is not None and seqs[0] < load.seq

    def _rename(self) -> int:
        thread = self._active
        if thread is None:
            return 0
        fq = self._fetch_queue
        if not fq:
            return 0
        now = self.now
        rob = self._rob
        rs = self._rs
        producers = thread.producers
        renamed = 0
        rename_width = self._rename_width
        rob_entries = self._rob_entries
        rs_entries = self._rs_entries
        while renamed < rename_width and fq:
            entry = fq[0]
            if (
                entry.visible_at > now
                or len(rob) >= rob_entries
                or len(rs) >= rs_entries
            ):
                break
            kind = entry.kind
            if (
                kind == _KIND_LOAD
                and self._loads_in_flight >= self._load_buffer_entries
            ):
                break
            fq.popleft()
            deps = entry.deps
            for reg in entry.uop.srcs:
                producer = producers[reg]
                if producer is not None:
                    deps.append(producer)
            dest = entry.uop.dest
            if dest is not None:
                producers[dest] = entry
            if kind == _KIND_LOAD:
                self._loads_in_flight += 1
            elif kind == _KIND_STORE:
                address = entry.uop.address
                seqs = self._rob_stores.get(address)
                if seqs is None:
                    self._rob_stores[address] = deque((entry.seq,))
                else:
                    seqs.append(entry.seq)
            rob.append(entry)
            rs.append(entry)
            renamed += 1
        return renamed

    def _fetch(self) -> int:
        thread = self._active
        if thread is None:
            return 0
        if self.now < self._fetch_resume_at:
            return 0
        if self._pending_branch is not None:
            return 0  # stalled behind an unresolved mispredicted branch
        now = self.now
        fq = self._fetch_queue
        cursor = thread.cursor
        fetched = 0
        fetch_width = self._fetch_width
        fetch_queue_entries = self._fetch_queue_entries
        line_bytes = self._l1i_line_bytes
        while fetched < fetch_width and len(fq) < fetch_queue_entries:
            uop = cursor.fetch()
            if uop is None:
                break
            line = uop.pc // line_bytes
            if line != thread.current_fetch_line:
                thread.current_fetch_line = line
                access = self.hierarchy.fetch_access(uop.pc, now)
                if access.ready_at > now + self._l1i_latency:
                    # I-cache (or iTLB) miss: this uop arrives late and
                    # fetch stalls until the line is in.
                    self._fetch_resume_at = access.ready_at
                    entry = self._make_entry(uop, thread, access.ready_at)
                    fq.append(entry)
                    self._maybe_stall_on_branch(entry)
                    return fetched + 1
            entry = self._make_entry(uop, thread, now)
            fq.append(entry)
            fetched += 1
            if self._maybe_stall_on_branch(entry):
                return fetched
        return fetched

    def _make_entry(self, uop: MicroOp, thread: _ThreadContext, fetch_time: int) -> _Inflight:
        try:
            port, kind, latency = self._decode[uop.opclass]
        except KeyError:  # pragma: no cover - exhaustive enum
            raise SimulationError(f"unknown op class {uop.opclass}") from None
        entry = _Inflight(
            uop, thread.thread_id, self._seq,
            fetch_time + self._frontend_latency,
        )
        entry.port = port
        entry.kind = kind
        entry.exec_latency = latency
        self._seq += 1
        return entry

    def _maybe_stall_on_branch(self, entry: _Inflight) -> bool:
        if entry.kind != _KIND_BRANCH:
            return False
        correct = self.predictor.predict_and_update(entry.uop)
        if not correct:
            entry.mispredicted = True
            self._pending_branch = entry
            return True
        if entry.uop.taken:
            # Taken branches redirect the fetch line.
            thread = self.threads[entry.thread_id]
            thread.current_fetch_line = None
        return False

    def _drain_stores(self) -> None:
        if self._store_buffer:
            thread_id, address = self._store_buffer.popleft()
            self.hierarchy.store_access(address, self.now)

    # ------------------------------------------------------------------
    # Quota checks (fairness mechanism / time sharing / max-cycles)
    # ------------------------------------------------------------------
    def _check_quotas(self) -> None:
        thread = self._active
        if thread is None or len(self.threads) <= 1:
            return
        if self.policy.instruction_budget(thread.thread_id) <= 0:
            thread.forced_switches += 1
            self._switch_out("quota", self.now)
            return
        dispatch_cycles = self.now - self._dispatch_start
        budget = min(
            self.policy.cycle_budget(thread.thread_id),
            self._max_cycles_quota,
        )
        if dispatch_cycles >= budget:
            thread.cycle_quota_switches += 1
            self._switch_out("cycle_quota", self.now)

    # ------------------------------------------------------------------
    # Event-driven fast-forward
    # ------------------------------------------------------------------
    def _next_event_cycle(
        self, thread: _ThreadContext, multithreaded: bool, max_cycles: int
    ) -> int:
        """First future cycle at which a provably idle pipeline can act.

        Called right after a cycle in which every stage did nothing (no
        retire/issue/rename/fetch/drain, no switch, empty store buffer).
        In that state the machine is frozen until one of a small set of
        timed events; anything the skipped cycles *would* have done is
        replayed in batch by the caller (``run_cycles`` and the policy's
        ``on_retired`` cycle accounting are linear in cycles). The
        returned cycle is a safe lower bound on the next event:

        * ROB-head completion (retirement, and the SOE miss trigger's
          own resolution -- if the trigger were armed it would already
          have fired this cycle);
        * RS wakeup: the earliest ``max(dep.completed_at)`` over
          entries whose deps are all scheduled (the oldest unissued
          entry always qualifies, and ports are free when nothing
          issued);
        * frontend: the fetch-queue head's ``visible_at`` when rename
          has room, or ``_fetch_resume_at`` when fetch is merely
          waiting out a redirect/i-miss/drain;
        * quota horizon: ``dispatch_cycles`` grows by 1/cycle and the
          cycle budget shrinks by at most 1/cycle, so the quota check
          cannot trip for another ceil(slack/2) cycles;
        * the next Delta boundary (``ceil`` of the policy's boundary,
          which fires at the first integer cycle >= it);
        * the run's ``max_cycles`` horizon.
        """
        now = self.now  # first not-yet-simulated cycle
        target = max_cycles
        rob = self._rob
        if rob:
            completed_at = rob[0].completed_at
            if completed_at is not None and completed_at < target:
                target = completed_at
        for entry in self._rs:
            wake = 0
            for d in entry.deps:
                completed_at = d.completed_at
                if completed_at is None:
                    wake = -1
                    break
                if completed_at > wake:
                    wake = completed_at
            if wake >= 0 and wake < target:
                target = wake
        fq = self._fetch_queue
        if (
            fq
            and len(rob) < self._rob_entries
            and len(self._rs) < self._rs_entries
        ):
            head = fq[0]
            if not (
                head.kind == _KIND_LOAD
                and self._loads_in_flight >= self._load_buffer_entries
            ):
                if head.visible_at < target:
                    target = head.visible_at
        if (
            len(fq) < self._fetch_queue_entries
            and self._pending_branch is None
            and not thread.cursor.exhausted
        ):
            if self._fetch_resume_at < target:
                target = self._fetch_resume_at
        if multithreaded:
            budget = min(
                self.policy.cycle_budget(thread.thread_id),
                self._max_cycles_quota,
            )
            # The quota check last ran (and passed) at cycle now - 1.
            slack = budget - (now - 1 - self._dispatch_start)
            horizon = now - 1 + int(ceil(slack / 2.0))
            if horizon < target:
                target = horizon
        boundary = self.policy.next_boundary(float(now - 1))
        if not isinf(boundary):
            boundary_cycle = int(ceil(boundary))
            if boundary_cycle < target:
                target = boundary_cycle
        return target if target > now else now

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(
        self,
        min_instructions: int,
        warmup_instructions: int = 0,
        max_cycles: int = 50_000_000,
    ) -> CpuRunResult:
        """Run until every thread retired ``min_instructions``."""
        if min_instructions <= 0:
            raise ConfigurationError("min_instructions must be positive")
        snapshot_time: Optional[int] = None
        snapshots: list[tuple] = []
        if warmup_instructions == 0:
            snapshot_time = 0
            snapshots = [t.snapshot() for t in self.threads]

        policy = self.policy
        threads = self.threads
        multithreaded = len(threads) > 1
        retire = self._retire
        issue = self._issue
        rename = self._rename
        fetch = self._fetch
        store_buffer = self._store_buffer
        hierarchy_store = self.hierarchy.store_access
        thread_finished = self._thread_finished

        while self.now < max_cycles:
            if all(thread_finished(t, min_instructions) for t in threads):
                break
            if (
                snapshot_time is None
                and self._total_retired >= warmup_instructions
            ):
                snapshot_time = self.now
                snapshots = [t.snapshot() for t in threads]
                self.hierarchy.reset_statistics()
                self.predictor.reset_statistics()
                self.switch_latencies = []

            if (
                self._active is not None
                and not self._rob
                and not self._fetch_queue
                and self._active.cursor.exhausted
            ):
                # The active thread ran out of trace: release the core.
                self.policy.on_switch_out(
                    self._active.thread_id, "done", float(self.now)
                )
                self._active = None

            if self._active is None:
                candidate = self._pick_ready()
                if candidate is not None:
                    self._dispatch(candidate)
                else:
                    pending_min = self._pending_ready_min
                    if pending_min is None:
                        break  # every thread's trace is exhausted
                    # Nothing runnable: skip idle time in one hop (the
                    # store buffer still drains one store per cycle).
                    target = min(pending_min, max_cycles)
                    while store_buffer and self.now < target:
                        self._drain_stores()
                        self.now += 1
                    boundary = policy.next_boundary(float(self.now))
                    while boundary < target:
                        self.now = int(boundary)
                        policy.on_boundary(boundary)
                        boundary = policy.next_boundary(float(self.now))
                    if self.now < target:
                        self.now = target
                    continue

            retired_now = retire()
            issued = issue()
            renamed = rename()
            fetched = fetch()
            if store_buffer:
                drained = True
                _, address = store_buffer.popleft()
                hierarchy_store(address, self.now)
            else:
                drained = False

            thread = self._active
            if thread is not None:
                if retired_now > 0 and not self._first_retire_seen:
                    self._first_retire_seen = True
                if self._first_retire_seen:
                    thread.run_cycles += 1
                    policy.on_retired(thread.thread_id, retired_now, 1.0)
                elif retired_now:  # pragma: no cover - defensive
                    policy.on_retired(thread.thread_id, retired_now, 0.0)
                self._check_quotas()

            boundary = policy.next_boundary(float(self.now))
            if boundary <= self.now:
                policy.on_boundary(boundary)

            self.now += 1

            if (
                thread is not None
                and self._active is thread
                and not retired_now
                and not issued
                and not renamed
                and not fetched
                and not drained
                and not store_buffer
            ):
                # Provably idle cycle: every skipped cycle up to the
                # next event would repeat it verbatim, so replay their
                # only side effects (cycle accounting) in one batch.
                target = self._next_event_cycle(thread, multithreaded, max_cycles)
                skipped = target - self.now
                if skipped > 0:
                    if self._first_retire_seen:
                        thread.run_cycles += skipped
                        policy.on_retired(thread.thread_id, 0, float(skipped))
                    self.now = target

        if snapshot_time is None:
            snapshot_time = 0
            snapshots = [(0, 0, 0, 0, 0, 0) for _ in self.threads]
        return self._build_result(snapshot_time, snapshots)

    def _thread_finished(self, thread: _ThreadContext, min_instructions: int) -> bool:
        if thread.retired >= min_instructions:
            return True
        if not thread.cursor.exhausted:
            return False
        # End-of-trace: wait for the thread's in-flight uops to drain.
        return not (
            self._active is thread and (self._rob or self._fetch_queue)
        )

    def _build_result(self, start_time: int, snapshots: list[tuple]) -> CpuRunResult:
        window = self.now - start_time
        if window <= 0:
            raise SimulationError("measurement window is empty")
        stats = []
        for thread, base in zip(self.threads, snapshots):
            retired0, cycles0, misses0, msw0, fsw0, qsw0 = base
            stats.append(
                CpuThreadStats(
                    retired=thread.retired - retired0,
                    run_cycles=thread.run_cycles - cycles0,
                    misses=thread.misses - misses0,
                    miss_switches=thread.miss_switches - msw0,
                    forced_switches=thread.forced_switches - fsw0,
                    cycle_quota_switches=thread.cycle_quota_switches - qsw0,
                )
            )
        return CpuRunResult(
            cycles=window,
            threads=tuple(stats),
            switch_latencies=tuple(self.switch_latencies),
            l2_miss_rate=self.hierarchy.l2.miss_rate,
            branch_mispredict_rate=self.predictor.misprediction_rate,
        )
