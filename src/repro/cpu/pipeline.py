"""Cycle-level out-of-order pipeline with SOE multithreading.

The pipeline models the paper's P6-derived core (Section 4.1):

* 4-wide fetch / rename / retire; ROB, RS, load and store buffers;
* gshare + BTB branch prediction (shared, not flushed on switch);
* L1I/L1D, unified L2, i/dTLB with page walks, pipelined bus, fixed
  300-cycle memory; clustered misses to one line merge (overlap);
* retirement-stage SOE trigger: when the ROB head is a load flagged
  with an unresolved L2 miss, the active thread is switched out, the
  pipeline drains (``drain_latency``), and in-flight uops are returned
  to the thread's trace cursor for later refetch;
* senior stores keep draining to the cache after a switch, and loads
  forward only from same-thread stores;
* the attached :class:`~repro.core.policy.SwitchPolicy` adds the
  fairness mechanism's instruction quota and the maximum-cycles quota.

Trace-driven modelling choices (standard for this class of simulator):
wrong-path execution is approximated by stalling fetch from a
mispredicted branch until it resolves plus a redirect penalty, and
architectural values are never computed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.policy import NoFairnessPolicy, SwitchPolicy
from repro.cpu.branch import BranchPredictor
from repro.cpu.hierarchy import AccessResult, MemoryHierarchy
from repro.cpu.isa import NUM_ARCH_REGS, MicroOp, OpClass
from repro.cpu.machine import MachineConfig
from repro.cpu.program import ProgramCursor, TraceProgram
from repro.errors import ConfigurationError, SimulationError

__all__ = ["CpuThreadStats", "CpuRunResult", "OooPipeline"]


class _Inflight:
    """One in-flight uop instance."""

    __slots__ = (
        "uop", "thread_id", "seq", "visible_at", "deps", "completed_at",
        "issued", "access", "access_issued_at", "mispredicted", "forwarded",
    )

    def __init__(self, uop: MicroOp, thread_id: int, seq: int, visible_at: int) -> None:
        self.uop = uop
        self.thread_id = thread_id
        self.seq = seq
        self.visible_at = visible_at
        self.deps: list["_Inflight"] = []
        self.completed_at: Optional[int] = None
        self.issued = False
        self.access: Optional[AccessResult] = None
        self.access_issued_at: Optional[int] = None
        self.mispredicted = False
        self.forwarded = False

    def ready(self, now: int) -> bool:
        return all(
            d.completed_at is not None and d.completed_at <= now for d in self.deps
        )


class _ThreadContext:
    """Per-thread fetch/rename state and raw statistics."""

    def __init__(self, thread_id: int, program: TraceProgram) -> None:
        self.thread_id = thread_id
        self.cursor: ProgramCursor = program.cursor()
        #: arch reg -> producing in-flight uop (None = value ready)
        self.producers: list[Optional[_Inflight]] = [None] * NUM_ARCH_REGS
        self.ready_at = 0
        self.last_dispatch_seq = -1
        self.current_fetch_line: Optional[int] = None

        self.retired = 0
        self.run_cycles = 0
        self.misses = 0
        self.miss_switches = 0
        self.forced_switches = 0
        self.cycle_quota_switches = 0

    def snapshot(self) -> tuple:
        return (self.retired, self.run_cycles, self.misses, self.miss_switches,
                self.forced_switches, self.cycle_quota_switches)


@dataclass(frozen=True)
class CpuThreadStats:
    """Per-thread statistics over the measured window."""

    retired: int
    run_cycles: int
    misses: int
    miss_switches: int
    forced_switches: int
    cycle_quota_switches: int

    @property
    def switches(self) -> int:
        return self.miss_switches + self.forced_switches + self.cycle_quota_switches


@dataclass(frozen=True)
class CpuRunResult:
    """Outcome of one detailed-core run (measured window)."""

    cycles: int
    threads: tuple[CpuThreadStats, ...]
    switch_latencies: tuple[int, ...] = field(default=())
    l2_miss_rate: float = 0.0
    branch_mispredict_rate: float = 0.0

    @property
    def ipcs(self) -> list[float]:
        return [t.retired / self.cycles for t in self.threads]

    @property
    def total_ipc(self) -> float:
        return sum(self.ipcs)

    @property
    def mean_switch_latency(self) -> float:
        if not self.switch_latencies:
            return 0.0
        return sum(self.switch_latencies) / len(self.switch_latencies)


class OooPipeline:
    """The core. One instance simulates one run (single- or multi-thread)."""

    def __init__(
        self,
        programs: Sequence[TraceProgram],
        config: MachineConfig = MachineConfig(),
        policy: Optional[SwitchPolicy] = None,
    ) -> None:
        if not programs:
            raise ConfigurationError("at least one program is required")
        self.config = config
        self.policy = policy if policy is not None else NoFairnessPolicy()
        self.hierarchy = MemoryHierarchy(config)
        self.predictor = BranchPredictor(
            config.predictor_history_bits,
            config.predictor_table_entries,
            config.btb_entries,
        )
        self.threads = [
            _ThreadContext(i, program) for i, program in enumerate(programs)
        ]
        self.now = 0
        self._seq = 0
        self._dispatch_counter = 0

        self._active: Optional[_ThreadContext] = None
        self._fetch_queue: deque[_Inflight] = deque()
        self._rob: deque[_Inflight] = deque()
        self._rs: list[_Inflight] = []
        self._loads_in_flight = 0
        #: senior stores: (thread_id, address) awaiting cache drain
        self._store_buffer: deque[tuple[int, int]] = deque()

        self._fetch_resume_at = 0
        self._pending_branch: Optional[_Inflight] = None
        self._dispatch_start = 0
        self._first_retire_seen = False
        self._switch_started_at: Optional[int] = None
        self.switch_latencies: list[int] = []

    # ------------------------------------------------------------------
    # Scheduling / switching
    # ------------------------------------------------------------------
    def _pick_ready(self) -> Optional[_ThreadContext]:
        ready = [
            t for t in self.threads
            if t.ready_at <= self.now and not t.cursor.exhausted
        ]
        if not ready:
            return None
        return min(ready, key=lambda t: t.last_dispatch_seq)

    def _dispatch(self, thread: _ThreadContext) -> None:
        thread.last_dispatch_seq = self._dispatch_counter
        self._dispatch_counter += 1
        self._active = thread
        self._dispatch_start = self.now
        self._first_retire_seen = False
        thread.current_fetch_line = None
        self._pending_branch = None
        self._fetch_resume_at = max(self._fetch_resume_at, self.now)
        if self._switch_started_at is not None:
            # Measure the refill latency from the dispatch, not from the
            # switch: cycles the previous thread's idle gap already paid
            # are not switch overhead.
            self._switch_started_at = self.now
        self.policy.on_run_start(thread.thread_id, float(self.now))

    def _flush_active(self) -> None:
        """Return all in-flight uops of the active thread to its cursor."""
        thread = self._active
        assert thread is not None
        flushed: list[_Inflight] = []
        flushed.extend(u for u in self._fetch_queue)
        flushed.extend(u for u in self._rob)
        self._fetch_queue.clear()
        # All in-flight uops belong to the active thread by construction.
        self._rob.clear()
        self._rs.clear()
        self._loads_in_flight = 0
        self._pending_branch = None
        flushed.sort(key=lambda u: u.seq)
        thread.cursor.push_back(u.uop for u in flushed)
        thread.producers = [None] * NUM_ARCH_REGS

    def _switch_out(self, reason: str, thread_ready_at: int) -> None:
        thread = self._active
        assert thread is not None
        self._flush_active()
        thread.ready_at = thread_ready_at
        self.policy.on_switch_out(thread.thread_id, reason, float(self.now))
        self._active = None
        # Drain: the next thread cannot start fetching before this.
        self._fetch_resume_at = self.now + self.config.drain_latency
        self._switch_started_at = self.now

    # ------------------------------------------------------------------
    # Pipeline stages
    # ------------------------------------------------------------------
    def _retire(self) -> int:
        thread = self._active
        if thread is None:
            return 0
        retired = 0
        multithreaded = len(self.threads) > 1
        while retired < self.config.retire_width and self._rob:
            head = self._rob[0]
            if head.completed_at is None or head.completed_at > self.now:
                if (
                    multithreaded
                    and head.uop.opclass is OpClass.LOAD
                    and head.issued
                    and head.access is not None
                    and self._is_switch_event(head.access)
                    and head.completed_at is not None
                    and head.completed_at > self.now
                ):
                    # SOE trigger: unresolved miss at the ROB head.
                    thread.misses += 1
                    thread.miss_switches += 1
                    latency = None
                    if head.access_issued_at is not None:
                        latency = float(head.completed_at - head.access_issued_at)
                    self.policy.on_miss(
                        thread.thread_id, float(self.now), latency=latency
                    )
                    self._switch_out("miss", head.completed_at)
                    return retired
                break
            if head.uop.opclass is OpClass.STORE:
                if len(self._store_buffer) >= self.config.store_buffer_entries:
                    break  # retirement stalls on a full store buffer
                self._store_buffer.append((head.thread_id, head.uop.address))
            if head.uop.opclass is OpClass.LOAD:
                self._loads_in_flight -= 1
            self._rob.popleft()
            thread.retired += 1
            retired += 1
            if self._switch_started_at is not None:
                self.switch_latencies.append(self.now - self._switch_started_at)
                self._switch_started_at = None
        return retired

    def _is_switch_event(self, access: AccessResult) -> bool:
        """Does this access's miss trigger a thread switch?

        ``switch_event="l2"`` is the paper's base scheme (switch only on
        misses that go to memory); ``"l1"`` also switches on L1 misses
        that hit the L2 -- the dMT-style Section 6 variant.
        """
        if self.config.switch_event == "l1":
            return access.level != "l1"
        return access.l2_miss

    def _issue(self) -> None:
        if not self._rs:
            return
        ports = {
            OpClass.ALU: self.config.alu_ports,
            OpClass.NOP: self.config.alu_ports,
            OpClass.BRANCH: self.config.alu_ports,
            OpClass.MUL: self.config.mul_ports,
            OpClass.FP: self.config.fp_ports,
            OpClass.LOAD: self.config.load_ports,
            OpClass.STORE: self.config.store_ports,
        }
        used: dict[OpClass, int] = {}
        issued: list[_Inflight] = []
        # ALU-class ops share ports; track jointly. The RS list is kept
        # in seq (age) order by construction, so oldest-first scheduling
        # is a plain scan.
        shared_alu = (OpClass.ALU, OpClass.NOP, OpClass.BRANCH)
        for entry in self._rs:
            opclass = entry.uop.opclass
            key = OpClass.ALU if opclass in shared_alu else opclass
            if used.get(key, 0) >= ports[key]:
                continue
            if not entry.ready(self.now):
                continue
            used[key] = used.get(key, 0) + 1
            self._execute(entry)
            issued.append(entry)
        for entry in issued:
            self._rs.remove(entry)

    def _execute(self, entry: _Inflight) -> None:
        entry.issued = True
        opclass = entry.uop.opclass
        if opclass in (OpClass.ALU, OpClass.NOP):
            entry.completed_at = self.now + self.config.alu_latency
        elif opclass is OpClass.MUL:
            entry.completed_at = self.now + self.config.mul_latency
        elif opclass is OpClass.FP:
            entry.completed_at = self.now + self.config.fp_latency
        elif opclass is OpClass.BRANCH:
            entry.completed_at = self.now + self.config.alu_latency
            if entry.mispredicted:
                # Fetch resumes after resolve + redirect penalty.
                self._fetch_resume_at = max(
                    self._fetch_resume_at,
                    entry.completed_at + self.config.branch_redirect_penalty,
                )
                if self._pending_branch is entry:
                    self._pending_branch = None
        elif opclass is OpClass.STORE:
            # Stores only generate their address before retirement.
            entry.completed_at = self.now + 1
        elif opclass is OpClass.LOAD:
            if self._forwarding_hit(entry):
                entry.forwarded = True
                entry.completed_at = self.now + 1 + self.config.l1d.latency
            else:
                access = self.hierarchy.data_access(entry.uop.address, self.now + 1)
                entry.access = access
                entry.access_issued_at = self.now + 1
                entry.completed_at = access.ready_at
        else:  # pragma: no cover - exhaustive enum
            raise SimulationError(f"unknown op class {opclass}")

    def _forwarding_hit(self, load: _Inflight) -> bool:
        """Store-to-load forwarding: an older same-thread store to the
        same address, still in the ROB or the senior store buffer."""
        address = load.uop.address
        for thread_id, store_address in self._store_buffer:
            if store_address == address:
                if thread_id == load.thread_id:
                    return True
                # Cross-thread senior store: data exists but is not
                # forwarded (Section 4.1); the load must access the
                # cache.
                return False
        for entry in self._rob:
            if entry.seq >= load.seq:
                break
            if (
                entry.uop.opclass is OpClass.STORE
                and entry.uop.address == address
                and entry.thread_id == load.thread_id
            ):
                return True
        return False

    def _rename(self) -> None:
        thread = self._active
        if thread is None:
            return
        renamed = 0
        while renamed < self.config.rename_width and self._fetch_queue:
            entry = self._fetch_queue[0]
            if entry.visible_at > self.now:
                break
            if len(self._rob) >= self.config.rob_entries:
                break
            if len(self._rs) >= self.config.rs_entries:
                break
            if (
                entry.uop.opclass is OpClass.LOAD
                and self._loads_in_flight >= self.config.load_buffer_entries
            ):
                break
            self._fetch_queue.popleft()
            for reg in entry.uop.srcs:
                producer = thread.producers[reg]
                if producer is not None and producer.completed_at is None:
                    entry.deps.append(producer)
                elif producer is not None:
                    entry.deps.append(producer)
            if entry.uop.dest is not None:
                thread.producers[entry.uop.dest] = entry
            if entry.uop.opclass is OpClass.LOAD:
                self._loads_in_flight += 1
            self._rob.append(entry)
            self._rs.append(entry)
            renamed += 1

    def _fetch(self) -> None:
        thread = self._active
        if thread is None:
            return
        if self.now < self._fetch_resume_at:
            return
        if self._pending_branch is not None:
            return  # stalled behind an unresolved mispredicted branch
        fetched = 0
        while (
            fetched < self.config.fetch_width
            and len(self._fetch_queue) < self.config.fetch_queue_entries
        ):
            uop = thread.cursor.fetch()
            if uop is None:
                break
            line = uop.pc // self.config.l1i.line_bytes
            if line != thread.current_fetch_line:
                thread.current_fetch_line = line
                access = self.hierarchy.fetch_access(uop.pc, self.now)
                if access.ready_at > self.now + self.config.l1i.latency:
                    # I-cache (or iTLB) miss: this uop arrives late and
                    # fetch stalls until the line is in.
                    self._fetch_resume_at = access.ready_at
                    entry = self._make_entry(uop, thread, access.ready_at)
                    self._fetch_queue.append(entry)
                    self._maybe_stall_on_branch(entry)
                    return
            entry = self._make_entry(uop, thread, self.now)
            self._fetch_queue.append(entry)
            fetched += 1
            if self._maybe_stall_on_branch(entry):
                return

    def _make_entry(self, uop: MicroOp, thread: _ThreadContext, fetch_time: int) -> _Inflight:
        entry = _Inflight(
            uop, thread.thread_id, self._seq,
            fetch_time + self.config.frontend_latency,
        )
        self._seq += 1
        return entry

    def _maybe_stall_on_branch(self, entry: _Inflight) -> bool:
        if entry.uop.opclass is not OpClass.BRANCH:
            return False
        correct = self.predictor.predict_and_update(entry.uop)
        if not correct:
            entry.mispredicted = True
            self._pending_branch = entry
            return True
        if entry.uop.taken:
            # Taken branches redirect the fetch line.
            thread = self.threads[entry.thread_id]
            thread.current_fetch_line = None
        return False

    def _drain_stores(self) -> None:
        if self._store_buffer:
            thread_id, address = self._store_buffer.popleft()
            self.hierarchy.store_access(address, self.now)

    # ------------------------------------------------------------------
    # Quota checks (fairness mechanism / time sharing / max-cycles)
    # ------------------------------------------------------------------
    def _check_quotas(self) -> None:
        thread = self._active
        if thread is None or len(self.threads) <= 1:
            return
        if self.policy.instruction_budget(thread.thread_id) <= 0:
            thread.forced_switches += 1
            self._switch_out("quota", self.now)
            return
        dispatch_cycles = self.now - self._dispatch_start
        budget = min(
            self.policy.cycle_budget(thread.thread_id),
            self.config.max_cycles_quota,
        )
        if dispatch_cycles >= budget:
            thread.cycle_quota_switches += 1
            self._switch_out("cycle_quota", self.now)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(
        self,
        min_instructions: int,
        warmup_instructions: int = 0,
        max_cycles: int = 50_000_000,
    ) -> CpuRunResult:
        """Run until every thread retired ``min_instructions``."""
        if min_instructions <= 0:
            raise ConfigurationError("min_instructions must be positive")
        snapshot_time: Optional[int] = None
        snapshots: list[tuple] = []
        if warmup_instructions == 0:
            snapshot_time = 0
            snapshots = [t.snapshot() for t in self.threads]

        while self.now < max_cycles:
            if all(
                self._thread_finished(t, min_instructions) for t in self.threads
            ):
                break
            if (
                snapshot_time is None
                and sum(t.retired for t in self.threads) >= warmup_instructions
            ):
                snapshot_time = self.now
                snapshots = [t.snapshot() for t in self.threads]
                self.hierarchy.reset_statistics()
                self.predictor.reset_statistics()
                self.switch_latencies = []

            if (
                self._active is not None
                and not self._rob
                and not self._fetch_queue
                and self._active.cursor.exhausted
            ):
                # The active thread ran out of trace: release the core.
                self.policy.on_switch_out(
                    self._active.thread_id, "done", float(self.now)
                )
                self._active = None

            if self._active is None:
                candidate = self._pick_ready()
                if candidate is not None:
                    self._dispatch(candidate)
                elif all(t.cursor.exhausted for t in self.threads):
                    break
                else:
                    # Nothing runnable: skip idle time in one hop (the
                    # store buffer still drains one store per cycle).
                    pending = [
                        t.ready_at for t in self.threads if not t.cursor.exhausted
                    ]
                    target = min(min(pending), max_cycles)
                    while self._store_buffer and self.now < target:
                        self._drain_stores()
                        self.now += 1
                    boundary = self.policy.next_boundary(float(self.now))
                    while boundary < target:
                        self.now = int(boundary)
                        self.policy.on_boundary(boundary)
                        boundary = self.policy.next_boundary(float(self.now))
                    if self.now < target:
                        self.now = target
                    continue

            retired_now = self._retire()
            self._issue()
            self._rename()
            self._fetch()
            self._drain_stores()

            thread = self._active
            if thread is not None:
                if retired_now > 0 and not self._first_retire_seen:
                    self._first_retire_seen = True
                if self._first_retire_seen:
                    thread.run_cycles += 1
                    self.policy.on_retired(thread.thread_id, retired_now, 1.0)
                elif retired_now:  # pragma: no cover - defensive
                    self.policy.on_retired(thread.thread_id, retired_now, 0.0)
                self._check_quotas()

            boundary = self.policy.next_boundary(float(self.now))
            if boundary <= self.now:
                self.policy.on_boundary(boundary)

            self.now += 1

        if snapshot_time is None:
            snapshot_time = 0
            snapshots = [(0, 0, 0, 0, 0, 0) for _ in self.threads]
        return self._build_result(snapshot_time, snapshots)

    def _thread_finished(self, thread: _ThreadContext, min_instructions: int) -> bool:
        if thread.retired >= min_instructions:
            return True
        if not thread.cursor.exhausted:
            return False
        # End-of-trace: wait for the thread's in-flight uops to drain.
        return not (
            self._active is thread and (self._rob or self._fetch_queue)
        )

    def _build_result(self, start_time: int, snapshots: list[tuple]) -> CpuRunResult:
        window = self.now - start_time
        if window <= 0:
            raise SimulationError("measurement window is empty")
        stats = []
        for thread, base in zip(self.threads, snapshots):
            retired0, cycles0, misses0, msw0, fsw0, qsw0 = base
            stats.append(
                CpuThreadStats(
                    retired=thread.retired - retired0,
                    run_cycles=thread.run_cycles - cycles0,
                    misses=thread.misses - misses0,
                    miss_switches=thread.miss_switches - msw0,
                    forced_switches=thread.forced_switches - fsw0,
                    cycle_quota_switches=thread.cycle_quota_switches - qsw0,
                )
            )
        return CpuRunResult(
            cycles=window,
            threads=tuple(stats),
            switch_latencies=tuple(self.switch_latencies),
            l2_miss_rate=self.hierarchy.l2.miss_rate,
            branch_mispredict_rate=self.predictor.misprediction_rate,
        )
