"""Memory-hierarchy composition: L1I / L1D -> unified L2 -> bus -> memory.

Answers pure timing queries for the pipeline: "an access to ``address``
starts now; when is the data ready, and did it miss the L2?" Outstanding
line fills are tracked so clustered misses to the same line merge
(MSHR behaviour) -- this is what lets the out-of-order core overlap
misses, the effect the paper's footnote 5 calls the prefetching effect
of its triggering scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.bus import PipelinedBus
from repro.cpu.caches import Cache
from repro.cpu.machine import MachineConfig
from repro.cpu.memory import FixedLatencyMemory
from repro.cpu.tlb import Tlb

__all__ = ["AccessResult", "MemoryHierarchy"]


@dataclass(frozen=True)
class AccessResult:
    """Timing outcome of one cache access."""

    ready_at: int
    #: "l1", "l2" or "memory" -- where the data came from
    level: str
    #: True when the access needed a memory fill (the SOE switch event)
    l2_miss: bool
    #: True when the access triggered a TLB page walk
    tlb_walk: bool
    #: True when the miss merged into an already-outstanding line fill
    merged: bool = False


class MemoryHierarchy:
    """Shared cache hierarchy for all SOE threads."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.l1i = Cache(config.l1i, "L1I")
        self.l1d = Cache(config.l1d, "L1D")
        self.l2 = Cache(config.l2, "L2")
        self.itlb = Tlb(config.itlb_entries, config.page_bytes, "iTLB")
        self.dtlb = Tlb(config.dtlb_entries, config.page_bytes, "dTLB")
        self.bus = PipelinedBus(config.bus_cycles_per_transfer)
        if config.memory_model == "dram":
            from repro.cpu.dram import BankedDram

            self.memory = BankedDram()
        else:
            self.memory = FixedLatencyMemory(config.memory_latency)
        #: line number -> fill-complete time, for outstanding fills
        self._inflight: dict[int, int] = {}
        self.prefetches = 0

    # ------------------------------------------------------------------
    def _line(self, address: int) -> int:
        return address // self.config.l2.line_bytes

    def _memory_fill(self, address: int, start: int, now: int) -> tuple[int, bool]:
        """Schedule (or merge into) a memory fill; returns (ready, merged)."""
        line = self._line(address)
        outstanding = self._inflight.get(line)
        if outstanding is not None and outstanding > now:
            return outstanding, True
        bus_start = self.bus.request(start)
        ready = self.memory.fill(address, bus_start)
        self._inflight[line] = ready
        if len(self._inflight) > 256:
            self._inflight = {
                l: t for l, t in self._inflight.items() if t > now
            }
        return ready, False

    def _maybe_prefetch(self, address: int, now: int) -> None:
        """Next-line prefetch into the L2, overlapped with the demand
        fill (no pipeline stall; consumes bus/bank bandwidth)."""
        if self.config.prefetch != "next_line":
            return
        next_line_address = address + self.config.l2.line_bytes
        if self.l2.lookup(next_line_address, update_lru=False):
            return
        line = self._line(next_line_address)
        outstanding = self._inflight.get(line)
        if outstanding is not None and outstanding > now:
            return
        self.l2.access(next_line_address)
        if self.l2.last_eviction_was_dirty:
            self.bus.request(now)
        bus_start = self.bus.request(now)
        self._inflight[line] = self.memory.fill(next_line_address, bus_start)
        self.prefetches += 1

    def _access(
        self, l1: Cache, tlb: Tlb, address: int, now: int, is_write: bool = False
    ) -> AccessResult:
        walk = not tlb.access(address)
        start = now + (self.config.page_walk_latency if walk else 0)
        # A tag hit on a line whose fill is still outstanding must wait
        # for the fill (MSHR merge): the data is not there yet.
        outstanding = self._inflight.get(self._line(address))
        if outstanding is not None and outstanding > now:
            l1.access(address, is_write)
            return AccessResult(
                max(outstanding, start + l1.config.latency),
                "memory",
                True,
                walk,
                merged=True,
            )
        if l1.access(address, is_write):
            return AccessResult(start + l1.config.latency, "l1", False, walk)
        after_l1 = start + l1.config.latency
        # An L1 dirty eviction writes its victim back into the L2
        # (on-chip, no bus traffic).
        if l1.last_eviction_was_dirty and l1.last_victim_line is not None:
            victim_address = l1.last_victim_line * l1.config.line_bytes
            self.l2.access(victim_address, is_write=True)
            if self.l2.last_eviction_was_dirty:
                self.bus.request(now)
        if self.l2.access(address, is_write):
            if l1 is self.l1d:
                self._maybe_prefetch(address, now)
            return AccessResult(
                after_l1 + self.config.l2.latency, "l2", False, walk
            )
        # An L2 dirty eviction goes to memory over the bus.
        if self.l2.last_eviction_was_dirty:
            self.bus.request(now)
        after_l2 = after_l1 + self.config.l2.latency
        ready, merged = self._memory_fill(address, after_l2, now)
        if l1 is self.l1d:
            self._maybe_prefetch(address, now)
        return AccessResult(max(ready, after_l2), "memory", True, walk, merged)

    # ------------------------------------------------------------------
    def fetch_access(self, pc: int, now: int) -> AccessResult:
        """Instruction fetch for the line containing ``pc``."""
        return self._access(self.l1i, self.itlb, pc, now)

    def data_access(self, address: int, now: int) -> AccessResult:
        """Data read (the load path; the SOE trigger rides on this)."""
        return self._access(self.l1d, self.dtlb, address, now)

    def store_access(self, address: int, now: int) -> AccessResult:
        """Senior-store drain: write-allocate, marks the line dirty,
        never stalls retirement."""
        return self._access(self.l1d, self.dtlb, address, now, is_write=True)

    # ------------------------------------------------------------------
    def reset_statistics(self) -> None:
        """Clear counters after warmup (contents are kept warm)."""
        for cache in (self.l1i, self.l1d, self.l2):
            cache.reset_statistics()
        for tlb in (self.itlb, self.dtlb):
            tlb.reset_statistics()
