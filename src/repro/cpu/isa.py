"""Micro-operation model for the detailed core simulator.

The simulator is trace-driven: workloads supply a stream of
:class:`MicroOp` records carrying everything the timing model needs --
operation class, register dependencies, memory address, and the
branch's actual outcome (so the predictor can be graded against it).
Architectural *values* are never computed; only timing is modelled.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError

__all__ = ["OpClass", "MicroOp", "NUM_ARCH_REGS"]

#: Size of the architectural register file visible to traces. Sixteen
#: integer-ish registers is enough to express realistic dependency
#: chains; the renamer removes false dependencies anyway.
NUM_ARCH_REGS = 16


class OpClass(enum.Enum):
    """Execution classes, each with its own latency and port binding."""

    ALU = "alu"
    MUL = "mul"
    FP = "fp"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    NOP = "nop"


@dataclass(frozen=True)
class MicroOp:
    """One trace record.

    Parameters
    ----------
    opclass:
        Execution class.
    pc:
        Instruction address (drives the I-cache, iTLB and predictor).
    dest:
        Destination architectural register, or None.
    srcs:
        Source architectural registers (dependencies).
    address:
        Effective address for LOAD/STORE.
    taken / target:
        Actual branch outcome; ``target`` is the address control flow
        continues at (used only to grade the BTB).
    """

    opclass: OpClass
    pc: int
    dest: Optional[int] = None
    srcs: tuple[int, ...] = field(default=())
    address: Optional[int] = None
    taken: bool = False
    target: Optional[int] = None

    def __post_init__(self) -> None:
        if self.pc < 0:
            raise ConfigurationError("pc must be non-negative")
        for reg in self.srcs:
            if not 0 <= reg < NUM_ARCH_REGS:
                raise ConfigurationError(f"source register {reg} out of range")
        if self.dest is not None and not 0 <= self.dest < NUM_ARCH_REGS:
            raise ConfigurationError(f"dest register {self.dest} out of range")
        if self.opclass in (OpClass.LOAD, OpClass.STORE) and self.address is None:
            raise ConfigurationError(f"{self.opclass.value} requires an address")
        if self.opclass is OpClass.BRANCH and self.target is None:
            raise ConfigurationError("branch requires a target")

    @property
    def is_memory(self) -> bool:
        return self.opclass in (OpClass.LOAD, OpClass.STORE)
