"""Detailed-core side of the cross-simulator validation.

For each representative workload pair, the detailed core runs an SOE
simulation and reports the per-thread segment statistics it actually
experienced (IPM, CPM from its own counters); a segment-engine run is
then parameterized with exactly those statistics. If the segment
abstraction is adequate (the paper's footnote 2 claim), the two
simulators' throughputs should agree to within the microarchitectural
effects the segment model ignores.
"""

from __future__ import annotations

from repro.cpu.machine import MachineConfig
from repro.cpu.soe_core import run_cpu_soe
from repro.engine.soe import RunLimits, SoeParams, run_soe
from repro.workloads.synthetic import uniform_stream
from repro.workloads.tracegen import (
    COMPUTE_SPEC,
    MEMORY_SPEC,
    MIXED_SPEC,
    CpuWorkloadSpec,
    make_trace,
)

__all__ = ["matched_workload_comparison"]

_PAIRS: tuple[tuple[str, CpuWorkloadSpec, CpuWorkloadSpec], ...] = (
    ("compute:memory", COMPUTE_SPEC, MEMORY_SPEC),
    ("mixed:memory", MIXED_SPEC, MEMORY_SPEC),
    ("compute:mixed", COMPUTE_SPEC, MIXED_SPEC),
)


def matched_workload_comparison(
    miss_lat: float = 300.0,
    min_instructions: int = 30_000,
    config: MachineConfig = MachineConfig(),
) -> list[tuple[str, float, float]]:
    """Returns (label, segment-engine IPC, detailed-core IPC) triples."""
    results = []
    for label, spec_a, spec_b in _PAIRS:
        programs = [
            make_trace(spec_a, seed=1, thread_index=0),
            make_trace(spec_b, seed=2, thread_index=1),
        ]
        cpu_result = run_cpu_soe(
            programs,
            config=config,
            min_instructions=min_instructions,
            warmup_instructions=min_instructions // 3,
        )

        # Parameterize the segment engine with the statistics the core
        # actually observed for each thread.
        streams = []
        for stats in cpu_result.threads:
            misses = max(stats.miss_switches, 1)
            ipm = stats.retired / misses
            cpm = stats.run_cycles / misses
            ipc_no_miss = ipm / cpm if cpm > 0 else 1.0
            streams.append(uniform_stream(ipc_no_miss, ipm))
        mean_switch = cpu_result.mean_switch_latency or 25.0
        engine_result = run_soe(
            streams,
            params=SoeParams(miss_lat=miss_lat, switch_lat=mean_switch),
            limits=RunLimits(min_instructions=min_instructions * 5),
        )
        results.append((label, engine_result.total_ipc, cpu_result.total_ipc))
    return results
