"""High-level runners for the detailed core.

Mirrors :mod:`repro.engine`'s API shape on the cycle-level substrate:
``run_cpu_single_thread`` measures a workload's real single-thread IPC
(with natural out-of-order miss overlap), ``run_cpu_soe`` runs multiple
threads under SOE with any :class:`~repro.core.policy.SwitchPolicy` --
including the full :class:`~repro.core.controller.FairnessController`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.policy import SwitchPolicy
from repro.cpu.machine import MachineConfig
from repro.cpu.pipeline import CpuRunResult, OooPipeline
from repro.cpu.program import TraceProgram
from repro.errors import ConfigurationError

__all__ = ["run_cpu_single_thread", "run_cpu_soe"]


def run_cpu_single_thread(
    program: TraceProgram,
    config: MachineConfig = MachineConfig(),
    min_instructions: int = 20_000,
    warmup_instructions: int = 0,
    max_cycles: int = 50_000_000,
) -> CpuRunResult:
    """Run one workload alone on the detailed core.

    There is no thread to switch to, so last-level misses stall
    retirement while the out-of-order window keeps issuing younger
    work -- the miss-overlap effect the segment model captures with the
    profile-level ``miss_overlap`` knob.
    """
    pipeline = OooPipeline([program], config)
    return pipeline.run(
        min_instructions=min_instructions,
        warmup_instructions=warmup_instructions,
        max_cycles=max_cycles,
    )


def run_cpu_soe(
    programs: Sequence[TraceProgram],
    policy: Optional[SwitchPolicy] = None,
    config: MachineConfig = MachineConfig(),
    min_instructions: int = 20_000,
    warmup_instructions: int = 0,
    max_cycles: int = 50_000_000,
) -> CpuRunResult:
    """Run two or more workloads under SOE on the detailed core."""
    if len(programs) < 2:
        raise ConfigurationError("SOE needs at least two programs")
    pipeline = OooPipeline(programs, config, policy)
    return pipeline.run(
        min_instructions=min_instructions,
        warmup_instructions=warmup_instructions,
        max_cycles=max_cycles,
    )
