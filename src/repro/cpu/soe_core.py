"""High-level runners for the detailed core.

Mirrors :mod:`repro.engine`'s API shape on the cycle-level substrate:
``run_cpu_single_thread`` measures a workload's real single-thread IPC
(with natural out-of-order miss overlap), ``run_cpu_soe`` runs multiple
threads under SOE with any :class:`~repro.core.policy.SwitchPolicy` --
including the full :class:`~repro.core.controller.FairnessController`.

Telemetry rides along without touching the pipeline: when a trace sink
is active, the switch policy is wrapped in :class:`TracingSwitchPolicy`,
which forwards every callback unchanged and emits a ``switch`` event
(with its cause) per thread switch-out -- the same event stream the
segment engine produces, tagged ``substrate="cpu"``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.policy import NoFairnessPolicy, SwitchPolicy
from repro.cpu.machine import MachineConfig
from repro.cpu.pipeline import CpuRunResult, OooPipeline
from repro.cpu.program import TraceProgram
from repro.errors import ConfigurationError
from repro.telemetry import SWITCH as _TRACE_SWITCH
from repro.telemetry import resolve_sink
from repro.telemetry.events import thread_switch
from repro.telemetry.profile import PROFILE
from repro.telemetry.sinks import TraceSink

__all__ = ["run_cpu_single_thread", "run_cpu_soe", "TracingSwitchPolicy"]


class TracingSwitchPolicy(SwitchPolicy):
    """Transparent policy wrapper that traces thread switches.

    Delegates every :class:`SwitchPolicy` callback to ``inner``
    unchanged (budgets, boundaries, counter feeds), so wrapping cannot
    alter scheduling decisions; it only mirrors ``on_switch_out`` into
    the trace stream.
    """

    def __init__(self, inner: SwitchPolicy, sink: TraceSink) -> None:
        self.inner = inner
        self._sink = sink

    def on_run_start(self, thread_id: int, now: float) -> None:
        self.inner.on_run_start(thread_id, now)

    def instruction_budget(self, thread_id: int) -> float:
        return self.inner.instruction_budget(thread_id)

    def cycle_budget(self, thread_id: int) -> float:
        return self.inner.cycle_budget(thread_id)

    def on_retired(self, thread_id: int, instructions: float, cycles: float) -> None:
        self.inner.on_retired(thread_id, instructions, cycles)

    def on_miss(
        self, thread_id: int, now: float, latency: Optional[float] = None
    ) -> None:
        self.inner.on_miss(thread_id, now, latency=latency)

    def on_switch_out(self, thread_id: int, reason: str, now: float) -> None:
        if self._sink.wants(_TRACE_SWITCH):
            self._sink.emit(thread_switch(now, thread_id, reason, "cpu"))
        self.inner.on_switch_out(thread_id, reason, now)

    def next_boundary(self, now: float) -> float:
        return self.inner.next_boundary(now)

    def on_boundary(self, now: float) -> None:
        self.inner.on_boundary(now)


def _traced_policy(policy: Optional[SwitchPolicy]) -> Optional[SwitchPolicy]:
    """Wrap ``policy`` for tracing when a sink is active."""
    sink = resolve_sink(None)
    if sink is None:
        return policy
    return TracingSwitchPolicy(
        policy if policy is not None else NoFairnessPolicy(), sink
    )


def run_cpu_single_thread(
    program: TraceProgram,
    config: MachineConfig = MachineConfig(),
    min_instructions: int = 20_000,
    warmup_instructions: int = 0,
    max_cycles: int = 50_000_000,
) -> CpuRunResult:
    """Run one workload alone on the detailed core.

    There is no thread to switch to, so last-level misses stall
    retirement while the out-of-order window keeps issuing younger
    work -- the miss-overlap effect the segment model captures with the
    profile-level ``miss_overlap`` knob.
    """
    pipeline = OooPipeline([program], config)
    result = pipeline.run(
        min_instructions=min_instructions,
        warmup_instructions=warmup_instructions,
        max_cycles=max_cycles,
    )
    PROFILE.record_cycles(float(pipeline.now))
    return result


def run_cpu_soe(
    programs: Sequence[TraceProgram],
    policy: Optional[SwitchPolicy] = None,
    config: MachineConfig = MachineConfig(),
    min_instructions: int = 20_000,
    warmup_instructions: int = 0,
    max_cycles: int = 50_000_000,
) -> CpuRunResult:
    """Run two or more workloads under SOE on the detailed core."""
    if len(programs) < 2:
        raise ConfigurationError("SOE needs at least two programs")
    pipeline = OooPipeline(programs, config, _traced_policy(policy))
    result = pipeline.run(
        min_instructions=min_instructions,
        warmup_instructions=warmup_instructions,
        max_cycles=max_cycles,
    )
    PROFILE.record_cycles(float(pipeline.now))
    return result
