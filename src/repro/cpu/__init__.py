"""Detailed cycle-level out-of-order core simulator.

This package is the from-scratch substitute for the proprietary
P6-derived simulator the paper evaluates on: a trace-driven,
cycle-level out-of-order core (frontend, rename, ROB/RS scheduling,
load/store buffers with forwarding rules, gshare+BTB branch prediction)
over a full memory hierarchy (L1I/L1D, unified L2, i/dTLBs with page
walks, pipelined bus, fixed-latency memory with miss overlap), plus SOE
multithreading with the retirement-stage switch trigger and pipeline
drain described in Section 4.1.

The fairness mechanism is *not* reimplemented here -- the pipeline
drives the same :class:`~repro.core.policy.SwitchPolicy` objects as the
segment engine, demonstrating the paper's claim that the mechanism is
architectural.
"""

from repro.cpu.branch import BranchPredictor
from repro.cpu.bus import PipelinedBus
from repro.cpu.caches import Cache
from repro.cpu.hierarchy import AccessResult, MemoryHierarchy
from repro.cpu.isa import NUM_ARCH_REGS, MicroOp, OpClass
from repro.cpu.machine import CacheConfig, MachineConfig
from repro.cpu.memory import FixedLatencyMemory
from repro.cpu.pipeline import CpuRunResult, CpuThreadStats, OooPipeline
from repro.cpu.program import ProgramCursor, TraceProgram, program_from_uops
from repro.cpu.soe_core import run_cpu_single_thread, run_cpu_soe
from repro.cpu.tlb import Tlb

__all__ = [
    "AccessResult",
    "BranchPredictor",
    "Cache",
    "CacheConfig",
    "CpuRunResult",
    "CpuThreadStats",
    "FixedLatencyMemory",
    "MachineConfig",
    "MemoryHierarchy",
    "MicroOp",
    "NUM_ARCH_REGS",
    "OooPipeline",
    "OpClass",
    "PipelinedBus",
    "ProgramCursor",
    "TraceProgram",
    "Tlb",
    "program_from_uops",
    "run_cpu_single_thread",
    "run_cpu_soe",
]
