"""Pipelined front-side bus.

The paper's machine has a pipelined bus between the L2 and memory:
transfers overlap, but each occupies the bus for a fixed number of
cycles, so back-to-back misses queue behind each other by the transfer
occupancy rather than the full memory latency.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = ["PipelinedBus"]


class PipelinedBus:
    """Grants bus slots; each transfer holds the bus ``occupancy`` cycles."""

    __slots__ = ("occupancy", "_free_at", "transfers")

    def __init__(self, occupancy: int) -> None:
        if occupancy < 0:
            raise ConfigurationError("bus occupancy must be non-negative")
        self.occupancy = occupancy
        self._free_at = 0
        self.transfers = 0

    def request(self, now: int) -> int:
        """Schedule a transfer at or after ``now``; returns its start time."""
        start = max(now, self._free_at)
        self._free_at = start + self.occupancy
        self.transfers += 1
        return start

    @property
    def busy_until(self) -> int:
        return self._free_at
