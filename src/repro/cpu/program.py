"""Trace programs: restartable micro-op streams.

A :class:`TraceProgram` plays the role the paper's LITs play for the
authors' simulator -- a replayable description of one thread's dynamic
instruction stream. SOE needs pushback support: uops flushed from the
pipeline on a thread switch (or a branch redirect) are *not retired*
and must be refetched, so :class:`ProgramCursor` keeps an explicit
replay stack in front of the underlying iterator.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Iterator, Optional

from repro.cpu.isa import MicroOp
from repro.errors import WorkloadError

__all__ = ["TraceProgram", "ProgramCursor", "program_from_uops"]


class TraceProgram:
    """A restartable source of :class:`MicroOp` values."""

    def __init__(self, factory: Callable[[], Iterator[MicroOp]], name: str = "") -> None:
        self._factory = factory
        self.name = name

    def uops(self) -> Iterator[MicroOp]:
        iterator = self._factory()
        if iterator is None:
            raise WorkloadError(f"trace factory for {self.name!r} returned None")
        return iterator

    def cursor(self) -> "ProgramCursor":
        return ProgramCursor(self.uops())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceProgram({self.name!r})"


def program_from_uops(uops: Iterable[MicroOp], name: str = "") -> TraceProgram:
    """Wrap a concrete uop list as a replayable program."""
    materialized = list(uops)
    if not materialized:
        raise WorkloadError("a trace program needs at least one micro-op")
    return TraceProgram(lambda: iter(materialized), name=name)


class ProgramCursor:
    """Iterator over a trace with pushback for pipeline flushes."""

    def __init__(self, iterator: Iterator[MicroOp]) -> None:
        self._iterator = iterator
        self._replay: deque[MicroOp] = deque()
        self._exhausted = False

    @property
    def exhausted(self) -> bool:
        """True when both the replay stack and the trace are drained."""
        if self._replay:
            return False
        if self._exhausted:
            return True
        self._peeked: Optional[MicroOp]
        try:
            self._replay.append(next(self._iterator))
        except StopIteration:
            self._exhausted = True
        return self._exhausted

    def fetch(self) -> Optional[MicroOp]:
        """Next uop in program order, or None at end-of-trace."""
        if self._replay:
            return self._replay.popleft()
        try:
            return next(self._iterator)
        except StopIteration:
            self._exhausted = True
            return None

    def push_back(self, uops: Iterable[MicroOp]) -> None:
        """Return flushed uops to the front, oldest first.

        ``uops`` must be in program order (oldest first); they will be
        re-fetched in the same order.
        """
        for uop in reversed(list(uops)):
            self._replay.appendleft(uop)
