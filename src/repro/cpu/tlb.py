"""Instruction/data TLBs with page-walk latency.

Fully-associative LRU TLBs. A miss costs a page walk; the paper tracks
i/dTLB page walks among the miss events flagged in the ROB, so the
hierarchy reports the walk latency and the pipeline folds it into the
access time.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ConfigurationError

__all__ = ["Tlb"]


class Tlb:
    """A fully-associative translation buffer."""

    __slots__ = ("entries", "page_bytes", "name", "_pages", "hits", "misses")

    def __init__(self, entries: int, page_bytes: int, name: str = "") -> None:
        if entries <= 0:
            raise ConfigurationError("TLB needs at least one entry")
        if page_bytes <= 0 or page_bytes & (page_bytes - 1):
            raise ConfigurationError("page size must be a positive power of two")
        self.entries = entries
        self.page_bytes = page_bytes
        self.name = name
        self._pages: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Translate: True on hit; a miss installs the translation."""
        if address < 0:
            raise ConfigurationError("addresses must be non-negative")
        page = address // self.page_bytes
        if page in self._pages:
            self._pages.move_to_end(page)
            self.hits += 1
            return True
        self.misses += 1
        self._pages[page] = None
        if len(self._pages) > self.entries:
            self._pages.popitem(last=False)
        return False

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def reset_statistics(self) -> None:
        self.hits = 0
        self.misses = 0
