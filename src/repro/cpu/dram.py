"""Banked DRAM with row buffers: a variable-latency memory model.

The paper uses a constant 300-cycle memory and notes (Section 6) that
events with *variable* latency need runtime latency measurement. This
model supplies such a memory: accesses that hit an open row return
faster than accesses that must precharge/activate a new row, so the
observed miss latency genuinely varies with the access pattern --
streaming walks mostly hit rows, pointer chases mostly miss them.

Latency composition for a fill requested at ``t``:

* bank busy until its previous access finishes (bank-level parallelism
  across banks);
* row hit: ``base_latency``; row miss: ``base_latency + row_penalty``.

Defaults are chosen so a 50% row-hit stream averages the paper's 300
cycles.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = ["BankedDram"]


class BankedDram:
    """Open-page DRAM with per-bank row buffers."""

    __slots__ = (
        "base_latency", "row_penalty", "num_banks", "row_bytes",
        "bank_occupancy", "_open_rows", "_bank_free_at", "fills",
        "row_hits", "row_misses",
    )

    def __init__(
        self,
        base_latency: int = 240,
        row_penalty: int = 120,
        num_banks: int = 8,
        row_bytes: int = 8 * 1024,
        bank_occupancy: int = 20,
    ) -> None:
        if base_latency < 0 or row_penalty < 0 or bank_occupancy < 0:
            raise ConfigurationError("latencies must be non-negative")
        if num_banks <= 0 or row_bytes <= 0:
            raise ConfigurationError("banks and row size must be positive")
        self.base_latency = base_latency
        self.row_penalty = row_penalty
        self.num_banks = num_banks
        self.row_bytes = row_bytes
        self.bank_occupancy = bank_occupancy
        self._open_rows: list = [None] * num_banks
        self._bank_free_at = [0] * num_banks
        self.fills = 0
        self.row_hits = 0
        self.row_misses = 0

    def _locate(self, address: int) -> tuple[int, int]:
        row = address // self.row_bytes
        return row % self.num_banks, row

    def fill(self, address: int, start: int) -> int:
        """Begin a line fill at ``start``; returns data-ready time."""
        if address < 0:
            raise ConfigurationError("addresses must be non-negative")
        bank, row = self._locate(address)
        begin = max(start, self._bank_free_at[bank])
        if self._open_rows[bank] == row:
            latency = self.base_latency
            self.row_hits += 1
        else:
            latency = self.base_latency + self.row_penalty
            self.row_misses += 1
            self._open_rows[bank] = row
        self._bank_free_at[bank] = begin + self.bank_occupancy
        self.fills += 1
        return begin + latency

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0
