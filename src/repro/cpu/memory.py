"""Main memory: the paper's fixed-latency model.

Section 4.1 uses a constant 300-cycle memory (75 ns at 4 GHz). The
class exists as a seam -- a banked or variable-latency model can be
dropped in without touching the hierarchy -- and counts fills for the
statistics.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = ["FixedLatencyMemory"]


class FixedLatencyMemory:
    """Constant-latency memory."""

    __slots__ = ("latency", "fills")

    def __init__(self, latency: int) -> None:
        if latency < 0:
            raise ConfigurationError("memory latency must be non-negative")
        self.latency = latency
        self.fills = 0

    def fill(self, address: int, start: int) -> int:
        """Begin a line fill at ``start``; returns data-ready time."""
        self.fills += 1
        return start + self.latency
