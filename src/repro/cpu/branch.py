"""Branch prediction: gshare direction predictor plus a BTB.

The predictor state is shared between SOE threads and survives thread
switches (Section 4.1: "branch prediction history [is] shared, and
not flushed on switch" -- required to keep performance after switches,
at the cost of cross-thread aliasing, which is one of the resource-
sharing effects that make each thread's SOE performance slightly lower
than its single-thread performance).
"""

from __future__ import annotations

from repro.cpu.isa import MicroOp, OpClass
from repro.errors import ConfigurationError

__all__ = ["BranchPredictor"]


class BranchPredictor:
    """gshare (global history XOR pc) with 2-bit counters and a BTB."""

    __slots__ = (
        "history_bits", "table_entries", "btb_entries", "_history",
        "_history_mask", "_counters", "_btb", "predictions",
        "mispredictions",
    )

    def __init__(
        self,
        history_bits: int = 12,
        table_entries: int = 4096,
        btb_entries: int = 2048,
    ) -> None:
        if history_bits <= 0 or history_bits > 30:
            raise ConfigurationError("history_bits must be in 1..30")
        for value in (table_entries, btb_entries):
            if value <= 0 or value & (value - 1):
                raise ConfigurationError("table sizes must be powers of two")
        self.history_bits = history_bits
        self.table_entries = table_entries
        self.btb_entries = btb_entries
        self._history = 0
        self._history_mask = (1 << history_bits) - 1
        self._counters = [2] * table_entries  # weakly taken
        self._btb: dict[int, int] = {}
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) % self.table_entries

    def predict_and_update(self, uop: MicroOp) -> bool:
        """Predict a branch, grade it against the trace's actual
        outcome, train the tables, and return True when the prediction
        was correct (direction *and*, for taken branches, target)."""
        if uop.opclass is not OpClass.BRANCH:
            raise ConfigurationError("predictor fed a non-branch uop")
        index = self._index(uop.pc)
        predicted_taken = self._counters[index] >= 2
        btb_target = self._btb.get((uop.pc >> 2) % self.btb_entries)
        correct = predicted_taken == uop.taken
        if uop.taken and btb_target != uop.target:
            correct = False

        # Train.
        if uop.taken and self._counters[index] < 3:
            self._counters[index] += 1
        elif not uop.taken and self._counters[index] > 0:
            self._counters[index] -= 1
        if uop.taken:
            self._btb[(uop.pc >> 2) % self.btb_entries] = uop.target
        self._history = ((self._history << 1) | int(uop.taken)) & self._history_mask

        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        return correct

    @property
    def misprediction_rate(self) -> float:
        if self.predictions == 0:
            return 0.0
        return self.mispredictions / self.predictions

    def reset_statistics(self) -> None:
        self.predictions = 0
        self.mispredictions = 0
