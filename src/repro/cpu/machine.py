"""Machine configuration (paper Table 3 / Section 4.1).

The paper derives its processor from Intel's P6 microarchitecture with
"structure sizes slightly increased to reflect a future version" of the
then-current core, a 300-cycle memory (75 ns at 4 GHz), and ~25-cycle
thread switches. The defaults below follow that description.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["CacheConfig", "MachineConfig"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    size_bytes: int
    associativity: int
    line_bytes: int
    latency: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0 or self.line_bytes <= 0:
            raise ConfigurationError("cache geometry must be positive")
        if self.size_bytes % (self.associativity * self.line_bytes) != 0:
            raise ConfigurationError(
                "cache size must be a whole number of sets "
                f"(size={self.size_bytes}, assoc={self.associativity}, "
                f"line={self.line_bytes})"
            )
        if self.latency < 0:
            raise ConfigurationError("cache latency must be non-negative")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)


@dataclass(frozen=True)
class MachineConfig:
    """Full core + memory-hierarchy configuration."""

    # Pipeline widths and structure sizes
    fetch_width: int = 4
    rename_width: int = 4
    retire_width: int = 4
    rob_entries: int = 96
    rs_entries: int = 32
    load_buffer_entries: int = 32
    store_buffer_entries: int = 20
    #: must cover fetch_width * frontend_latency or the frontend pipe
    #: itself becomes the bandwidth limit
    fetch_queue_entries: int = 64
    #: cycles from fetch until a uop is visible to rename (frontend depth)
    frontend_latency: int = 12

    # Execution resources: issue slots per class per cycle
    alu_ports: int = 3
    mul_ports: int = 1
    fp_ports: int = 1
    load_ports: int = 1
    store_ports: int = 1

    # Execution latencies (cycles)
    alu_latency: int = 1
    mul_latency: int = 3
    fp_latency: int = 4

    # Memory hierarchy
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 8, 64, 1)
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 8, 64, 3)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(2 * 1024 * 1024, 8, 64, 12)
    )
    memory_latency: int = 300
    bus_cycles_per_transfer: int = 4
    #: "fixed" -- the paper's constant-latency memory; "dram" -- banked
    #: open-page DRAM with row-buffer variable latency (Section 6's
    #: variable-latency regime).
    memory_model: str = "fixed"
    #: "none" or "next_line" -- a simple L2 next-line prefetcher.
    prefetch: str = "none"

    # TLBs
    itlb_entries: int = 128
    dtlb_entries: int = 128
    page_bytes: int = 4096
    page_walk_latency: int = 30

    # Branch prediction
    predictor_history_bits: int = 12
    predictor_table_entries: int = 4096
    btb_entries: int = 2048
    branch_redirect_penalty: int = 12

    # SOE
    drain_latency: int = 6
    max_cycles_quota: int = 50_000
    #: Switch-trigger event (Section 6 extension): "l2" switches only on
    #: misses that go to memory (the paper's base scheme); "l1" also
    #: switches on L1 misses that hit the L2 (a dMT/BMT-style variant).
    switch_event: str = "l2"

    def __post_init__(self) -> None:
        for name in (
            "fetch_width",
            "rename_width",
            "retire_width",
            "rob_entries",
            "rs_entries",
            "load_buffer_entries",
            "store_buffer_entries",
            "fetch_queue_entries",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.memory_latency < 0 or self.page_walk_latency < 0:
            raise ConfigurationError("latencies must be non-negative")
        if self.page_bytes <= 0 or self.page_bytes & (self.page_bytes - 1):
            raise ConfigurationError("page size must be a positive power of two")
        if self.switch_event not in ("l1", "l2"):
            raise ConfigurationError(
                f"switch_event must be 'l1' or 'l2', got {self.switch_event!r}"
            )
        if self.memory_model not in ("fixed", "dram"):
            raise ConfigurationError(
                f"memory_model must be 'fixed' or 'dram', got {self.memory_model!r}"
            )
        if self.prefetch not in ("none", "next_line"):
            raise ConfigurationError(
                f"prefetch must be 'none' or 'next_line', got {self.prefetch!r}"
            )
