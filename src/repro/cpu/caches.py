"""Set-associative LRU caches (L1I, L1D, unified L2).

Purely a tag store: the simulator models hit/miss timing, not data.
Caches are shared between SOE threads and are *not* flushed on thread
switches (Section 4.1) -- the address streams of the two threads simply
compete for the same sets, which is where cache-sharing interference
comes from in the detailed model.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cpu.machine import CacheConfig
from repro.errors import ConfigurationError

__all__ = ["Cache"]


class Cache:
    """One cache level with true-LRU replacement and write-back state.

    Each resident line carries a dirty bit; :meth:`access` with
    ``is_write=True`` marks the line dirty, and a miss that evicts a
    dirty victim reports it so the hierarchy can charge the write-back
    bus traffic.
    """

    __slots__ = (
        "config", "name", "_sets", "hits", "misses", "writebacks",
        "_line_bytes", "_num_sets", "_associativity",
        "last_eviction_was_dirty", "last_victim_line",
    )

    def __init__(self, config: CacheConfig, name: str = "") -> None:
        self.config = config
        self.name = name
        # One OrderedDict per set: tag -> dirty flag, most recent last.
        self._sets: list[OrderedDict] = [
            OrderedDict() for _ in range(config.num_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        # Geometry scalars, hoisted out of the per-access path.
        self._line_bytes = config.line_bytes
        self._num_sets = config.num_sets
        self._associativity = config.associativity
        #: Set by the most recent :meth:`access`; True when it evicted a
        #: dirty line (write-back traffic).
        self.last_eviction_was_dirty = False
        #: Line number of the most recent eviction victim (None if the
        #: last access evicted nothing).
        self.last_victim_line: "int | None" = None

    def _locate(self, address: int) -> tuple[int, int]:
        if address < 0:
            raise ConfigurationError("addresses must be non-negative")
        line = address // self._line_bytes
        return line % self._num_sets, line // self._num_sets

    def lookup(self, address: int, update_lru: bool = True) -> bool:
        """Probe without allocating: True on hit."""
        set_index, tag = self._locate(address)
        cache_set = self._sets[set_index]
        if tag in cache_set:
            if update_lru:
                cache_set.move_to_end(tag)
            return True
        return False

    def access(self, address: int, is_write: bool = False) -> bool:
        """Access and allocate on miss: returns True on hit.

        The miss path inserts the line immediately (fill timing is the
        memory hierarchy's business, not the tag store's). Use
        :attr:`last_eviction_was_dirty` to learn whether the allocation
        displaced a dirty victim.
        """
        set_index, tag = self._locate(address)
        cache_set = self._sets[set_index]
        self.last_eviction_was_dirty = False
        self.last_victim_line = None
        if tag in cache_set:
            cache_set.move_to_end(tag)
            if is_write:
                cache_set[tag] = True
            self.hits += 1
            return True
        self.misses += 1
        cache_set[tag] = is_write
        if len(cache_set) > self._associativity:
            victim_tag, dirty = cache_set.popitem(last=False)  # evict LRU
            self.last_victim_line = (
                victim_tag * self._num_sets + set_index
            )
            if dirty:
                self.writebacks += 1
                self.last_eviction_was_dirty = True
        return False

    def contains(self, address: int) -> bool:
        """Non-destructive membership check (no LRU update)."""
        return self.lookup(address, update_lru=False)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset_statistics(self) -> None:
        """Clear counters (used after cache warmup), keep contents."""
        self.hits = 0
        self.misses = 0
