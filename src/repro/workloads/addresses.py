"""Address-pattern generators for the detailed-core traces.

Two patterns cover what the timing model cares about:

* :class:`HotSetAccessor` -- accesses confined to a small working set
  that fits in the L1/L2, producing cache hits (the "between misses"
  part of the paper's program model);
* :class:`StreamingAccessor` -- a linear walk over a region much larger
  than the L2, so every new line misses to memory (the last-level
  misses that delimit segments).
"""

from __future__ import annotations

import random

from repro.errors import ConfigurationError

__all__ = ["HotSetAccessor", "StreamingAccessor"]


class HotSetAccessor:
    """Uniform random accesses within a resident working set."""

    def __init__(
        self,
        base: int,
        size_bytes: int,
        rng: random.Random,
        granule: int = 8,
    ) -> None:
        if size_bytes <= 0 or granule <= 0:
            raise ConfigurationError("working set and granule must be positive")
        if base < 0:
            raise ConfigurationError("base address must be non-negative")
        self.base = base
        self.size_bytes = size_bytes
        self.granule = granule
        self._rng = rng
        self._slots = max(1, size_bytes // granule)

    def next_address(self) -> int:
        return self.base + self._rng.randrange(self._slots) * self.granule


class StreamingAccessor:
    """Sequential walk over a huge region; wraps at the region end.

    With a stride of one cache line over a region several times the L2
    capacity, every access after warmup touches a line that has been
    evicted since its last use -- a guaranteed last-level miss.
    """

    def __init__(self, base: int, region_bytes: int, stride: int = 64) -> None:
        if region_bytes <= 0 or stride <= 0:
            raise ConfigurationError("region and stride must be positive")
        if base < 0:
            raise ConfigurationError("base address must be non-negative")
        self.base = base
        self.region_bytes = region_bytes
        self.stride = stride
        self._offset = 0

    def next_address(self) -> int:
        address = self.base + self._offset
        self._offset = (self._offset + self.stride) % self.region_bytes
        return address
