"""SPEC CPU2000 substitute catalogue.

The paper evaluates on SPEC CPU2000 traces (LITs), which are
proprietary. Each profile here is a synthetic stand-in whose segment
statistics are calibrated from published SPEC CPU2000
characterizations: compute-bound benchmarks (eon, crafty, sixtrack,
mesa, galgel) rarely miss the 2 MB L2 and sustain a high IPC between
misses; memory-bound benchmarks (mcf, swim, art, lucas, equake) miss
every few hundred instructions. What matters for the reproduction is
the *spread* of (IPC_no_miss, IPM) across the suite, because Eq. 5
makes the unenforced fairness of a pair a pure function of the two
threads' CPM values.

Aggregate behaviour (with the paper's 300-cycle memory and 25-cycle
switch): mixing a long-CPM benchmark with a short-CPM one yields
unenforced fairness in the 0.01-0.1 range -- the paper's "one thread
runs 10 to 100 times slower" scenario -- while like-with-like pairs are
naturally fair.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads.profiles import BenchmarkProfile
from repro.workloads.synthetic import Phase, SegmentDistribution

__all__ = ["PROFILES", "get_profile", "benchmark_names"]


def _eon_phases() -> tuple[Phase, ...]:
    """eon with a mild phase structure (Section 5.1.2 attributes Fig. 5's
    transient unfairness to a phase change in eon)."""
    steady = SegmentDistribution(ipc_no_miss=2.4, ipm=64_000, ipm_cv=0.6, ipc_cv=0.08)
    bursty = SegmentDistribution(ipc_no_miss=2.1, ipm=24_000, ipm_cv=0.8, ipc_cv=0.12)
    return (
        Phase(steady, 4_000_000),
        Phase(bursty, 1_000_000),
    )


def _gcc_phases() -> tuple[Phase, ...]:
    """gcc alternates parsing-like (missy) and optimization-like phases."""
    missy = SegmentDistribution(ipc_no_miss=1.8, ipm=1_100, ipm_cv=0.9, ipc_cv=0.15)
    dense = SegmentDistribution(ipc_no_miss=2.0, ipm=2_200, ipm_cv=0.8, ipc_cv=0.12)
    return (
        Phase(missy, 1_500_000),
        Phase(dense, 1_000_000),
    )


PROFILES: dict[str, BenchmarkProfile] = {
    profile.name: profile
    for profile in [
        # Integer benchmarks -----------------------------------------------
        BenchmarkProfile("gcc", ipc_no_miss=1.9, ipm=1_400, ipm_cv=0.9,
                         ipc_cv=0.15, miss_overlap=0.15, phases=_gcc_phases()),
        BenchmarkProfile("eon", ipc_no_miss=2.33, ipm=48_000, ipm_cv=0.6,
                         ipc_cv=0.08, miss_overlap=0.05, phases=_eon_phases()),
        BenchmarkProfile("crafty", ipc_no_miss=2.5, ipm=40_000, ipm_cv=0.6, ipc_cv=0.1, miss_overlap=0.05),
        BenchmarkProfile("bzip2b", ipc_no_miss=2.2, ipm=3_500, ipm_cv=0.7, ipc_cv=0.1, miss_overlap=0.15),
        BenchmarkProfile("mcf", ipc_no_miss=1.1, ipm=200, ipm_cv=1.0, ipc_cv=0.2, miss_overlap=0.5),
        BenchmarkProfile("vortex", ipc_no_miss=2.3, ipm=8_000, ipm_cv=0.7, ipc_cv=0.1, miss_overlap=0.12),
        BenchmarkProfile("parser", ipc_no_miss=1.7, ipm=1_200, ipm_cv=0.9, ipc_cv=0.15, miss_overlap=0.15),
        BenchmarkProfile("perlbmk", ipc_no_miss=2.3, ipm=15_000, ipm_cv=0.7, ipc_cv=0.1, miss_overlap=0.08),
        BenchmarkProfile("vpr", ipc_no_miss=1.8, ipm=2_500, ipm_cv=0.8, ipc_cv=0.15, miss_overlap=0.15),
        BenchmarkProfile("twolf", ipc_no_miss=1.9, ipm=3_000, ipm_cv=0.8, ipc_cv=0.15, miss_overlap=0.15),
        # Floating-point benchmarks ----------------------------------------
        BenchmarkProfile("swim", ipc_no_miss=2.0, ipm=450, ipm_cv=0.3, ipc_cv=0.08, miss_overlap=0.45),
        BenchmarkProfile("lucas", ipc_no_miss=2.2, ipm=700, ipm_cv=0.3, ipc_cv=0.08, miss_overlap=0.45),
        BenchmarkProfile("applu", ipc_no_miss=2.3, ipm=800, ipm_cv=0.3, ipc_cv=0.08, miss_overlap=0.45),
        BenchmarkProfile("mgrid", ipc_no_miss=2.5, ipm=1_800, ipm_cv=0.4, ipc_cv=0.08, miss_overlap=0.35),
        BenchmarkProfile("galgel", ipc_no_miss=2.8, ipm=30_000, ipm_cv=0.6, ipc_cv=0.08, miss_overlap=0.05),
        BenchmarkProfile("apsi", ipc_no_miss=2.1, ipm=9_000, ipm_cv=0.7, ipc_cv=0.1, miss_overlap=0.15),
        BenchmarkProfile("art", ipc_no_miss=1.4, ipm=350, ipm_cv=0.5, ipc_cv=0.15, miss_overlap=0.4),
        BenchmarkProfile("equake", ipc_no_miss=1.8, ipm=500, ipm_cv=0.6, ipc_cv=0.12, miss_overlap=0.4),
        BenchmarkProfile("mesa", ipc_no_miss=2.6, ipm=25_000, ipm_cv=0.6, ipc_cv=0.08, miss_overlap=0.05),
        BenchmarkProfile("wupwise", ipc_no_miss=2.4, ipm=5_000, ipm_cv=0.5, ipc_cv=0.08, miss_overlap=0.25),
        BenchmarkProfile("sixtrack", ipc_no_miss=2.7, ipm=50_000, ipm_cv=0.6, ipc_cv=0.08, miss_overlap=0.05),
        BenchmarkProfile("ammp", ipc_no_miss=1.6, ipm=900, ipm_cv=0.7, ipc_cv=0.12, miss_overlap=0.25),
        BenchmarkProfile("facerec", ipc_no_miss=2.2, ipm=2_000, ipm_cv=0.6, ipc_cv=0.1, miss_overlap=0.2),
        BenchmarkProfile("fma3d", ipc_no_miss=2.0, ipm=1_500, ipm_cv=0.6, ipc_cv=0.1, miss_overlap=0.2),
    ]
}


def benchmark_names() -> list[str]:
    """All benchmarks in the catalogue, sorted."""
    return sorted(PROFILES)


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a benchmark by name."""
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(benchmark_names())
        raise WorkloadError(f"unknown benchmark {name!r}; known: {known}") from None
