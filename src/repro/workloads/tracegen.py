"""Synthetic micro-op trace generation for the detailed core.

A :class:`CpuWorkloadSpec` describes a thread the way the paper's
program model sees it -- a retirement rate between misses (set
indirectly through instruction-level parallelism and operation mix) and
a mean instruction distance between last-level misses (``ipm``) -- and
:func:`make_trace` expands it into a concrete replayable
:class:`~repro.cpu.program.TraceProgram`:

* dependency chains: uops are dealt round-robin across ``ilp``
  independent serial chains, which caps the sustainable IPC at roughly
  ``min(ports, ilp / mean_latency)``;
* memory behaviour: most loads/stores hit a small hot working set;
  a load every ~``ipm`` instructions (geometric) walks a streaming
  region far larger than the L2 and misses to memory;
* control: a branch every ~``1/branch_fraction`` uops; most follow a
  loop pattern the gshare predictor learns, a ``branch_noise`` fraction
  are random and mispredict about half the time;
* code footprint: pcs walk a loop that fits (or not) in the L1I.

Threads get disjoint address spaces (distinct ``thread_index``), so in
SOE mode they compete for shared cache *sets* without aliasing to the
same lines.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.cpu.isa import MicroOp, OpClass
from repro.cpu.program import TraceProgram
from repro.errors import ConfigurationError
from repro.workloads.addresses import HotSetAccessor, StreamingAccessor

__all__ = ["CpuWorkloadSpec", "make_trace", "COMPUTE_SPEC", "MEMORY_SPEC", "MIXED_SPEC"]

#: Address-space stride between threads (1 GiB).
_THREAD_STRIDE = 1 << 30
#: Streaming region size (16 MiB, far beyond a 2 MiB L2).
_STREAM_REGION = 16 * 1024 * 1024


@dataclass(frozen=True)
class CpuWorkloadSpec:
    """Parameters of one synthetic thread for the detailed core."""

    name: str
    #: independent dependency chains (ILP); higher -> higher IPC_no_miss
    ilp: int = 6
    #: mean instructions between streaming (L2-missing) loads
    ipm: float = 2_000.0
    load_fraction: float = 0.25
    store_fraction: float = 0.10
    branch_fraction: float = 0.12
    mul_fraction: float = 0.05
    fp_fraction: float = 0.05
    #: fraction of branches with random direction (~50% mispredicted)
    branch_noise: float = 0.05
    #: hot working-set bytes (L1-resident by default)
    hot_bytes: int = 16 * 1024
    #: code loop footprint in bytes
    code_bytes: int = 8 * 1024

    def __post_init__(self) -> None:
        if self.ilp < 1:
            raise ConfigurationError("ilp must be at least 1")
        if self.ipm <= 1:
            raise ConfigurationError("ipm must exceed 1")
        fractions = (
            self.load_fraction,
            self.store_fraction,
            self.branch_fraction,
            self.mul_fraction,
            self.fp_fraction,
        )
        if any(f < 0 for f in fractions) or sum(fractions) >= 1.0:
            raise ConfigurationError("op-mix fractions must be >= 0 and sum < 1")
        if not 0.0 <= self.branch_noise <= 1.0:
            raise ConfigurationError("branch_noise must be in [0, 1]")


def _build_layout(
    spec: CpuWorkloadSpec, rng: random.Random
) -> list[tuple[OpClass, int, bool]]:
    """Static code layout: (opclass, chain register, is_noise_branch)
    per pc slot.

    Real programs have a fixed instruction at each pc, so the layout is
    drawn once and replayed every loop iteration -- that is what lets
    the predictor/BTB learn and the I-cache settle, exactly as with
    real code. Only data addresses, noise-branch outcomes and the
    miss-load selection vary per dynamic instance.
    """
    slots = spec.code_bytes // 4
    layout = []
    load_cut = spec.load_fraction
    store_cut = load_cut + spec.store_fraction
    branch_cut = store_cut + spec.branch_fraction
    mul_cut = branch_cut + spec.mul_fraction
    fp_cut = mul_cut + spec.fp_fraction
    for slot in range(slots):
        chain_reg = slot % spec.ilp
        roll = rng.random()
        if roll < load_cut:
            opclass = OpClass.LOAD
        elif roll < store_cut:
            opclass = OpClass.STORE
        elif roll < branch_cut:
            opclass = OpClass.BRANCH
        elif roll < mul_cut:
            opclass = OpClass.MUL
        elif roll < fp_cut:
            opclass = OpClass.FP
        else:
            opclass = OpClass.ALU
        noise_branch = (
            opclass is OpClass.BRANCH and rng.random() < spec.branch_noise
        )
        layout.append((opclass, chain_reg, noise_branch))
    return layout


def _generate(
    spec: CpuWorkloadSpec, seed: int, thread_index: int
) -> Iterator[MicroOp]:
    rng = random.Random((seed << 8) ^ thread_index)
    base = thread_index * _THREAD_STRIDE
    code_base = base
    data_base = base + (1 << 24)
    stream_base = base + (1 << 26)

    hot = HotSetAccessor(data_base, spec.hot_bytes, rng)
    stream = StreamingAccessor(stream_base, _STREAM_REGION)
    layout = _build_layout(spec, random.Random(seed * 7919 + 13))
    # Adjust the miss probability for loads only: a miss-load every
    # ~ipm *instructions* means a higher per-load probability.
    miss_probability = min(1.0, 1.0 / (spec.ipm * spec.load_fraction))

    # Slots whose dynamic instances are rng-independent (ALU/MUL/FP and
    # predictable branches) always produce the same immutable MicroOp,
    # so build each once and yield the shared instance every loop
    # iteration instead of re-validating a fresh dataclass per dynamic
    # uop. LOAD/STORE/noise-branch slots stay None and are materialized
    # per instance (their addresses/outcomes consume the rng stream in
    # exactly the original order).
    slots = len(layout)
    templates: list[Optional[MicroOp]] = [None] * slots
    for index, (opclass, chain_reg, noise_branch) in enumerate(layout):
        pc = code_base + index * 4
        if opclass is OpClass.BRANCH:
            if not noise_branch:
                target = code_base + ((index + 1) % slots) * 4
                templates[index] = MicroOp(
                    OpClass.BRANCH, pc, srcs=(chain_reg,), taken=True, target=target
                )
        elif opclass not in (OpClass.LOAD, OpClass.STORE):
            templates[index] = MicroOp(opclass, pc, dest=chain_reg, srcs=(chain_reg,))

    rand = rng.random
    hot_next = hot.next_address
    stream_next = stream.next_address
    slot = 0
    while True:
        template = templates[slot]
        if template is not None:
            slot += 1
            if slot == slots:
                slot = 0
            yield template
            continue
        opclass, chain_reg, noise_branch = layout[slot]
        pc = code_base + slot * 4
        slot += 1
        if slot == slots:
            slot = 0

        if opclass is OpClass.LOAD:
            if rand() < miss_probability:
                address = stream_next()
            else:
                address = hot_next()
            yield MicroOp(
                OpClass.LOAD, pc, dest=chain_reg, srcs=(chain_reg,), address=address
            )
        elif opclass is OpClass.STORE:
            yield MicroOp(
                OpClass.STORE, pc, srcs=(chain_reg,), address=hot_next()
            )
        else:  # noise branch: direction drawn per dynamic instance
            taken = rand() < 0.5
            target = code_base + slot * 4
            yield MicroOp(
                OpClass.BRANCH, pc, srcs=(chain_reg,), taken=taken, target=target
            )


def make_trace(
    spec: CpuWorkloadSpec, seed: int = 0, thread_index: int = 0
) -> TraceProgram:
    """A restartable trace for one thread of the detailed core."""
    return TraceProgram(
        lambda: _generate(spec, seed, thread_index),
        name=f"{spec.name}#{thread_index}",
    )


#: Representative specs used by the validation experiment: an eon-like
#: compute-bound thread, a swim-like memory-bound thread, and a
#: gcc-like mixed thread.
COMPUTE_SPEC = CpuWorkloadSpec(
    name="cpu-compute", ilp=8, ipm=50_000.0, load_fraction=0.20,
    store_fraction=0.08, branch_fraction=0.12, branch_noise=0.02,
)
MEMORY_SPEC = CpuWorkloadSpec(
    name="cpu-memory", ilp=6, ipm=500.0, load_fraction=0.30,
    store_fraction=0.10, branch_fraction=0.08, branch_noise=0.03,
)
MIXED_SPEC = CpuWorkloadSpec(
    name="cpu-mixed", ilp=4, ipm=2_000.0, load_fraction=0.25,
    store_fraction=0.10, branch_fraction=0.14, branch_noise=0.08,
)
