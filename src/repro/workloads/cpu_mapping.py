"""Mapping segment-level benchmark profiles onto detailed-core traces.

The SPEC substitute catalogue (`repro.workloads.spec2000`) describes
benchmarks at the segment level; the detailed core needs micro-op
traces. :func:`cpu_spec_for_profile` derives a
:class:`~repro.workloads.tracegen.CpuWorkloadSpec` whose *emergent*
behaviour on the core approximates the profile's characteristics:

* ``ipm`` carries over directly (the generator inserts a streaming,
  must-miss load every ~IPM instructions);
* ``ipc_no_miss`` maps to an instruction-level-parallelism knob through
  an empirical curve measured on the default machine (see
  ``tests/cpu/test_cpu_mapping.py``, which checks the round trip);
* miss variability maps to nothing -- the geometric spacing of
  streaming loads already has CV ~1.

The mapping is deliberately approximate: the detailed core is used for
validation and mechanism demonstrations, not for regenerating the
16-pair figures (days of pure-Python cycle simulation).
"""

from __future__ import annotations

from repro.workloads.profiles import BenchmarkProfile
from repro.workloads.tracegen import CpuWorkloadSpec

__all__ = ["cpu_spec_for_profile"]

#: (ipc_no_miss ceiling, ilp) calibration points on the default
#: MachineConfig: more chains expose more parallelism until the 3-wide
#: ALU / 4-wide retire limits bind.
_ILP_CURVE = (
    (0.9, 2),
    (1.4, 3),
    (1.9, 4),
    (2.3, 6),
    (2.6, 8),
    (float("inf"), 10),
)


def cpu_spec_for_profile(
    profile: BenchmarkProfile,
    hot_bytes: int = 4 * 1024,
    code_bytes: int = 4 * 1024,
) -> CpuWorkloadSpec:
    # The 4 KB default hot set keeps the cold-fill phase (one switch
    # miss per line) short enough that profile-level IPM dominates
    # after a few thousand warmup instructions.
    """A detailed-core workload spec approximating ``profile``."""
    ilp = next(ilp for ceiling, ilp in _ILP_CURVE if profile.ipc_no_miss <= ceiling)
    # Memory-bound profiles carry more loads; compute-bound more ALU.
    memory_bound = profile.ipm < 2_000
    return CpuWorkloadSpec(
        name=f"cpu-{profile.name}",
        ilp=ilp,
        ipm=max(profile.ipm, 50.0),
        load_fraction=0.30 if memory_bound else 0.20,
        store_fraction=0.08,
        branch_fraction=0.10,
        branch_noise=0.05 if profile.ipc_cv > 0.12 else 0.02,
        hot_bytes=hot_bytes,
        code_bytes=code_bytes,
    )
