"""Benchmark profile abstraction.

A :class:`BenchmarkProfile` captures, for one benchmark, the statistics
the paper's model cares about: retirement rate between misses
(``IPC_no_miss``), instructions per last-level miss (``IPM``), their
variability, and optional phase structure. A profile can produce:

* :class:`~repro.core.model.ThreadParams` for the analytical model;
* a :class:`~repro.engine.segments.SegmentStream` for the segment
  engine (deterministic per seed, offsettable for same-benchmark pairs).

The concrete SPEC CPU2000 substitute catalogue lives in
:mod:`repro.workloads.spec2000`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.model import ThreadParams
from repro.engine.segments import SegmentStream
from repro.errors import ConfigurationError
from repro.workloads.synthetic import Phase, SegmentDistribution, make_stream

__all__ = ["BenchmarkProfile"]


@dataclass(frozen=True)
class BenchmarkProfile:
    """Segment-statistics profile of one benchmark.

    ``phases``, when given, overrides the flat (ipc_no_miss, ipm)
    behaviour with an explicit phase schedule; the flat parameters then
    describe the *aggregate* behaviour used by the analytical model.
    """

    name: str
    ipc_no_miss: float
    ipm: float
    ipm_cv: float = 0.7
    ipc_cv: float = 0.1
    #: Fraction of the miss latency hidden by the out-of-order core when
    #: the thread runs *alone* (clustered-miss overlap / prefetching,
    #: paper footnotes 2 and 5). In SOE mode the stall is instead hidden
    #: by the other thread, so the full memory latency still gates the
    #: missing thread's readiness. A nonzero overlap therefore (a)
    #: raises the real single-thread IPC above Eq. 1's value and (b)
    #: makes the runtime estimator's IPC_ST "usually slightly lower than
    #: the real IPC_ST" exactly as Section 5.1.1 reports.
    miss_overlap: float = 0.0
    phases: Optional[tuple[Phase, ...]] = field(default=None)

    def __post_init__(self) -> None:
        if self.ipc_no_miss <= 0 or self.ipm <= 0:
            raise ConfigurationError(
                f"profile {self.name!r}: ipc_no_miss and ipm must be positive"
            )
        if not 0.0 <= self.miss_overlap < 1.0:
            raise ConfigurationError(
                f"profile {self.name!r}: miss_overlap must be in [0, 1)"
            )

    # ------------------------------------------------------------------
    @property
    def cpm(self) -> float:
        return self.ipm / self.ipc_no_miss

    def thread_params(self) -> ThreadParams:
        """The profile as analytical-model thread parameters."""
        return ThreadParams(ipc_no_miss=self.ipc_no_miss, ipm=self.ipm)

    def single_thread_stall(self, miss_lat: float = 300.0) -> float:
        """Effective per-miss stall when the thread runs alone: the
        memory latency minus the part the OOO core overlaps."""
        return (1.0 - self.miss_overlap) * miss_lat

    def single_thread_ipc(self, miss_lat: float = 300.0) -> float:
        """Model-predicted real ``IPC_ST`` (Eq. 1 with the overlapped
        stall); the measured value comes from
        :func:`repro.engine.run_single_thread` using
        :meth:`single_thread_stall` as its miss latency."""
        return self.ipm / (self.cpm + self.single_thread_stall(miss_lat))

    # ------------------------------------------------------------------
    def _phases(self) -> Sequence[Phase]:
        if self.phases is not None:
            return self.phases
        return (
            Phase(
                SegmentDistribution(
                    self.ipc_no_miss, self.ipm, self.ipm_cv, self.ipc_cv
                ),
                math.inf,
            ),
        )

    def stream(self, seed: int = 0, skip_instructions: float = 0.0) -> SegmentStream:
        """A deterministic segment stream for this benchmark.

        ``skip_instructions`` offsets the stream, used when the same
        benchmark runs on both threads (the paper offsets by 1,000,000
        instructions).
        """
        return make_stream(
            self._phases(),
            seed=seed,
            skip_instructions=skip_instructions,
            name=self.name,
        )
