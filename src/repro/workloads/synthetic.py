"""Synthetic segment-stream generators (SPEC CPU2000 substitutes).

The paper drives its simulator with LITs -- checkpointed traces of SPEC
CPU2000 binaries. Those are proprietary, so we substitute synthetic
workloads that exercise the same code paths: streams of inter-miss
segments whose statistics (instructions-per-miss, retirement rate, their
variability, and phase changes over time) are drawn from configurable
distributions. The fairness mechanism observes programs *only* through
these statistics, so matching their distributions preserves the
behaviour the paper studies.

All generators are deterministic given a seed, and restartable: each
call to ``stream()`` replays the identical segment sequence, which is
what lets the single-thread reference run and every SOE configuration
see the same workload.
"""

from __future__ import annotations

import functools
import math
import random
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.engine.segments import Segment, SegmentStream
from repro.errors import ConfigurationError

__all__ = [
    "SegmentDistribution",
    "Phase",
    "make_stream",
    "uniform_stream",
    "phased_stream",
]


def _lognormal_params(mean: float, cv: float) -> tuple[float, float]:
    """(mu, sigma) of a lognormal with the given mean and coefficient of
    variation."""
    sigma2 = math.log(1.0 + cv * cv)
    mu = math.log(mean) - sigma2 / 2.0
    return mu, math.sqrt(sigma2)


@dataclass(frozen=True)
class SegmentDistribution:
    """Distribution of segment characteristics for one program phase.

    Parameters
    ----------
    ipc_no_miss:
        Mean retirement rate between misses.
    ipm:
        Mean instructions per miss (segment length).
    ipm_cv:
        Coefficient of variation of segment lengths (0 = deterministic;
        1.0 approximates the memoryless behaviour of irregular access
        patterns).
    ipc_cv:
        Coefficient of variation of the per-segment retirement rate.
    """

    ipc_no_miss: float
    ipm: float
    ipm_cv: float = 0.0
    ipc_cv: float = 0.0

    def __post_init__(self) -> None:
        if self.ipc_no_miss <= 0 or self.ipm <= 0:
            raise ConfigurationError("ipc_no_miss and ipm must be positive")
        if self.ipm_cv < 0 or self.ipc_cv < 0:
            raise ConfigurationError("coefficients of variation must be >= 0")

    @property
    def cpm(self) -> float:
        """Mean cycles per miss implied by the distribution."""
        return self.ipm / self.ipc_no_miss

    @functools.cached_property
    def _constant_segment(self) -> Segment:
        """The one segment a fully deterministic distribution produces.

        When both coefficients of variation are zero, ``draw`` consumes
        no randomness and every draw is identical, so the (frozen)
        segment is built once and shared -- the dominant case in the
        paper's uniform-workload sweeps.
        """
        return Segment(
            instructions=self.ipm, cycles=self.ipm / self.ipc_no_miss
        )

    def draw(self, rng: random.Random) -> Segment:
        """Draw one segment."""
        if self.ipm_cv == 0 and self.ipc_cv == 0:
            return self._constant_segment
        if self.ipm_cv > 0:
            mu, sigma = _lognormal_params(self.ipm, self.ipm_cv)
            instructions = max(1.0, rng.lognormvariate(mu, sigma))
        else:
            instructions = self.ipm
        if self.ipc_cv > 0:
            mu, sigma = _lognormal_params(self.ipc_no_miss, self.ipc_cv)
            ipc = max(0.05, rng.lognormvariate(mu, sigma))
        else:
            ipc = self.ipc_no_miss
        return Segment(instructions=instructions, cycles=instructions / ipc)


@dataclass(frozen=True)
class Phase:
    """One program phase: a segment distribution active for a span of
    instructions (the paper's Section 5.1.2 discusses how such phase
    changes perturb the estimator)."""

    distribution: SegmentDistribution
    instructions: float

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise ConfigurationError("phase length must be positive")


def _generate(
    phases: Sequence[Phase],
    seed: int,
    skip_instructions: float,
) -> Iterator[Segment]:
    """Yield segments phase-by-phase, cycling forever.

    ``skip_instructions`` silently discards the leading instructions,
    which is how benchmark pairs offset identical workloads (the paper
    offsets same-benchmark pairs by 1,000,000 instructions).
    """
    rng = random.Random(seed)
    to_skip = skip_instructions
    while True:
        for phase in phases:
            produced = 0.0
            while produced < phase.instructions:
                segment = phase.distribution.draw(rng)
                produced += segment.instructions
                if to_skip > 0:
                    if segment.instructions <= to_skip:
                        to_skip -= segment.instructions
                        continue
                    fraction = 1.0 - to_skip / segment.instructions
                    to_skip = 0.0
                    segment = Segment(
                        instructions=max(1.0, segment.instructions * fraction),
                        cycles=max(1e-9, segment.cycles * fraction),
                        ends_with_miss=segment.ends_with_miss,
                    )
                yield segment


def make_stream(
    phases: Sequence[Phase],
    seed: int = 0,
    skip_instructions: float = 0.0,
    name: str = "",
) -> SegmentStream:
    """A restartable stream cycling through ``phases`` forever."""
    if not phases:
        raise ConfigurationError("at least one phase is required")
    phase_list = list(phases)
    return SegmentStream(
        lambda: _generate(phase_list, seed, skip_instructions), name=name
    )


def uniform_stream(
    ipc_no_miss: float,
    ipm: float,
    ipm_cv: float = 0.0,
    ipc_cv: float = 0.0,
    seed: int = 0,
    skip_instructions: float = 0.0,
    name: str = "",
) -> SegmentStream:
    """A single-phase stream (the common case)."""
    distribution = SegmentDistribution(ipc_no_miss, ipm, ipm_cv, ipc_cv)
    return make_stream(
        [Phase(distribution, math.inf)],
        seed=seed,
        skip_instructions=skip_instructions,
        name=name,
    )


def phased_stream(
    phases: Sequence[tuple[SegmentDistribution, float]],
    seed: int = 0,
    skip_instructions: float = 0.0,
    name: str = "",
) -> SegmentStream:
    """A stream alternating between phases, given (distribution, length)
    tuples; lengths are in instructions."""
    return make_stream(
        [Phase(dist, length) for dist, length in phases],
        seed=seed,
        skip_instructions=skip_instructions,
        name=name,
    )
