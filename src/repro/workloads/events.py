"""Multi-event workloads (paper Section 6 extension).

The base SOE scheme switches only on last-level cache misses, all with
one latency. Section 6 proposes extending the trigger to any detectable
long-latency stall -- L1 misses that may hit the L2 (short, variable
latency), explicit ``pause`` hints, and so on -- and measuring each
event's latency at runtime.

:func:`multi_event_stream` builds segment streams whose terminating
events are drawn from a mixture of :class:`EventType` values, each with
its own mean spacing and stall latency. Together with
``FairnessParams(measure_miss_latency=True)`` this exercises the full
Section 6 path: the estimator sees the *measured* per-thread average
latency instead of assuming the memory constant.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.engine.segments import Segment, SegmentStream
from repro.errors import ConfigurationError

__all__ = ["EventType", "multi_event_stream", "mean_event_latency"]


@dataclass(frozen=True)
class EventType:
    """One class of switch-triggering event.

    Parameters
    ----------
    ipm:
        Mean instructions between events of this type.
    latency:
        The event's stall latency in cycles (e.g. ~40 for an L1 miss
        that hits the L2, 300 for a memory access, ~0 for a pause hint).
    """

    ipm: float
    latency: float

    def __post_init__(self) -> None:
        if self.ipm <= 0:
            raise ConfigurationError("event ipm must be positive")
        if self.latency < 0:
            raise ConfigurationError("event latency must be non-negative")

    @property
    def rate(self) -> float:
        """Events per instruction."""
        return 1.0 / self.ipm


def mean_event_latency(events: Sequence[EventType]) -> float:
    """Rate-weighted mean stall latency of an event mixture.

    This is the value a per-thread latency monitor converges to, and
    the correct constant for Eq. 13 on such a workload.
    """
    if not events:
        raise ConfigurationError("at least one event type is required")
    total_rate = sum(e.rate for e in events)
    return sum(e.rate * e.latency for e in events) / total_rate


def _generate(
    events: Sequence[EventType],
    ipc_no_miss: float,
    seed: int,
) -> Iterator[Segment]:
    rng = random.Random(seed)
    total_rate = sum(e.rate for e in events)
    mean_spacing = 1.0 / total_rate
    cumulative = []
    acc = 0.0
    for event in events:
        acc += event.rate / total_rate
        cumulative.append((acc, event))
    while True:
        instructions = max(1.0, rng.expovariate(1.0 / mean_spacing))
        roll = rng.random()
        chosen = cumulative[-1][1]
        for threshold, event in cumulative:
            if roll <= threshold:
                chosen = event
                break
        yield Segment(
            instructions=instructions,
            cycles=instructions / ipc_no_miss,
            miss_latency=chosen.latency,
        )


def multi_event_stream(
    ipc_no_miss: float,
    events: Sequence[EventType],
    seed: int = 0,
    name: str = "",
) -> SegmentStream:
    """A stream whose segments end with a mixture of event types.

    Segment lengths are exponentially distributed with the mixture's
    combined rate; the terminating event type is drawn proportionally
    to each type's rate, and carries that type's latency.
    """
    if ipc_no_miss <= 0:
        raise ConfigurationError("ipc_no_miss must be positive")
    if not events:
        raise ConfigurationError("at least one event type is required")
    event_list = tuple(events)
    return SegmentStream(
        lambda: _generate(event_list, ipc_no_miss, seed), name=name
    )
