"""Batched, column-oriented segment materialization.

The scalar engine consumes :class:`~repro.engine.segments.Segment`
objects one at a time. The vectorized batch backend instead wants the
same sequences as *columns* -- parallel arrays of instructions, cycles,
miss flags and per-segment latencies -- pulled in chunks so that
thousands of concurrent runs never hold more than a bounded window of
segments each.

Determinism note: the columns are materialized from the **same**
iterators :meth:`SegmentStream.segments` hands the scalar engine, so
both backends observe the identical segment sequence for a given seed.
(The lognormal draws come from :class:`random.Random`; re-drawing them
with a different generator would silently change every workload.)

This module is deliberately numpy-free: columns are plain Python lists
that the batch backend converts to arrays. That keeps the workloads
layer importable -- and the scalar path fully functional -- on
interpreters without numpy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import islice
from typing import Iterator, Optional

from repro.engine.segments import Segment, SegmentStream
from repro.errors import ConfigurationError, WorkloadError

__all__ = [
    "SegmentColumns",
    "ChunkedMaterializer",
    "materialize_segments",
    "ColumnStream",
    "columnize",
]

#: Default number of segments pulled per refill. Large enough to
#: amortize the per-chunk Python overhead, small enough that a batch of
#: thousands of lanes keeps a modest footprint (a chunk is ~4 columns
#: of ``chunk_size`` floats per lane).
DEFAULT_CHUNK_SIZE = 256


@dataclass
class SegmentColumns:
    """A run of consecutive segments as parallel columns.

    ``miss_latency`` holds NaN where the segment uses the machine's
    default memory latency, mirroring ``Segment.miss_latency is None``;
    consumers substitute their configured latency for NaN entries.
    ``exhausted`` is True when the underlying stream ended inside (or
    exactly at the end of) this chunk -- the columns then hold the
    stream's final segments and no further chunk will produce data.
    """

    instructions: list[float] = field(default_factory=list)
    cycles: list[float] = field(default_factory=list)
    ends_with_miss: list[bool] = field(default_factory=list)
    miss_latency: list[float] = field(default_factory=list)
    exhausted: bool = False
    #: Consumer-owned cache slot for an array-converted rendering of
    #: the columns (the batch engine memoizes its numpy conversion here
    #: so reruns of the same workload skip the list-to-array cost).
    #: Never populated by this module; excluded from equality.
    arrays_cache: Optional[object] = field(
        default=None, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.instructions)

    def append(self, segment: Segment) -> None:
        self.instructions.append(segment.instructions)
        self.cycles.append(segment.cycles)
        self.ends_with_miss.append(segment.ends_with_miss)
        self.miss_latency.append(
            math.nan if segment.miss_latency is None else segment.miss_latency
        )

    def segment_at(self, index: int) -> Segment:
        """The row at ``index`` as a scalar :class:`Segment` (tests and
        debugging; the batch engine reads the columns directly)."""
        latency = self.miss_latency[index]
        return Segment(
            instructions=self.instructions[index],
            cycles=self.cycles[index],
            ends_with_miss=self.ends_with_miss[index],
            miss_latency=None if math.isnan(latency) else latency,
        )


class ChunkedMaterializer:
    """Pulls one stream's segments into successive column chunks.

    One materializer wraps one live iterator, so chunks are consumed
    strictly in stream order; the batch engine keeps one per
    (run, thread) lane and refills whenever the lane's pointer reaches
    the end of its buffered columns.
    """

    def __init__(
        self, stream: SegmentStream, chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> None:
        if chunk_size <= 0:
            raise ConfigurationError("chunk_size must be positive")
        self._iterator: Iterator[Segment] = stream.segments()
        self._chunk_size = chunk_size
        self._exhausted = False
        #: Total segments handed out so far (diagnostics/telemetry).
        self.materialized = 0

    @property
    def exhausted(self) -> bool:
        """True once the underlying stream has ended; subsequent
        :meth:`take` calls return empty exhausted chunks."""
        return self._exhausted

    def take(self, count: Optional[int] = None) -> SegmentColumns:
        """Materialize up to ``count`` further segments (default: the
        configured chunk size) as columns."""
        if count is None:
            count = self._chunk_size
        if count <= 0:
            raise ConfigurationError("count must be positive")
        columns = SegmentColumns()
        if self._exhausted:
            columns.exhausted = True
            return columns
        # Bulk-pull via islice: consumes exactly the same iterator in
        # the same order as per-segment next() calls, but builds the
        # columns with C-speed comprehensions instead of per-segment
        # appends (the batch engine refills thousands of lanes).
        segments = list(islice(self._iterator, count))
        if len(segments) < count:
            self._exhausted = True
        columns.instructions = [s.instructions for s in segments]
        columns.cycles = [s.cycles for s in segments]
        columns.ends_with_miss = [s.ends_with_miss for s in segments]
        columns.miss_latency = [
            math.nan if s.miss_latency is None else s.miss_latency
            for s in segments
        ]
        columns.exhausted = self._exhausted
        self.materialized += len(columns)
        return columns


class ColumnStream(SegmentStream):
    """A finite segment stream backed by pre-materialized columns.

    Both substrates consume it natively: :meth:`segments` yields scalar
    :class:`Segment` objects (cached, so replays pay no rebuild), while
    the batch engine reads :attr:`columns` directly as arrays and never
    touches the iterator. The columns are the *whole* stream -- build
    one with :func:`columnize`, which truncates an infinite workload to
    an explicit segment budget.
    """

    def __init__(self, columns: SegmentColumns, name: str = "") -> None:
        if len(columns) == 0:
            raise WorkloadError("a column stream needs at least one segment")
        self.columns = columns
        self._cache: Optional[list[Segment]] = None
        super().__init__(self._replay, name=name)

    def _replay(self) -> Iterator[Segment]:
        if self._cache is None:
            columns = self.columns
            self._cache = [
                columns.segment_at(index) for index in range(len(columns))
            ]
        return iter(self._cache)


def columnize(
    stream: SegmentStream, count: int, name: str = ""
) -> ColumnStream:
    """Materialize a stream's first ``count`` segments as a
    :class:`ColumnStream`.

    The result is a *finite* stream of exactly the materialized
    segments: columnizing a window of an infinite workload truncates
    it, deliberately and visibly.
    """
    return ColumnStream(
        materialize_segments(stream, count), name=name or stream.name
    )


def materialize_segments(
    stream: SegmentStream, count: int, chunk_size: int = DEFAULT_CHUNK_SIZE
) -> SegmentColumns:
    """Eagerly materialize the stream's first ``count`` segments.

    Convenience for tests and benchmarks; returns fewer rows (with
    ``exhausted`` set) when the stream is finite and shorter.
    """
    materializer = ChunkedMaterializer(stream, chunk_size=chunk_size)
    columns = SegmentColumns()
    while len(columns) < count and not materializer.exhausted:
        chunk = materializer.take(min(chunk_size, count - len(columns)))
        columns.instructions.extend(chunk.instructions)
        columns.cycles.extend(chunk.cycles)
        columns.ends_with_miss.extend(chunk.ends_with_miss)
        columns.miss_latency.extend(chunk.miss_latency)
    columns.exhausted = materializer.exhausted
    return columns
