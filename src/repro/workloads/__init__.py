"""Workload generation: SPEC CPU2000 substitutes and synthetic streams."""

from repro.workloads.cpu_mapping import cpu_spec_for_profile
from repro.workloads.events import EventType, mean_event_latency, multi_event_stream
from repro.workloads.pairs import EVALUATION_PAIRS, BenchmarkPair, evaluation_pairs
from repro.workloads.profiles import BenchmarkProfile
from repro.workloads.spec2000 import PROFILES, benchmark_names, get_profile
from repro.workloads.synthetic import (
    Phase,
    SegmentDistribution,
    make_stream,
    phased_stream,
    uniform_stream,
)

__all__ = [
    "EVALUATION_PAIRS",
    "EventType",
    "BenchmarkPair",
    "BenchmarkProfile",
    "PROFILES",
    "Phase",
    "SegmentDistribution",
    "benchmark_names",
    "cpu_spec_for_profile",
    "evaluation_pairs",
    "get_profile",
    "make_stream",
    "mean_event_latency",
    "multi_event_stream",
    "phased_stream",
    "uniform_stream",
]
