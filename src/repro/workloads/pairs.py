"""The two-thread benchmark combinations of the evaluation (Section 4.1).

The paper uses 16 combinations, 8 of which run the same benchmark on
both threads (offset by 1,000,000 instructions). The heterogeneous
pairs span the fairness spectrum: like-with-like FP pairs
(lucas:applu) are naturally fair, while pairing a compute-bound
benchmark with a missy one (gcc:eon, galgel:gcc) produces the severe
starvation the paper reports. Pairs explicitly named in the paper --
gcc:eon, lucas:applu, bzip2b:bzip2b, galgel:gcc, apsi:swim, gcc:gcc,
mgrid:mgrid -- are all included.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.segments import SegmentStream
from repro.workloads.profiles import BenchmarkProfile
from repro.workloads.spec2000 import get_profile

__all__ = ["BenchmarkPair", "EVALUATION_PAIRS", "evaluation_pairs"]

#: Instruction offset applied to the second thread of a same-benchmark
#: pair (the paper's value).
SAME_BENCHMARK_OFFSET = 1_000_000.0


@dataclass(frozen=True)
class BenchmarkPair:
    """One two-thread combination."""

    first: str
    second: str

    @property
    def label(self) -> str:
        return f"{self.first}:{self.second}"

    @property
    def is_homogeneous(self) -> bool:
        return self.first == self.second

    def profiles(self) -> tuple[BenchmarkProfile, BenchmarkProfile]:
        return get_profile(self.first), get_profile(self.second)

    def stream_specs(
        self, seed: int = 0
    ) -> tuple[tuple[str, int, float], tuple[str, int, float]]:
        """``(benchmark, stream seed, skip)`` per thread.

        Exactly the parameters :meth:`streams` passes to the profile
        generators, exposed so execution layers can key single-thread
        memoization on them without duplicating the seed derivation.
        """
        skip = SAME_BENCHMARK_OFFSET if self.is_homogeneous else 0.0
        return (
            (self.first, seed * 2 + 1, 0.0),
            (self.second, seed * 2 + 2, skip),
        )

    def streams(self, seed: int = 0) -> tuple[SegmentStream, SegmentStream]:
        """Deterministic streams for the two threads.

        The two threads always draw from differently-seeded streams; a
        same-benchmark pair additionally offsets the second thread by
        :data:`SAME_BENCHMARK_OFFSET` instructions, as in the paper.
        """
        return tuple(
            get_profile(benchmark).stream(
                seed=stream_seed, skip_instructions=skip
            )
            for benchmark, stream_seed, skip in self.stream_specs(seed)
        )


#: The 16 evaluation combinations: 8 homogeneous + 8 heterogeneous.
EVALUATION_PAIRS: tuple[BenchmarkPair, ...] = (
    # Homogeneous (same benchmark on both threads)
    BenchmarkPair("gcc", "gcc"),
    BenchmarkPair("eon", "eon"),
    BenchmarkPair("mgrid", "mgrid"),
    BenchmarkPair("bzip2b", "bzip2b"),
    BenchmarkPair("swim", "swim"),
    BenchmarkPair("applu", "applu"),
    BenchmarkPair("mcf", "mcf"),
    BenchmarkPair("crafty", "crafty"),
    # Heterogeneous
    BenchmarkPair("gcc", "eon"),
    BenchmarkPair("lucas", "applu"),
    BenchmarkPair("galgel", "gcc"),
    BenchmarkPair("apsi", "swim"),
    BenchmarkPair("mcf", "crafty"),
    BenchmarkPair("art", "vortex"),
    BenchmarkPair("equake", "mesa"),
    BenchmarkPair("ammp", "sixtrack"),
)


def evaluation_pairs() -> list[BenchmarkPair]:
    """The evaluation combinations as a fresh list."""
    return list(EVALUATION_PAIRS)
