"""Baseline comparison for benchmark results.

Raw wall time is not comparable across machines, so the gate compares
*normalized cost*: ``wall_seconds * calibration_ops_per_sec``, where
the calibration factor is the throughput of a fixed pure-Python loop
measured by the harness in the same process environment as the
benchmarks. A faster host lowers wall time and raises the calibration
factor by roughly the same ratio, so the product tracks the amount of
simulator work done, not the host. A benchmark regresses when its
normalized cost grows by more than ``threshold`` (25% by default)
relative to the committed baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Sequence

from repro.benchmarking.schema import TIER1_BENCHMARKS

__all__ = [
    "DEFAULT_THRESHOLD",
    "ComparisonRow",
    "normalized_cost",
    "compare_results",
    "regressions",
    "render_comparison",
    "render_markdown",
]

DEFAULT_THRESHOLD = 0.25


@dataclass(frozen=True)
class ComparisonRow:
    """One benchmark's baseline-vs-current comparison."""

    name: str
    baseline_wall: float
    current_wall: float
    #: normalized-cost ratio baseline/current (>1 means faster now)
    speedup: float
    #: normalized-cost growth current/baseline - 1 (>0 means slower now)
    cost_growth: float
    tier1: bool
    regressed: bool


def normalized_cost(result: Mapping[str, Any]) -> float:
    """Machine-independent cost of one run (see module docstring)."""
    calibration = float(result["env"]["calibration_ops_per_sec"])
    if calibration <= 0:
        calibration = 1.0
    return float(result["wall_seconds"]) * calibration


def compare_results(
    baseline: Mapping[str, Mapping[str, Any]],
    current: Mapping[str, Mapping[str, Any]],
    threshold: float = DEFAULT_THRESHOLD,
    tier1: Sequence[str] = TIER1_BENCHMARKS,
) -> List[ComparisonRow]:
    """Compare current results against the baseline, sorted by name.

    Benchmarks present on only one side are skipped — the gate is about
    regressions in benchmarks both runs measured.
    """
    tier1_set = set(tier1)
    rows: List[ComparisonRow] = []
    for name in sorted(set(baseline) & set(current)):
        base_cost = normalized_cost(baseline[name])
        cur_cost = normalized_cost(current[name])
        if base_cost <= 0 or cur_cost <= 0:
            continue
        growth = cur_cost / base_cost - 1.0
        rows.append(
            ComparisonRow(
                name=name,
                baseline_wall=float(baseline[name]["wall_seconds"]),
                current_wall=float(current[name]["wall_seconds"]),
                speedup=base_cost / cur_cost,
                cost_growth=growth,
                tier1=name in tier1_set,
                regressed=name in tier1_set and growth > threshold,
            )
        )
    return rows


def regressions(rows: Iterable[ComparisonRow]) -> List[str]:
    return [row.name for row in rows if row.regressed]


def _row_cells(row: ComparisonRow) -> Dict[str, str]:
    return {
        "name": row.name + (" *" if row.tier1 else ""),
        "base": f"{row.baseline_wall:.3f}s",
        "cur": f"{row.current_wall:.3f}s",
        "speedup": f"{row.speedup:.2f}x",
        "status": "REGRESSED" if row.regressed else "ok",
    }


def render_comparison(rows: Sequence[ComparisonRow]) -> str:
    """Plain-text comparison table (* marks gated tier-1 benchmarks)."""
    if not rows:
        return "no benchmarks common to baseline and current results"
    cells = [_row_cells(row) for row in rows]
    header = {
        "name": "benchmark",
        "base": "baseline",
        "cur": "current",
        "speedup": "speedup",
        "status": "status",
    }
    widths = {
        key: max(len(header[key]), *(len(c[key]) for c in cells))
        for key in header
    }
    lines = [
        "  ".join(header[key].ljust(widths[key]) for key in header),
        "  ".join("-" * widths[key] for key in header),
    ]
    for c in cells:
        lines.append("  ".join(c[key].ljust(widths[key]) for key in header))
    lines.append("(* = tier-1 kernel benchmark, gated in CI; "
                 "speedup is normalized baseline_cost/current_cost)")
    return "\n".join(lines)


def render_markdown(rows: Sequence[ComparisonRow]) -> str:
    """GitHub-flavored markdown table for the CI step summary."""
    if not rows:
        return "_no benchmarks common to baseline and current results_"
    lines = [
        "| benchmark | baseline wall | current wall | speedup | status |",
        "|---|---:|---:|---:|---|",
    ]
    for row in rows:
        c = _row_cells(row)
        status = "**REGRESSED**" if row.regressed else "ok"
        lines.append(
            f"| {c['name']} | {c['base']} | {c['cur']} | {c['speedup']} | {status} |"
        )
    lines.append("")
    lines.append(
        "\\* = tier-1 kernel benchmark (gated); speedup is the "
        "calibration-normalized cost ratio baseline/current."
    )
    return "\n".join(lines)
