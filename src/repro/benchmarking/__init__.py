"""Machine-readable benchmark results: schema, comparison, CLI.

The perf harness (``benchmarks/harness.py``) runs each ``bench_*.py``
file in a fresh interpreter and writes one schema-validated
``BENCH_<name>.json`` per file (wall time, simulated cycles/sec,
events/sec, peak RSS, environment fingerprint). This package holds the
pure, wall-clock-free half of that pipeline: the result schema, the
committed-baseline comparison (with cross-machine calibration
normalization), and the ``python -m repro bench`` subcommand.

See docs/PERFORMANCE.md for the schema and the baseline-update
procedure.
"""

from repro.benchmarking.compare import (
    ComparisonRow,
    compare_results,
    regressions,
    render_comparison,
    render_markdown,
)
from repro.benchmarking.schema import (
    BENCH_SCHEMA_VERSION,
    TIER1_BENCHMARKS,
    bench_result,
    load_baseline,
    load_bench_file,
    validate_bench_result,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "TIER1_BENCHMARKS",
    "bench_result",
    "validate_bench_result",
    "load_bench_file",
    "load_baseline",
    "ComparisonRow",
    "compare_results",
    "regressions",
    "render_comparison",
    "render_markdown",
]
