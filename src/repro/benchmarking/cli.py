"""``python -m repro bench`` — run the perf harness / compare results.

Two modes:

* ``repro bench [names...]`` — delegate to ``benchmarks/harness.py``
  in a subprocess (the harness owns all wall-clock reads and writes
  ``BENCH_<name>.json`` files).
* ``repro bench --compare`` — pure read-and-report: load the committed
  ``benchmarks/baseline.json`` plus the ``BENCH_*.json`` files from the
  results directory, print the comparison table, and exit non-zero when
  a tier-1 kernel benchmark regressed by more than the threshold.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.benchmarking.compare import (
    DEFAULT_THRESHOLD,
    compare_results,
    regressions,
    render_comparison,
    render_markdown,
)
from repro.benchmarking.schema import load_baseline, load_bench_file
from repro.errors import ConfigurationError

__all__ = ["main"]


def _repo_root() -> Path:
    # src/repro/benchmarking/cli.py -> repo root is three levels above src
    return Path(__file__).resolve().parents[3]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Run the perf harness or compare results to the baseline.",
    )
    parser.add_argument(
        "names",
        nargs="*",
        help="benchmark names to run (default: the harness's default set)",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="compare existing BENCH_*.json results against the baseline "
        "instead of running benchmarks (exits 1 on tier-1 regression)",
    )
    parser.add_argument(
        "--results-dir",
        type=Path,
        default=None,
        help="directory holding BENCH_*.json files "
        "(default: benchmarks/results)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file (default: benchmarks/baseline.json)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="regression gate on normalized cost growth (default 0.25)",
    )
    parser.add_argument(
        "--markdown",
        type=Path,
        default=None,
        help="with --compare: also write the table as markdown to this file",
    )
    parser.add_argument(
        "--scale",
        default=None,
        help="forwarded to the harness (quick|default; default: "
        "REPRO_BENCH_SCALE or 'default')",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="forwarded to the harness: rewrite benchmarks/baseline.json "
        "from this run",
    )
    return parser


def _compare(args: argparse.Namespace) -> int:
    root = _repo_root()
    results_dir = args.results_dir or root / "benchmarks" / "results"
    baseline_path = args.baseline or root / "benchmarks" / "baseline.json"
    baseline = load_baseline(baseline_path)
    current: dict = {}
    for path in sorted(results_dir.glob("BENCH_*.json")):
        result = load_bench_file(path)
        current[result["name"]] = result
    if not current:
        print(f"no BENCH_*.json files in {results_dir}", file=sys.stderr)
        return 2
    rows = compare_results(baseline, current, threshold=args.threshold)
    print(render_comparison(rows))
    if args.markdown is not None:
        args.markdown.parent.mkdir(parents=True, exist_ok=True)
        args.markdown.write_text(render_markdown(rows) + "\n")
    regressed = regressions(rows)
    if regressed:
        print(
            f"\nFAIL: tier-1 regression(s) beyond "
            f"{args.threshold:.0%}: {', '.join(regressed)}",
            file=sys.stderr,
        )
        return 1
    print("\nOK: no tier-1 regression beyond the threshold")
    return 0


def _run_harness(args: argparse.Namespace) -> int:
    harness = _repo_root() / "benchmarks" / "harness.py"
    if not harness.exists():
        print(f"harness not found at {harness}", file=sys.stderr)
        return 2
    cmd: List[str] = [sys.executable, str(harness)]
    if args.scale is not None:
        cmd += ["--scale", args.scale]
    if args.results_dir is not None:
        cmd += ["--out", str(args.results_dir)]
    if args.baseline is not None:
        cmd += ["--baseline", str(args.baseline)]
    if args.update_baseline:
        cmd.append("--update-baseline")
    cmd += list(args.names)
    return subprocess.call(cmd)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.compare:
            return _compare(args)
        return _run_harness(args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
