"""Schema for machine-readable benchmark results.

One ``BENCH_<name>.json`` per benchmark file, written by
``benchmarks/harness.py`` and validated here before anything consumes
it. Keeping validation in pure code (no wall-clock reads) lets the
``repro bench --compare`` path run under the repo's determinism lint
without exemptions.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Mapping, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "TIER1_BENCHMARKS",
    "bench_result",
    "validate_bench_result",
    "load_bench_file",
    "load_baseline",
]

#: Bump when a field is added/renamed; compare refuses mismatched versions.
BENCH_SCHEMA_VERSION = 1

#: Kernel benchmarks gated by CI: a >25% normalized-cost regression on
#: any of these fails the bench-smoke job (see docs/PERFORMANCE.md).
TIER1_BENCHMARKS = ("bench_detailed_core", "bench_simulator_speed")

#: field name -> (required, allowed types)
_FIELDS: Dict[str, Tuple[bool, tuple]] = {
    "schema_version": (True, (int,)),
    "name": (True, (str,)),
    "scale": (True, (str,)),
    "wall_seconds": (True, (int, float)),
    "simulated_cycles": (True, (int, float)),
    "simulated_cycles_per_sec": (True, (int, float)),
    "events": (True, (int, float)),
    "events_per_sec": (True, (int, float)),
    "peak_rss_bytes": (True, (int,)),
    "exit_status": (True, (int,)),
    "env": (True, (dict,)),
}

_ENV_FIELDS: Dict[str, Tuple[bool, tuple]] = {
    "python": (True, (str,)),
    "implementation": (True, (str,)),
    "platform": (True, (str,)),
    "machine": (True, (str,)),
    "calibration_ops_per_sec": (True, (int, float)),
}


def bench_result(
    *,
    name: str,
    scale: str,
    wall_seconds: float,
    simulated_cycles: float,
    events: float,
    peak_rss_bytes: int,
    exit_status: int,
    env: Mapping[str, Any],
) -> Dict[str, Any]:
    """Assemble and validate one benchmark-result record."""
    wall = float(wall_seconds)
    result: Dict[str, Any] = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "name": name,
        "scale": scale,
        "wall_seconds": wall,
        "simulated_cycles": float(simulated_cycles),
        "simulated_cycles_per_sec": (
            float(simulated_cycles) / wall if wall > 0 else 0.0
        ),
        "events": float(events),
        "events_per_sec": float(events) / wall if wall > 0 else 0.0,
        "peak_rss_bytes": int(peak_rss_bytes),
        "exit_status": int(exit_status),
        "env": dict(env),
    }
    return validate_bench_result(result)


def validate_bench_result(result: Mapping[str, Any]) -> Dict[str, Any]:
    """Check one record against the schema; raise ConfigurationError."""
    if not isinstance(result, Mapping):
        raise ConfigurationError("bench result must be a JSON object")
    for field, (required, types) in _FIELDS.items():
        if field not in result:
            if required:
                raise ConfigurationError(f"bench result missing field {field!r}")
            continue
        value = result[field]
        if isinstance(value, bool) or not isinstance(value, types):
            raise ConfigurationError(
                f"bench result field {field!r} has type "
                f"{type(value).__name__}, expected {'/'.join(t.__name__ for t in types)}"
            )
    version = result["schema_version"]
    if version != BENCH_SCHEMA_VERSION:
        raise ConfigurationError(
            f"bench result schema_version {version} != {BENCH_SCHEMA_VERSION}"
        )
    env = result["env"]
    for field, (required, types) in _ENV_FIELDS.items():
        if field not in env:
            if required:
                raise ConfigurationError(f"bench env missing field {field!r}")
            continue
        value = env[field]
        if isinstance(value, bool) or not isinstance(value, types):
            raise ConfigurationError(
                f"bench env field {field!r} has type "
                f"{type(value).__name__}, expected {'/'.join(t.__name__ for t in types)}"
            )
    unknown = sorted(set(result) - set(_FIELDS))
    if unknown:
        raise ConfigurationError(f"bench result has unknown fields: {unknown}")
    return dict(result)


def load_bench_file(path: Path) -> Dict[str, Any]:
    """Load and validate one ``BENCH_<name>.json`` file."""
    try:
        raw = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot read bench result {path}: {exc}") from exc
    result = validate_bench_result(raw)
    expected = f"BENCH_{result['name']}.json"
    if path.name != expected:
        raise ConfigurationError(
            f"bench result {path} names benchmark {result['name']!r} "
            f"(expected file name {expected})"
        )
    return result


def load_baseline(path: Path) -> Dict[str, Dict[str, Any]]:
    """Load ``baseline.json``: a map of benchmark name -> result record."""
    try:
        raw = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(raw, dict) or "benchmarks" not in raw:
        raise ConfigurationError(f"baseline {path} must have a 'benchmarks' map")
    version = raw.get("schema_version")
    if version != BENCH_SCHEMA_VERSION:
        raise ConfigurationError(
            f"baseline schema_version {version} != {BENCH_SCHEMA_VERSION}"
        )
    benchmarks: Dict[str, Dict[str, Any]] = {}
    for name, record in raw["benchmarks"].items():
        result = validate_bench_result(record)
        if result["name"] != name:
            raise ConfigurationError(
                f"baseline entry {name!r} holds result for {result['name']!r}"
            )
        benchmarks[name] = result
    return benchmarks
