"""Reproduction of *Fairness and Throughput in Switch on Event
Multithreading* (Gabor, Weiss, Mendelson -- MICRO 2006).

Quickstart::

    from repro import (
        FairnessController, FairnessParams, SoeParams, RunLimits,
        run_soe, run_single_thread,
    )
    from repro.workloads import get_profile

    gcc, eon = get_profile("gcc"), get_profile("eon")
    streams = [gcc.stream(seed=1), eon.stream(seed=2)]
    policy = FairnessController(2, FairnessParams(fairness_target=0.5))
    result = run_soe(streams, policy, limits=RunLimits(min_instructions=500_000))
    ipc_st = [
        run_single_thread(gcc.stream(seed=1)).ipc,
        run_single_thread(eon.stream(seed=2)).ipc,
    ]
    print(result.total_ipc, result.achieved_fairness(ipc_st))

Package layout:

* :mod:`repro.core` -- the paper's contribution: analytical model,
  fairness metric, and the enforcement mechanism (counters, estimator,
  Eq. 9 quotas, deficit counters, controller).
* :mod:`repro.engine` -- fast event-driven segment-level SOE simulator.
* :mod:`repro.cpu` -- detailed cycle-level out-of-order core simulator.
* :mod:`repro.workloads` -- SPEC CPU2000 substitute workload generators.
* :mod:`repro.metrics` -- throughput/fairness measurement helpers.
* :mod:`repro.experiments` -- one runner per paper table/figure.
"""

from repro.core import (
    FairnessController,
    FairnessParams,
    NoFairnessPolicy,
    SoeModel,
    SwitchPolicy,
    ThreadParams,
    TimeSharingPolicy,
    fairness,
    fairness_from_ipcs,
    harmonic_mean_fairness,
    speedups,
    weighted_speedup,
)
from repro.engine import (
    IntervalRecorder,
    RunLimits,
    Segment,
    SegmentStream,
    SoeEngine,
    SoeParams,
    SoeRunResult,
    run_single_thread,
    run_soe,
    stream_from_segments,
)
from repro.errors import ConfigurationError, ReproError, SimulationError, WorkloadError

__version__ = "1.0.0"

__all__ = [
    "ConfigurationError",
    "FairnessController",
    "FairnessParams",
    "IntervalRecorder",
    "NoFairnessPolicy",
    "ReproError",
    "RunLimits",
    "Segment",
    "SegmentStream",
    "SimulationError",
    "SoeEngine",
    "SoeModel",
    "SoeParams",
    "SoeRunResult",
    "SwitchPolicy",
    "ThreadParams",
    "TimeSharingPolicy",
    "WorkloadError",
    "__version__",
    "fairness",
    "fairness_from_ipcs",
    "harmonic_mean_fairness",
    "run_single_thread",
    "run_soe",
    "speedups",
    "stream_from_segments",
    "weighted_speedup",
]
