"""Deterministic fault injection for the supervised grid executor.

The fault-tolerance layer (``docs/ROBUSTNESS.md``) is only trustworthy
if its failure paths are exercised on purpose. This package provides an
ambient, deterministic :class:`FaultPlan` -- mirroring the
``ExecutionSettings``/``tracing()`` ambient-context pattern -- that
injects failures at *chosen task indices*:

* ``crash``   -- the worker process running the task dies without
  reporting a result (``os._exit``), exactly like a segfault/OOM kill;
* ``hang``    -- the task blocks far past any sane deadline, exercising
  the supervisor's wall-clock timeout + terminate path;
* ``nan``     -- the task's result comes back with a non-finite float,
  exercising the supervisor's invariant check;
* ``corrupt`` -- the on-disk result-cache entry of a chosen *pair
  index* is overwritten with garbage after being stored, exercising
  quarantine-on-load.

The simulation *service* (``python -m repro serve``) adds three
service-level kinds on the same plan:

* ``storm``   -- a worker *crash storm*: every first attempt of tasks
  ``index .. index+count-1`` dies, exercising the circuit breaker and
  retry backoff under a burst (retries still recover each task);
* ``stall``   -- a *slow client*: request handling for request indices
  ``index .. index+count-1`` is delayed, exercising per-connection
  isolation (other tenants' requests must not queue behind it);
* ``jtear``   -- a *torn journal append*: writes ``index ..
  index+count-1`` of the job journal first land truncated mid-line
  (as if power failed inside ``write(2)``), exercising the writer's
  verify-and-repair path and the loader's torn-line tolerance.

Injection is keyed by ``(kind, task index, attempt)`` and nothing else:
no randomness, no wall clock, no dependence on the workload seed, so a
faulted run is exactly reproducible. For the classic kinds a fault
fires on the first ``count`` attempts of its task (default 1), which is
what lets a retry budget *recover*: ``crash@3`` fails task 3 once, and
the retry succeeds. For the service kinds (``storm``/``stall``/
``jtear``) ``count`` is instead the *width of the index range* the
fault covers, and only first attempts are hit.

Spec grammar (``--inject-faults``)::

    spec    := entry ("," entry)*
    entry   := kind "@" index ("*" count)?
    kind    := "crash" | "hang" | "nan" | "corrupt"
             | "storm" | "stall" | "jtear"

e.g. ``crash@2,hang@5,nan@7*2,corrupt@1`` or ``storm@0*3,jtear@1``.
Indices for ``crash``/``hang``/``nan`` refer to the deterministic
supervised-task order (single-thread baselines first, then every
(pair, level) SOE task); ``corrupt`` indices refer to the pair's
position in the grid; ``storm`` indices refer to service job dispatch
order, ``stall`` to request arrival order, and ``jtear`` to journal
append order.
"""

from __future__ import annotations

import hashlib
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, fields, is_dataclass, replace
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.errors import ConfigurationError, ReproError

__all__ = [
    "FAULT_KINDS",
    "RANGE_KINDS",
    "CRASH_EXIT_CODE",
    "FaultSpec",
    "FaultPlan",
    "NO_FAULTS",
    "parse_fault_plan",
    "current_plan",
    "set_plan",
    "fault_injection",
]

#: Injection kinds understood by the plan (and the spec grammar).
FAULT_KINDS = frozenset(
    ("crash", "hang", "nan", "corrupt", "storm", "stall", "jtear")
)

#: Kinds whose ``count`` widens the covered *index range* (service
#: chaos) instead of repeating across attempts (classic kinds).
RANGE_KINDS = frozenset(("storm", "stall", "jtear"))

#: Exit code of an injected worker crash (BSD ``EX_SOFTWARE``); chosen
#: to be visibly distinct from signal deaths (negative exitcodes).
CRASH_EXIT_CODE = 70

#: How long an injected hang blocks. Any sane ``--task-timeout`` fires
#: long before this; the supervisor terminates the sleeping worker.
_HANG_SECONDS = 3600.0

#: How long an injected slow-client stall delays one request. Short
#: enough to keep chaos tests fast, long enough that an accidentally
#: serialized server would visibly delay the *other* tenant too.
_STALL_SECONDS = 0.2


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: ``kind`` at task/pair ``index``.

    The fault fires on attempts ``1..count`` of that task and never
    again, so a retry budget ``>= count`` recovers the task. For the
    service-level range kinds (:data:`RANGE_KINDS`) ``count`` is
    instead the width of the covered index range
    ``index .. index+count-1`` and only first attempts fire.
    """

    kind: str
    index: int
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; "
                f"choose from {sorted(FAULT_KINDS)}"
            )
        if self.index < 0:
            raise ConfigurationError("fault index must be >= 0")
        if self.count < 1:
            raise ConfigurationError("fault count must be >= 1")

    @property
    def label(self) -> str:
        suffix = f"*{self.count}" if self.count != 1 else ""
        return f"{self.kind}@{self.index}{suffix}"


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of faults to inject into one grid execution.

    ``seed`` only varies the *bytes* written by cache corruption (so
    corruption tests can cover several garbage patterns); which faults
    fire where is a pure function of the specs.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    @property
    def active(self) -> bool:
        return bool(self.specs)

    def _fires(self, kind: str, index: int, attempt: int) -> bool:
        return any(
            spec.kind == kind and spec.index == index and attempt <= spec.count
            for spec in self.specs
        )

    def _covers(self, kind: str, index: int) -> bool:
        """Range-kind check: is ``index`` inside any ``kind`` burst?"""
        return any(
            spec.kind == kind and spec.index <= index < spec.index + spec.count
            for spec in self.specs
        )

    # -- worker-side hooks (called inside the task process) -------------
    def on_task_start(self, index: int, attempt: int) -> None:
        """Crash or hang the executing worker if the plan says so."""
        if self._fires("crash", index, attempt):
            os._exit(CRASH_EXIT_CODE)
        if attempt == 1 and self._covers("storm", index):
            os._exit(CRASH_EXIT_CODE)
        if self._fires("hang", index, attempt):
            time.sleep(_HANG_SECONDS)

    def mutate_result(self, index: int, attempt: int, result: object) -> object:
        """Poison the task's result with a NaN if the plan says so."""
        if self._fires("nan", index, attempt):
            return _poison(result)
        return result

    # -- service-side hooks (called inside the serve process) -----------
    def stall_seconds(self, request_index: int) -> float:
        """Slow-client delay for the ``request_index``-th request."""
        if self._covers("stall", request_index):
            return _STALL_SECONDS
        return 0.0

    def tears_write(self, write_index: int) -> bool:
        """Should the ``write_index``-th journal append land torn?"""
        return self._covers("jtear", write_index)

    # -- parent-side hooks ----------------------------------------------
    def corrupts_cache(self, pair_index: int) -> bool:
        """Should the stored cache entry of this pair be corrupted?"""
        return self._fires("corrupt", pair_index, 1)

    def corrupt_file(self, path: Union[str, Path]) -> None:
        """Deterministically overwrite ``path``'s head with garbage."""
        target = Path(path)
        garbage = hashlib.sha256(f"repro-fault-{self.seed}".encode()).digest()
        data = target.read_bytes()
        target.write_bytes(garbage + data[len(garbage):])


def _poison(result: object) -> object:
    """``result`` with one float field replaced by NaN.

    Frozen result dataclasses validate some fields at construction
    (e.g. ``SoeRunResult.cycles > 0``), so fields are tried in order
    until one accepts the NaN; non-dataclass results degrade to a bare
    ``nan``.
    """
    nan = float("nan")
    if is_dataclass(result) and not isinstance(result, type):
        for field in fields(result):
            if not isinstance(getattr(result, field.name), float):
                continue
            try:
                return replace(result, **{field.name: nan})
            except (ReproError, TypeError, ValueError):
                continue
    return nan


NO_FAULTS = FaultPlan()

_AMBIENT: FaultPlan = NO_FAULTS


def current_plan() -> FaultPlan:
    """The ambient fault plan (inactive by default)."""
    return _AMBIENT


def set_plan(plan: Optional[FaultPlan]) -> FaultPlan:
    """Install a new ambient plan (None = no faults); returns the old."""
    global _AMBIENT
    previous = _AMBIENT
    _AMBIENT = plan if plan is not None else NO_FAULTS
    return previous


@contextmanager
def fault_injection(plan: Optional[FaultPlan]) -> Iterator[FaultPlan]:
    """Scope an ambient fault plan to a ``with`` block.

    Workers forked inside the block inherit the plan, which is how the
    injection hooks reach the task processes without any plumbing.
    """
    previous = set_plan(plan)
    try:
        yield current_plan()
    finally:
        set_plan(previous)


def parse_fault_plan(text: Optional[str], seed: int = 0) -> FaultPlan:
    """Parse an ``--inject-faults`` spec string into a plan.

    Returns :data:`NO_FAULTS` for None/empty input; raises
    :class:`~repro.errors.ConfigurationError` on malformed entries.
    """
    if text is None or not text.strip():
        return NO_FAULTS
    specs = []
    for raw in text.split(","):
        entry = raw.strip()
        if not entry:
            continue
        kind, sep, location = entry.partition("@")
        if not sep:
            raise ConfigurationError(
                f"malformed fault entry {entry!r}: expected kind@index"
                "[*count], e.g. crash@3 or hang@5*2"
            )
        index_text, star, count_text = location.partition("*")
        try:
            index = int(index_text)
            count = int(count_text) if star else 1
        except ValueError:
            raise ConfigurationError(
                f"malformed fault entry {entry!r}: index and count must "
                "be integers"
            ) from None
        specs.append(FaultSpec(kind=kind.strip(), index=index, count=count))
    return FaultPlan(specs=tuple(specs), seed=seed)
