"""Vectorized batch engine: many independent SOE runs as arrays.

The scalar :class:`~repro.engine.soe.SoeEngine` advances one run
event-to-event in Python; a paper-scale grid is thousands of such runs,
all independent. This backend advances a whole batch in lockstep: every
data-parallel iteration moves each unfinished run forward by one
scalar-loop iteration's worth of work, with the per-run state held in
numpy arrays of shape ``(runs,)`` and ``(runs, threads)``.

Each lockstep iteration mirrors the scalar engine's run loop exactly:

* the loop-top checks (finished, ``max_cycles``, the warmup snapshot)
  apply to every run standing at its loop top;
* runs with no active thread schedule: they pick the least-recently-
  dispatched ready thread and elapse its switch overhead (boundary-
  split, like ``_elapse_inactive``), or idle until the earliest pending
  miss resolves;
* runs with an active thread take one ``_step_active``-equivalent step:
  the time to the next event is the minimum of segment end,
  instruction-quota exhaustion, cycle-quota exhaustion, sampling
  boundary, and the cycle cap, with the scalar engine's tie-breaking
  order (segment end, then instruction quota, then cycle quota).

The fairness mechanism (counters, Eq. 11-13 estimates, Eq. 9 quotas,
deficit counters) is evaluated as arrays across runs with the same
per-thread arithmetic and operation order as the scalar
:class:`~repro.core.controller.FairnessController`, and segments come
from the same Python stream iterators (via
:mod:`repro.workloads.materialize`), so for supported configurations
the per-run arithmetic is the scalar engine's, operation for operation.
docs/SIMULATORS.md states the resulting equivalence guarantees; the
differential test suite enforces them.

Supported configuration envelope (:meth:`BatchBackend.supports`): any
thread count, any :class:`~repro.engine.soe.SoeParams` and
:class:`~repro.engine.soe.RunLimits`, fairness parameters within the
paper's evaluation defaults (no smoothing, no deficit cap, no weights,
no runtime latency measurement), and -- of the residual policy-zoo
policies -- the ``drr-arbiter``, whose fixed-quantum deficit carryover
rides the same deficit-counter arrays with a constant grant size and no
boundary schedule. Recorders and per-event trace sinks are
scalar-only; the batch emits a single batch-level telemetry event
instead.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

try:  # pragma: no cover - exercised via the no-numpy CI leg
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

from repro.engine.backend import SoeRunSpec
from repro.engine.results import SoeRunResult, ThreadStats
from repro.engine.soe import MAX_EVENTS, _EPS
from repro.errors import ConfigurationError, SimulationError
from repro.telemetry import RUNNER as _TRACE_RUNNER
from repro.telemetry import current_sink
from repro.telemetry.events import batch_event
from repro.workloads.materialize import ChunkedMaterializer

__all__ = ["BatchBackend", "HAVE_NUMPY"]

#: Segments buffered per (run, thread) lane between refills from the
#: Python stream iterator.
_CHUNK = 256

#: Lane states of the lockstep machine. Inactive spans (switch overhead
#: and idle) run to completion inside one iteration, as in the scalar
#: engine, so only the loop-top states persist across iterations.
_SCHED, _RUN, _DONE = 0, 1, 2

#: Sentinel "never dispatched / no thread" markers.
_NO_THREAD = -1

if HAVE_NUMPY:
    #: Shared empty index/mask/value arrays (avoids re-allocating in
    #: the per-iteration hot path).
    _EMPTY_I = np.empty(0, dtype=np.int64)
    _EMPTY_B = np.empty(0, dtype=bool)
    _EMPTY_F = np.empty(0)


def _require_numpy() -> None:
    if not HAVE_NUMPY:
        raise ConfigurationError(
            "the batch engine backend needs numpy, which is not installed"
        )


class BatchBackend:
    """Data-parallel engine backend over numpy arrays."""

    name = "batch"

    def supports(self, spec: SoeRunSpec) -> bool:
        if not HAVE_NUMPY:
            return False
        policy = spec.policy
        if policy is not None:
            # Spec normalization folds batch-capable policy selections
            # into ``fairness``; of the residual policy objects only
            # the DRR arbiter is vectorized (its whole state is a
            # deficit counter with a constant grant), so anything else
            # here is scalar-only by its registry capability flag.
            if policy.name != "drr-arbiter":
                return False
            return True
        fairness = spec.fairness
        if fairness is None:
            return True
        return (
            fairness.smoothing == 0.0
            and fairness.deficit_cap is None
            and fairness.weights is None
            and not fairness.measure_miss_latency
        )

    def run_batch(self, specs: Sequence[SoeRunSpec]) -> list[SoeRunResult]:
        _require_numpy()
        specs = list(specs)
        for index, spec in enumerate(specs):
            if not self.supports(spec):
                raise ConfigurationError(
                    f"spec {index} is outside the batch backend's supported "
                    "configuration envelope (smoothing, deficit_cap, "
                    "weights, and measure_miss_latency must be defaults, "
                    "and of the residual policies only drr-arbiter is "
                    "vectorized); run it on the scalar backend"
                )
        if not specs:
            return []
        sink = current_sink()
        traced = sink.wants(_TRACE_RUNNER)
        if traced:
            sink.emit(batch_event("start", self.name, len(specs)))
        # Lockstep vectorization wants rectangular (runs, threads)
        # arrays, so runs are grouped by thread count and each group
        # advances as one batch.
        by_threads: dict[int, list[int]] = {}
        for index, spec in enumerate(specs):
            by_threads.setdefault(spec.num_threads, []).append(index)
        results: list[Optional[SoeRunResult]] = [None] * len(specs)
        iterations = 0
        for indices in by_threads.values():
            batch = _Batch([specs[index] for index in indices])
            for position, result in zip(indices, batch.run()):
                results[position] = result
            iterations += batch.iterations
        if traced:
            sink.emit(
                batch_event("stop", self.name, len(specs), iterations)
            )
        return [result for result in results if result is not None]


class _Batch:
    """One rectangular batch: N runs with T threads each.

    Per-thread quantities live in flat ``(N * T,)`` arrays indexed by
    ``run * T + thread`` (gathers and scatters on flat indices are the
    hot path); ``*_2d`` reshape views expose the same memory as
    ``(N, T)`` for row-wise reductions.
    """

    def __init__(self, specs: Sequence[SoeRunSpec]) -> None:
        self.iterations = 0
        n = len(specs)
        t = specs[0].num_threads
        self._n = n
        self._t = t

        as_f = lambda values: np.asarray(values, dtype=np.float64)
        # Machine and limit parameters, one entry per run.
        self.switch_lat = as_f([s.params.switch_lat for s in specs])
        self.miss_lat = as_f([s.params.miss_lat for s in specs])
        self.max_quota = as_f([s.params.max_cycles_quota for s in specs])
        self.min_instr = as_f([s.limits.min_instructions for s in specs])
        self.warmup = as_f([s.limits.warmup_instructions for s in specs])
        self.max_cycles = as_f([s.limits.max_cycles for s in specs])

        # Fairness-mechanism parameters. Runs without a controller get
        # an infinite boundary schedule and infinite budgets, which is
        # exactly the scalar NoFairnessPolicy.
        fairness = [s.fairness for s in specs]
        self.has_ctrl = np.asarray(
            [f is not None for f in fairness], dtype=bool
        )
        self.F = as_f([0.0 if f is None else f.fairness_target for f in fairness])
        self.ctrl_lat = as_f([0.0 if f is None else f.miss_lat for f in fairness])
        self.period = as_f(
            [math.inf if f is None else f.sample_period for f in fairness]
        )
        self.min_quota = as_f([1.0 if f is None else f.min_quota for f in fairness])

        # Residual policy runs: supports() admits only the DRR arbiter,
        # whose state is the same deficit machinery with a constant
        # grant -- the quota is pinned to the quantum from t=0 and
        # (fairness is None, so the boundary schedule is infinite) no
        # boundary ever re-sizes it. ``has_grant`` marks every run
        # whose dispatches grant and whose retirements drain a deficit;
        # the counter/estimate machinery stays controller-only.
        policies = [s.policy for s in specs]
        self.has_drr = np.asarray(
            [p is not None for p in policies], dtype=bool
        )
        self.drr_quantum = as_f(
            [0.0 if p is None else p.param("quantum") for p in policies]
        )
        self.has_grant = self.has_ctrl | self.has_drr

        # Engine clock and ledgers.
        self.now = np.zeros(n)
        self.idle = np.zeros(n)
        self.overhead = np.zeros(n)
        self.state = np.full(n, _SCHED, dtype=np.int64)
        self.active = np.full(n, _NO_THREAD, dtype=np.int64)
        self.dispatch_seq = np.zeros(n, dtype=np.int64)
        self.dispatch_cycles = np.zeros(n)
        self.next_boundary = self.period.copy()

        # Per-thread scheduling, statistics, and controller state.
        lanes = n * t
        self.ready_at = np.zeros(lanes)
        self.t_done = np.zeros(lanes, dtype=bool)
        self.last_seq = np.full(lanes, _NO_THREAD, dtype=np.int64)
        self.retired = np.zeros(lanes)
        self.run_cycles = np.zeros(lanes)
        self.misses = np.zeros(lanes, dtype=np.int64)
        self.miss_switches = np.zeros(lanes, dtype=np.int64)
        self.forced_switches = np.zeros(lanes, dtype=np.int64)
        self.cycle_quota_switches = np.zeros(lanes, dtype=np.int64)

        # Current-segment view (gathered from the lane buffers).
        self.seg_cycles = np.zeros(lanes)
        self.seg_ipc = np.zeros(lanes)
        self.seg_miss = np.zeros(lanes, dtype=bool)
        self.seg_lat = np.zeros(lanes)
        self.seg_done_cycles = np.zeros(lanes)

        # Controller state (counters, estimates, quotas, deficits).
        self.cnt_instr = np.zeros(lanes)
        self.cnt_cycles = np.zeros(lanes)
        self.cnt_miss = np.zeros(lanes, dtype=np.int64)
        self.deficit = np.zeros(lanes)
        self.quota = np.full(lanes, math.inf)
        if self.has_drr.any():
            self.quota[:] = np.repeat(
                np.where(self.has_drr, self.drr_quantum, math.inf), t
            )
        self.est_ipm = np.zeros(lanes)
        self.est_cpm = np.zeros(lanes)
        self.est_ipc = np.zeros(lanes)

        # (N, T) views over the flat lane arrays, for row reductions.
        self.ready_at_2d = self.ready_at.reshape(n, t)
        self.t_done_2d = self.t_done.reshape(n, t)
        self.last_seq_2d = self.last_seq.reshape(n, t)
        self.retired_2d = self.retired.reshape(n, t)
        self.cnt_instr_2d = self.cnt_instr.reshape(n, t)
        self.cnt_cycles_2d = self.cnt_cycles.reshape(n, t)
        self.cnt_miss_2d = self.cnt_miss.reshape(n, t)
        self.est_ipm_2d = self.est_ipm.reshape(n, t)
        self.est_cpm_2d = self.est_cpm.reshape(n, t)
        self.est_ipc_2d = self.est_ipc.reshape(n, t)
        self.quota_2d = self.quota.reshape(n, t)

        # Warmup snapshot.
        # repro-lint: disable=RL004 - exact zero warmup, as in the scalar run()
        self.snap_taken = self.warmup == 0.0
        self.snap_time = np.zeros(n)
        self.snap_idle = np.zeros(n)
        self.snap_overhead = np.zeros(n)
        self.snap_retired = np.zeros(lanes)
        self.snap_run_cycles = np.zeros(lanes)
        self.snap_misses = np.zeros(lanes, dtype=np.int64)
        self.snap_miss_switches = np.zeros(lanes, dtype=np.int64)
        self.snap_forced = np.zeros(lanes, dtype=np.int64)
        self.snap_cycle_quota = np.zeros(lanes, dtype=np.int64)

        self._int64_max = np.iinfo(np.int64).max
        # Homogeneity shortcuts: an all-controller batch (the grid's
        # shape) skips per-run controller masks; a no-controller batch
        # never has a boundary to fire.
        self._all_ctrl = bool(self.has_ctrl.all())
        self._any_ctrl = bool(self.has_ctrl.any())
        self._all_grant = bool(self.has_grant.all())
        self._has_cap = bool(np.isfinite(self.max_cycles).any())
        self._all_snapped = bool(self.snap_taken.all())

        # Segment sources, one per flat (run, thread) lane. Lanes whose
        # stream is column-backed (a ColumnStream) are concatenated into
        # single flat arrays and indexed directly -- no per-segment
        # Python at all. Other lanes buffer chunks pulled from the same
        # Python iterators the scalar engine would consume.
        streams = [
            spec.streams[thread] for spec in specs for thread in range(t)
        ]
        self._ptr = np.full(lanes, -1, dtype=np.int64)
        #: Total segments for a columnar lane; current chunk fill for a
        #: chunked lane.
        self._fill = np.zeros(lanes, dtype=np.int64)
        self._is_columnar = np.zeros(lanes, dtype=bool)
        self._col_offset = np.zeros(lanes, dtype=np.int64)
        self._materializers: list[Optional[ChunkedMaterializer]] = []
        parts: tuple[list, list, list, list] = ([], [], [], [])
        total = 0
        for lane, stream in enumerate(streams):
            columns = getattr(stream, "columns", None)
            if columns is not None and len(columns) > 0:
                self._is_columnar[lane] = True
                self._col_offset[lane] = total
                self._fill[lane] = len(columns)
                total += len(columns)
                arrays = columns.arrays_cache
                if arrays is None:
                    arrays = (
                        np.asarray(columns.instructions),
                        np.asarray(columns.cycles),
                        np.asarray(columns.ends_with_miss, dtype=bool),
                        np.asarray(columns.miss_latency),
                    )
                    columns.arrays_cache = arrays
                parts[0].append(arrays[0])
                parts[1].append(arrays[1])
                parts[2].append(arrays[2])
                parts[3].append(arrays[3])
                self._materializers.append(None)
            else:
                self._materializers.append(
                    ChunkedMaterializer(stream, chunk_size=_CHUNK)
                )
        if total:
            instructions = np.concatenate(parts[0])
            self._cat_cycles = np.concatenate(parts[1])
            # The same division EngineThread performs at segment load.
            self._cat_ipc = instructions / self._cat_cycles
            self._cat_miss = np.concatenate(parts[2])
            latency = np.concatenate(parts[3])
            lane_default = np.repeat(self.miss_lat, t)
            defaults = np.repeat(
                lane_default[self._is_columnar],
                self._fill[self._is_columnar],
            )
            self._cat_lat = np.where(np.isnan(latency), defaults, latency)
        if not self._is_columnar.all():
            self._buf_cycles = np.zeros((lanes, _CHUNK))
            self._buf_ipc = np.zeros((lanes, _CHUNK))
            self._buf_miss = np.zeros((lanes, _CHUNK), dtype=bool)
            self._buf_lat = np.zeros((lanes, _CHUNK))
        self._load_segments(np.arange(lanes, dtype=np.int64))

    # ------------------------------------------------------------------
    # Segment buffers
    # ------------------------------------------------------------------
    def _refill(self, lane: int) -> None:
        materializer = self._materializers[lane]
        assert materializer is not None
        chunk = materializer.take(_CHUNK)
        count = len(chunk)
        self._ptr[lane] = 0
        self._fill[lane] = count
        if count == 0:
            return
        instructions = np.asarray(chunk.instructions)
        cycles = np.asarray(chunk.cycles)
        self._buf_cycles[lane, :count] = cycles
        # The same division EngineThread performs at segment load.
        self._buf_ipc[lane, :count] = instructions / cycles
        self._buf_miss[lane, :count] = chunk.ends_with_miss
        default = self.miss_lat[lane // self._t]
        latency = np.asarray(chunk.miss_latency)
        self._buf_lat[lane, :count] = np.where(
            np.isnan(latency), default, latency
        )

    def _load_segments(self, lanes: "np.ndarray") -> None:
        """Advance each lane to its next segment (EngineThread's
        ``_load_next_segment``); lanes whose stream ended are marked
        done."""
        if lanes.size == 0:
            return
        self._ptr[lanes] += 1
        columnar = self._is_columnar[lanes]
        if columnar.all():
            self._load_columnar(lanes)
        elif not columnar.any():
            self._load_chunked(lanes)
        else:
            self._load_columnar(lanes[columnar])
            self._load_chunked(lanes[~columnar])

    def _load_columnar(self, lanes: "np.ndarray") -> None:
        have = self._ptr[lanes] < self._fill[lanes]
        if have.all():
            loaded = lanes
        else:
            loaded = lanes[have]
            self.t_done[lanes[~have]] = True
        source = self._col_offset[loaded] + self._ptr[loaded]
        self.seg_cycles[loaded] = self._cat_cycles[source]
        self.seg_ipc[loaded] = self._cat_ipc[source]
        self.seg_miss[loaded] = self._cat_miss[source]
        self.seg_lat[loaded] = self._cat_lat[source]
        self.seg_done_cycles[loaded] = 0.0

    def _load_chunked(self, lanes: "np.ndarray") -> None:
        exhausted = lanes[self._ptr[lanes] >= self._fill[lanes]]
        for lane in exhausted.tolist():
            self._refill(lane)
        have = self._ptr[lanes] < self._fill[lanes]
        loaded = lanes[have]
        pointers = self._ptr[loaded]
        self.seg_cycles[loaded] = self._buf_cycles[loaded, pointers]
        self.seg_ipc[loaded] = self._buf_ipc[loaded, pointers]
        self.seg_miss[loaded] = self._buf_miss[loaded, pointers]
        self.seg_lat[loaded] = self._buf_lat[loaded, pointers]
        self.seg_done_cycles[loaded] = 0.0
        self.t_done[lanes[~have]] = True

    # ------------------------------------------------------------------
    # Fairness controller, vectorized across runs
    # ------------------------------------------------------------------
    def _on_boundary(self, runs: "np.ndarray") -> None:
        """One Delta boundary for each run in ``runs``: sample-and-reset
        counters, Eq. 11-13 estimates, Eq. 9 quotas, advance the
        schedule. Matches FairnessController.on_boundary op-for-op."""
        instr = self.cnt_instr_2d[runs]
        cycles = self.cnt_cycles_2d[runs]
        misses = self.cnt_miss_2d[runs]
        self.cnt_instr_2d[runs] = 0.0
        self.cnt_cycles_2d[runs] = 0.0
        self.cnt_miss_2d[runs] = 0
        # repro-lint: disable=RL004 - exact zero means "never retired"
        empty = instr == 0.0
        divisor = np.maximum(misses, 1)
        ipm = instr / divisor
        cpm = cycles / divisor
        latency = self.ctrl_lat[runs, None]
        # run() suppresses invalid/divide warnings batch-wide: np.where
        # evaluates both branches, so masked-out lanes transiently
        # produce inf/nan the scalar controller never computes.
        ipc = np.where(empty, 0.0, ipm / (cpm + latency))
        # An empty window carries the previous estimate over (including
        # the all-zero "no information yet" estimate).
        self.est_ipm_2d[runs] = np.where(empty, self.est_ipm_2d[runs], ipm)
        self.est_cpm_2d[runs] = np.where(empty, self.est_cpm_2d[runs], cpm)
        self.est_ipc_2d[runs] = np.where(empty, self.est_ipc_2d[runs], ipc)

        est_ipm = self.est_ipm_2d[runs]
        est_cpm = self.est_cpm_2d[runs]
        est_ipc = self.est_ipc_2d[runs]
        usable = est_ipc > 0.0
        scale = np.min(
            np.where(usable, est_cpm + latency, math.inf), axis=1
        )
        target = self.F[runs]
        quota = est_ipc * scale[:, None] / target[:, None]
        quota = np.minimum(est_ipm, quota)
        quota = np.maximum(quota, self.min_quota[runs, None])
        # Unusable estimates, F = 0 runs, and no-usable-thread runs all
        # yield infinite quotas (switch only on misses).
        # repro-lint: disable=RL004 - F=0 is an exact, validated sentinel
        no_enforce = (
            ~usable
            | (target[:, None] == 0.0)
            | ~np.any(usable, axis=1)[:, None]
        )
        self.quota_2d[runs] = np.where(no_enforce, math.inf, quota)

        # Advance the schedule. The engine hands ``on_boundary`` the
        # boundary value it queried, so the controller's
        # ``while next <= now`` loop advances exactly one period per
        # firing; the engine's fire loop absorbs any backlog. The same
        # single `+=` keeps the schedule's float accumulation identical.
        self.next_boundary[runs] += self.period[runs]

    def _fire_due_boundaries(self, runs: "np.ndarray") -> None:
        if runs.size == 0 or not self._any_ctrl:
            return
        for _ in range(MAX_EVENTS):
            due = self.next_boundary[runs] <= self.now[runs] + _EPS
            if not due.any():
                return
            self._on_boundary(runs[due])
        raise SimulationError(
            "batch boundary callbacks failed to advance their schedule "
            f"after {MAX_EVENTS} firings"
        )

    def _grant(self, lanes: "np.ndarray") -> None:
        """DeficitCounter.grant at switch-in: an infinite quota floods
        the counter; a finite grant first collapses a stale infinity."""
        quota = self.quota[lanes]
        deficit = self.deficit[lanes]
        self.deficit[lanes] = np.where(
            np.isinf(quota),
            math.inf,
            np.where(np.isinf(deficit), 0.0, deficit) + quota,
        )

    # ------------------------------------------------------------------
    # Lockstep phases
    # ------------------------------------------------------------------
    def _loop_top_checks(self, runs: "np.ndarray") -> "np.ndarray":
        """The scalar run loop's per-iteration prologue: stop finished
        or capped runs, take warmup snapshots. Returns the runs that
        continue this iteration."""
        retired = self.retired_2d[runs]
        alive = ~self.t_done_2d[runs] & (
            retired < self.min_instr[runs, None]
        )
        stop = ~np.any(alive, axis=1)
        if self._has_cap:
            stop |= self.now[runs] >= self.max_cycles[runs]
        if stop.any():
            self.state[runs[stop]] = _DONE
            keep = ~stop
            runs = runs[keep]
            retired = retired[keep]
            if runs.size == 0:
                return runs
        if self._all_snapped:
            return runs
        need_snap = ~self.snap_taken[runs]
        if need_snap.any():
            need_snap[need_snap] = (
                np.sum(retired[need_snap], axis=1)
                >= self.warmup[runs[need_snap]]
            )
            if need_snap.any():
                snap = runs[need_snap]
                self.snap_taken[snap] = True
                self.snap_time[snap] = self.now[snap]
                self.snap_idle[snap] = self.idle[snap]
                self.snap_overhead[snap] = self.overhead[snap]
                rows = (
                    snap[:, None] * self._t + np.arange(self._t)
                ).ravel()
                self.snap_retired[rows] = self.retired[rows]
                self.snap_run_cycles[rows] = self.run_cycles[rows]
                self.snap_misses[rows] = self.misses[rows]
                self.snap_miss_switches[rows] = self.miss_switches[rows]
                self.snap_forced[rows] = self.forced_switches[rows]
                self.snap_cycle_quota[rows] = self.cycle_quota_switches[rows]
                # Runs that stopped inside warmup never snapshot and
                # never come back: once every *continuing* run has its
                # snapshot, the check can retire for good.
                self._all_snapped = bool(self.snap_taken[runs].all())
        return runs

    def _elapse_span(
        self, runs: "np.ndarray", spans: "np.ndarray", idle: "np.ndarray"
    ) -> None:
        """Pass inactive time to completion, splitting at boundaries --
        one full ``_elapse_inactive`` call per run, data-parallel.
        ``idle`` marks, per run, whether the span accrues to the idle
        counter (True) or to switch overhead (False)."""
        # Fast path: no span reaches within _EPS of its run's next
        # boundary, so every run elapses in a single unsplit step --
        # the same one `now += duration` the scalar engine performs
        # when the boundary lies beyond the span.
        live_m = spans > _EPS
        moved = self.now[runs] + spans
        if bool(((moved < self.next_boundary[runs] - _EPS) | ~live_m).all()):
            if live_m.all():
                idx, step, was_idle = runs, spans, idle
            else:
                idx = runs[live_m]
                step = spans[live_m]
                was_idle = idle[live_m]
                moved = moved[live_m]
            self.now[idx] = moved
            if was_idle.all():
                self.idle[idx] += step
            elif not was_idle.any():
                self.overhead[idx] += step
            else:
                self.idle[idx[was_idle]] += step[was_idle]
                self.overhead[idx[~was_idle]] += step[~was_idle]
            return
        remaining = spans.copy()
        while True:
            live = np.flatnonzero(remaining > _EPS)
            if live.size == 0:
                return
            idx = runs[live]
            boundary = self.next_boundary[idx]
            now = self.now[idx]
            step = np.minimum(
                remaining[live], np.maximum(boundary - now, 0.0)
            )
            stuck = step <= _EPS
            if stuck.any():
                # The span starts on a due boundary: fire it first, the
                # next pass sees the advanced schedule.
                self._fire_due_boundaries(idx[stuck])
                go = ~stuck
                live, idx = live[go], idx[go]
                if live.size == 0:
                    continue
                step, boundary, now = step[go], boundary[go], now[go]
            moved = now + step
            # Snap onto a boundary the step lands within _EPS of, so
            # sampling periods stay exact despite += drift.
            snap = np.isfinite(boundary) & (np.abs(boundary - moved) <= _EPS)
            self.now[idx] = np.where(snap, boundary, moved)
            was_idle = idle[live]
            if was_idle.all():
                self.idle[idx] += step
            elif not was_idle.any():
                self.overhead[idx] += step
            else:
                self.idle[idx[was_idle]] += step[was_idle]
                self.overhead[idx[~was_idle]] += step[~was_idle]
            remaining[live] -= step
            self._fire_due_boundaries(idx)

    def _schedule(self, runs: "np.ndarray") -> "np.ndarray":
        """Dispatch every scheduling run, idling first where no thread
        is ready; returns the runs that dispatched (they stand at the
        scalar loop top, ready to step).

        In the scalar engine an idle span returns to the loop top and
        dispatches on the next iteration. Idling changes nothing the
        loop-top prologue tests except ``now`` -- retirement and stream
        exhaustion are untouched -- so after re-checking only the cycle
        cap, idled runs re-enter scheduling within the same call. That
        fuses the scalar's [idle] [dispatch] iteration pair into one
        lockstep iteration without changing any run's event sequence.
        """
        dispatched: list["np.ndarray"] = []
        for _ in range(MAX_EVENTS):
            if runs.size == 0:
                break
            now = self.now[runs]
            ready = ~self.t_done_2d[runs] & (
                self.ready_at_2d[runs] <= now[:, None] + _EPS
            )
            any_ready = np.any(ready, axis=1)
            all_ready = any_ready.all()

            dispatch = runs if all_ready else runs[any_ready]
            idlers = _EMPTY_I if all_ready else runs[~any_ready]
            spans = (
                np.empty(runs.size) if not all_ready else _EMPTY_F
            )
            lanes = _EMPTY_I
            beyond = _EMPTY_B
            cap = _EMPTY_F
            if dispatch.size:
                seq = np.where(
                    ready if all_ready else ready[any_ready],
                    self.last_seq_2d[dispatch],
                    self._int64_max,
                )
                # argmin's first-minimum tie-break reproduces the
                # scalar scan, which keeps the lowest thread id among
                # least recently dispatched ready threads.
                pick = np.argmin(seq, axis=1)
                lanes = dispatch * self._t + pick
                self.last_seq[lanes] = self.dispatch_seq[dispatch]
                self.dispatch_seq[dispatch] += 1
                self.active[dispatch] = pick
                self.dispatch_cycles[dispatch] = 0.0
                if all_ready:
                    spans = self.switch_lat[dispatch]
                else:
                    spans[any_ready] = self.switch_lat[dispatch]
            if idlers.size:
                pending = np.min(
                    np.where(
                        self.t_done_2d[idlers],
                        math.inf,
                        self.ready_at_2d[idlers],
                    ),
                    axis=1,
                )
                cap = self.max_cycles[idlers]
                beyond = pending >= cap
                spans[~any_ready] = np.where(
                    beyond,
                    np.maximum(cap - self.now[idlers], 0.0),
                    pending - self.now[idlers],
                )
            # One fused pass: switch overhead for dispatchers, idle
            # waiting for the rest. The scalar interleaving is
            # preserved because the runs are independent and the spans
            # were fixed above.
            self._elapse_span(runs, spans, idle=~any_ready)
            if dispatch.size:
                if self._all_grant:
                    self._grant(lanes)
                else:
                    grants = self.has_grant[dispatch]
                    if grants.any():
                        self._grant(lanes[grants])
                self.state[dispatch] = _RUN
                dispatched.append(dispatch)
            if idlers.size == 0:
                break
            if beyond.any():
                # Every pending readiness lies at or beyond the hard
                # cycle cap: pin ``now`` to the cap so the loop-top
                # check terminates the run (the scalar cap-clamp path).
                pin = idlers[beyond]
                short = self.now[pin] < cap[beyond]
                self.idle[pin] += np.where(
                    short, cap[beyond] - self.now[pin], 0.0
                )
                self.now[pin] = np.where(short, cap[beyond], self.now[pin])
                idlers = idlers[~beyond]
            # The idled runs return to the scalar loop top; only the
            # cycle-cap test can newly trip there, so apply it and
            # reschedule the survivors immediately.
            if self._has_cap:
                capped = self.now[idlers] >= self.max_cycles[idlers]
                if capped.any():
                    self.state[idlers[capped]] = _DONE
                    idlers = idlers[~capped]
            runs = idlers
        if not dispatched:
            return _EMPTY_I
        if len(dispatched) == 1:
            return dispatched[0]
        return np.concatenate(dispatched)

    def _complete_segments(self, runs: "np.ndarray") -> None:
        """``_complete_segment``: account the terminating miss (if any),
        park or release the thread, load the next segment, and switch
        out unless this is a miss-free join."""
        lanes = runs * self._t + self.active[runs]
        ends_miss = self.seg_miss[lanes]
        self.misses[lanes] += ends_miss
        self.ready_at[lanes] = self.now[runs] + np.where(
            ends_miss, self.seg_lat[lanes], 0.0
        )
        self._load_segments(lanes)

        missed = lanes[ends_miss]
        if missed.size:
            self.miss_switches[missed] += 1
            if self._all_ctrl:
                self.cnt_miss[missed] += 1
            else:
                ctrl = missed[self.has_ctrl[runs[ends_miss]]]
                self.cnt_miss[ctrl] += 1
            out = runs[ends_miss]
            self.active[out] = _NO_THREAD
            self.state[out] = _SCHED

        joined = ~ends_miss
        if joined.any():
            # A thread whose stream ended switches out; a miss-free
            # join keeps executing the next segment in this dispatch.
            ended = self.t_done[lanes[joined]]
            out = runs[joined][ended]
            self.active[out] = _NO_THREAD
            self.state[out] = _SCHED

    def _switch_out(self, runs: "np.ndarray", counter: "np.ndarray") -> None:
        """A quota-forced switch: the thread stays ready immediately."""
        lanes = runs * self._t + self.active[runs]
        counter[lanes] += 1
        self.ready_at[lanes] = self.now[runs]
        self.active[runs] = _NO_THREAD
        self.state[runs] = _SCHED

    def _step_active(self, runs: "np.ndarray") -> None:
        """One ``_step_active`` per run: advance the active thread to
        its next event and classify what ended the step."""
        if runs.size == 0:
            return
        now = self.now[runs]
        boundary = self.next_boundary[runs]
        t_boundary = np.maximum(boundary - now, 0.0)
        at_boundary = t_boundary <= _EPS
        if at_boundary.any():
            # The scalar engine fires and returns to its loop top; the
            # checks there are no-ops (nothing changed), so firing and
            # re-reading the schedule continues the step directly.
            due = runs[at_boundary]
            self._fire_due_boundaries(due)
            t_boundary[at_boundary] = np.maximum(
                self.next_boundary[due] - now[at_boundary], 0.0
            )

        lanes = runs * self._t + self.active[runs]
        ipc = self.seg_ipc[lanes]
        t_segment = np.maximum(
            self.seg_cycles[lanes] - self.seg_done_cycles[lanes], 0.0
        )
        if self._all_grant:
            budget = self.deficit[lanes]
        else:
            budget = np.where(
                self.has_grant[runs], self.deficit[lanes], math.inf
            )
        t_instr = budget / ipc
        t_cycle = np.maximum(
            self.max_quota[runs] - self.dispatch_cycles[runs], 0.0
        )
        if self._has_cap:
            t_limit = np.maximum(self.max_cycles[runs] - now, 0.0)
            dt = np.minimum(
                np.minimum(np.minimum(t_segment, t_instr), t_cycle),
                np.minimum(t_boundary, t_limit),
            )
            # At the cycle cap the scalar loop's max_cycles check stops
            # the run on its next iteration; stopping here is the
            # terminating equivalent (the prologue would otherwise spin
            # on a run whose remaining headroom is below _EPS but not
            # yet zero).
            limited = t_limit <= _EPS
            if limited.any():
                self.state[runs[limited]] = _DONE
                keep = ~limited
                runs, lanes, ipc = runs[keep], lanes[keep], ipc[keep]
                t_segment, t_instr = t_segment[keep], t_instr[keep]
                t_cycle, dt = t_cycle[keep], dt[keep]
                if runs.size == 0:
                    return
        else:
            dt = np.minimum(
                np.minimum(t_segment, t_instr),
                np.minimum(t_cycle, t_boundary),
            )

        # Zero budget at dispatch: immediate switch, with the scalar
        # tie-breaking order (segment end, instruction quota, cycle
        # quota).
        zero = dt <= _EPS
        if zero.any():
            z_runs = runs[zero]
            z_seg = t_segment[zero] <= _EPS
            z_instr = ~z_seg & (t_instr[zero] <= _EPS)
            z_cycle = ~z_seg & ~z_instr
            if z_seg.any():
                self._complete_segments(z_runs[z_seg])
            if z_instr.any():
                self._switch_out(z_runs[z_instr], self.forced_switches)
            if z_cycle.any():
                self._switch_out(z_runs[z_cycle], self.cycle_quota_switches)
            keep = ~zero
            runs, lanes, ipc = runs[keep], lanes[keep], ipc[keep]
            t_segment, t_instr = t_segment[keep], t_instr[keep]
            t_cycle, dt = t_cycle[keep], dt[keep]
            if runs.size == 0:
                return

        retired = dt * ipc
        self.seg_done_cycles[lanes] += dt
        self.retired[lanes] += retired
        self.run_cycles[lanes] += dt
        self.dispatch_cycles[runs] += dt
        self.now[runs] += dt
        # Policy retirement callbacks. Counter accumulation is the
        # fairness controller's alone; the deficit consume (clamped at
        # zero; an infinite deficit never shrinks) is shared by the
        # controller and the DRR arbiter, whose on_retired is exactly
        # this consume with no counters.
        if self._all_ctrl:
            c_lanes, c_retired, c_dt = lanes, retired, dt
        else:
            ctrl = self.has_ctrl[runs]
            c_lanes = lanes[ctrl] if not ctrl.all() else lanes
            c_retired, c_dt = retired[ctrl], dt[ctrl]
        if c_lanes.size:
            self.cnt_instr[c_lanes] += c_retired
            self.cnt_cycles[c_lanes] += c_dt
        if self._all_grant:
            g_lanes, g_retired = lanes, retired
        else:
            grants = self.has_grant[runs]
            g_lanes = lanes[grants] if not grants.all() else lanes
            g_retired = retired[grants]
        if g_lanes.size:
            deficit = self.deficit[g_lanes]
            self.deficit[g_lanes] = np.where(
                np.isinf(deficit),
                deficit,
                np.maximum(0.0, deficit - g_retired),
            )
        self._fire_due_boundaries(runs)

        ends_segment = (dt >= t_segment - _EPS) & (
            self.seg_cycles[lanes] - self.seg_done_cycles[lanes] <= _EPS
        )
        ends_instr = ~ends_segment & (dt >= t_instr - _EPS)
        ends_cycle = ~ends_segment & ~ends_instr & (dt >= t_cycle - _EPS)
        if ends_segment.any():
            self._complete_segments(runs[ends_segment])
        if ends_instr.any():
            self._switch_out(runs[ends_instr], self.forced_switches)
        if ends_cycle.any():
            self._switch_out(runs[ends_cycle], self.cycle_quota_switches)
        # Remaining runs ended at a boundary: same thread keeps running.

    # ------------------------------------------------------------------
    def run(self) -> list[SoeRunResult]:
        # np.where evaluates both branches, so masked-out lanes can
        # transiently divide by zero or produce inf*0 where the scalar
        # engine's guarded scalar code never would; the results are
        # always discarded by the mask. Suppress batch-wide.
        with np.errstate(invalid="ignore", divide="ignore"):
            return self._run_loop()

    def _run_loop(self) -> list[SoeRunResult]:
        state = self.state
        while True:
            live = np.flatnonzero(state != _DONE)
            if live.size == 0:
                break
            self.iterations += 1
            # Every live run stands at the scalar loop top.
            runs = self._loop_top_checks(live)
            if runs.size == 0:
                continue
            sched_m = state[runs] == _SCHED
            dispatched = self._schedule(runs[sched_m])
            if dispatched.size and self._has_cap:
                # Dispatch elapsed switch overhead, so of the scalar
                # loop-top checks only the max_cycles test can newly
                # trip before the first step.
                capped = (
                    self.now[dispatched] >= self.max_cycles[dispatched]
                )
                if capped.any():
                    state[dispatched[capped]] = _DONE
                    dispatched = dispatched[~capped]
            # Runs that stood at _RUN stayed there; the dispatched ones
            # just joined them (order within the step is immaterial --
            # every operation is element-aligned per run).
            was_running = runs[~sched_m]
            if dispatched.size:
                running = np.concatenate((was_running, dispatched))
            else:
                running = was_running
            self._step_active(running)
        return [self._build_result(run) for run in range(self._n)]

    def _build_result(self, run: int) -> SoeRunResult:
        t = self._t
        base = run * t
        if self.snap_taken[run]:
            window = float(self.now[run] - self.snap_time[run])
            idle = float(self.idle[run] - self.snap_idle[run])
            overhead = float(self.overhead[run] - self.snap_overhead[run])
            snap_retired = self.snap_retired
            snap_cycles = self.snap_run_cycles
            snap_misses = self.snap_misses
            snap_msw = self.snap_miss_switches
            snap_fsw = self.snap_forced
            snap_qsw = self.snap_cycle_quota
        else:
            # The run ended inside warmup; measure the whole run, as
            # the scalar engine does.
            window = float(self.now[run])
            idle = float(self.idle[run])
            overhead = float(self.overhead[run])
            zeros_f = np.zeros(self._n * t)
            zeros_i = np.zeros(self._n * t, dtype=np.int64)
            snap_retired = snap_cycles = zeros_f
            snap_misses = snap_msw = snap_fsw = snap_qsw = zeros_i
        if window <= 0:
            raise SimulationError(
                "measurement window is empty; increase run length"
            )
        stats = tuple(
            ThreadStats(
                retired=float(self.retired[base + i] - snap_retired[base + i]),
                run_cycles=float(
                    self.run_cycles[base + i] - snap_cycles[base + i]
                ),
                misses=int(self.misses[base + i] - snap_misses[base + i]),
                miss_switches=int(
                    self.miss_switches[base + i] - snap_msw[base + i]
                ),
                forced_switches=int(
                    self.forced_switches[base + i] - snap_fsw[base + i]
                ),
                cycle_quota_switches=int(
                    self.cycle_quota_switches[base + i] - snap_qsw[base + i]
                ),
            )
            for i in range(t)
        )
        return SoeRunResult(
            cycles=window,
            threads=stats,
            idle_cycles=idle,
            switch_overhead_cycles=overhead,
        )
