"""Segment-level SOE timing engine (fast simulation substrate).

This package implements the paper's Section 2.1 program-behaviour model
as an exact event-driven simulator: workloads are streams of inter-miss
instruction segments, and the engine reproduces SOE switching, miss
resolution, switch overhead, quotas and sampling boundaries without a
per-cycle loop. The detailed microarchitectural substrate lives in
:mod:`repro.cpu`; the fairness mechanism itself (:mod:`repro.core`) is
shared between both.
"""

from repro.engine.backend import (
    BACKEND_NAMES,
    EngineBackend,
    ScalarBackend,
    SoeRunSpec,
    get_backend,
    numpy_available,
)
from repro.engine.recorder import IntervalRecorder, IntervalSample
from repro.engine.results import SingleThreadResult, SoeRunResult, ThreadStats
from repro.engine.segments import Segment, SegmentStream, stream_from_segments
from repro.engine.singlethread import run_single_thread
from repro.engine.soe import RunLimits, SoeEngine, SoeParams, run_soe

__all__ = [
    "BACKEND_NAMES",
    "EngineBackend",
    "IntervalRecorder",
    "IntervalSample",
    "RunLimits",
    "ScalarBackend",
    "Segment",
    "SegmentStream",
    "SingleThreadResult",
    "SoeEngine",
    "SoeParams",
    "SoeRunResult",
    "SoeRunSpec",
    "ThreadStats",
    "get_backend",
    "numpy_available",
    "run_single_thread",
    "run_soe",
    "stream_from_segments",
]
