"""Engine backends: pluggable substrates for batches of SOE runs.

The evaluation grid is thousands of independent (pair x fairness-level
x seed) simulations, so the execution layer talks to the engine through
a batch interface: an :class:`EngineBackend` takes a list of
self-contained :class:`SoeRunSpec` values and returns one
:class:`~repro.engine.results.SoeRunResult` per spec, in order.

Two backends implement it:

* :class:`ScalarBackend` -- the reference: each spec runs on the exact
  event-driven :class:`~repro.engine.soe.SoeEngine`. Supports every
  configuration and stays bit-identical to direct ``run_soe`` calls.
* ``BatchBackend`` (:mod:`repro.engine.batch`) -- a vectorized engine
  that advances every run in the batch simultaneously as numpy arrays.
  Requires numpy and supports the evaluation's configuration envelope
  (see :meth:`EngineBackend.supports`); docs/SIMULATORS.md documents
  the equivalence guarantees.

:func:`get_backend` resolves a backend by name. ``"auto"`` prefers the
vectorized backend and silently falls back to scalar when numpy is not
installed, so environments without numpy lose only speed, never
functionality.
"""

from __future__ import annotations

import importlib.util
from dataclasses import dataclass, field
from typing import Optional, Protocol, Sequence, runtime_checkable

from repro.core.controller import FairnessController, FairnessParams
from repro.core.policies import PolicyConfig
from repro.core.policy import SwitchPolicy
from repro.engine.results import SoeRunResult
from repro.engine.segments import SegmentStream
from repro.engine.soe import RunLimits, SoeParams, run_soe
from repro.errors import ConfigurationError

__all__ = [
    "BACKEND_NAMES",
    "EngineBackend",
    "ScalarBackend",
    "SoeRunSpec",
    "get_backend",
    "numpy_available",
]

#: Legal ``--backend`` values: the two concrete backends plus the
#: availability-driven selector.
BACKEND_NAMES = ("scalar", "batch", "auto")


@dataclass(frozen=True)
class SoeRunSpec:
    """Everything one SOE run needs, as pure data.

    ``fairness`` is the run's :class:`FairnessParams`, or None for the
    unenforced baseline (miss-only switching). ``policy`` selects a
    registered policy-zoo policy instead
    (:class:`~repro.core.policies.PolicyConfig`); it is normalized on
    construction, so batch-capable selections (``none``, ``fairness``)
    collapse into the ``fairness`` field and ``policy`` only ever
    carries scalar-only policies. Specs carry parameters rather than
    live policy objects so a backend can either instantiate a scalar
    policy per run or fold the whole batch's controllers into arrays.
    """

    streams: tuple[SegmentStream, ...]
    fairness: Optional[FairnessParams] = None
    params: SoeParams = field(default_factory=SoeParams)
    limits: RunLimits = field(default_factory=RunLimits)
    policy: Optional[PolicyConfig] = None

    def __post_init__(self) -> None:
        if len(self.streams) < 2:
            raise ConfigurationError("an SOE run spec needs at least two threads")
        if self.policy is not None:
            if self.fairness is not None:
                raise ConfigurationError(
                    "a run spec takes either fairness params or a policy "
                    "config, not both"
                )
            fairness, residual = self.policy.normalize()
            object.__setattr__(self, "fairness", fairness)
            object.__setattr__(self, "policy", residual)

    @property
    def num_threads(self) -> int:
        return len(self.streams)

    def make_policy(self) -> Optional[SwitchPolicy]:
        """A fresh scalar policy for this spec (None = baseline)."""
        if self.policy is not None:
            return self.policy.make(self.num_threads)
        if self.fairness is None:
            return None
        return FairnessController(self.num_threads, self.fairness)


@runtime_checkable
class EngineBackend(Protocol):
    """Substrate interface the execution layer programs against."""

    #: Stable identifier ("scalar", "batch") used in cache keys and logs.
    name: str

    def supports(self, spec: SoeRunSpec) -> bool:
        """Whether this backend can execute ``spec``.

        Callers route unsupported specs to the scalar reference; a
        backend must never silently approximate a configuration it
        cannot faithfully run.
        """
        ...

    def run_batch(self, specs: Sequence[SoeRunSpec]) -> list[SoeRunResult]:
        """Execute every spec, returning results in spec order."""
        ...


class ScalarBackend:
    """The reference backend: one exact event-driven engine per spec."""

    name = "scalar"

    def supports(self, spec: SoeRunSpec) -> bool:
        return True

    def run_batch(self, specs: Sequence[SoeRunSpec]) -> list[SoeRunResult]:
        return [
            run_soe(spec.streams, spec.make_policy(), spec.params, spec.limits)
            for spec in specs
        ]


def numpy_available() -> bool:
    """Whether numpy can be imported (checked without importing it)."""
    return importlib.util.find_spec("numpy") is not None


def get_backend(name: str = "scalar") -> EngineBackend:
    """Resolve a backend by name.

    ``"scalar"`` always works; ``"batch"`` raises
    :class:`~repro.errors.ConfigurationError` when numpy is missing;
    ``"auto"`` picks the vectorized backend when numpy is installed and
    silently falls back to scalar otherwise.
    """
    if name not in BACKEND_NAMES:
        raise ConfigurationError(
            f"unknown engine backend {name!r}; expected one of {BACKEND_NAMES}"
        )
    if name == "scalar":
        return ScalarBackend()
    if not numpy_available():
        if name == "auto":
            return ScalarBackend()
        raise ConfigurationError(
            "the 'batch' engine backend needs numpy, which is not "
            "installed; use --backend scalar (or auto, which falls back)"
        )
    from repro.engine.batch import BatchBackend

    return BatchBackend()
