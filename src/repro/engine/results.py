"""Result types produced by the engine runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.fairness import fairness_from_ipcs, speedups
from repro.errors import ConfigurationError

__all__ = ["ThreadStats", "SoeRunResult", "SingleThreadResult"]


@dataclass(frozen=True)
class ThreadStats:
    """Per-thread statistics over the measured window of an SOE run."""

    retired: float
    run_cycles: float
    misses: int
    miss_switches: int
    forced_switches: int
    cycle_quota_switches: int

    @property
    def switches(self) -> int:
        return self.miss_switches + self.forced_switches + self.cycle_quota_switches


@dataclass(frozen=True)
class SoeRunResult:
    """Outcome of one multithreaded SOE run (post-warmup window).

    ``cycles`` is the wall-clock length of the measured window;
    per-thread IPCs divide each thread's retired instructions by that
    same shared window, matching the paper's ``IPC_SOE_j`` definition.
    """

    cycles: float
    threads: tuple[ThreadStats, ...]
    idle_cycles: float
    switch_overhead_cycles: float

    def __post_init__(self) -> None:
        if self.cycles <= 0:
            raise ConfigurationError("a run result needs a positive window")

    @property
    def num_threads(self) -> int:
        return len(self.threads)

    @property
    def ipcs(self) -> list[float]:
        """Per-thread ``IPC_SOE_j`` over the measured window."""
        return [t.retired / self.cycles for t in self.threads]

    @property
    def total_ipc(self) -> float:
        """``IPC_SOE`` -- total throughput (Eq. 10's measured analogue)."""
        return sum(self.ipcs)

    @property
    def total_switches(self) -> int:
        return sum(t.switches for t in self.threads)

    @property
    def forced_switches(self) -> int:
        """Switches induced by the fairness quota (they hide no miss)."""
        return sum(t.forced_switches for t in self.threads)

    def forced_switches_per_kcycle(self) -> float:
        """Forced switches per 1000 cycles (Figure 7's second series)."""
        return 1000.0 * self.forced_switches / self.cycles

    def speedups(self, ipc_st: Sequence[float]) -> list[float]:
        """Per-thread speedups given the threads' single-thread IPCs."""
        return speedups(self.ipcs, ipc_st)

    def achieved_fairness(self, ipc_st: Sequence[float]) -> float:
        """Eq. 4 evaluated on this run against reference IPC_ST values."""
        return fairness_from_ipcs(self.ipcs, ipc_st)


@dataclass(frozen=True)
class SingleThreadResult:
    """Outcome of running one workload alone on the machine."""

    retired: float
    cycles: float
    misses: int
    run_cycles: float = field(default=0.0)

    @property
    def ipc(self) -> float:
        """The thread's real ``IPC_ST``."""
        if self.cycles <= 0:
            raise ConfigurationError("single-thread run has an empty window")
        return self.retired / self.cycles
