"""Per-thread state for the segment-level engine."""

from __future__ import annotations

from typing import Iterator, Optional

from repro.engine.segments import Segment, SegmentStream
from repro.errors import SimulationError

__all__ = ["EngineThread"]

_EPS = 1e-9


class EngineThread:
    """One hardware thread context in the segment engine.

    Tracks the position inside the current segment (retirement within a
    segment is uniform at the segment's IPC, so positions are continuous)
    and the raw lifetime statistics the engine reports.
    """

    __slots__ = (
        "thread_id", "_iterator", "segment", "segment_cycles_done",
        "ready_at", "done", "last_dispatch_seq", "retired", "run_cycles",
        "misses", "miss_switches", "forced_switches",
        "cycle_quota_switches", "_segment_ipc",
    )

    def __init__(self, thread_id: int, stream: SegmentStream) -> None:
        self.thread_id = thread_id
        self._iterator: Iterator[Segment] = stream.segments()
        self.segment: Optional[Segment] = None
        self.segment_cycles_done = 0.0
        #: absolute time at which the thread may run again (misses resolve here)
        self.ready_at = 0.0
        #: set when the segment stream is exhausted
        self.done = False
        #: scheduling recency (engine bumps this at each dispatch)
        self.last_dispatch_seq = -1
        #: the active segment's retirement rate, cached at segment load
        #: so the hot path pays no per-event property/division churn
        self._segment_ipc = 0.0

        # Lifetime statistics (the engine snapshots these at warmup).
        self.retired = 0.0
        self.run_cycles = 0.0
        self.misses = 0
        self.miss_switches = 0
        self.forced_switches = 0
        self.cycle_quota_switches = 0

        self._load_next_segment()

    # ------------------------------------------------------------------
    def _load_next_segment(self) -> None:
        try:
            segment = next(self._iterator)
        except StopIteration:
            self.segment = None
            self.done = True
            return
        self.segment = segment
        self._segment_ipc = segment.instructions / segment.cycles
        self.segment_cycles_done = 0.0

    # ------------------------------------------------------------------
    @property
    def ipc(self) -> float:
        """Retirement rate of the current segment."""
        if self.segment is None:
            raise SimulationError(f"thread {self.thread_id} has no active segment")
        return self._segment_ipc

    @property
    def cycles_to_segment_end(self) -> float:
        segment = self.segment
        if segment is None:
            raise SimulationError(f"thread {self.thread_id} has no active segment")
        remaining = segment.cycles - self.segment_cycles_done
        return remaining if remaining > 0.0 else 0.0

    def is_ready(self, now: float) -> bool:
        return not self.done and self.ready_at <= now + _EPS

    # ------------------------------------------------------------------
    def advance(self, cycles: float) -> float:
        """Execute for ``cycles`` within the current segment.

        Returns the number of instructions retired. The caller must not
        advance past the segment end.
        """
        segment = self.segment
        if segment is None:
            raise SimulationError(f"thread {self.thread_id} advanced with no segment")
        if cycles < 0:
            raise SimulationError("cannot advance a negative duration")
        remaining = segment.cycles - self.segment_cycles_done
        if remaining < 0.0:
            remaining = 0.0
        if cycles > remaining + 1e-6:
            raise SimulationError(
                f"thread {self.thread_id} advanced {cycles} cycles past segment end "
                f"({remaining} remaining)"
            )
        instructions = cycles * self._segment_ipc
        self.segment_cycles_done += cycles
        self.retired += instructions
        self.run_cycles += cycles
        return instructions

    @property
    def at_segment_end(self) -> bool:
        if self.segment is None:
            return True
        return self.cycles_to_segment_end <= _EPS

    def finish_segment(self, now: float, miss_lat: float) -> Optional[float]:
        """Complete the current segment and load the next one.

        Returns the terminating event's stall latency when the segment
        ended with a miss (``ready_at`` is pushed out by that latency;
        per-segment latencies override the machine default), or None
        for a miss-free join.
        """
        if self.segment is None:
            raise SimulationError(f"thread {self.thread_id} has no segment to finish")
        segment = self.segment
        if segment.ends_with_miss:
            latency = (
                miss_lat if segment.miss_latency is None else segment.miss_latency
            )
            self.misses += 1
            self.ready_at = now + latency
        else:
            latency = None
            self.ready_at = now
        self._load_next_segment()
        return latency
