"""Interval time-series recording for SOE runs (Figure 5 support).

Figure 5 plots, over time: the per-thread estimated vs. real single-
thread IPC, the per-thread speedups, and the achieved fairness. The
:class:`IntervalRecorder` samples the engine at a fixed cycle interval
and computes per-interval per-thread IPCs; the controller's own
:attr:`~repro.core.controller.FairnessController.history` supplies the
estimate series at each ``Delta`` boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.core.fairness import fairness
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.engine.soe import SoeEngine

__all__ = ["IntervalSample", "IntervalRecorder"]


@dataclass(frozen=True)
class IntervalSample:
    """Per-thread activity over one recording interval."""

    #: absolute end time of the interval
    time: float
    #: instructions each thread retired during the interval
    retired: tuple[float, ...]
    #: per-thread IPC over the interval (retired / interval length)
    ipcs: tuple[float, ...]
    #: cumulative instructions retired per thread since the run started
    cumulative_retired: tuple[float, ...]

    def speedups(self, ipc_st: Sequence[float]) -> list[float]:
        """Interval speedups against reference single-thread IPCs."""
        return [ipc / st for ipc, st in zip(self.ipcs, ipc_st)]

    def achieved_fairness(self, ipc_st: Sequence[float]) -> float:
        """Eq. 4 over this interval's speedups."""
        return fairness(self.speedups(ipc_st))


class IntervalRecorder:
    """Samples per-thread retirement every ``interval`` cycles."""

    def __init__(self, interval: float = 250_000.0) -> None:
        if interval <= 0:
            raise ConfigurationError("recording interval must be positive")
        self.interval = float(interval)
        self._next = float(interval)
        self._last_retired: Optional[list[float]] = None
        self._last_time = 0.0
        self.samples: list[IntervalSample] = []

    def next_boundary(self, now: float) -> float:
        return self._next

    def on_boundary(self, now: float, engine: "SoeEngine") -> None:
        retired = [t.retired for t in engine.threads]
        if self._last_retired is None:
            self._last_retired = [0.0] * len(retired)
        length = now - self._last_time
        if length <= 0:
            length = self.interval
        deltas = [cur - prev for cur, prev in zip(retired, self._last_retired)]
        self.samples.append(
            IntervalSample(
                time=now,
                retired=tuple(deltas),
                ipcs=tuple(d / length for d in deltas),
                cumulative_retired=tuple(retired),
            )
        )
        self._last_retired = retired
        self._last_time = now
        while self._next <= now:
            self._next += self.interval
