"""Segment abstractions for the segment-level timing engine.

The engine adopts the paper's own program-behaviour model (Section 2.1):
a thread is a sequence of *segments*, each a run of instructions that
executes at some uniform rate and ends with a last-level cache miss.
Workload generators (:mod:`repro.workloads`) produce segment streams;
the engine consumes them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional

from repro.errors import ConfigurationError, WorkloadError

__all__ = ["Segment", "SegmentStream", "stream_from_segments"]


@dataclass(frozen=True)
class Segment:
    """A run of instructions between two last-level cache misses.

    Parameters
    ----------
    instructions:
        Useful instructions retired in the segment (> 0).
    cycles:
        Execution cycles the segment takes, *excluding* the terminating
        miss's stall (> 0). The implied retirement rate
        ``instructions / cycles`` is the segment's ``IPC_no_miss``.
    ends_with_miss:
        False only for a trailing partial segment of a finite workload.
    miss_latency:
        Stall latency of the terminating event, when it differs from
        the machine's default memory latency (Section 6's variable-
        latency events: L1 misses, pause hints...). None = default.
    """

    instructions: float
    cycles: float
    ends_with_miss: bool = True
    miss_latency: Optional[float] = None

    def __post_init__(self) -> None:
        if not (self.instructions > 0 and math.isfinite(self.instructions)):
            raise ConfigurationError(
                f"segment instructions must be positive, got {self.instructions}"
            )
        if not (self.cycles > 0 and math.isfinite(self.cycles)):
            raise ConfigurationError(f"segment cycles must be positive, got {self.cycles}")
        if self.miss_latency is not None and self.miss_latency < 0:
            raise ConfigurationError("miss_latency must be non-negative")

    @property
    def ipc(self) -> float:
        """The segment's retirement rate (its ``IPC_no_miss``)."""
        return self.instructions / self.cycles


class SegmentStream:
    """A restartable source of :class:`Segment` values.

    The same workload must be replayable for the single-thread reference
    run and for each SOE configuration, so streams are factories: every
    call to :meth:`segments` returns a fresh iterator over the *same*
    deterministic sequence.
    """

    def __init__(self, factory: Callable[[], Iterator[Segment]], name: str = "") -> None:
        self._factory = factory
        self.name = name

    def segments(self) -> Iterator[Segment]:
        """A fresh iterator over the stream's segment sequence."""
        iterator = self._factory()
        if iterator is None:
            raise WorkloadError(f"stream factory for {self.name!r} returned None")
        return iterator

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SegmentStream({self.name!r})"


def stream_from_segments(segments: Iterable[Segment], name: str = "") -> SegmentStream:
    """Wrap a concrete segment list as a restartable stream.

    Convenient in tests and examples where the exact segment sequence is
    spelled out by hand.
    """
    materialized = list(segments)
    if not materialized:
        raise WorkloadError("a segment stream needs at least one segment")
    return SegmentStream(lambda: iter(materialized), name=name)
