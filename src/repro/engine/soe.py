"""Event-driven segment-level SOE timing engine.

This engine implements Switch-on-Event multithreading over the paper's
own program-behaviour model (Section 2.1): each thread is a stream of
instruction segments delimited by last-level cache misses. Within a
segment, retirement is uniform at the segment's IPC, so the time of the
next event -- segment end (= miss), instruction-quota exhaustion,
cycle-quota exhaustion, or a policy sampling boundary -- is closed-form
and the engine advances event-to-event with no per-cycle loop.

Semantics mirror Section 4.1's machine:

* the active thread switches out on a last-level miss; the miss resolves
  ``miss_lat`` cycles later, and the thread is not runnable before that;
* every dispatch pays ``switch_lat`` overhead cycles (the paper's ~25
  cycles of drain plus pipeline refill);
* each dispatch is bounded by the maximum-cycles quota (50,000 cycles),
  ensuring every thread runs inside every sampling period;
* the attached :class:`~repro.core.policy.SwitchPolicy` can impose an
  instruction budget (the fairness mechanism's deficit counter) and a
  cycle budget (time sharing), and receives retirement/miss callbacks;
* when no thread is ready (all waiting on misses) the core idles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.policy import NoFairnessPolicy, SwitchPolicy
from repro.engine.results import SoeRunResult, ThreadStats
from repro.engine.segments import SegmentStream
from repro.engine.thread import EngineThread
from repro.errors import ConfigurationError, SimulationError
from repro.telemetry import SWITCH as _TRACE_SWITCH
from repro.telemetry import resolve_sink
from repro.telemetry.events import segment_end, stall, thread_switch
from repro.telemetry.profile import PROFILE
from repro.telemetry.sinks import TraceSink

__all__ = ["SoeParams", "RunLimits", "SoeEngine", "run_soe", "MAX_EVENTS"]

_EPS = 1e-9

#: Watchdog on boundary-callback storms: a single simulated instant may
#: fire at most this many policy/recorder boundaries before the engine
#: concludes the callbacks are failing to advance their schedule.
MAX_EVENTS = 1_000_000


@dataclass(frozen=True)
class SoeParams:
    """Machine-level SOE parameters (paper Table 3 / Section 4.1)."""

    miss_lat: float = 300.0
    switch_lat: float = 25.0
    max_cycles_quota: float = 50_000.0

    def __post_init__(self) -> None:
        if self.miss_lat < 0 or self.switch_lat < 0:
            raise ConfigurationError("latencies must be non-negative")
        if self.max_cycles_quota <= 0:
            raise ConfigurationError("max_cycles_quota must be positive")


@dataclass(frozen=True)
class RunLimits:
    """Stopping and measurement-window configuration for a run.

    The paper simulates until every thread completes ``min_instructions``
    (6,000,000 in the evaluation) and excludes the first
    ``warmup_instructions`` (1,000,000, counted across all threads) from
    the statistics. ``max_cycles`` is a safety net against pathological
    configurations.
    """

    min_instructions: float = 100_000.0
    warmup_instructions: float = 0.0
    max_cycles: float = 5e9

    def __post_init__(self) -> None:
        if self.min_instructions <= 0:
            raise ConfigurationError("min_instructions must be positive")
        if self.warmup_instructions < 0:
            raise ConfigurationError("warmup_instructions must be non-negative")
        if self.max_cycles <= 0:
            raise ConfigurationError("max_cycles must be positive")


class _Snapshot:
    """Raw statistics captured at the end of warmup."""

    def __init__(self, engine: "SoeEngine") -> None:
        self.time = engine.now
        self.idle_cycles = engine.idle_cycles
        self.switch_overhead_cycles = engine.switch_overhead_cycles
        self.threads = [
            (t.retired, t.run_cycles, t.misses, t.miss_switches,
             t.forced_switches, t.cycle_quota_switches)
            for t in engine.threads
        ]


class SoeEngine:
    """The SOE core: dispatches threads, applies the switch policy."""

    def __init__(
        self,
        streams: Sequence[SegmentStream],
        policy: Optional[SwitchPolicy] = None,
        params: SoeParams = SoeParams(),
        recorder: Optional["IntervalRecorderProtocol"] = None,
        sink: Optional[TraceSink] = None,
    ) -> None:
        if len(streams) < 2:
            raise ConfigurationError("the SOE engine needs at least two threads")
        self.params = params
        self.policy = policy if policy is not None else NoFairnessPolicy()
        self.recorder = recorder
        # Tracing is observation only; a disabled (ambient) sink
        # resolves to None so the hot path pays one `is not None` test.
        # Category membership is static per sink, so the per-event
        # `wants(SWITCH)` test collapses to one precomputed boolean --
        # a NullSink run pays nothing on the event path.
        self._trace = resolve_sink(sink)
        trace = self._trace
        self._emit_switch = (
            trace.emit if trace is not None and trace.wants(_TRACE_SWITCH) else None
        )
        self.threads = [EngineThread(i, s) for i, s in enumerate(streams)]
        self.now = 0.0
        self.idle_cycles = 0.0
        self.switch_overhead_cycles = 0.0
        self._active: Optional[EngineThread] = None
        self._dispatch_seq = 0
        self._dispatch_cycles = 0.0
        # Hot-path caches: the policy/recorder/params identities are
        # fixed for the engine's lifetime, so bind their methods and
        # scalars once instead of re-resolving attributes per event.
        policy = self.policy
        self._policy_next_boundary = policy.next_boundary
        self._policy_instruction_budget = policy.instruction_budget
        self._policy_cycle_budget = policy.cycle_budget
        self._policy_on_retired = policy.on_retired
        # Selection hook: consulted only when the policy overrides it,
        # so the default round-robin path below stays byte-identical for
        # policies that do not reorder dispatch.
        self._policy_select = (
            policy.select_thread
            if type(policy).select_thread is not SwitchPolicy.select_thread
            else None
        )
        self._recorder_next_boundary = (
            recorder.next_boundary if recorder is not None else None
        )
        self._switch_lat = params.switch_lat
        self._miss_lat = params.miss_lat
        self._max_cycles_quota = params.max_cycles_quota

    # ------------------------------------------------------------------
    # Boundary plumbing (policy Delta boundaries + recorder intervals)
    # ------------------------------------------------------------------
    def _next_boundary(self) -> float:
        boundary = self._policy_next_boundary(self.now)
        recorder_next = self._recorder_next_boundary
        if recorder_next is not None:
            boundary = min(boundary, recorder_next(self.now))
        return boundary

    def _fire_due_boundaries(self) -> None:
        policy = self.policy
        recorder = self.recorder
        threshold = self.now + _EPS
        # Fast path: nothing due (the overwhelmingly common case).
        if self._policy_next_boundary(self.now) > threshold and (
            recorder is None or recorder.next_boundary(self.now) > threshold
        ):
            return
        for _ in range(MAX_EVENTS):
            fired = False
            # Evaluate each schedule exactly once per iteration: a
            # policy whose ``next_boundary`` advances on query must see
            # the value that passed the guard handed to ``on_boundary``.
            boundary = policy.next_boundary(self.now)
            if boundary <= self.now + _EPS:
                policy.on_boundary(boundary)
                fired = True
            if recorder is not None:
                recorder_boundary = recorder.next_boundary(self.now)
                if recorder_boundary <= self.now + _EPS:
                    recorder.on_boundary(recorder_boundary, self)
                    fired = True
            if not fired:
                return
        states = "; ".join(
            f"T{t.thread_id}: retired={t.retired:.0f} ready_at={t.ready_at:.1f} "
            f"done={t.done} active={t is self._active}"
            for t in self.threads
        )
        raise SimulationError(
            f"boundary callbacks failed to advance their schedule after "
            f"{MAX_EVENTS} firings at t={self.now:.1f} "
            f"({self.now:.1f} cycles elapsed); threads: {states}"
        )

    def _elapse_inactive(self, duration: float, kind: str) -> None:
        """Pass non-executing time (idle or switch overhead), splitting
        at boundaries so sampling periods stay exact."""
        if kind == "idle" and self._emit_switch is not None:
            self._emit_switch(stall(self.now, duration, "engine"))
        if duration <= _EPS:
            return
        if self._next_boundary() == math.inf:
            # No boundary can fire inside the span (nothing advances a
            # policy/recorder schedule while the core is not executing),
            # so the whole duration elapses in one step -- the same
            # single `+=` the loop below would perform.
            self.now += duration
            if kind == "idle":
                self.idle_cycles += duration
            else:
                self.switch_overhead_cycles += duration
            return
        remaining = duration
        while remaining > _EPS:
            boundary = self._next_boundary()
            step = min(remaining, max(boundary - self.now, 0.0))
            if step <= _EPS:
                self._fire_due_boundaries()
                continue
            self.now += step
            if math.isfinite(boundary) and abs(boundary - self.now) <= _EPS:
                # ``now += step`` accumulates float drift, so a step cut
                # at the boundary can land a hair off it and leave the
                # next ``boundary - now`` within _EPS on the wrong side,
                # firing a sampling boundary one iteration late. Snap to
                # the boundary so sampling periods stay exact.
                self.now = boundary
            if kind == "idle":
                self.idle_cycles += step
            else:
                self.switch_overhead_cycles += step
            remaining -= step
            self._fire_due_boundaries()

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _pick_ready(self) -> Optional[EngineThread]:
        """Least-recently-dispatched ready thread (round-robin order),
        unless the policy overrides dispatch via ``select_thread``."""
        threshold = self.now + _EPS
        select = self._policy_select
        if select is not None:
            ready = tuple(
                t.thread_id
                for t in self.threads
                if not t.done and t.ready_at <= threshold
            )
            if not ready:
                return None
            choice = select(ready, self.now)
            if choice is not None:
                if choice not in ready:
                    raise SimulationError(
                        f"policy selected thread {choice!r} at t={self.now:.1f}, "
                        f"but the ready set is {ready}"
                    )
                return self.threads[choice]
        best: Optional[EngineThread] = None
        best_seq = 0
        for t in self.threads:
            if not t.done and t.ready_at <= threshold:
                seq = t.last_dispatch_seq
                if best is None or seq < best_seq:
                    best = t
                    best_seq = seq
        return best

    def _dispatch(self, thread: EngineThread) -> None:
        thread.last_dispatch_seq = self._dispatch_seq
        self._dispatch_seq += 1
        self._active = thread
        self._dispatch_cycles = 0.0
        self._elapse_inactive(self._switch_lat, "switch")
        self.policy.on_run_start(thread.thread_id, self.now)

    def _switch_out(self, reason: str) -> None:
        assert self._active is not None
        if self._emit_switch is not None:
            self._emit_switch(
                thread_switch(self.now, self._active.thread_id, reason, "engine")
            )
        self.policy.on_switch_out(self._active.thread_id, reason, self.now)
        self._active = None

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, limits: RunLimits = RunLimits()) -> SoeRunResult:
        """Run until every thread retired ``limits.min_instructions``.

        Returns statistics over the post-warmup window.
        """
        snapshot: Optional[_Snapshot] = None
        if limits.warmup_instructions == 0:
            snapshot = _Snapshot(self)

        finished = self._finished
        step_active = self._step_active
        pick_ready = self._pick_ready
        max_cycles = limits.max_cycles
        warmup_instructions = limits.warmup_instructions
        while not finished(limits):
            if self.now >= max_cycles:
                break
            if snapshot is None and self._total_retired() >= warmup_instructions:
                snapshot = _Snapshot(self)

            if self._active is None:
                thread = pick_ready()
                if thread is None:
                    self._idle_until_ready(limits)
                    continue
                self._dispatch(thread)
                continue
            step_active(limits)

        if snapshot is None:
            # The run ended inside warmup; measure the whole run instead
            # of returning an empty window.
            snapshot = _Snapshot(self)
            snapshot.time = 0.0
            snapshot.idle_cycles = 0.0
            snapshot.switch_overhead_cycles = 0.0
            snapshot.threads = [(0.0, 0.0, 0, 0, 0, 0) for _ in self.threads]
        PROFILE.record_cycles(self.now)
        return self._build_result(snapshot)

    # ------------------------------------------------------------------
    def _finished(self, limits: RunLimits) -> bool:
        for thread in self.threads:
            if thread.done:
                continue
            if thread.retired < limits.min_instructions:
                return False
        return True

    def _total_retired(self) -> float:
        return sum(t.retired for t in self.threads)

    def _idle_until_ready(self, limits: RunLimits) -> None:
        pending = [t.ready_at for t in self.threads if not t.done]
        if not pending:
            raise SimulationError("no runnable threads and none pending")
        target = min(pending)
        if target <= self.now + _EPS:
            raise SimulationError("idle requested while a thread is ready")
        cap = limits.max_cycles
        if target >= cap:
            # Every pending ``ready_at`` lies at or beyond the hard
            # cycle cap. The naive ``min(target, cap) - now`` elapse is
            # non-positive once ``now`` sits within _EPS of the cap,
            # which would advance nothing and spin the run loop forever
            # on an all-idle span; elapse straight to the cap and pin
            # ``now`` there so the loop's max_cycles check terminates.
            remaining = cap - self.now
            if remaining > _EPS:
                self._elapse_inactive(remaining, "idle")
            if self.now < cap:
                self.idle_cycles += cap - self.now
                self.now = cap
            return
        self._elapse_inactive(target - self.now, "idle")

    def _step_active(self, limits: RunLimits) -> None:
        thread = self._active
        assert thread is not None
        tid = thread.thread_id

        boundary = self._next_boundary()
        t_boundary = max(boundary - self.now, 0.0)
        if t_boundary <= _EPS:
            self._fire_due_boundaries()
            return

        # Inlined EngineThread.ipc / cycles_to_segment_end / advance /
        # at_segment_end: this is the hottest method of the engine, and
        # each property is a function call the loop pays per event. The
        # arithmetic (values and operation order) is exactly the
        # originals', so results stay bit-identical.
        segment = thread.segment
        if segment is None:
            raise SimulationError(f"thread {tid} has no active segment")
        ipc = thread._segment_ipc
        t_segment = segment.cycles - thread.segment_cycles_done
        if t_segment < 0.0:
            t_segment = 0.0
        instr_budget = self._policy_instruction_budget(tid)
        t_instr = instr_budget / ipc if math.isfinite(instr_budget) else math.inf
        cycle_budget = min(
            self._policy_cycle_budget(tid),
            self._max_cycles_quota - self._dispatch_cycles,
        )
        t_cycle = max(cycle_budget, 0.0)

        t_limit = max(limits.max_cycles - self.now, 0.0)
        dt = min(t_segment, t_instr, t_cycle, t_boundary, t_limit)
        if t_limit <= _EPS:
            return  # the run loop's max_cycles check will stop us
        if dt <= _EPS:
            # A zero budget at dispatch time: treat as an immediate
            # forced switch so the engine cannot spin.
            if t_segment <= _EPS:
                self._complete_segment(thread)
            elif t_instr <= _EPS:
                thread.forced_switches += 1
                thread.ready_at = self.now
                self._switch_out("quota")
            else:
                thread.cycle_quota_switches += 1
                thread.ready_at = self.now
                self._switch_out("cycle_quota")
            return

        retired = dt * ipc
        thread.segment_cycles_done += dt
        thread.retired += retired
        thread.run_cycles += dt
        self._dispatch_cycles += dt
        self.now += dt
        self._policy_on_retired(tid, retired, dt)
        self._fire_due_boundaries()

        if dt >= t_segment - _EPS and (
            segment.cycles - thread.segment_cycles_done <= _EPS
        ):
            self._complete_segment(thread)
        elif dt >= t_instr - _EPS:
            thread.forced_switches += 1
            thread.ready_at = self.now
            self._switch_out("quota")
        elif dt >= t_cycle - _EPS:
            thread.cycle_quota_switches += 1
            thread.ready_at = self.now
            self._switch_out("cycle_quota")
        # else: the step ended at a boundary; keep running the same thread.

    def _complete_segment(self, thread: EngineThread) -> None:
        latency = thread.finish_segment(self.now, self._miss_lat)
        if self._emit_switch is not None:
            self._emit_switch(segment_end(self.now, thread.thread_id, latency))
        if latency is not None:
            thread.miss_switches += 1
            self.policy.on_miss(thread.thread_id, self.now, latency=latency)
            self._switch_out("miss")
        elif thread.done:
            self._switch_out("done")
        else:
            # A rare miss-free join between segments: keep executing.
            pass

    # ------------------------------------------------------------------
    def _build_result(self, snapshot: _Snapshot) -> SoeRunResult:
        window = self.now - snapshot.time
        if window <= 0:
            raise SimulationError("measurement window is empty; increase run length")
        stats = []
        for thread, base in zip(self.threads, snapshot.threads):
            retired0, cycles0, misses0, msw0, fsw0, qsw0 = base
            stats.append(
                ThreadStats(
                    retired=thread.retired - retired0,
                    run_cycles=thread.run_cycles - cycles0,
                    misses=thread.misses - misses0,
                    miss_switches=thread.miss_switches - msw0,
                    forced_switches=thread.forced_switches - fsw0,
                    cycle_quota_switches=thread.cycle_quota_switches - qsw0,
                )
            )
        return SoeRunResult(
            cycles=window,
            threads=tuple(stats),
            idle_cycles=self.idle_cycles - snapshot.idle_cycles,
            switch_overhead_cycles=(
                self.switch_overhead_cycles - snapshot.switch_overhead_cycles
            ),
        )


class IntervalRecorderProtocol:
    """Structural interface the engine expects from a recorder."""

    def next_boundary(self, now: float) -> float:  # pragma: no cover - protocol
        raise NotImplementedError

    def on_boundary(self, now: float, engine: SoeEngine) -> None:  # pragma: no cover
        raise NotImplementedError


def run_soe(
    streams: Sequence[SegmentStream],
    policy: Optional[SwitchPolicy] = None,
    params: SoeParams = SoeParams(),
    limits: RunLimits = RunLimits(),
    recorder: Optional[IntervalRecorderProtocol] = None,
) -> SoeRunResult:
    """Convenience wrapper: build an engine and run it once."""
    return SoeEngine(streams, policy, params, recorder).run(limits)
