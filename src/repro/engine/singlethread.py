"""Single-thread reference runs (ground-truth ``IPC_ST``).

The paper's achieved-fairness results compare each thread's SOE
performance against its *real* single-thread performance, obtained by
simulating each benchmark alone on the processor. For the segment model
this run is a straight accumulation: every segment contributes its
execution cycles plus, if it ends with a miss, the full miss latency
(Eq. 1's denominator).
"""

from __future__ import annotations

from repro.engine.results import SingleThreadResult
from repro.engine.segments import SegmentStream
from repro.errors import ConfigurationError
from repro.telemetry.profile import PROFILE

__all__ = ["run_single_thread"]


def run_single_thread(
    stream: SegmentStream,
    miss_lat: float = 300.0,
    min_instructions: float = 100_000.0,
    warmup_instructions: float = 0.0,
) -> SingleThreadResult:
    """Run one workload alone and measure its IPC.

    Stops at the first segment boundary at or after ``min_instructions``
    retired (post-warmup instructions are measured; the warmup prefix is
    executed but excluded, mirroring the SOE runs).
    """
    if miss_lat < 0:
        raise ConfigurationError("miss_lat must be non-negative")
    if min_instructions <= 0:
        raise ConfigurationError("min_instructions must be positive")
    if warmup_instructions < 0:
        raise ConfigurationError("warmup_instructions must be non-negative")

    retired = 0.0
    cycles = 0.0
    run_cycles = 0.0
    misses = 0
    base = (0.0, 0.0, 0.0, 0)
    warmed = warmup_instructions == 0

    for segment in stream.segments():
        retired += segment.instructions
        cycles += segment.cycles
        run_cycles += segment.cycles
        if segment.ends_with_miss:
            misses += 1
            cycles += (
                miss_lat if segment.miss_latency is None else segment.miss_latency
            )
        if not warmed and retired >= warmup_instructions:
            base = (retired, cycles, run_cycles, misses)
            warmed = True
            continue
        if warmed and retired - base[0] >= min_instructions:
            break
    else:
        if not warmed:
            # The stream ended inside warmup; measure everything.
            base = (0.0, 0.0, 0.0, 0)

    window_retired = retired - base[0]
    window_cycles = cycles - base[1]
    window_run_cycles = run_cycles - base[2]
    window_misses = misses - base[3]
    if window_cycles <= 0:
        raise ConfigurationError("single-thread run produced an empty window")
    PROFILE.record_cycles(cycles)
    return SingleThreadResult(
        retired=window_retired,
        cycles=window_cycles,
        misses=window_misses,
        run_cycles=window_run_cycles,
    )
