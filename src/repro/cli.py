"""Command-line front-end: ``python -m repro <experiment>``.

Examples::

    python -m repro list                 # show available experiments
    python -m repro table2               # reproduce Table 2
    python -m repro fig7 --scale paper   # Figure 7 at the paper's run lengths
    python -m repro all --jobs 8         # whole evaluation, 8 worker processes
    python -m repro all --cache-dir .repro-cache   # reuse finished grid runs
    python -m repro fig7 --trace t.jsonl # stream trace events while running
    python -m repro trace-summary t.jsonl   # render a recorded trace
    python -m repro lint                 # static analysis (repro-lint)
    python -m repro lint --eq-table      # paper-equation coverage map
    python -m repro bench                # perf harness (BENCH_*.json)
    python -m repro bench --compare      # gate against benchmarks/baseline.json
    python -m repro policies             # the registered switch policies
    python -m repro frontier             # cross-policy fairness/throughput
    python -m repro fig7 --policy drr-arbiter   # rerun a figure under a policy
    python -m repro frontier --policies none,fairness,drr-arbiter

Fault tolerance (``docs/ROBUSTNESS.md``)::

    python -m repro all --jobs 8 --task-timeout 300 --checkpoint run.ckpt
    python -m repro all --jobs 8 --resume run.ckpt     # after a crash/^C
    python -m repro fig7 --on-failure degrade          # keep what finished
    python -m repro fig7 --inject-faults crash@2,hang@5 --task-timeout 5
    python -m repro fig7 --retries 3 --retry-backoff 0.25   # jittered backoff

The simulation service (``docs/SERVICE.md``)::

    python -m repro serve --port 8100 --jobs 4 --journal jobs.ckpt
    python -m repro submit --url http://127.0.0.1:8100 \
        --tenant alice --pair gcc:eon --wait
    python -m repro status --url http://127.0.0.1:8100 JOB_ID
    python -m repro watch --url http://127.0.0.1:8100 JOB_ID

Exit codes: 0 success; 2 grid aborted with failed tasks; 3 degraded
(``--on-failure degrade`` with failures); 130 interrupted and drained.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Optional, Sequence

from repro import faults, telemetry
from repro.engine.backend import BACKEND_NAMES
from repro.errors import ConfigurationError, GridExecutionError, GridInterrupted
from repro.experiments.common import EvalConfig
from repro.experiments.registry import experiment_ids, get_experiment
from repro.experiments.runner import (
    CHECKPOINT_SYNC_MODES,
    ExecutionSettings,
    ON_FAILURE_MODES,
    degraded_outcomes,
    execution,
    reset_degraded,
)

__all__ = ["main", "build_parser"]

#: Experiments that share the 16-pair evaluation grid.
_GRID = ("fig6", "fig7", "fig8")

#: Execution order of ``python -m repro all`` (the grid figures run in
#: between, off one shared grid; ``stability`` reruns the grid per seed
#: and stays opt-in).
_ALL_BEFORE_GRID = ("table2", "fig3", "fig5")
_ALL_AFTER_GRID = ("timesharing", "validation", "ablations", "events",
                   "threadcount", "weighted", "sensitivity")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="soe-repro",
        description=(
            "Reproduction of 'Fairness and Throughput in Switch on Event "
            "Multithreading' (MICRO 2006)"
        ),
    )
    parser.add_argument(
        "experiment",
        help="experiment id, 'all', 'list', 'policies', 'lint', 'bench', "
        "'trace-summary', 'serve', or a service client command "
        "(submit, status, watch)",
    )
    parser.add_argument(
        "path",
        nargs="?",
        help="trace file (only for the trace-summary subcommand)",
    )
    parser.add_argument(
        "--scale",
        choices=("quick", "default", "paper"),
        default="default",
        help="run length preset (paper = 6M instructions per thread)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="workload seed (default 0)"
    )
    parser.add_argument(
        "--policy",
        metavar="NAME",
        help="switch policy enforcing the non-zero fairness levels "
             "(default: fairness, the paper's mechanism; see "
             "'python -m repro policies' for the registry)",
    )
    parser.add_argument(
        "--policies",
        metavar="NAMES",
        help="comma-separated policies the frontier experiment sweeps "
             "(default: every registered policy; frontier only)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for grid/sweep simulations (default 1 = "
             "serial; results are bit-identical at any job count)",
    )
    parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="scalar",
        help="engine substrate for SOE simulations: scalar (exact "
             "event-driven reference), batch (vectorized with numpy; "
             "errors if numpy is missing), or auto (batch when numpy "
             "is installed, scalar otherwise)",
    )
    parser.add_argument(
        "--shards",
        default="1",
        metavar="auto|N",
        help="split the vectorized batch portion across N persistent "
             "pool workers (lane-contiguous shards, merged in global "
             "order, bit-identical at any count); auto sizes the shard "
             "count from --jobs and the batch, falling back to the "
             "in-process batch when sharding cannot pay for itself "
             "(default 1 = in-process)",
    )
    parser.add_argument(
        "--checkpoint-sync",
        choices=CHECKPOINT_SYNC_MODES,
        default="every",
        help="checkpoint journal durability: every (fsync per task "
             "record) or shard (group-commit each completed shard's "
             "records with one fsync)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="directory for the on-disk result cache; re-renders of "
             "already-computed runs skip simulation",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the on-disk result cache",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per grid task attempt; hung workers are "
             "terminated and the task retried (default: no timeout)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="extra attempts for a failed grid task before it lands in "
             "the failure manifest (default 2)",
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="base of the deterministic exponential retry backoff with "
             "seeded jitter: attempt n waits in [base*2^(n-1)/2, "
             "base*2^(n-1)] seconds (default 0 = retry immediately)",
    )
    parser.add_argument(
        "--on-failure",
        choices=ON_FAILURE_MODES,
        default="abort",
        help="what a grid does when tasks exhaust their retries: abort "
             "(exit 2, completed work still cached/journaled) or degrade "
             "(render what finished, exit 3)",
    )
    parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="journal every finished grid task to PATH (append-only, "
             "fsync'd) so an interrupted run can be resumed",
    )
    parser.add_argument(
        "--resume",
        metavar="PATH",
        help="resume from a checkpoint written by --checkpoint: finished "
             "tasks are skipped, new ones appended to the same journal; "
             "the resumed grid is bit-identical to an uninterrupted run",
    )
    parser.add_argument(
        "--inject-faults",
        metavar="SPEC",
        help="deterministic fault injection for testing the supervisor "
             "and the service: comma-separated kind@index[*count] entries "
             "with kind one of crash, hang, nan, corrupt, storm, stall, "
             "jtear (e.g. crash@2,hang@5); see docs/ROBUSTNESS.md and "
             "docs/SERVICE.md",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="stream schema-validated trace events (JSONL) to PATH and "
             "write a profiling manifest to PATH.manifest.json; results "
             "are bit-identical with tracing on or off",
    )
    parser.add_argument(
        "--trace-events",
        metavar="CATEGORIES",
        help="comma-separated trace categories to record "
             "(controller,switch,runner; default: all)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="also write the rendered text to FILE",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="also write the raw result as JSON to FILE ('all' writes a "
             "combined document keyed by experiment id)",
    )
    return parser


def _config_for(
    scale: str, seed: int, policy: Optional[str] = None
) -> EvalConfig:
    if scale == "paper":
        base = EvalConfig.paper_scale()
    elif scale == "quick":
        base = EvalConfig.quick()
    else:
        base = EvalConfig()
    if seed == base.seed and policy is None:
        return base
    from dataclasses import replace

    if policy is None:
        return replace(base, seed=seed)
    return replace(base, seed=seed, policy=policy)


def _parse_policies(text: Optional[str]) -> Optional[tuple[str, ...]]:
    """Parse ``--policies`` ("none,fairness,..."); None = all registered."""
    if text is None:
        return None
    names = tuple(part.strip() for part in text.split(",") if part.strip())
    if not names:
        raise ConfigurationError("--policies needs at least one policy name")
    from repro.core.policies import get_policy

    for name in names:
        get_policy(name)  # raises for unknown names
    return names


def _run_one(
    experiment_id: str,
    config: EvalConfig,
    policies: Optional[tuple[str, ...]] = None,
) -> tuple[object, str]:
    """Run one registered experiment; every run() accepts ``config=``."""
    experiment = get_experiment(experiment_id)
    if policies is not None:
        if experiment_id != "frontier":
            raise ConfigurationError(
                "--policies only applies to the frontier experiment; "
                "use --policy NAME to run other experiments under a "
                "single policy"
            )
        result = experiment.run(config=config, policies=policies)
    else:
        result = experiment.run(config=config)
    return result, experiment.render(result)


def _run_grid(config: EvalConfig) -> tuple[dict[str, object], list[str]]:
    """Run the 16-pair grid once and derive Figures 6-8 from it."""
    from repro.experiments import fig6, fig7, fig8
    from repro.experiments.common import run_all_pairs

    pair_results = run_all_pairs(config)
    modules = {"fig6": fig6, "fig7": fig7, "fig8": fig8}
    results = {
        experiment_id: module.run(config, pairs=pair_results)
        for experiment_id, module in modules.items()
    }
    sections = [
        modules[experiment_id].render(results[experiment_id])
        for experiment_id in _GRID
    ]
    return results, sections


def _write_text(path: str, text: str) -> None:
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text)


def _build_sink(args: argparse.Namespace) -> Optional[telemetry.JsonlSink]:
    """The trace sink requested on the command line (None = no tracing)."""
    if args.trace is None:
        if args.trace_events:
            raise ConfigurationError("--trace-events requires --trace PATH")
        return None
    categories = telemetry.parse_categories(args.trace_events)
    return telemetry.JsonlSink(pathlib.Path(args.trace), categories)


def _emit_failure_manifest(
    outcome: object, checkpoint: Optional[pathlib.Path]
) -> None:
    """Report a degraded/aborted grid: stderr summary + JSON manifest.

    When a checkpoint journal is in use the manifest lands next to it
    (``<checkpoint>.manifest.json``), so the artifacts needed to resume
    -- journal plus an account of what failed -- travel together.
    """
    manifest = getattr(outcome, "failure_manifest", None)
    if manifest is None:
        return
    payload = manifest()
    print(
        f"[grid] {payload['completed_pairs']} pair(s) completed, "
        f"{len(payload['incomplete_pairs'])} incomplete, "
        f"{payload['skipped_tasks']} task(s) skipped"
        + (" (interrupted)" if payload["interrupted"] else ""),
        file=sys.stderr,
    )
    for failure in payload["failures"]:
        print(
            f"[grid]   {failure['reason']}: {failure['kind']} "
            f"{failure['label']} after {failure['attempts']} attempt(s): "
            f"{failure['message']}",
            file=sys.stderr,
        )
    if checkpoint is not None:
        manifest_path = pathlib.Path(f"{checkpoint}.manifest.json")
        manifest_path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"[grid] failure manifest -> {manifest_path}", file=sys.stderr)


def _parse_shards(text: str) -> "int | str":
    if text == "auto":
        return "auto"
    try:
        return int(text)
    except ValueError:
        raise ConfigurationError(
            f"--shards must be 'auto' or a positive integer, got {text!r}"
        ) from None


def _execution_settings(args: argparse.Namespace) -> ExecutionSettings:
    if args.resume and args.checkpoint and args.resume != args.checkpoint:
        raise ConfigurationError(
            "--checkpoint and --resume name different journals; --resume "
            "PATH alone both reads and extends it"
        )
    checkpoint = args.resume or args.checkpoint
    return ExecutionSettings(
        jobs=args.jobs,
        cache_dir=None if args.no_cache or args.cache_dir is None
        else pathlib.Path(args.cache_dir),
        task_timeout=args.task_timeout,
        retries=args.retries,
        retry_backoff=args.retry_backoff,
        on_failure=args.on_failure,
        checkpoint=pathlib.Path(checkpoint) if checkpoint else None,
        resume=args.resume is not None,
        backend=args.backend,
        shards=_parse_shards(args.shards),
        checkpoint_sync=args.checkpoint_sync,
    )


def _serve(arg_list: list) -> int:
    """The ``serve`` subcommand: run the simulation service."""
    from repro.service.app import ServiceConfig, run_service

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run the resilient simulation service (docs/SERVICE.md).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8100,
        help="listen port (0 = ephemeral; see --port-file)",
    )
    parser.add_argument(
        "--port-file", metavar="PATH",
        help="write the bound port to PATH (for tests/CI binding port 0)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes in the shared supervised pool (default 1)",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=64, metavar="N",
        help="per-tenant queue bound; a full queue rejects with HTTP 429 "
             "and a retry-after hint (default 64)",
    )
    parser.add_argument(
        "--quantum", type=float, default=1.0,
        help="DRR quantum credited per scheduling visit (default 1.0; "
             "job cost is 1, so 1.0 = strict round robin)",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per job attempt (job deadlines tighten "
             "this per job; default: no timeout)",
    )
    parser.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="extra attempts for a failed job before it is reported "
             "failed (default 2)",
    )
    parser.add_argument(
        "--retry-backoff", type=float, default=0.0, metavar="SECONDS",
        help="base of the deterministic exponential retry backoff with "
             "seeded jitter (default 0 = retry immediately)",
    )
    parser.add_argument(
        "--breaker-window", type=int, default=8, metavar="N",
        help="recent attempt outcomes the circuit breaker remembers",
    )
    parser.add_argument(
        "--breaker-threshold", type=int, default=4, metavar="N",
        help="crash/timeout outcomes within the window that trip the "
             "breaker open (cache-only serving until it recovers)",
    )
    parser.add_argument(
        "--breaker-cooldown", type=int, default=10, metavar="N",
        help="dispatcher cycles the breaker stays open before probing",
    )
    parser.add_argument(
        "--journal", metavar="PATH",
        help="durable job journal; a restarted service resumes "
             "unfinished jobs and serves finished ones bit-identically",
    )
    parser.add_argument(
        "--cache-dir", metavar="PATH",
        help="result cache shared with the grid runner; submissions "
             "deduping to a cached result answer instantly",
    )
    parser.add_argument(
        "--inject-faults", metavar="SPEC",
        help="deterministic chaos: kind@index[*count] entries with kind "
             "one of crash, hang, nan, storm, stall, jtear",
    )
    parser.add_argument(
        "--trace", metavar="PATH",
        help="stream schema-validated trace events (JSONL) to PATH",
    )
    parser.add_argument(
        "--trace-events", metavar="CATEGORIES",
        help="comma-separated trace categories to record (default: all)",
    )
    args = parser.parse_args(arg_list)
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        queue_depth=args.queue_depth,
        quantum=args.quantum,
        task_timeout=args.task_timeout,
        retries=args.retries,
        retry_backoff=args.retry_backoff,
        breaker_window=args.breaker_window,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        journal=pathlib.Path(args.journal) if args.journal else None,
        cache_dir=pathlib.Path(args.cache_dir) if args.cache_dir else None,
        port_file=pathlib.Path(args.port_file) if args.port_file else None,
    )
    plan = faults.parse_fault_plan(args.inject_faults)
    sink = _build_sink(args)
    try:
        with telemetry.tracing(sink), faults.fault_injection(plan):
            return run_service(config)
    finally:
        if sink is not None:
            sink.close()


#: Client subcommands dispatched to :mod:`repro.service.client`.
_SERVICE_CLIENT_COMMANDS = ("submit", "status", "watch")


def _service_client(command: str, arg_list: list) -> int:
    from repro.service import client

    entry = {
        "submit": client.main_submit,
        "status": client.main_status,
        "watch": client.main_watch,
    }[command]
    return entry(arg_list)


def _trace_summary(args: argparse.Namespace) -> int:
    from repro.telemetry.summary import render_trace_summary

    if not args.path:
        raise ConfigurationError(
            "trace-summary needs a trace file: repro trace-summary PATH"
        )
    text = render_trace_summary(args.path)
    print(text)
    if args.output:
        _write_text(args.output, text + "\n")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    arg_list = list(sys.argv[1:] if argv is None else argv)
    if arg_list and arg_list[0] == "lint":
        # The lint subcommand owns its flag set (see repro.analysis.cli).
        from repro.analysis.cli import main as lint_main

        return lint_main(arg_list[1:])
    if arg_list and arg_list[0] == "bench":
        # The bench subcommand owns its flag set (see repro.benchmarking.cli).
        from repro.benchmarking.cli import main as bench_main

        return bench_main(arg_list[1:])
    if arg_list and arg_list[0] == "serve":
        # The service subcommand owns its flag set (see repro.service).
        return _serve(arg_list[1:])
    if arg_list and arg_list[0] in _SERVICE_CLIENT_COMMANDS:
        return _service_client(arg_list[0], arg_list[1:])
    args = build_parser().parse_args(arg_list)
    if args.experiment == "list":
        for experiment_id in experiment_ids():
            experiment = get_experiment(experiment_id)
            print(f"{experiment_id:12s} {experiment.paper_reference:15s} "
                  f"{experiment.title}")
        return 0
    if args.experiment == "policies":
        from repro.core.policies import render_policy_table

        text = render_policy_table()
        print(text)
        if args.output:
            _write_text(args.output, text + "\n")
        return 0
    if args.experiment == "trace-summary":
        return _trace_summary(args)

    config = _config_for(args.scale, args.seed, args.policy)
    policies = _parse_policies(args.policies)
    if policies is not None and args.experiment != "frontier":
        raise ConfigurationError(
            "--policies only applies to the frontier experiment"
        )
    settings = _execution_settings(args)
    plan = faults.parse_fault_plan(args.inject_faults)
    reset_degraded()
    sink = _build_sink(args)
    if sink is not None:
        telemetry.PROFILE.reset()
    # repro-lint: disable=RL002 - wall time feeds only the trace manifest
    wall_start = time.perf_counter()
    try:
        with telemetry.tracing(sink), execution(settings), \
                faults.fault_injection(plan):
            if args.experiment == "all":
                results: dict[str, object] = {}
                sections: list[str] = []
                for experiment_id in _ALL_BEFORE_GRID:
                    result, text = _run_one(experiment_id, config)
                    results[experiment_id] = result
                    sections.append(text)
                grid_results, grid_sections = _run_grid(config)
                results.update(grid_results)
                sections.extend(grid_sections)
                for experiment_id in _ALL_AFTER_GRID:
                    result, text = _run_one(experiment_id, config)
                    results[experiment_id] = result
                    sections.append(text)
                text = "\n\n".join(sections)
                json_payload: object = {
                    "scale": args.scale,
                    "seed": args.seed,
                    "experiments": results,
                }
            else:
                result, text = _run_one(args.experiment, config, policies)
                json_payload = result
    except GridExecutionError as error:
        # Completed work was cached/journaled before the raise; report
        # what failed and exit distinctly (130 drained, 2 failed).
        if sink is not None:
            sink.close()
        print(f"error: {error}", file=sys.stderr)
        _emit_failure_manifest(error.outcome, settings.checkpoint)
        return 130 if isinstance(error, GridInterrupted) else 2

    print(text)
    if sink is not None:
        # repro-lint: disable=RL002 - wall time feeds only the trace manifest
        wall = time.perf_counter() - wall_start
        sink.close()
        manifest = telemetry.build_manifest(
            config, wall, args.jobs, telemetry.PROFILE.snapshot()
        )
        manifest_path = f"{args.trace}.manifest.json"
        telemetry.write_manifest(manifest, manifest_path)
        print(
            f"[trace] {manifest.events} events -> {args.trace} "
            f"({manifest.events_per_sec:,.0f} events/s, "
            f"{manifest.simulated_cycles_per_sec:,.0f} simulated cycles/s); "
            f"manifest -> {manifest_path}",
            file=sys.stderr,
        )
    if args.output:
        _write_text(args.output, text + "\n")
    if args.json:
        from repro.experiments.io import write_json

        write_json(json_payload, args.json)
    degraded = degraded_outcomes()
    if degraded:
        # --on-failure degrade: everything renderable was rendered, but
        # some grid work is missing; exit non-zero so automation notices.
        _emit_failure_manifest(degraded[-1], settings.checkpoint)
        return 130 if any(o.interrupted for o in degraded) else 3
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
