"""Command-line front-end: ``python -m repro <experiment>``.

Examples::

    python -m repro list                 # show available experiments
    python -m repro table2               # reproduce Table 2
    python -m repro fig7 --scale paper   # Figure 7 at the paper's run lengths
    python -m repro all                  # run the whole evaluation
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.experiments.common import EvalConfig
from repro.experiments.registry import experiment_ids, get_experiment

__all__ = ["main", "build_parser"]

#: Experiments whose run() accepts an EvalConfig keyword.
_CONFIGURED = {"fig5", "fig6", "fig7", "fig8", "ablations"}

#: Experiments that share the 16-pair evaluation grid.
_GRID = ("fig6", "fig7", "fig8")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="soe-repro",
        description=(
            "Reproduction of 'Fairness and Throughput in Switch on Event "
            "Multithreading' (MICRO 2006)"
        ),
    )
    parser.add_argument(
        "experiment",
        help="experiment id, 'all', or 'list'",
    )
    parser.add_argument(
        "--scale",
        choices=("quick", "default", "paper"),
        default="default",
        help="run length preset (paper = 6M instructions per thread)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="workload seed (default 0)"
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="also write the rendered text to FILE",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="also write the raw result as JSON to FILE "
             "(single experiments only)",
    )
    return parser


def _config_for(scale: str, seed: int) -> EvalConfig:
    if scale == "paper":
        base = EvalConfig.paper_scale()
    elif scale == "quick":
        base = EvalConfig.quick()
    else:
        base = EvalConfig()
    if seed == base.seed:
        return base
    from dataclasses import replace

    return replace(base, seed=seed)


def _run_one(
    experiment_id: str, config: EvalConfig, json_path: Optional[str] = None
) -> str:
    experiment = get_experiment(experiment_id)
    if experiment_id in _CONFIGURED:
        result = experiment.run(config=config)
    else:
        result = experiment.run()
    if json_path:
        from repro.experiments.io import write_json

        write_json(result, json_path)
    return experiment.render(result)


def _run_grid(config: EvalConfig) -> str:
    """Run the 16-pair grid once and render Figures 6-8 from it."""
    from repro.experiments import fig6, fig7, fig8
    from repro.experiments.common import run_all_pairs

    pair_results = run_all_pairs(config)
    sections = [
        fig6.render(fig6.run(config, pairs=pair_results)),
        fig7.render(fig7.run(config, pairs=pair_results)),
        fig8.render(fig8.run(config, pairs=pair_results)),
    ]
    return "\n\n".join(sections)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for experiment_id in experiment_ids():
            experiment = get_experiment(experiment_id)
            print(f"{experiment_id:12s} {experiment.paper_reference:15s} "
                  f"{experiment.title}")
        return 0

    config = _config_for(args.scale, args.seed)
    if args.experiment == "all":
        sections = [
            _run_one("table2", config),
            _run_one("fig3", config),
            _run_one("fig5", config),
            _run_grid(config),
            _run_one("timesharing", config),
            _run_one("validation", config),
            _run_one("ablations", config),
            _run_one("events", config),
            _run_one("threadcount", config),
            _run_one("weighted", config),
            _run_one("sensitivity", config),
        ]
        text = "\n\n".join(sections)
        print(text)
        if args.output:
            from pathlib import Path

            Path(args.output).write_text(text + "\n")
        return 0

    text = _run_one(args.experiment, config, json_path=args.json)
    print(text)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
