"""Serialization of experiment results.

Every experiment result in this package is a (possibly nested)
dataclass, so one generic converter covers them all. JSON artefacts let
downstream analysis (plotting, regression tracking) consume the
reproduction's numbers without re-running simulations.
"""

from __future__ import annotations

import dataclasses
import json
import math
import pathlib
from typing import Any, Union

from repro.errors import ConfigurationError

__all__ = ["result_to_jsonable", "write_json"]


def result_to_jsonable(value: Any) -> Any:
    """Convert an experiment result into JSON-encodable primitives.

    Handles nested dataclasses, mappings (numeric keys become strings),
    sequences, and non-finite floats (``inf`` serializes as the string
    ``"inf"`` so strict JSON parsers can read the output).
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: result_to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(key): result_to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [result_to_jsonable(item) for item in value]
    if isinstance(value, float) and not math.isfinite(value):
        return str(value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    # Objects that are not data (engine handles, callables...) have no
    # place in a result artefact.
    raise ConfigurationError(
        f"cannot serialize {type(value).__name__} in an experiment result"
    )


def write_json(result: Any, path: Union[str, pathlib.Path]) -> None:
    """Write an experiment result to ``path`` as pretty-printed JSON.

    Missing parent directories are created, so artefact paths like
    ``results/run1/fig7.json`` work without preparatory ``mkdir``.
    """
    payload = result_to_jsonable(result)
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2) + "\n")
