"""Section 6 discussion: why simple time sharing is not enough.

The paper's argument, quantified on Example 2's threads: forcing a
switch every ~400 cycles divides *time* almost equally, but equal time
is not equal *slowdown* -- the achieved fairness is only ~0.6, while
the proposed mechanism reaches 1.0. Meanwhile very small time quotas
do push fairness up, but each forced switch costs ``switch_lat`` cycles
of dead time, so throughput collapses. This experiment sweeps the time
quota and compares against the fairness-enforced run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.controller import FairnessController
from repro.core.policy import TimeSharingPolicy
from repro.engine.singlethread import run_single_thread
from repro.engine.segments import SegmentStream
from repro.engine.soe import RunLimits, run_soe
from repro.experiments.common import EvalConfig, format_table
from repro.workloads.synthetic import uniform_stream

__all__ = ["TimeSharingPoint", "TimeSharingResult", "run", "render"]

# Example 2's workload, straight from the paper (table2.py uses the
# same constants). Machine parameters come from the EvalConfig.
IPC_NO_MISS = 2.5
IPM = (15_000.0, 1_000.0)


@dataclass(frozen=True)
class TimeSharingPoint:
    cycle_quota: float
    total_ipc: float
    fairness: float
    time_share: tuple[float, float]


@dataclass(frozen=True)
class TimeSharingResult:
    points: list[TimeSharingPoint]
    enforced_ipc: float
    enforced_fairness: float

    def best_timesharing_fairness(self) -> float:
        return max(p.fairness for p in self.points)

    def fairness_costs_throughput(self) -> bool:
        """True when the fairest time-sharing point is also (nearly) the
        slowest -- the paper's high-fairness-needs-tiny-quota argument."""
        fairest = max(self.points, key=lambda p: p.fairness)
        fastest = max(self.points, key=lambda p: p.total_ipc)
        return fairest.total_ipc <= fastest.total_ipc


def _streams(seed_base: int = 0) -> list[SegmentStream]:
    return [
        uniform_stream(IPC_NO_MISS, IPM[0], seed=seed_base + 1),
        uniform_stream(IPC_NO_MISS, IPM[1], seed=seed_base + 2),
    ]


def run(
    quotas: Sequence[float] = (100.0, 200.0, 400.0, 1_000.0, 4_000.0, 16_000.0),
    min_instructions: Optional[float] = None,
    config: Optional[EvalConfig] = None,
) -> TimeSharingResult:
    # The machine parameters (miss/switch latency, quota cap, sample
    # period) always come from the config; the EvalConfig defaults are
    # the paper's Table 3 values, so the legacy no-config path is
    # unchanged.
    machine = config if config is not None else EvalConfig()
    if min_instructions is None:
        min_instructions = (
            config.min_instructions if config is not None else 1_000_000.0
        )
    enforced_warmup = (
        config.warmup_instructions if config is not None else 500_000.0
    )
    seed_base = 2 * config.seed if config is not None else 0
    params = machine.soe_params()
    ipc_st = [
        run_single_thread(
            s, machine.miss_lat, min_instructions=min_instructions
        ).ipc
        for s in _streams(seed_base)
    ]
    points = []
    for quota in quotas:
        result = run_soe(
            _streams(seed_base),
            TimeSharingPolicy(quota),
            params,
            RunLimits(min_instructions=min_instructions),
        )
        run_cycles = tuple(t.run_cycles for t in result.threads)
        total_run = sum(run_cycles)
        points.append(
            TimeSharingPoint(
                cycle_quota=quota,
                total_ipc=result.total_ipc,
                fairness=result.achieved_fairness(ipc_st),
                time_share=tuple(c / total_run for c in run_cycles),
            )
        )
    controller = FairnessController(2, machine.fairness_params(1.0))
    enforced = run_soe(
        _streams(seed_base),
        controller,
        params,
        RunLimits(
            min_instructions=min_instructions,
            warmup_instructions=enforced_warmup,
        ),
    )
    return TimeSharingResult(
        points=points,
        enforced_ipc=enforced.total_ipc,
        enforced_fairness=enforced.achieved_fairness(ipc_st),
    )


def render(result: TimeSharingResult) -> str:
    rows = [
        [
            f"{p.cycle_quota:,.0f}",
            f"{p.total_ipc:.3f}",
            f"{p.fairness:.3f}",
            f"{p.time_share[0]:.0%}/{p.time_share[1]:.0%}",
        ]
        for p in result.points
    ]
    rows.append(
        ["(enforced F=1)", f"{result.enforced_ipc:.3f}",
         f"{result.enforced_fairness:.3f}", "-"]
    )
    return (
        format_table(
            ["cycle quota", "IPC_SOE", "fairness", "time split"],
            rows,
            title="Section 6: time sharing vs fairness enforcement (Example 2)",
        )
        + "\n(paper: ~400-cycle time sharing gives fairness ~0.6; "
        + "the mechanism gives 1.0)"
    )
