"""Shared infrastructure for the paper-reproduction experiments.

The evaluation figures (6, 7, 8) all consume the same grid of runs --
every benchmark pair at every fairness level, plus each benchmark's
single-thread reference -- so :func:`run_all_pairs` produces that grid
once and the figure modules post-process it.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.controller import FairnessParams
from repro.core.policies import PolicyConfig, get_policy
from repro.engine.results import SoeRunResult
from repro.engine.soe import RunLimits, SoeParams
from repro.errors import ConfigurationError
from repro.workloads.pairs import BenchmarkPair

__all__ = [
    "EvalConfig",
    "PairResult",
    "run_pair",
    "run_all_pairs",
    "format_table",
]

#: The fairness levels evaluated in the paper.
PAPER_FAIRNESS_LEVELS = (0.0, 0.25, 0.5, 1.0)


@dataclass(frozen=True)
class EvalConfig:
    """Evaluation-wide configuration (Section 4.1 defaults, scaled).

    The paper simulates >= 6M instructions per thread after a 1M
    instruction warmup; the default here is a 1.5M/1M scale that keeps a
    full 16-pair sweep to a few seconds while preserving every result's
    shape (segments are stationary, so the window length only controls
    statistical noise). :meth:`paper_scale` restores the original
    lengths.
    """

    miss_lat: float = 300.0
    switch_lat: float = 25.0
    max_cycles_quota: float = 50_000.0
    sample_period: float = 250_000.0
    min_instructions: float = 1_500_000.0
    warmup_instructions: float = 1_000_000.0
    st_min_instructions: float = 1_000_000.0
    fairness_levels: tuple[float, ...] = PAPER_FAIRNESS_LEVELS
    seed: int = 0
    #: Which registered switch policy enforces the non-zero fairness
    #: levels (:mod:`repro.core.policies`). The default is the paper's
    #: mechanism; level 0 is always the unenforced baseline regardless
    #: of the policy.
    policy: str = "fairness"
    #: Overrides for the policy's parameter schema, as sorted
    #: ``(name, value)`` pairs.
    policy_params: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if not self.fairness_levels:
            raise ConfigurationError("at least one fairness level is required")
        if 0.0 not in self.fairness_levels:
            raise ConfigurationError(
                "fairness level 0 (the baseline) must be included"
            )
        get_policy(self.policy)  # raises for unknown policy names
        # Canonical parameter order keeps equal configs equal, which is
        # what cache keys and checkpoint fingerprints hash.
        object.__setattr__(
            self, "policy_params", tuple(sorted(self.policy_params))
        )
        # Validate parameter names eagerly so a bad config fails at
        # construction, not inside a worker process.
        self.policy_config(1.0)

    @classmethod
    def paper_scale(cls) -> "EvalConfig":
        """The paper's run lengths (6M instructions + 1M warmup)."""
        return cls(min_instructions=6_000_000.0, warmup_instructions=1_000_000.0,
                   st_min_instructions=5_000_000.0)

    @classmethod
    def quick(cls) -> "EvalConfig":
        """A reduced scale for smoke tests and CI."""
        return cls(
            sample_period=100_000.0,
            min_instructions=400_000.0,
            warmup_instructions=200_000.0,
            st_min_instructions=300_000.0,
        )

    def soe_params(self) -> SoeParams:
        return SoeParams(
            miss_lat=self.miss_lat,
            switch_lat=self.switch_lat,
            max_cycles_quota=self.max_cycles_quota,
        )

    def run_limits(self) -> RunLimits:
        return RunLimits(
            min_instructions=self.min_instructions,
            warmup_instructions=self.warmup_instructions,
        )

    def fairness_params(self, target: float) -> FairnessParams:
        return FairnessParams(
            fairness_target=target,
            miss_lat=self.miss_lat,
            sample_period=self.sample_period,
        )

    def policy_config(self, level: float) -> PolicyConfig:
        """The :class:`PolicyConfig` enforcing one fairness level."""
        return PolicyConfig(
            name=self.policy,
            level=level,
            miss_lat=self.miss_lat,
            sample_period=self.sample_period,
            params=self.policy_params,
        )

    def policy_for_level(
        self, level: float
    ) -> tuple[Optional[FairnessParams], Optional[PolicyConfig]]:
        """Normalized ``(fairness, policy)`` run-spec fields for a level.

        Level 0 is always the unenforced baseline. For the default
        ``fairness`` policy this reduces to :meth:`fairness_params`, so
        existing grids stay bit-identical.
        """
        if level <= 0.0:
            return None, None
        return self.policy_config(level).normalize()


@dataclass(frozen=True)
class PairResult:
    """All runs for one benchmark pair."""

    pair: BenchmarkPair
    #: measured real single-thread IPC per thread (run alone, with each
    #: benchmark's overlapped miss stall)
    ipc_st: tuple[float, float]
    #: SOE run per fairness level (key 0.0 is the unenforced baseline)
    runs: dict[float, SoeRunResult] = field(default_factory=dict)

    @property
    def baseline(self) -> SoeRunResult:
        if 0.0 not in self.runs:
            raise ConfigurationError(
                f"pair {self.pair.label} has no F=0 baseline run; "
                "normalization needs fairness level 0 in the grid "
                f"(levels present: {sorted(self.runs)})"
            )
        return self.runs[0.0]

    def _run_at(self, level: float) -> SoeRunResult:
        if level not in self.runs:
            raise ConfigurationError(
                f"pair {self.pair.label} was not run at fairness level "
                f"{level:g} (levels present: {sorted(self.runs)})"
            )
        return self.runs[level]

    def achieved_fairness(self, level: float) -> float:
        return self._run_at(level).achieved_fairness(self.ipc_st)

    def normalized_throughput(self, level: float) -> float:
        baseline_ipc = self.baseline.total_ipc
        if baseline_ipc <= 0.0:
            raise ConfigurationError(
                f"pair {self.pair.label} has an idle F=0 baseline "
                "(total IPC is 0); throughput cannot be normalized -- "
                "check the run limits and workload streams"
            )
        return self._run_at(level).total_ipc / baseline_ipc


def run_pair(pair: BenchmarkPair, config: EvalConfig = EvalConfig()) -> PairResult:
    """Run one pair at every configured fairness level."""
    from repro.experiments import runner

    return runner.compute_pair(pair, config)


def run_all_pairs(
    config: EvalConfig = EvalConfig(),
    pairs: Optional[Sequence[BenchmarkPair]] = None,
    *,
    jobs: Optional[int] = None,
    cache_dir: Optional[pathlib.Path] = None,
) -> list[PairResult]:
    """Run the full evaluation grid (16 pairs by default).

    Execution is delegated to :mod:`repro.experiments.runner`: the
    ambient :class:`~repro.experiments.runner.ExecutionSettings`
    (installed by the CLI's ``--jobs``/``--cache-dir``) govern process
    count and result caching unless overridden by the explicit keyword
    arguments. Results are bit-identical whatever the settings.
    """
    from dataclasses import replace

    from repro.experiments import runner

    settings = runner.current_settings()
    if jobs is not None:
        settings = replace(settings, jobs=jobs)
    if cache_dir is not None:
        settings = replace(settings, cache_dir=cache_dir)
    return runner.run_grid(config, pairs=pairs, settings=settings).results


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render a simple aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
