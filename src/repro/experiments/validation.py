"""Cross-validation: analytical model vs segment engine vs detailed core.

Footnote 2 of the paper argues the segment model "gives adequate
approximation" of the detailed simulator. This experiment quantifies
that claim for our stack:

1. **model vs segment engine** on deterministic workloads, where the two
   must agree almost exactly (the engine is an exact executor of the
   model's assumptions, so residual differences come only from
   end-effects and the idle-on-unresolved-miss behaviour Eq. 2 ignores);
2. **segment engine vs detailed out-of-order core** on matched
   workloads, where differences reflect the microarchitecture the
   segment model abstracts away (frontend refill, clustered misses,
   shared predictor state).

Part 2 runs only when the detailed-core comparison is requested, since
the cycle-level simulator is orders of magnitude slower.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.model import SoeModel, ThreadParams
from repro.engine.soe import RunLimits, SoeParams, run_soe
from repro.experiments.common import EvalConfig, format_table
from repro.workloads.synthetic import uniform_stream

__all__ = ["ValidationCase", "ValidationResult", "run", "render"]


@dataclass(frozen=True)
class ValidationCase:
    label: str
    model_ipcs: tuple[float, ...]
    engine_ipcs: tuple[float, ...]

    @property
    def max_relative_error(self) -> float:
        errors = [
            abs(e - m) / m
            for e, m in zip(self.engine_ipcs, self.model_ipcs)
            if m > 0
        ]
        return max(errors) if errors else 0.0


@dataclass(frozen=True)
class ValidationResult:
    cases: list[ValidationCase]
    cpu_cases: list["CpuValidationCase"]

    @property
    def worst_error(self) -> float:
        return max(c.max_relative_error for c in self.cases)


@dataclass(frozen=True)
class CpuValidationCase:
    """Detailed-core comparison (populated when include_cpu=True)."""

    label: str
    engine_ipc: float
    cpu_ipc: float

    @property
    def relative_error(self) -> float:
        # repro-lint: disable=RL004 - exact zero means "no reference IPC"
        if self.engine_ipc == 0:
            return 0.0
        return abs(self.cpu_ipc - self.engine_ipc) / self.engine_ipc


#: (label, (ipc1, ipm1), (ipc2, ipm2)) matrix spanning balanced,
#: imbalanced and memory-bound behaviour.
CASES = (
    ("balanced", (2.5, 15_000.0), (2.5, 1_000.0)),
    ("both missy", (2.0, 800.0), (2.0, 700.0)),
    ("compute vs memory", (2.8, 40_000.0), (1.2, 300.0)),
    ("asymmetric ipc", (3.0, 5_000.0), (1.5, 5_000.0)),
)


def run(
    miss_lat: Optional[float] = None,
    switch_lat: Optional[float] = None,
    min_instructions: Optional[float] = None,
    include_cpu: bool = False,
    config: Optional[EvalConfig] = None,
) -> ValidationResult:
    if miss_lat is None:
        miss_lat = config.miss_lat if config is not None else 300.0
    if switch_lat is None:
        switch_lat = config.switch_lat if config is not None else 25.0
    if min_instructions is None:
        min_instructions = (
            config.st_min_instructions if config is not None else 500_000.0
        )
    seed_base = 2 * config.seed if config is not None else 0
    params = SoeParams(miss_lat=miss_lat, switch_lat=switch_lat)
    cases = []
    for label, (ipc1, ipm1), (ipc2, ipm2) in CASES:
        model = SoeModel(
            [ThreadParams(ipc1, ipm1), ThreadParams(ipc2, ipm2)],
            miss_lat=miss_lat,
            switch_lat=switch_lat,
        )
        streams = [
            uniform_stream(ipc1, ipm1, seed=seed_base + 1),
            uniform_stream(ipc2, ipm2, seed=seed_base + 2),
        ]
        result = run_soe(
            streams, params=params, limits=RunLimits(min_instructions=min_instructions)
        )
        cases.append(
            ValidationCase(
                label=label,
                model_ipcs=tuple(model.soe_ipcs(0.0)),
                engine_ipcs=tuple(result.ipcs),
            )
        )
    cpu_cases: list[CpuValidationCase] = []
    if include_cpu:
        cpu_cases = _cpu_comparison(miss_lat, switch_lat)
    return ValidationResult(cases=cases, cpu_cases=cpu_cases)


def _cpu_comparison(miss_lat: float, switch_lat: float) -> list[CpuValidationCase]:
    """Compare the detailed core's measured SOE IPC against a segment
    engine run parameterized with the statistics the core itself
    reports."""
    from repro.cpu.validation import matched_workload_comparison

    return [
        CpuValidationCase(label=label, engine_ipc=engine_ipc, cpu_ipc=cpu_ipc)
        for label, engine_ipc, cpu_ipc in matched_workload_comparison(
            miss_lat=miss_lat
        )
    ]


def render(result: ValidationResult) -> str:
    rows = []
    for case in result.cases:
        rows.append(
            [
                case.label,
                "/".join(f"{x:.3f}" for x in case.model_ipcs),
                "/".join(f"{x:.3f}" for x in case.engine_ipcs),
                f"{case.max_relative_error:.2%}",
            ]
        )
    text = format_table(
        ["case", "model IPC_SOE_j", "engine IPC_SOE_j", "max rel err"],
        rows,
        title="Validation: analytical model vs segment engine (F = 0)",
    )
    text += f"\nworst-case relative error: {result.worst_error:.2%}"
    if result.cpu_cases:
        cpu_rows = [
            [c.label, f"{c.engine_ipc:.3f}", f"{c.cpu_ipc:.3f}",
             f"{c.relative_error:.1%}"]
            for c in result.cpu_cases
        ]
        text += "\n\n" + format_table(
            ["case", "segment engine IPC", "detailed core IPC", "rel err"],
            cpu_rows,
            title="Validation: segment engine vs detailed out-of-order core",
        )
    return text
