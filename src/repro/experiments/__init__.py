"""Experiment runners: one module per table/figure of the paper.

See :mod:`repro.experiments.registry` for the id -> runner map and
``DESIGN.md`` for the experiment index.
"""

from repro.experiments.common import (
    EvalConfig,
    PairResult,
    format_table,
    run_all_pairs,
    run_pair,
)
from repro.experiments.registry import (
    Experiment,
    experiment_ids,
    get_experiment,
)
from repro.experiments.runner import (
    ExecutionSettings,
    GridOutcome,
    ResultCache,
    execution,
    parallel_map,
    run_grid,
)

__all__ = [
    "EvalConfig",
    "ExecutionSettings",
    "Experiment",
    "GridOutcome",
    "PairResult",
    "ResultCache",
    "execution",
    "experiment_ids",
    "format_table",
    "get_experiment",
    "parallel_map",
    "run_all_pairs",
    "run_grid",
    "run_pair",
]
