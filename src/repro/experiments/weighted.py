"""Prioritized (weighted) fairness enforcement.

A natural generalization the Eq. 7 derivation supports directly: scale
each thread's quota by a priority weight, and the mechanism drives the
threads' speedups towards the *weight ratio* instead of equality. A
weight-2 thread is entitled to twice the slowdown-relative share of a
weight-1 thread; ``weights=None`` recovers the paper's mechanism.

The experiment runs Example 2's thread pair with weight ratios 1:1,
2:1 and 4:1 at F = 1 and reports the achieved speedup ratios against
the targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.controller import FairnessController, FairnessParams
from repro.core.fairness import weighted_fairness
from repro.engine.singlethread import run_single_thread
from repro.engine.segments import SegmentStream
from repro.engine.soe import RunLimits, SoeParams, run_soe
from repro.experiments.common import EvalConfig, format_table
from repro.workloads.synthetic import uniform_stream

__all__ = ["WeightedRow", "WeightedResult", "run", "render"]

IPC_NO_MISS = 2.5
IPM = (15_000.0, 1_000.0)


@dataclass(frozen=True)
class WeightedRow:
    weights: tuple[float, float]
    speedups: tuple[float, float]
    total_ipc: float

    @property
    def achieved_ratio(self) -> float:
        """speedup(t1) / speedup(t2); the target is w1 / w2."""
        return self.speedups[0] / self.speedups[1]

    @property
    def target_ratio(self) -> float:
        return self.weights[0] / self.weights[1]

    @property
    def weighted_fairness(self) -> float:
        return weighted_fairness(self.speedups, self.weights)


@dataclass(frozen=True)
class WeightedResult:
    fairness_target: float
    rows: list[WeightedRow]


def _streams(seed_base: int = 0) -> list[SegmentStream]:
    return [
        uniform_stream(IPC_NO_MISS, IPM[0], seed=seed_base + 1),
        uniform_stream(IPC_NO_MISS, IPM[1], seed=seed_base + 2),
    ]


def run(
    weight_ratios: Sequence[tuple[float, float]] = ((1.0, 1.0), (2.0, 1.0), (4.0, 1.0), (1.0, 2.0)),
    fairness_target: float = 1.0,
    min_instructions: Optional[float] = None,
    warmup_instructions: Optional[float] = None,
    config: Optional[EvalConfig] = None,
) -> WeightedResult:
    if min_instructions is None:
        min_instructions = (
            config.min_instructions if config is not None else 1_500_000.0
        )
    if warmup_instructions is None:
        warmup_instructions = (
            config.warmup_instructions if config is not None else 1_000_000.0
        )
    seed_base = 2 * config.seed if config is not None else 0
    params = SoeParams()
    ipc_st = [
        run_single_thread(s, params.miss_lat, min_instructions=min_instructions).ipc
        for s in _streams(seed_base)
    ]
    limits = RunLimits(
        min_instructions=min_instructions, warmup_instructions=warmup_instructions
    )
    rows = []
    for weights in weight_ratios:
        controller = FairnessController(
            2,
            FairnessParams(fairness_target=fairness_target, weights=tuple(weights)),
        )
        result = run_soe(_streams(seed_base), controller, params, limits)
        rows.append(
            WeightedRow(
                weights=tuple(weights),
                speedups=tuple(result.speedups(ipc_st)),
                total_ipc=result.total_ipc,
            )
        )
    return WeightedResult(fairness_target=fairness_target, rows=rows)


def render(result: WeightedResult) -> str:
    rows = [
        [
            f"{row.weights[0]:g}:{row.weights[1]:g}",
            f"{row.speedups[0]:.3f}/{row.speedups[1]:.3f}",
            f"{row.achieved_ratio:.2f}",
            f"{row.target_ratio:.2f}",
            f"{row.weighted_fairness:.3f}",
            f"{row.total_ipc:.3f}",
        ]
        for row in result.rows
    ]
    return format_table(
        ["weights", "speedups", "achieved ratio", "target ratio",
         "weighted fairness", "IPC_SOE"],
        rows,
        title=(
            f"Prioritized fairness on Example 2's threads at "
            f"F = {result.fairness_target:g}"
        ),
    )
