"""Ablations of the mechanism's design parameters.

The paper fixes several knobs with one-line justifications; these
ablations quantify them on the gcc:eon pair (the pair that needs active
enforcement):

* ``Delta`` (sampling period, Section 3.1): too small -> noisy
  estimates; too large -> phases tracked poorly.
* maximum cycles quota (Section 4.1): must be well below ``Delta / N``
  so starved threads are sampled, but large enough that quota-forced
  switches stay rare.
* deficit cap (Section 3.2 extension): bounding the carried-over
  deficit trades average-quota accuracy for burst control.
* miss-latency misestimation (Section 6): the mechanism uses a
  predefined ``miss_lat`` in Eq. 13; feeding it a wrong constant skews
  the quotas.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Optional

from repro.core.controller import FairnessController, FairnessParams
from repro.engine.soe import SoeParams, run_soe
from repro.experiments.common import EvalConfig, format_table
from repro.workloads.pairs import BenchmarkPair

__all__ = ["AblationPoint", "AblationResult", "run", "render"]


@dataclass(frozen=True)
class AblationPoint:
    """One configuration's outcome."""

    knob: str
    value: str
    total_ipc: float
    achieved_fairness: float
    forced_per_kcycle: float


@dataclass(frozen=True)
class AblationResult:
    pair_label: str
    fairness_target: float
    points: list[AblationPoint]

    def series(self, knob: str) -> list[AblationPoint]:
        return [p for p in self.points if p.knob == knob]


def _run_one(
    pair: BenchmarkPair,
    config: EvalConfig,
    fairness_target: float,
    ipc_st: tuple[float, ...],
    sample_period: Optional[float] = None,
    max_cycles_quota: Optional[float] = None,
    deficit_cap: Optional[float] = None,
    assumed_miss_lat: Optional[float] = None,
) -> tuple[float, float, float]:
    params = SoeParams(
        miss_lat=config.miss_lat,
        switch_lat=config.switch_lat,
        max_cycles_quota=max_cycles_quota or config.max_cycles_quota,
    )
    controller = FairnessController(
        2,
        FairnessParams(
            fairness_target=fairness_target,
            miss_lat=assumed_miss_lat if assumed_miss_lat is not None else config.miss_lat,
            sample_period=sample_period or config.sample_period,
            deficit_cap=deficit_cap,
        ),
    )
    result = run_soe(
        pair.streams(seed=config.seed),
        controller,
        params,
        config.run_limits(),
    )
    return (
        result.total_ipc,
        result.achieved_fairness(ipc_st),
        result.forced_switches_per_kcycle(),
    )


def _ablation_point(
    spec: tuple[str, str, dict],
    pair: BenchmarkPair,
    config: EvalConfig,
    fairness_target: float,
    ipc_st: tuple[float, ...],
) -> AblationPoint:
    """One sweep point; module-level so the process pool can run it."""
    knob, value_label, overrides = spec
    ipc, fair, forced = _run_one(
        pair, config, fairness_target, ipc_st, **overrides
    )
    return AblationPoint(knob, value_label, ipc, fair, forced)


def run(
    pair: BenchmarkPair = BenchmarkPair("gcc", "eon"),
    config: EvalConfig = EvalConfig(),
    fairness_target: float = 0.5,
) -> AblationResult:
    from repro.experiments.runner import parallel_map, single_thread_ipcs

    ipc_st = single_thread_ipcs(pair, config)

    specs: list[tuple[str, str, dict]] = []
    for period in (25_000.0, 100_000.0, 250_000.0, 1_000_000.0):
        specs.append(("delta", f"{period:,.0f}", {"sample_period": period}))
    for quota in (10_000.0, 50_000.0, 100_000.0):
        specs.append(
            ("max_cycles_quota", f"{quota:,.0f}", {"max_cycles_quota": quota})
        )
    for cap_label, cap in (("none", None), ("2x quota-ish", 10_000.0),
                           ("tight", 2_000.0)):
        specs.append(("deficit_cap", cap_label, {"deficit_cap": cap}))
    for assumed in (150.0, 300.0, 600.0):
        specs.append(
            ("assumed_miss_lat", f"{assumed:g}", {"assumed_miss_lat": assumed})
        )

    points = parallel_map(
        functools.partial(
            _ablation_point,
            pair=pair,
            config=config,
            fairness_target=fairness_target,
            ipc_st=ipc_st,
        ),
        specs,
    )
    return AblationResult(
        pair_label=pair.label, fairness_target=fairness_target, points=points
    )


def render(result: AblationResult) -> str:
    rows = [
        [
            p.knob,
            p.value,
            f"{p.total_ipc:.3f}",
            f"{p.achieved_fairness:.3f}",
            f"{p.forced_per_kcycle:.2f}",
        ]
        for p in result.points
    ]
    return format_table(
        ["knob", "value", "IPC_SOE", "achieved fairness", "forced/kcyc"],
        rows,
        title=(
            f"Ablations on {result.pair_label} at F = {result.fairness_target:g}"
        ),
    )
