"""Experiment registry: one entry per paper table/figure.

Each experiment exposes ``run()`` returning a result object and
``render(result)`` returning printable text; the registry maps stable
identifiers (used by the CLI and the benchmarks) to those modules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError

__all__ = ["Experiment", "EXPERIMENTS", "get_experiment", "experiment_ids"]


@dataclass(frozen=True)
class Experiment:
    """A registered experiment."""

    id: str
    title: str
    paper_reference: str
    run: Callable[..., object]
    render: Callable[[object], str]


def _registry() -> dict[str, Experiment]:
    # Imports are local so `import repro.experiments.registry` stays
    # cheap and cycle-free.
    from repro.experiments import (
        ablations,
        events,
        fig3,
        fig5,
        fig6,
        fig7,
        fig8,
        frontier,
        sensitivity,
        stability,
        table2,
        threadcount,
        timesharing,
        validation,
        weighted,
    )

    experiments = [
        Experiment(
            "table2",
            "Example 2: two threads with and without enforcement",
            "Table 2",
            table2.run,
            table2.render,
        ),
        Experiment(
            "fig3",
            "Analytical fairness/throughput tradeoff",
            "Figure 3",
            fig3.run,
            fig3.render,
        ),
        Experiment(
            "fig5",
            "Detailed examination of gcc:eon",
            "Figure 5",
            fig5.run,
            fig5.render,
        ),
        Experiment(
            "fig6",
            "Per-pair SOE throughput",
            "Figure 6",
            fig6.run,
            fig6.render,
        ),
        Experiment(
            "fig7",
            "Throughput degradation due to enforcement",
            "Figure 7",
            fig7.run,
            fig7.render,
        ),
        Experiment(
            "fig8",
            "Achieved fairness",
            "Figure 8",
            fig8.run,
            fig8.render,
        ),
        Experiment(
            "timesharing",
            "Time sharing vs fairness enforcement",
            "Section 6",
            timesharing.run,
            timesharing.render,
        ),
        Experiment(
            "validation",
            "Detailed core vs segment engine vs analytical model",
            "Sections 2.1, 5.1.1",
            validation.run,
            validation.render,
        ),
        Experiment(
            "ablations",
            "Mechanism parameter ablations",
            "Sections 3.1, 6",
            ablations.run,
            ablations.render,
        ),
        Experiment(
            "events",
            "Variable-latency switch events with measured latencies",
            "Section 6 (extension)",
            events.run,
            events.render,
        ),
        Experiment(
            "threadcount",
            "Throughput and fairness vs thread count",
            "Section 1.1 context (extension)",
            threadcount.run,
            threadcount.render,
        ),
        Experiment(
            "weighted",
            "Prioritized (weighted) fairness enforcement",
            "Eq. 7 generalization (extension)",
            weighted.run,
            weighted.render,
        ),
        Experiment(
            "sensitivity",
            "Machine-parameter sensitivity (memory/switch latency)",
            "Eq. 5 / Sec. 2.5 what-if",
            sensitivity.run,
            sensitivity.render,
        ),
        Experiment(
            "stability",
            "Seed stability of the headline aggregates",
            "methodology check",
            stability.run,
            stability.render,
        ),
        Experiment(
            "frontier",
            "Cross-policy fairness/throughput frontier (policy zoo)",
            "ROADMAP scenario diversity (extension)",
            frontier.run,
            frontier.render,
        ),
    ]
    return {e.id: e for e in experiments}


#: Lazily-built registry cache.
_CACHE: dict[str, Experiment] = {}


def _experiments() -> dict[str, Experiment]:
    if not _CACHE:
        _CACHE.update(_registry())
    return _CACHE


def experiment_ids() -> list[str]:
    """All registered experiment identifiers."""
    return sorted(_experiments())


def get_experiment(experiment_id: str) -> Experiment:
    """Look up an experiment by id."""
    experiments = _experiments()
    if experiment_id not in experiments:
        known = ", ".join(experiment_ids())
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        )
    return experiments[experiment_id]


# Keep a module-level alias for introspection/docs.
EXPERIMENTS = _experiments
