"""Section 6 extension: variable-latency switch events.

The base mechanism assumes every switch event stalls for the memory
latency (300 cycles). Section 6 extends SOE to other events -- L1
misses that may hit the L2, explicit pause hints -- whose latencies
vary, and proposes measuring them with hardware counters.

This experiment builds a workload whose events are a mixture of short
(L2-hit, ~40 cycles) and long (memory, 300 cycles) stalls, pairs it
with a conventional compute thread, and enforces the same target
fairness under three latency configurations:

* ``assumed 300`` -- the unmodified mechanism: badly wrong for the
  mixed-event thread, whose estimated IPC_ST is far too low, inflating
  its quota and overshooting its share;
* ``oracle`` -- the mixture's true rate-weighted mean latency, hand
  computed: what perfect calibration achieves;
* ``measured`` -- the Section 6 proposal: per-thread latency monitors
  feeding the estimator each ``Delta``; should match the oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.controller import FairnessController, FairnessParams
from repro.engine.singlethread import run_single_thread
from repro.engine.segments import SegmentStream
from repro.engine.soe import RunLimits, SoeParams, run_soe
from repro.experiments.common import EvalConfig, format_table
from repro.workloads.events import EventType, mean_event_latency, multi_event_stream
from repro.workloads.synthetic import uniform_stream

__all__ = ["EventsRow", "EventsResult", "run", "render"]

#: The mixed-event thread: an L1-missing streaming phase (short stalls)
#: with occasional memory misses.
MIXED_EVENTS = (
    EventType(ipm=600.0, latency=40.0),
    EventType(ipm=6_000.0, latency=300.0),
)
MIXED_IPC = 2.0
#: The partner: a conventional compute-bound thread (memory misses only).
PARTNER_IPC = 2.6
PARTNER_IPM = 20_000.0


@dataclass(frozen=True)
class EventsRow:
    configuration: str
    assumed_latency: Optional[float]
    total_ipc: float
    achieved_fairness: float
    measured_latency: Optional[float]


@dataclass(frozen=True)
class EventsResult:
    fairness_target: float
    true_mean_latency: float
    rows: list[EventsRow]

    def row(self, configuration: str) -> EventsRow:
        return next(r for r in self.rows if r.configuration == configuration)

    @property
    def measurement_closes_the_gap(self) -> bool:
        """True when measured latencies recover (most of) the accuracy
        the wrong constant loses."""
        target = self.fairness_target
        wrong = abs(self.row("assumed 300").achieved_fairness - target)
        measured = abs(self.row("measured").achieved_fairness - target)
        return measured < wrong


def _streams(seed_base: int = 0) -> list[SegmentStream]:
    return [
        multi_event_stream(MIXED_IPC, MIXED_EVENTS, seed=seed_base + 31,
                           name="mixed-events"),
        uniform_stream(PARTNER_IPC, PARTNER_IPM, ipm_cv=0.5, seed=seed_base + 32,
                       name="partner"),
    ]


def run(
    fairness_target: float = 0.5,
    min_instructions: Optional[float] = None,
    warmup_instructions: Optional[float] = None,
    config: Optional[EvalConfig] = None,
) -> EventsResult:
    if min_instructions is None:
        min_instructions = (
            config.min_instructions if config is not None else 2_000_000.0
        )
    if warmup_instructions is None:
        warmup_instructions = (
            config.warmup_instructions if config is not None else 1_200_000.0
        )
    seed_base = 2 * config.seed if config is not None else 0
    params = SoeParams(miss_lat=300.0, switch_lat=25.0)
    ipc_st = [
        run_single_thread(stream, miss_lat=300.0, min_instructions=min_instructions).ipc
        for stream in _streams(seed_base)
    ]
    true_mean = mean_event_latency(MIXED_EVENTS)
    limits = RunLimits(
        min_instructions=min_instructions, warmup_instructions=warmup_instructions
    )

    configurations = [
        ("assumed 300", FairnessParams(fairness_target=fairness_target,
                                       miss_lat=300.0)),
        ("oracle", FairnessParams(fairness_target=fairness_target,
                                  miss_lat=true_mean)),
        ("measured", FairnessParams(fairness_target=fairness_target,
                                    miss_lat=300.0,
                                    measure_miss_latency=True)),
    ]
    rows = []
    for label, fairness_params in configurations:
        controller = FairnessController(2, fairness_params)
        result = run_soe(_streams(seed_base), controller, params, limits)
        measured = controller.measured_latencies
        rows.append(
            EventsRow(
                configuration=label,
                assumed_latency=(
                    None if fairness_params.measure_miss_latency
                    else fairness_params.miss_lat
                ),
                total_ipc=result.total_ipc,
                achieved_fairness=result.achieved_fairness(ipc_st),
                measured_latency=None if measured is None else measured[0],
            )
        )
    return EventsResult(
        fairness_target=fairness_target, true_mean_latency=true_mean, rows=rows
    )


def render(result: EventsResult) -> str:
    rows = []
    for row in result.rows:
        rows.append(
            [
                row.configuration,
                "-" if row.assumed_latency is None else f"{row.assumed_latency:.0f}",
                f"{row.total_ipc:.3f}",
                f"{row.achieved_fairness:.3f}",
                "-" if row.measured_latency is None else f"{row.measured_latency:.0f}",
            ]
        )
    return (
        format_table(
            ["latency config", "assumed", "IPC_SOE", "achieved fairness",
             "measured (t1)"],
            rows,
            title=(
                f"Section 6 extension: variable-latency events at "
                f"F = {result.fairness_target:g} "
                f"(true mean latency {result.true_mean_latency:.0f} cycles)"
            ),
        )
        + "\n(the measured configuration should match the oracle; assuming the"
        + "\n 300-cycle memory constant misestimates the mixed-event thread)"
    )
