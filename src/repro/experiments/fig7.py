"""Figure 7: throughput degradation due to fairness enforcement.

Per pair and fairness level: throughput normalized to the unenforced
(F = 0) run, alongside the number of quota-forced thread switches per
1000 cycles (forced switches hide no memory access; they are pure
overhead). The paper reports average degradations of 2.2%, 3.7% and
7.2% for F = 1/4, 1/2 and 1, and a strong correlation between the
forced-switch rate and the throughput loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.common import EvalConfig, PairResult, format_table, run_all_pairs
from repro.metrics.ascii_chart import bar_chart
from repro.metrics.summary import mean

__all__ = ["Fig7Result", "run", "render"]


@dataclass(frozen=True)
class Fig7Result:
    pairs: list[PairResult]
    fairness_levels: tuple[float, ...]

    @property
    def enforced_levels(self) -> list[float]:
        return sorted(level for level in self.fairness_levels if level > 0)

    def average_degradation(self, level: float) -> float:
        """Mean throughput loss vs F = 0 (positive = loss)."""
        return mean([1.0 - p.normalized_throughput(level) for p in self.pairs])

    def average_forced_switch_rate(self, level: float) -> float:
        """Mean forced switches per 1000 cycles."""
        return mean(
            [p.runs[level].forced_switches_per_kcycle() for p in self.pairs]
        )

    def degradation_correlates_with_forced_switches(self, level: float) -> float:
        """Pearson correlation between forced-switch rate and loss."""
        losses = [1.0 - p.normalized_throughput(level) for p in self.pairs]
        rates = [p.runs[level].forced_switches_per_kcycle() for p in self.pairs]
        n = len(losses)
        mean_l, mean_r = mean(losses), mean(rates)
        cov = sum((l - mean_l) * (r - mean_r) for l, r in zip(losses, rates)) / n
        var_l = sum((l - mean_l) ** 2 for l in losses) / n
        var_r = sum((r - mean_r) ** 2 for r in rates) / n
        if var_l == 0 or var_r == 0:
            return 0.0
        return cov / (var_l * var_r) ** 0.5


def run(
    config: EvalConfig = EvalConfig(),
    pairs: Optional[Sequence[PairResult]] = None,
) -> Fig7Result:
    results = list(pairs) if pairs is not None else run_all_pairs(config)
    return Fig7Result(pairs=results, fairness_levels=config.fairness_levels)


def render(result: Fig7Result) -> str:
    levels = result.enforced_levels
    headers = ["pair"]
    for level in levels:
        headers += [f"norm tput @F={level:g}", f"forced/kcyc @F={level:g}"]
    rows = []
    for pair_result in result.pairs:
        row = [pair_result.pair.label]
        for level in levels:
            row.append(f"{pair_result.normalized_throughput(level):.3f}")
            row.append(f"{pair_result.runs[level].forced_switches_per_kcycle():.2f}")
        rows.append(row)
    summary_lines = []
    for level in levels:
        summary_lines.append(
            f"F={level:g}: avg degradation {result.average_degradation(level):.1%}, "
            f"avg forced/kcyc {result.average_forced_switch_rate(level):.2f}, "
            f"corr(loss, forced) {result.degradation_correlates_with_forced_switches(level):.2f}"
        )
    chart = bar_chart(
        {
            f"{pair_result.pair.label} @F=1": 1.0 - pair_result.normalized_throughput(1.0)
            for pair_result in result.pairs
        }
    )
    return (
        format_table(headers, rows, title="Figure 7: throughput normalized to F=0")
        + "\n"
        + "\n".join(summary_lines)
        + "\n(paper: avg degradation 2.2% @F=1/4, 3.7% @F=1/2, 7.2% @F=1)"
        + "\n\nper-pair throughput loss at F=1:\n"
        + chart
    )
