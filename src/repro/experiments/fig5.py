"""Figure 5: detailed examination of the gcc:eon pair.

Three time-series views of one run (fairness enforced to 1/4), sampled
every ``Delta`` = 250,000 cycles:

* **top** -- each thread's *estimated* single-thread IPC (Eq. 13, from
  the hardware counters) against its *real* single-thread IPC over the
  same instruction region of a dedicated run. The paper's observation:
  the estimate closely tracks the real value and is usually slightly
  lower (out-of-order overlap and resource sharing are unavailable or
  degraded in SOE mode).
* **middle** -- per-thread speedups with and without enforcement:
  without enforcement gcc almost starves; with F = 1/4 it runs an order
  of magnitude faster.
* **bottom** -- achieved fairness over time.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Optional

from repro.core.controller import FairnessController
from repro.engine.recorder import IntervalRecorder
from repro.engine.segments import SegmentStream
from repro.engine.soe import RunLimits, SoeEngine
from repro.experiments.common import EvalConfig, format_table
from repro.metrics.summary import mean
from repro.workloads.pairs import BenchmarkPair

__all__ = ["SingleThreadTimeline", "Fig5Result", "run", "render"]


class SingleThreadTimeline:
    """Instruction-indexed timeline of a dedicated single-thread run.

    Maps instruction positions to cumulative single-thread cycles so the
    *real* IPC_ST over any instruction region of the workload can be
    recovered -- which is what Figure 5 (top) compares the runtime
    estimate against.
    """

    def __init__(
        self,
        stream: SegmentStream,
        miss_lat: float,
        total_instructions: float,
    ) -> None:
        self._instructions = [0.0]
        self._cycles = [0.0]
        retired = 0.0
        cycles = 0.0
        for segment in stream.segments():
            retired += segment.instructions
            cycles += segment.cycles
            if segment.ends_with_miss:
                cycles += (
                    miss_lat
                    if segment.miss_latency is None
                    else segment.miss_latency
                )
            self._instructions.append(retired)
            self._cycles.append(cycles)
            if retired >= total_instructions:
                break

    def cycles_at(self, instructions: float) -> float:
        """Cumulative single-thread cycles after ``instructions`` retired
        (linear interpolation within a segment)."""
        idx = bisect.bisect_left(self._instructions, instructions)
        if idx >= len(self._instructions):
            idx = len(self._instructions) - 1
        # repro-lint: disable=RL004 - exact bisect hit returns the sample as-is
        if self._instructions[idx] == instructions or idx == 0:
            return self._cycles[idx]
        i0, i1 = self._instructions[idx - 1], self._instructions[idx]
        c0, c1 = self._cycles[idx - 1], self._cycles[idx]
        fraction = (instructions - i0) / (i1 - i0)
        return c0 + fraction * (c1 - c0)

    def ipc_over(self, start_instructions: float, end_instructions: float) -> float:
        """Real single-thread IPC over an instruction region."""
        if end_instructions <= start_instructions:
            return 0.0
        cycles = self.cycles_at(end_instructions) - self.cycles_at(start_instructions)
        if cycles <= 0:
            return 0.0
        return (end_instructions - start_instructions) / cycles


@dataclass(frozen=True)
class Fig5Result:
    """The three panels' series, one sample per Delta boundary."""

    times: tuple[float, ...]
    #: panel 1: estimated vs real IPC_ST per thread
    estimated_ipc_st: tuple[tuple[float, float], ...]
    real_ipc_st: tuple[tuple[float, float], ...]
    #: panel 2: per-interval speedups, enforced (F = 1/4) run
    speedups_enforced: tuple[tuple[float, float], ...]
    #: panel 2: per-interval speedups, unenforced (F = 0) run
    speedups_unenforced: tuple[tuple[float, float], ...]
    #: panel 3: achieved fairness per interval (enforced run)
    fairness: tuple[float, ...]
    fairness_target: float
    pair_label: str

    def estimation_error(self, thread: int) -> float:
        """Mean relative error of the IPC_ST estimate for one thread."""
        errors = []
        for est, real in zip(self.estimated_ipc_st, self.real_ipc_st):
            if real[thread] > 0 and est[thread] > 0:
                errors.append(abs(est[thread] - real[thread]) / real[thread])
        return mean(errors) if errors else 0.0

    def estimate_is_usually_lower(self, thread: int) -> bool:
        """Section 5.1.1: the estimate is usually slightly below real."""
        below = sum(
            1
            for est, real in zip(self.estimated_ipc_st, self.real_ipc_st)
            if est[thread] > 0 and est[thread] <= real[thread] * 1.02
        )
        counted = sum(1 for est in self.estimated_ipc_st if est[thread] > 0)
        return counted > 0 and below >= counted / 2

    def starved_thread_improvement(self) -> float:
        """How much faster the starved thread runs with enforcement
        (mean speedup ratio, enforced over unenforced)."""
        enforced = mean([s[0] for s in self.speedups_enforced])
        unenforced = mean([s[0] for s in self.speedups_unenforced])
        if unenforced <= 0:
            return float("inf")
        return enforced / unenforced


def _run_recorded(
    pair: BenchmarkPair,
    config: EvalConfig,
    fairness_target: float,
) -> tuple[IntervalRecorder, Optional[FairnessController]]:
    streams = pair.streams(seed=config.seed)
    recorder = IntervalRecorder(interval=config.sample_period)
    controller = None
    if fairness_target > 0:
        controller = FairnessController(
            len(streams), config.fairness_params(fairness_target)
        )
    engine = SoeEngine(streams, controller, config.soe_params(), recorder=recorder)
    engine.run(RunLimits(min_instructions=config.min_instructions))
    return recorder, controller


def run(
    pair: BenchmarkPair = BenchmarkPair("gcc", "eon"),
    config: EvalConfig = EvalConfig(),
    fairness_target: float = 0.25,
) -> Fig5Result:
    """Produce the Figure 5 series for a pair (gcc:eon by default)."""
    profiles = pair.profiles()
    enforced, controller = _run_recorded(pair, config, fairness_target)
    unenforced, _ = _run_recorded(pair, config, 0.0)

    total = config.min_instructions * 4 + config.warmup_instructions
    timelines = [
        SingleThreadTimeline(
            stream, profile.single_thread_stall(config.miss_lat), total
        )
        for stream, profile in zip(pair.streams(seed=config.seed), profiles)
    ]

    assert controller is not None
    history = controller.history

    times = []
    estimated = []
    real = []
    speedups_enf = []
    fairness_series = []
    prev_cumulative = (0.0, 0.0)
    for sample, point in zip(enforced.samples, history):
        times.append(sample.time)
        estimated.append(tuple(e.ipc_st for e in point.estimates))
        real_now = tuple(
            timelines[tid].ipc_over(prev_cumulative[tid], sample.cumulative_retired[tid])
            for tid in range(2)
        )
        real.append(real_now)
        speedup = tuple(
            sample.ipcs[tid] / real_now[tid] if real_now[tid] > 0 else 0.0
            for tid in range(2)
        )
        speedups_enf.append(speedup)
        positive = [s for s in speedup if s > 0]
        if len(positive) == 2:
            fairness_series.append(min(positive) / max(positive))
        else:
            fairness_series.append(0.0)
        prev_cumulative = sample.cumulative_retired

    speedups_unenf = []
    prev_cumulative = (0.0, 0.0)
    for sample in unenforced.samples[: len(times)]:
        real_now = tuple(
            timelines[tid].ipc_over(prev_cumulative[tid], sample.cumulative_retired[tid])
            for tid in range(2)
        )
        speedups_unenf.append(
            tuple(
                sample.ipcs[tid] / real_now[tid] if real_now[tid] > 0 else 0.0
                for tid in range(2)
            )
        )
        prev_cumulative = sample.cumulative_retired

    n = min(len(times), len(speedups_unenf))
    return Fig5Result(
        times=tuple(times[:n]),
        estimated_ipc_st=tuple(estimated[:n]),
        real_ipc_st=tuple(real[:n]),
        speedups_enforced=tuple(speedups_enf[:n]),
        speedups_unenforced=tuple(speedups_unenf[:n]),
        fairness=tuple(fairness_series[:n]),
        fairness_target=fairness_target,
        pair_label=pair.label,
    )


def render(result: Fig5Result) -> str:
    """Tabulate the series plus the paper's qualitative checks."""
    rows = []
    for i, time in enumerate(result.times):
        rows.append(
            [
                f"{time / 1e6:.2f}M",
                f"{result.estimated_ipc_st[i][0]:.2f}/{result.real_ipc_st[i][0]:.2f}",
                f"{result.estimated_ipc_st[i][1]:.2f}/{result.real_ipc_st[i][1]:.2f}",
                f"{result.speedups_enforced[i][0]:.3f}",
                f"{result.speedups_enforced[i][1]:.3f}",
                f"{result.speedups_unenforced[i][0]:.3f}",
                f"{result.fairness[i]:.3f}",
            ]
        )
    table = format_table(
        [
            "cycles",
            "t1 est/real IPC_ST",
            "t2 est/real IPC_ST",
            "t1 speedup(F)",
            "t2 speedup(F)",
            "t1 speedup(F=0)",
            "fairness",
        ],
        rows,
        title=(
            f"Figure 5: {result.pair_label} with F = {result.fairness_target:g} "
            f"(one row per Delta)"
        ),
    )
    notes = (
        f"\nestimation error: t1 {result.estimation_error(0):.1%}, "
        f"t2 {result.estimation_error(1):.1%}; "
        f"starved-thread speedup gain: "
        f"{result.starved_thread_improvement():.1f}x"
    )
    from repro.metrics.ascii_chart import line_chart

    chart = line_chart(
        {
            "t1 speedup (enforced)": [s[0] for s in result.speedups_enforced],
            "t1 speedup (F=0)": [s[0] for s in result.speedups_unenforced],
            "fairness": list(result.fairness),
        },
        x_values=list(result.times),
        y_label="(x axis: cycles)",
        height=12,
    )
    return table + notes + "\n\n" + chart
