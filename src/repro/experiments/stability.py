"""Seed stability of the headline results.

The workloads are synthetic, so a fair question is whether the
reproduced aggregates are properties of the *suite* or accidents of one
random seed. This experiment reruns the full 16-pair evaluation grid
under several seeds and reports the spread of every headline number:
average SOE speedup per fairness level, average throughput degradation,
the unfair-run fraction, and the truncated achieved-fairness means.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence

from repro.experiments.common import EvalConfig, format_table, run_all_pairs
from repro.experiments.fig6 import Fig6Result
from repro.experiments.fig7 import Fig7Result
from repro.experiments.fig8 import Fig8Result
from repro.metrics.summary import mean, stdev

__all__ = ["SeedOutcome", "StabilityResult", "run", "render"]


@dataclass(frozen=True)
class SeedOutcome:
    """Headline aggregates for one seed."""

    seed: int
    speedup_by_level: dict
    degradation_by_level: dict
    unfair_fraction: float
    truncated_mean_by_level: dict


@dataclass(frozen=True)
class StabilityResult:
    outcomes: list[SeedOutcome]
    fairness_levels: tuple[float, ...]

    def spread(self, extract: Callable[[SeedOutcome], float]) -> tuple[float, float]:
        values = [extract(outcome) for outcome in self.outcomes]
        return mean(values), stdev(values)

    def speedup_spread(self, level: float) -> tuple[float, float]:
        return self.spread(lambda o: o.speedup_by_level[level])

    def degradation_spread(self, level: float) -> tuple[float, float]:
        return self.spread(lambda o: o.degradation_by_level[level])

    def unfair_fraction_spread(self) -> tuple[float, float]:
        return self.spread(lambda o: o.unfair_fraction)

    def truncated_mean_spread(self, level: float) -> tuple[float, float]:
        return self.spread(lambda o: o.truncated_mean_by_level[level])


def run(
    seeds: Sequence[int] = (0, 1, 2),
    config: EvalConfig = EvalConfig(),
    jobs: Optional[int] = None,
) -> StabilityResult:
    """Rerun the grid under each seed.

    Per-seed grids execute through :mod:`repro.experiments.runner`, so
    the ambient ``--jobs``/``--cache-dir`` settings apply: each seed's
    16 pairs fan out across the process pool, and a repeated sweep
    replays cached pair results (the seed is part of the cache key).
    """
    outcomes = []
    for seed in seeds:
        seeded = replace(config, seed=seed)
        grid = run_all_pairs(seeded, jobs=jobs)
        fig6 = Fig6Result(pairs=grid, fairness_levels=seeded.fairness_levels)
        fig7 = Fig7Result(pairs=grid, fairness_levels=seeded.fairness_levels)
        ordered = sorted(grid, key=lambda p: p.achieved_fairness(0.0))
        fig8 = Fig8Result(pairs=ordered, fairness_levels=seeded.fairness_levels)
        outcomes.append(
            SeedOutcome(
                seed=seed,
                speedup_by_level={
                    level: fig6.average_speedup(level)
                    for level in seeded.fairness_levels
                },
                degradation_by_level={
                    level: fig7.average_degradation(level)
                    for level in fig7.enforced_levels
                },
                unfair_fraction=fig8.unfair_run_fraction(0.1),
                truncated_mean_by_level={
                    level: fig8.summary(level).mean
                    for level in seeded.fairness_levels
                    if level > 0
                },
            )
        )
    return StabilityResult(
        outcomes=outcomes, fairness_levels=config.fairness_levels
    )


def render(result: StabilityResult) -> str:
    levels = sorted(result.fairness_levels)
    rows = []
    for level in levels:
        speedup_mean, speedup_std = result.speedup_spread(level)
        row = [f"F={level:g}", f"{speedup_mean:+.1%} ± {speedup_std:.1%}"]
        if level > 0:
            deg_mean, deg_std = result.degradation_spread(level)
            trunc_mean, trunc_std = result.truncated_mean_spread(level)
            row += [
                f"{deg_mean:.1%} ± {deg_std:.1%}",
                f"{trunc_mean:.3f} ± {trunc_std:.3f}",
            ]
        else:
            row += ["-", "-"]
        rows.append(row)
    unfair_mean, unfair_std = result.unfair_fraction_spread()
    return (
        format_table(
            ["level", "avg speedup over ST", "avg degradation",
             "truncated fairness"],
            rows,
            title=(
                f"Seed stability over {len(result.outcomes)} seeds "
                f"(16-pair grid per seed)"
            ),
        )
        + f"\nunfair-run fraction: {unfair_mean:.0%} ± {unfair_std:.0%} "
        + "(paper: over a third)"
    )
