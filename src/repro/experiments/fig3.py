"""Figure 3: the analytical fairness/throughput tradeoff.

Figure 3 sweeps the target fairness F for two-thread combinations with
different per-thread ``IPC_no_miss`` and ``IPM`` values and plots the
resulting throughput change (relative to no enforcement, F = 0). The
paper's observations, all reproduced by this sweep:

* when both threads share the same ``IPC_no_miss`` (the [2.5, 2.5]
  lines), enforcement costs at most a few percent;
* with different ``IPC_no_miss`` values, degradation can reach ~15% --
  or throughput can *improve* by ~10% when enforcement biases execution
  towards the thread with the higher ``IPC_no_miss``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.model import SoeModel, ThreadParams
from repro.experiments.common import EvalConfig, format_table
from repro.metrics.ascii_chart import line_chart

__all__ = ["Fig3Series", "Fig3Result", "run", "render", "PAPER_CASES"]

#: Thread-pair cases mirroring Figure 3's legend:
#: IPC_no_miss = [a, b], IPM = [x, y].
PAPER_CASES: tuple[tuple[tuple[float, float], tuple[float, float]], ...] = (
    ((2.5, 2.5), (15_000.0, 1_000.0)),
    ((2.5, 2.5), (5_000.0, 1_000.0)),
    ((2.5, 2.5), (2_000.0, 1_000.0)),
    ((2.0, 3.0), (15_000.0, 1_000.0)),
    ((2.0, 3.0), (5_000.0, 1_000.0)),
    ((3.0, 2.0), (15_000.0, 1_000.0)),
    ((3.0, 2.0), (5_000.0, 1_000.0)),
)


@dataclass(frozen=True)
class Fig3Series:
    """One legend line: throughput change vs. target fairness."""

    ipc_no_miss: tuple[float, float]
    ipm: tuple[float, float]
    fairness_targets: tuple[float, ...]
    throughput_change: tuple[float, ...]

    @property
    def label(self) -> str:
        return (
            f"IPC_no_miss=[{self.ipc_no_miss[0]:g},{self.ipc_no_miss[1]:g}], "
            f"IPM=[{self.ipm[0]:g},{self.ipm[1]:g}]"
        )


@dataclass(frozen=True)
class Fig3Result:
    series: list[Fig3Series]

    def max_degradation(self) -> float:
        return min(min(s.throughput_change) for s in self.series)

    def max_improvement(self) -> float:
        return max(max(s.throughput_change) for s in self.series)


def run(
    cases: Sequence[tuple[tuple[float, float], tuple[float, float]]] = PAPER_CASES,
    miss_lat: Optional[float] = None,
    switch_lat: Optional[float] = None,
    steps: int = 21,
    config: Optional[EvalConfig] = None,
) -> Fig3Result:
    """Sweep F in [0, 1] for each case through the analytical model.

    The machine latencies default to ``config`` (the paper's 300/25
    cycles when no configuration is given); explicit arguments win.
    """
    if miss_lat is None:
        miss_lat = config.miss_lat if config is not None else 300.0
    if switch_lat is None:
        switch_lat = config.switch_lat if config is not None else 25.0
    targets = tuple(i / (steps - 1) for i in range(steps))
    series = []
    for ipcs, ipms in cases:
        model = SoeModel(
            [ThreadParams(ipcs[0], ipms[0]), ThreadParams(ipcs[1], ipms[1])],
            miss_lat=miss_lat,
            switch_lat=switch_lat,
        )
        changes = tuple(model.throughput_change(f) for f in targets)
        series.append(
            Fig3Series(
                ipc_no_miss=ipcs,
                ipm=ipms,
                fairness_targets=targets,
                throughput_change=changes,
            )
        )
    return Fig3Result(series=series)


def render(result: Fig3Result) -> str:
    """Tabulate each series at a few representative F values."""
    sample_points = (0.0, 0.25, 0.5, 0.75, 1.0)
    rows = []
    for series in result.series:
        row = [series.label]
        for point in sample_points:
            idx = min(
                range(len(series.fairness_targets)),
                key=lambda i: abs(series.fairness_targets[i] - point),
            )
            row.append(f"{series.throughput_change[idx]:+.1%}")
        rows.append(row)
    headers = ["case"] + [f"F={p:g}" for p in sample_points]
    summary = (
        f"\nmax degradation: {result.max_degradation():+.1%}; "
        f"max improvement: {result.max_improvement():+.1%}"
    )
    chart = line_chart(
        {s.label: list(s.throughput_change) for s in result.series},
        x_values=list(result.series[0].fairness_targets),
        y_label="throughput change vs F (x axis: enforced fairness F)",
    )
    return (
        format_table(headers, rows,
                     title="Figure 3: throughput change vs enforced fairness "
                           "(analytical model)")
        + summary
        + "\n\n"
        + chart
    )
