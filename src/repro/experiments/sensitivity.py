"""Machine-parameter sensitivity of the fairness problem and its cost.

Two what-if sweeps over the machine constants, run on the analytical
model and spot-checked against the segment engine:

* **Memory latency** (the paper's 300 cycles = 75 ns at 4 GHz): Eq. 5
  says unenforced fairness is ``min (CPM_j + L)/(CPM_k + L)`` -- as
  memory gets *slower* relative to the cores (larger L), unfairness
  softens; as cores outpace memory further (here: the 2000-cycle
  point), starvation deepens. The cost of enforcement moves the same
  way.
* **Switch latency**: forced switches cost ``S`` cycles each, so the
  F = 1 throughput penalty scales almost linearly with S -- quantifying
  the paper's premise that SOE (and its fairness control) depends on
  cheap switches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.model import SoeModel, ThreadParams
from repro.engine.soe import RunLimits, SoeParams, run_soe
from repro.core.controller import FairnessController, FairnessParams
from repro.experiments.common import EvalConfig, format_table
from repro.workloads.synthetic import uniform_stream

__all__ = ["SensitivityRow", "SensitivityResult", "run", "render"]

#: Example 2's thread pair, the reference workload throughout.
THREADS = (ThreadParams(2.5, 15_000.0), ThreadParams(2.5, 1_000.0))


@dataclass(frozen=True)
class SensitivityRow:
    parameter: str
    value: float
    unenforced_fairness: float
    f1_throughput_cost: float
    #: engine-measured cost for the spot-checked points (None elsewhere)
    measured_cost: float = None


@dataclass(frozen=True)
class SensitivityResult:
    rows: list[SensitivityRow]

    def series(self, parameter: str) -> list[SensitivityRow]:
        return [row for row in self.rows if row.parameter == parameter]


def _model(miss_lat: float, switch_lat: float) -> SoeModel:
    return SoeModel(list(THREADS), miss_lat=miss_lat, switch_lat=switch_lat)


def _measure_cost(
    spec: tuple[float, float, float, float, int],
) -> float:
    """Engine-measured F = 1 throughput cost for one latency point.

    The spec carries every input (latencies, run lengths, stream seed
    base), so the process pool can replay it deterministically.
    """
    miss_lat, switch_lat, min_instructions, warmup, seed_base = spec
    params = SoeParams(miss_lat=miss_lat, switch_lat=switch_lat)
    streams = lambda: [
        uniform_stream(2.5, 15_000, seed=seed_base + 1),
        uniform_stream(2.5, 1_000, seed=seed_base + 2),
    ]
    limits = RunLimits(
        min_instructions=min_instructions, warmup_instructions=warmup
    )
    base = run_soe(streams(), None, params, limits)
    controller = FairnessController(
        2, FairnessParams(fairness_target=1.0, miss_lat=miss_lat)
    )
    enforced = run_soe(streams(), controller, params, limits)
    return 1.0 - enforced.total_ipc / base.total_ipc


def run(
    miss_latencies: Sequence[float] = (75.0, 150.0, 300.0, 600.0, 1_200.0, 2_000.0),
    switch_latencies: Sequence[float] = (5.0, 10.0, 25.0, 50.0, 100.0),
    spot_check: Sequence[float] = (300.0,),
    config: Optional[EvalConfig] = None,
) -> SensitivityResult:
    from repro.experiments.runner import parallel_map

    if config is not None:
        min_instructions = config.min_instructions
        warmup = config.warmup_instructions
        seed_base = 2 * config.seed
    else:
        min_instructions, warmup, seed_base = 1_000_000.0, 700_000.0, 0

    # The engine spot-checks are the expensive part; fan them out and
    # join them back by latency point.
    miss_points = [lat for lat in miss_latencies if lat in spot_check]
    switch_points = [lat for lat in switch_latencies if lat in (25.0,)]
    specs = [
        (lat, 25.0, min_instructions, warmup, seed_base) for lat in miss_points
    ] + [
        (300.0, lat, min_instructions, warmup, seed_base)
        for lat in switch_points
    ]
    costs = parallel_map(_measure_cost, specs)
    measured = dict(zip([("miss_lat", lat) for lat in miss_points]
                        + [("switch_lat", lat) for lat in switch_points], costs))

    rows = []
    for latency in miss_latencies:
        model = _model(latency, 25.0)
        rows.append(
            SensitivityRow(
                parameter="miss_lat",
                value=latency,
                unenforced_fairness=model.fairness(0.0),
                f1_throughput_cost=-model.throughput_change(1.0),
                measured_cost=measured.get(("miss_lat", latency)),
            )
        )
    for latency in switch_latencies:
        model = _model(300.0, latency)
        rows.append(
            SensitivityRow(
                parameter="switch_lat",
                value=latency,
                unenforced_fairness=model.fairness(0.0),
                f1_throughput_cost=-model.throughput_change(1.0),
                measured_cost=measured.get(("switch_lat", latency)),
            )
        )
    return SensitivityResult(rows=rows)


def render(result: SensitivityResult) -> str:
    table_rows = []
    for row in result.rows:
        table_rows.append(
            [
                row.parameter,
                f"{row.value:g}",
                f"{row.unenforced_fairness:.3f}",
                f"{row.f1_throughput_cost:.1%}",
                "-" if row.measured_cost is None else f"{row.measured_cost:.1%}",
            ]
        )
    return format_table(
        ["parameter", "cycles", "fairness (F=0)", "F=1 cost (model)",
         "F=1 cost (engine)"],
        table_rows,
        title="Machine-parameter sensitivity (Example 2's thread pair)",
    )
