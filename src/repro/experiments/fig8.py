"""Figure 8: achieved fairness, with and without enforcement.

Left panel: achieved fairness of every run at each fairness level,
with runs ordered by their unenforced (F = 0) fairness. Right panel:
the mean and standard deviation of ``min(F, achieved)`` across runs --
truncation removes the bias of runs that are fair without enforcement.
The paper's observations:

* even the most unfair pairs reach close to the target;
* enforcement barely perturbs pairs that were already fair;
* accuracy degrades as the target approaches 1 (forced switches perturb
  the estimator the mechanism relies on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.common import EvalConfig, PairResult, format_table, run_all_pairs
from repro.metrics.ascii_chart import line_chart
from repro.metrics.report import FairnessSummary, summarize_achieved_fairness

__all__ = ["Fig8Result", "run", "render"]


@dataclass(frozen=True)
class Fig8Result:
    #: pair results ordered by unenforced fairness (the x-axis of the
    #: left panel)
    pairs: list[PairResult]
    fairness_levels: tuple[float, ...]

    def achieved_series(self, level: float) -> list[float]:
        """One left-panel line: achieved fairness per run."""
        return [p.achieved_fairness(level) for p in self.pairs]

    def summary(self, level: float) -> FairnessSummary:
        """One right-panel bar: mean/std of min(F, achieved)."""
        return summarize_achieved_fairness(self.achieved_series(level), level)

    def unfair_run_fraction(self, threshold: float = 0.1) -> float:
        """Fraction of F = 0 runs below ``threshold`` (the paper: over a
        third of runs had one thread 10-100x slower)."""
        series = self.achieved_series(0.0)
        return sum(1 for value in series if value < threshold) / len(series)


def run(
    config: EvalConfig = EvalConfig(),
    pairs: Optional[Sequence[PairResult]] = None,
) -> Fig8Result:
    results = list(pairs) if pairs is not None else run_all_pairs(config)
    ordered = sorted(results, key=lambda p: p.achieved_fairness(0.0))
    return Fig8Result(pairs=ordered, fairness_levels=config.fairness_levels)


def render(result: Fig8Result) -> str:
    levels = sorted(result.fairness_levels)
    headers = ["pair"] + [f"achieved @F={level:g}" for level in levels]
    rows = []
    for pair_result in result.pairs:
        row = [pair_result.pair.label]
        for level in levels:
            row.append(f"{pair_result.achieved_fairness(level):.3f}")
        rows.append(row)
    summaries = []
    for level in levels:
        summary = result.summary(level)
        summaries.append(
            f"F={level:g}: mean min(F, achieved) = {summary.mean:.3f} "
            f"(std {summary.stdev:.3f})"
        )
    chart = line_chart(
        {f"F={level:g}": result.achieved_series(level) for level in levels},
        y_label="achieved fairness (x axis: runs ordered by F=0 fairness)",
        height=12,
    )
    return (
        format_table(
            headers, rows,
            title="Figure 8 (left): achieved fairness, runs ordered by F=0 fairness",
        )
        + "\n\n"
        + chart
        + "\n\nFigure 8 (right): truncated averages\n"
        + "\n".join(summaries)
        + f"\nfraction of F=0 runs with fairness < 0.1: "
        + f"{result.unfair_run_fraction():.0%} (paper: over a third)"
    )
