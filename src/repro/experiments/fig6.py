"""Figure 6: SOE throughput per pair, with and without enforcement.

For every benchmark combination the figure stacks the two threads'
``IPC_SOE_j`` (their sum is Eq. 10's total throughput) at each fairness
level, next to the threads' single-thread IPCs. The headline numbers
are the average speedups of SOE over single thread: the paper reports
24%, 21%, 19% and 15% for F = 0, 1/4, 1/2 and 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.common import EvalConfig, PairResult, format_table, run_all_pairs
from repro.metrics.summary import mean
from repro.metrics.throughput import soe_speedup_over_single_thread

__all__ = ["Fig6Result", "run", "render"]


@dataclass(frozen=True)
class Fig6Result:
    pairs: list[PairResult]
    fairness_levels: tuple[float, ...]

    def average_speedup(self, level: float) -> float:
        """Average SOE-over-single-thread speedup at one fairness level
        (the paper's 24/21/19/15% series), as a gain (0.24 = +24%)."""
        gains = [
            soe_speedup_over_single_thread(p.runs[level].total_ipc, p.ipc_st) - 1.0
            for p in self.pairs
        ]
        return mean(gains)

    def speedup_ladder(self) -> dict[float, float]:
        """Average speedup at every fairness level, F = 0 first."""
        return {
            level: self.average_speedup(level)
            for level in sorted(self.fairness_levels)
        }


def run(
    config: EvalConfig = EvalConfig(),
    pairs: Optional[Sequence[PairResult]] = None,
) -> Fig6Result:
    """Run (or reuse) the evaluation grid and assemble Figure 6."""
    results = list(pairs) if pairs is not None else run_all_pairs(config)
    return Fig6Result(pairs=results, fairness_levels=config.fairness_levels)


def render(result: Fig6Result) -> str:
    levels = sorted(result.fairness_levels)
    headers = ["pair", "IPC_ST (t1/t2)"] + [f"IPC_SOE @ F={f:g}" for f in levels]
    rows = []
    for pair_result in result.pairs:
        row = [
            pair_result.pair.label,
            f"{pair_result.ipc_st[0]:.2f}/{pair_result.ipc_st[1]:.2f}",
        ]
        for level in levels:
            run_result = pair_result.runs[level]
            ipcs = run_result.ipcs
            row.append(f"{ipcs[0]:.2f}+{ipcs[1]:.2f}={run_result.total_ipc:.2f}")
        rows.append(row)
    ladder = "  ".join(
        f"F={level:g}: {gain:+.1%}" for level, gain in result.speedup_ladder().items()
    )
    return (
        format_table(headers, rows, title="Figure 6: per-pair SOE throughput (stacked)")
        + f"\naverage SOE speedup over single thread: {ladder}"
        + "\n(paper: F=0 +24%, F=1/4 +21%, F=1/2 +19%, F=1 +15%)"
    )
